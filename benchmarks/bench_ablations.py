"""Ablations of the design choices called out in DESIGN.md / paper Sec. III.

Three ablations on the shared trained "ours" model:

1. **Fragment-integrity check** — decode with and without the truncation step
   (i.e. Ours vs plain Medusa decoding of the same syntax-enriched model).
2. **Typical-acceptance hyper-parameters** — vary epsilon/delta and measure
   tokens per step (more permissive acceptance commits more tokens per step).
3. **Number of speculative heads** — cap the heads used at decode time and
   measure tokens per step (more heads = more tokens per step, the property
   the paper exploits by training more robust later heads).

Plus a micro-benchmark of the parallel label-construction algorithm against
its per-column reference implementation (the paper's "parallel algorithm"
claim in Fig. 4).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.acceptance import TypicalAcceptance
from repro.core.decoding import DecodingStrategy, SpeculativeDecoder
from repro.core.labels import apply_syntax_enrichment, apply_syntax_enrichment_reference, build_shifted_labels
from repro.models.generation import GenerationConfig

from conftest import SMOKE, emit_bench_json


def _mean_tokens_per_step(decoder, prompts, budget=64, temperature=0.0):
    """Mean committed tokens per decoding step over ``prompts``.

    ``temperature=0`` decodes greedily (exact-match verification);
    ``temperature>0`` samples and exercises the typical-acceptance rule.
    """
    if temperature > 0:
        configs = [GenerationConfig.sampling_config(temperature, budget, seed=i) for i in range(len(prompts))]
    else:
        configs = [GenerationConfig.greedy_config(budget) for _ in prompts]
    results = [decoder.generate_from_text(p, c) for p, c in zip(prompts, configs)]
    return float(np.mean([r.tokens_per_step for r in results]))


@pytest.mark.benchmark(group="ablations")
def test_ablation_integrity_check(benchmark, trained_pipeline, rtllm_subset):
    """Ours vs. the same model decoded without the fragment-integrity truncation."""
    model = trained_pipeline.models["ours"]
    tokenizer = trained_pipeline.tokenizer
    prompts = [p.prompt for p in rtllm_subset][:3]

    with_integrity = SpeculativeDecoder(model, tokenizer, strategy=DecodingStrategy.OURS)
    without_integrity = SpeculativeDecoder(model, tokenizer, strategy=DecodingStrategy.MEDUSA)

    tps_with = _mean_tokens_per_step(with_integrity, prompts, temperature=0.8)
    tps_without = _mean_tokens_per_step(without_integrity, prompts, temperature=0.8)

    print("\n=== Ablation: fragment-integrity check ===")
    print(f"with integrity check    : {tps_with:.2f} tokens/step")
    print(f"without integrity check : {tps_without:.2f} tokens/step")
    print("(the check trades a little per-step progress for fragment-complete outputs)")
    emit_bench_json(
        "ablation_integrity_check",
        {"with_integrity_tokens_per_step": tps_with, "without_integrity_tokens_per_step": tps_without},
    )

    benchmark.pedantic(
        lambda: with_integrity.generate_from_text(prompts[0], GenerationConfig.greedy_config(32)), rounds=1, iterations=1
    )
    if not SMOKE:
        assert tps_with > 1.0
    # Integrity truncation can only remove tokens from an accepted run.
    assert tps_with <= tps_without + 1e-9


@pytest.mark.benchmark(group="ablations")
def test_ablation_acceptance_threshold(benchmark, trained_pipeline, rtllm_subset):
    """Stricter typical-acceptance thresholds commit fewer tokens per step."""
    model = trained_pipeline.models["ours"]
    tokenizer = trained_pipeline.tokenizer
    prompts = [p.prompt for p in rtllm_subset][:2]

    settings = {
        "permissive (eps=0.05, delta=0.2)": TypicalAcceptance(epsilon=0.05, delta=0.2),
        "paper default (eps=0.09, delta=0.3)": TypicalAcceptance(epsilon=0.09, delta=0.3),
        "strict (eps=0.5, delta=0.9)": TypicalAcceptance(epsilon=0.5, delta=0.9),
    }
    rates = {}
    for label, acceptance in settings.items():
        decoder = SpeculativeDecoder(model, tokenizer, strategy=DecodingStrategy.OURS, acceptance=acceptance)
        rates[label] = _mean_tokens_per_step(decoder, prompts, temperature=0.8)

    print("\n=== Ablation: typical-acceptance threshold ===")
    for label, rate in rates.items():
        print(f"{label:<38}: {rate:.2f} tokens/step")
    emit_bench_json("ablation_acceptance_threshold", rates)

    decoder = SpeculativeDecoder(model, tokenizer, strategy=DecodingStrategy.OURS)
    benchmark.pedantic(
        lambda: decoder.generate_from_text(prompts[0], GenerationConfig.greedy_config(32)), rounds=1, iterations=1
    )
    assert rates["strict (eps=0.5, delta=0.9)"] <= rates["permissive (eps=0.05, delta=0.2)"] + 1e-9


@pytest.mark.benchmark(group="ablations")
def test_ablation_head_count(benchmark, trained_pipeline, rtllm_subset):
    """More speculative heads commit more tokens per decoding step."""
    model = trained_pipeline.models["ours"]
    tokenizer = trained_pipeline.tokenizer
    prompts = [p.prompt for p in rtllm_subset][:2]

    rates = {}
    for heads in (1, 2, 4, model.num_medusa_heads):
        decoder = SpeculativeDecoder(model, tokenizer, strategy=DecodingStrategy.OURS, max_speculative_heads=heads)
        rates[heads] = _mean_tokens_per_step(decoder, prompts, temperature=0.8)

    print("\n=== Ablation: number of speculative heads used at decode time ===")
    for heads, rate in rates.items():
        print(f"{heads:>2} heads: {rate:.2f} tokens/step")
    emit_bench_json("ablation_head_count", {str(heads): rate for heads, rate in rates.items()})

    decoder = SpeculativeDecoder(model, tokenizer, strategy=DecodingStrategy.OURS, max_speculative_heads=1)
    benchmark.pedantic(
        lambda: decoder.generate_from_text(prompts[0], GenerationConfig.greedy_config(32)), rounds=1, iterations=1
    )
    head_counts = sorted(rates)
    assert rates[head_counts[-1]] >= rates[head_counts[0]] - 1e-9


@pytest.mark.benchmark(group="ablations")
def test_parallel_label_algorithm_speed(benchmark):
    """The vectorised Fig. 4 algorithm against the per-column reference (same output, faster)."""
    rng = np.random.default_rng(0)
    frag_id, pad_id, ignore_id = 4, 0, 5
    base = rng.choice([frag_id, 10, 11, 12, 13], size=2048, p=[0.4, 0.15, 0.15, 0.15, 0.15])
    labels = build_shifted_labels(base, num_heads=10, pad_id=pad_id)

    fast = benchmark(lambda: apply_syntax_enrichment(labels, frag_id, ignore_id))
    slow = apply_syntax_enrichment_reference(labels, frag_id, ignore_id)
    np.testing.assert_array_equal(fast, slow)
