"""Grammar-constrained decoding bench: syntax guarantee and verify savings.

Decodes the RTLLM benchmark prompts with and without ``grammar="verilog"``
(speculative tree verification on, greedy) and reports the constrained-mode
headline numbers:

* **syntax pass@1 = 1.0** — every constrained sample parses as standalone
  Verilog, by construction of the syntax mask (the unconstrained column shows
  what the model achieves on its own);
* **verified-position savings** — the grammar pre-filter rejects speculative
  tree branches before verification, so the constrained run verifies strictly
  fewer tree positions than the same steps would have verified unpruned.

Both properties are hard assertions, not just printed numbers.  The headline
metrics are also appended to the tracked trend ledger
(``benchmarks/results/trend.json``, see :mod:`trend`).
"""

from __future__ import annotations

import pytest

from repro.evalbench.runner import EvaluationRunner
from repro.models.generation import GenerationConfig
from repro.verilog.syntax import check_syntax

from conftest import FULL, MAX_NEW_TOKENS, SMOKE, emit_bench_json
from trend import append_trend_entry

_MODE = "smoke" if SMOKE else ("full" if FULL else "default")


def _decode_all(decoder, prompts, grammar):
    config = GenerationConfig.greedy_config(MAX_NEW_TOKENS, tree_verify=True, grammar=grammar)
    return [decoder.generate_from_text(prompt, config) for prompt in prompts]


@pytest.mark.benchmark(group="constrained")
def test_constrained_decoding(benchmark, trained_pipeline, rtllm_subset):
    """Constrained vs. unconstrained speculative decoding on the same workload."""
    decoder = trained_pipeline.decoder_for("ours")
    prompts = rtllm_subset.prompts()

    unconstrained = _decode_all(decoder, prompts, grammar=None)
    constrained = _decode_all(decoder, prompts, grammar="verilog")

    syntax_pass_unconstrained = sum(check_syntax(r.code).ok for r in unconstrained) / len(prompts)
    syntax_pass_constrained = sum(check_syntax(r.code).ok for r in constrained) / len(prompts)
    verified = sum(r.tokens_verified for r in constrained)
    unpruned = sum(r.tokens_verified_unpruned for r in constrained)
    baseline_verified = sum(r.tokens_verified for r in unconstrained)
    closure = sum(r.closure_tokens for r in constrained)

    print("\n=== Grammar-constrained decoding (ours, tree verify, greedy) ===")
    header = f"{'mode':<14} {'syntax-pass@1':>14} {'verified':>9} {'unpruned':>9} {'closure':>8}"
    print(header)
    print("-" * len(header))
    print(f"{'unconstrained':<14} {syntax_pass_unconstrained:>14.2f} {baseline_verified:>9} {'-':>9} {'-':>8}")
    print(f"{'constrained':<14} {syntax_pass_constrained:>14.2f} {verified:>9} {unpruned:>9} {closure:>8}")
    savings = 1.0 - verified / unpruned if unpruned else 0.0
    print(f"grammar pre-filter pruned {savings:.1%} of speculative verification positions")

    # The syntax mask makes every sample a parsing design — pass@1 is 1.0 by
    # construction, independent of how well the model was trained.
    assert syntax_pass_constrained == 1.0
    # And the tree pre-filter verifies strictly fewer positions than the same
    # steps would have without it.
    assert verified < unpruned

    emit_bench_json(
        "constrained_decoding",
        {
            "syntax_pass_at_1": {
                "unconstrained": syntax_pass_unconstrained,
                "constrained": syntax_pass_constrained,
            },
            "tokens_verified": {"constrained": verified, "unpruned": unpruned, "unconstrained": baseline_verified},
            "verified_savings_ratio": savings,
            "closure_tokens": closure,
        },
    )
    append_trend_entry(
        "constrained_decoding",
        _MODE,
        {
            "syntax_pass_at_1_constrained": syntax_pass_constrained,
            "syntax_pass_at_1_unconstrained": syntax_pass_unconstrained,
            "verified_savings_ratio": savings,
        },
    )

    config = GenerationConfig.greedy_config(MAX_NEW_TOKENS, tree_verify=True, grammar="verilog")
    benchmark.pedantic(lambda: decoder.generate_from_text(prompts[0], config), rounds=1, iterations=1)


@pytest.mark.benchmark(group="constrained")
def test_constrained_evalbench_mode(benchmark, trained_pipeline, rtllm_subset):
    """The evalbench runner's constrained mode: parse pass@1 pinned at 1.0."""
    runner = EvaluationRunner(
        trained_pipeline.decoder_for("ours"),
        samples_per_prompt=1,
        max_new_tokens=MAX_NEW_TOKENS,
        k_values=(1,),
        grammar="verilog",
    )
    report = benchmark.pedantic(lambda: runner.evaluate_suite(rtllm_subset, label="ours+grammar"), rounds=1, iterations=1)

    print("\n=== Evalbench constrained mode (ours, RTLLM subset) ===")
    print(f"parse pass@1      : {report.parse_pass_at_k[1]:.2f}")
    print(f"compile pass@1    : {report.syntax_pass_at_k[1]:.2f}")
    print(f"function pass@1   : {report.function_pass_at_k[1]:.2f}")
    print(f"verified savings  : {report.verified_savings_ratio:.1%}")

    assert report.grammar == "verilog"
    assert report.parse_pass_at_k[1] == 1.0
    assert report.parse_pass_rate == 1.0
    assert report.tokens_verified <= report.tokens_verified_unpruned
