"""Fig. 1 — quality vs. speed overview (Ours vs Medusa vs NTP on RTLLM).

The paper's Fig. 1 is a scatter of functional pass@5 against generation speed
for the CodeLlama model on RTLLM, showing that Ours sits in the top-right
corner (fastest *and* most accurate), Medusa is fast but loses accuracy, and
NTP is accurate but slow.  This bench regenerates the three points.
"""

from __future__ import annotations

import pytest

from repro.evalbench.runner import EvaluationRunner
from repro.evalbench.speed import measure_speed
from repro.models.generation import GenerationConfig

from conftest import MAX_NEW_TOKENS, SAMPLES_PER_PROMPT, SMOKE, emit_bench_json


@pytest.mark.benchmark(group="fig1-overview")
def test_fig1_quality_vs_speed(benchmark, trained_pipeline, rtllm_subset):
    """Regenerate the three (speed, pass@5) points of Fig. 1."""
    points = {}
    prompts = [p.prompt for p in rtllm_subset]
    for method in ("ours", "medusa", "ntp"):
        decoder = trained_pipeline.decoder_for(method)
        runner = EvaluationRunner(
            decoder, samples_per_prompt=SAMPLES_PER_PROMPT, max_new_tokens=MAX_NEW_TOKENS, k_values=(1, 5)
        )
        quality = runner.evaluate_suite(rtllm_subset, label=method)
        speed = measure_speed(decoder, prompts[:3], max_new_tokens=80, include_sampling=True, label=method)
        points[method] = {
            "pass@5_function": 100.0 * quality.function_pass_at_k[5],
            "pass@5_syntax": 100.0 * quality.syntax_pass_at_k[5],
            "tokens_per_step": speed.mean_tokens_per_step,
            "tokens_per_second": speed.mean_tokens_per_second,
        }

    print("\n=== Fig. 1 (RTLLM, decoder-only backbone) ===")
    header = f"{'method':<8} {'func pass@5':>12} {'syn pass@5':>11} {'tokens/step':>12} {'tokens/s':>10}"
    print(header)
    print("-" * len(header))
    for method, point in points.items():
        print(
            f"{method:<8} {point['pass@5_function']:>12.2f} {point['pass@5_syntax']:>11.2f} "
            f"{point['tokens_per_step']:>12.2f} {point['tokens_per_second']:>10.1f}"
        )

    emit_bench_json("fig1_overview", points)

    decoder = trained_pipeline.decoder_for("ours")
    benchmark.pedantic(
        lambda: decoder.generate_from_text(prompts[0], GenerationConfig.greedy_config(32)), rounds=1, iterations=1
    )

    # Shape: the speculative methods are faster per step than NTP (needs a
    # properly trained model, so not asserted in CI smoke mode).
    if not SMOKE:
        assert points["ours"]["tokens_per_step"] > points["ntp"]["tokens_per_step"]
        assert points["medusa"]["tokens_per_step"] > points["ntp"]["tokens_per_step"]
