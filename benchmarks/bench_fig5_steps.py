"""Fig. 5 — decoding-step comparison on the data_register example.

The paper's Fig. 5 decodes one prompt (the 4-bit ``data_register``) with the
three methods and counts decoding steps: Ours needs the fewest steps (14),
Medusa fewer than NTP (24 vs 77), and only Ours maintains complete code
fragments at every step.  This bench regenerates the step counts and the
fragment-integrity property of the committed runs.
"""

from __future__ import annotations

import pytest

from repro.evalbench.rtllm import rtllm_suite
from repro.models.generation import GenerationConfig

from conftest import emit_bench_json


@pytest.mark.benchmark(group="fig5-steps")
def test_fig5_decoding_steps(benchmark, trained_pipeline):
    """Regenerate Fig. 5's step counts for the data_register prompt."""
    problem = rtllm_suite().get("data_register_4")
    assert problem is not None
    config = GenerationConfig.greedy_config(120)

    results = {}
    for method in ("ours", "medusa", "ntp"):
        decoder = trained_pipeline.decoder_for(method)
        results[method] = decoder.generate_from_text(problem.prompt, config)

    print("\n=== Fig. 5 (data_register example) ===")
    header = f"{'method':<8} {'steps':>6} {'tokens':>7} {'tokens/step':>12} {'complete-fragment steps':>24}"
    print(header)
    print("-" * len(header))
    for method, result in results.items():
        boundary_steps = sum(1 for r in result.step_records if r.ends_at_boundary)
        print(
            f"{method:<8} {result.steps:>6} {result.tokens_generated:>7} {result.tokens_per_step:>12.2f} "
            f"{boundary_steps:>20}/{len(result.step_records)}"
        )

    emit_bench_json(
        "fig5_steps",
        {
            method: {
                "steps": result.steps,
                "tokens": result.tokens_generated,
                "tokens_per_step": result.tokens_per_step,
                "boundary_steps": sum(1 for r in result.step_records if r.ends_at_boundary),
            }
            for method, result in results.items()
        },
    )

    decoder = trained_pipeline.decoder_for("ours")
    benchmark.pedantic(
        lambda: decoder.generate_from_text(problem.prompt, GenerationConfig.greedy_config(40)), rounds=1, iterations=1
    )

    # Shape: ours needs no more steps per token than NTP (fewer whenever the
    # heads land at least one speculation), and every multi-token commit of
    # ours ends at a fragment boundary.
    per_token_ours = results["ours"].steps / max(results["ours"].tokens_generated, 1)
    per_token_ntp = results["ntp"].steps / max(results["ntp"].tokens_generated, 1)
    assert per_token_ours <= per_token_ntp
    ours = results["ours"]
    position = 0
    for record in ours.step_records:
        committed = ours.token_ids[position : position + record.committed]
        position += record.committed
        if len(committed) > 1:
            decoder = trained_pipeline.decoder_for("ours")
            assert committed[-1] in (decoder.frag_id, decoder.eos_id)
