"""Fig. 6 — pass@5 vs. training-data size for the CodeT5p-style architecture.

The paper's Fig. 6 plots pass@5 (function and syntax, RTLLM and VGen) for the
CodeT5p architecture trained on 32K/64K/96K/128K examples, showing that the
syntax-enriched method dominates the baselines at every data size and is
especially strong in the low-data regime.  This bench regenerates the series
with the encoder-decoder backbone trained on nested fractions of the corpus.
"""

from __future__ import annotations

import os

import pytest

from repro.core.pipeline import PipelineConfig, VerilogSpecPipeline
from repro.evalbench.problems import ProblemSuite
from repro.evalbench.rtllm import rtllm_suite
from repro.evalbench.runner import EvaluationRunner
from repro.evalbench.vgen import vgen_suite

from conftest import SMOKE, emit_bench_json

FULL = os.environ.get("REPRO_BENCH_FULL", "0") == "1"
if SMOKE:
    FRACTIONS = (1.0,)
    PROBLEMS = 2
    SAMPLES = 1
else:
    FRACTIONS = (0.25, 0.5, 0.75, 1.0) if FULL else (0.5, 1.0)
    PROBLEMS = 6 if FULL else 3
    SAMPLES = 5 if FULL else 2


def _encdec_config(fraction: float) -> PipelineConfig:
    return PipelineConfig(
        corpus_items=200 if FULL else (60 if SMOKE else 120),
        vocab_size=700 if FULL else (450 if SMOKE else 600),
        architecture="encoder-decoder",
        model_dim=48 if FULL else 32,
        num_layers=1,
        num_attention_heads=2,
        num_medusa_heads=6 if not SMOKE else 4,
        max_seq_len=320,
        epochs=6 if FULL else (1 if SMOKE else 2),
        max_train_seq_len=224 if not SMOKE else 160,
        data_fraction=fraction,
    )


@pytest.mark.benchmark(group="fig6-data-scaling")
def test_fig6_pass5_vs_data_size(benchmark):
    """Regenerate Fig. 6's pass@5-vs-data-size series (encoder-decoder backbone)."""
    rtllm = ProblemSuite(name="RTLLM", problems=list(rtllm_suite())[:PROBLEMS])
    vgen = ProblemSuite(name="VGen", problems=list(vgen_suite())[:PROBLEMS])

    series = {}
    pipelines = {}
    for fraction in FRACTIONS:
        pipeline = VerilogSpecPipeline(_encdec_config(fraction))
        pipeline.prepare()
        pipeline.train_all()
        pipelines[fraction] = pipeline
        for method in ("ours", "medusa", "ntp"):
            runner = EvaluationRunner(
                pipeline.decoder_for(method), samples_per_prompt=SAMPLES, max_new_tokens=96, k_values=(1, 5)
            )
            for suite in (rtllm, vgen):
                report = runner.evaluate_suite(suite, label=method)
                series[(fraction, method, suite.name)] = {
                    "function_pass@5": 100.0 * report.function_pass_at_k[5],
                    "syntax_pass@5": 100.0 * report.syntax_pass_at_k[5],
                    "examples": len(pipeline.examples),
                }

    print("\n=== Fig. 6 (encoder-decoder backbone, pass@5 vs data size) ===")
    header = f"{'fraction':<9} {'#examples':>9} {'suite':<6} {'method':<8} {'func pass@5':>12} {'syn pass@5':>11}"
    print(header)
    print("-" * len(header))
    for (fraction, method, suite_name), point in series.items():
        print(
            f"{fraction:<9} {point['examples']:>9} {suite_name:<6} {method:<8} "
            f"{point['function_pass@5']:>12.2f} {point['syntax_pass@5']:>11.2f}"
        )

    emit_bench_json(
        "fig6_data_scaling",
        {f"{fraction}/{method}/{suite}": point for (fraction, method, suite), point in series.items()},
    )

    # Timed kernel: one greedy decode with the largest-fraction "ours" model.
    decoder = pipelines[FRACTIONS[-1]].decoder_for("ours")
    prompt = rtllm[0].prompt
    from repro.models.generation import GenerationConfig

    benchmark.pedantic(lambda: decoder.generate_from_text(prompt, GenerationConfig.greedy_config(32)), rounds=1, iterations=1)

    # Sanity: every series entry is a valid percentage.
    for point in series.values():
        assert 0.0 <= point["function_pass@5"] <= 100.0
        assert 0.0 <= point["syntax_pass@5"] <= 100.0
