"""Sharded serving — aggregate throughput and TTFT vs. worker count.

Not a paper table: this bench tracks the multi-process serving tentpole.
The shared-preamble workload (N requests over K distinct task preambles,
the rtllm/vgen serving shape reused from ``bench_throughput``) is served
through the :class:`~repro.serving.Router` at 1, 2 and 4 worker replicas
(1 and 2 in smoke mode — CI's job runs the 2-worker configuration under a
hard timeout), with prefix-affinity routing steering same-preamble requests
onto the replica whose prefix cache already holds the preamble K/V.

Reported per worker count:

* aggregate requests/sec and tokens/sec (submit of the first request to the
  last settlement);
* p50/p95 TTFT observed at the router (submission to first delivered
  token — includes routing, the pipe hop, queueing and prefill);
* fleet prefix-reuse counters, to show affinity actually colocates.

Assertions:

* the single-worker router is **token-identical** to the in-process
  :class:`~repro.serving.ServingEngine` on the same workload — sharding is
  a deployment change, not a behaviour change;
* with at least two effective CPU cores, aggregate req/s **strictly
  increases** from 1 worker to the best multi-worker configuration.  On a
  single-core host the processes timeshare one core and scaling is
  physically impossible, so the assertion is skipped (loudly).

Results land in ``benchmarks/results/router.json`` and the scaling metrics
append to the ``trend.json`` ledger.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.models.generation import GenerationConfig
from repro.serving import PrefixCache, Router, RouterConfig

from bench_throughput import SHARED_PREFIX_PREAMBLES, _shared_prefix_workload
from conftest import SMOKE, emit_bench_json
from trend import append_trend_entry

_MODE = "smoke" if SMOKE else "default"

WORKER_COUNTS = (1, 2) if SMOKE else (1, 2, 4)
NUM_REQUESTS = 8 if SMOKE else 16
MAX_NEW_TOKENS = 16 if SMOKE else 32


def _effective_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # platforms without affinity masks
        return os.cpu_count() or 1


def _worker_factory(pipeline):
    """Fork-safe factory: each worker builds a fresh engine + its own cache."""

    def factory():
        return pipeline.engine_for("ours", prefix_cache=PrefixCache(max_tokens=4096))

    return factory


def _run_router(pipeline, prompts_ids, config, num_workers):
    """Serve the workload through ``num_workers`` replicas; return measurements."""
    router = Router(
        _worker_factory(pipeline),
        config=RouterConfig(
            num_workers=num_workers,
            start_method="fork",
            preamble_tokens=16,
            imbalance_threshold=8,
        ),
    )
    with router:
        started = time.perf_counter()
        request_ids = [
            router.submit(prompt, config=config, request_id=f"w{num_workers}-r{index}")
            for index, prompt in enumerate(prompts_ids)
        ]
        results = router.drain(timeout=900)
        elapsed = time.perf_counter() - started
        ttfts = []
        for request_id in request_ids:
            record = router.request_record(request_id)
            assert record.first_token_at is not None
            ttfts.append(record.first_token_at - record.submitted_at)
        reuse = router.prefix_cache_stats()["aggregate"]
    total_tokens = sum(len(results[request_id].token_ids) for request_id in request_ids)
    return {
        "num_workers": num_workers,
        "requests_per_second": len(request_ids) / elapsed,
        "tokens_per_second": total_tokens / elapsed,
        "p50_ttft": float(np.percentile(ttfts, 50)),
        "p95_ttft": float(np.percentile(ttfts, 95)),
        "elapsed_seconds": elapsed,
        "prompt_tokens_reused": reuse.get("prompt_tokens_reused", 0),
        "prefix_hit_rate": reuse.get("hit_rate", 0.0),
    }, results


@pytest.mark.benchmark(group="serving-router")
def test_router_scaling(benchmark, trained_pipeline, rtllm_subset, vgen_subset):
    """Aggregate req/s and p95 TTFT at 1/2(/4) workers on shared preambles."""
    prompts = _shared_prefix_workload(trained_pipeline, rtllm_subset, vgen_subset, NUM_REQUESTS)
    prompts_ids = [trained_pipeline.tokenizer.encode(p, add_bos=True) for p in prompts]
    config = GenerationConfig.greedy_config(MAX_NEW_TOKENS)

    # In-process reference for the identity assertion.
    engine = trained_pipeline.engine_for("ours", prefix_cache=PrefixCache(max_tokens=4096))
    for index, prompt in enumerate(prompts_ids):
        engine.submit(prompt, config=config, request_id=f"w1-r{index}")
    reference = engine.run()

    measurements = {}
    for num_workers in WORKER_COUNTS:
        measurement, results = _run_router(trained_pipeline, prompts_ids, config, num_workers)
        measurements[num_workers] = measurement
        assert len(results) == NUM_REQUESTS
        if num_workers == 1:
            for request_id, result in results.items():
                assert result.token_ids == reference[request_id].token_ids, (
                    f"single-worker router diverged from in-process engine on {request_id}"
                )

    cores = _effective_cores()
    print(
        f"\n=== Router scaling ({NUM_REQUESTS} requests, "
        f"{len(SHARED_PREFIX_PREAMBLES)} preambles, greedy, {cores} cores) ==="
    )
    header = (
        f"{'workers':<8} {'req/s':>8} {'tok/s':>9} {'p50 TTFT':>9} {'p95 TTFT':>9} "
        f"{'reused':>7} {'hit rate':>9}"
    )
    print(header)
    print("-" * len(header))
    for num_workers, m in measurements.items():
        print(
            f"{num_workers:<8} {m['requests_per_second']:>8.2f} {m['tokens_per_second']:>9.0f} "
            f"{m['p50_ttft']:>9.3f} {m['p95_ttft']:>9.3f} "
            f"{m['prompt_tokens_reused']:>7} {m['prefix_hit_rate']:>9.2f}"
        )

    emit_bench_json(
        "router",
        {
            "num_requests": NUM_REQUESTS,
            "max_new_tokens": MAX_NEW_TOKENS,
            "effective_cores": cores,
            "worker_counts": list(WORKER_COUNTS),
            "single_worker_identical": True,
            "scaling": {str(n): m for n, m in measurements.items()},
        },
    )
    metrics = {"effective_cores": cores}
    for num_workers, m in measurements.items():
        metrics[f"reqps_w{num_workers}"] = m["requests_per_second"]
        metrics[f"p95_ttft_w{num_workers}"] = m["p95_ttft"]
    append_trend_entry("router_scaling", _MODE, metrics)

    single = measurements[1]["requests_per_second"]
    best_multi = max(
        m["requests_per_second"] for n, m in measurements.items() if n > 1
    )
    if cores >= 2:
        assert best_multi > single, (
            f"aggregate req/s did not increase with workers: 1 worker {single:.2f}, "
            f"best multi-worker {best_multi:.2f} ({cores} cores)"
        )
    else:
        print(
            f"single effective core: {cores}; workers timeshare it, so the "
            f"strict scaling assertion is skipped (1w {single:.2f} vs multi {best_multi:.2f} req/s)"
        )

    # Timed kernel: one full 2-worker run over the workload.
    benchmark.pedantic(
        lambda: _run_router(trained_pipeline, prompts_ids, config, 2), rounds=1, iterations=1
    )
