"""Simulation backends — interpreter vs compiled vs batched-compiled.

The compiled backend (`repro.sim.compiled`) exists so functional grading can
keep up with decode at eval scale: the tree-walking interpreter steps the AST
once per testbench event, while the compiled backend executes per-process
closures over slotted state and skips continuous assigns whose dirty bitset
did not change.  This bench pins the contract from three angles:

* **verdict identity** — every reference design graded by both backends (and
  by the batched sweep) must produce the same pass/fail verdict;
* **scalar throughput** — on an event-loop-bound kernel (clocked counter
  feeding a two-level continuous-assign network, the shape where dirty-set
  scheduling matters) the compiled backend must deliver >= 5x the
  interpreter's events/sec;
* **batched throughput** — sweeping many candidates over one testbench as a
  vectorized NumPy program must beat scalar compiled grading per design.

Results land in ``sim_compiled.json`` via :func:`emit_bench_json` for the CI
artifact job.
"""

from __future__ import annotations

import time

import pytest

from repro.evalbench.functional import check_design_functional, check_designs_functional
from repro.evalbench.rtllm import rtllm_suite
from repro.evalbench.vgen import vgen_suite
from repro.sim.compiled import CompiledSimulator
from repro.sim.rng import VerilogRng
from repro.sim.simulator import Simulator

from conftest import FULL, SMOKE, emit_bench_json

#: Required scalar advantage on the events/sec kernel (acceptance criterion).
MIN_SPEEDUP = 5.0

if SMOKE:
    KERNEL_WIRES = 16
    KERNEL_RUN_TIME = 2_500
    BATCH_CANDIDATES = 8
elif FULL:
    KERNEL_WIRES = 32
    KERNEL_RUN_TIME = 20_000
    BATCH_CANDIDATES = 48
else:
    KERNEL_WIRES = 24
    KERNEL_RUN_TIME = 10_000
    BATCH_CANDIDATES = 24


def kernel_source(nwires: int, run_time: int) -> str:
    """Clocked counter feeding a two-level continuous-assign network.

    Only the counter registers change per edge, so the interpreter re-evaluates
    all ``nwires`` assigns in every settle iteration while the compiled backend
    touches just the level whose dependency mask went dirty — the workload the
    dirty-set scheduler is built for.
    """
    half = nwires // 2
    decls = "\n".join(f"  wire [15:0] d{i};" for i in range(nwires))
    level1 = "\n".join(
        f"  assign d{i} = (count >> {i % 12}) ^ (acc + 16'd{i});" for i in range(half)
    )
    level2 = "\n".join(
        f"  assign d{i} = d{i - half} + (d{(i - half + 1) % half} >> 1);"
        for i in range(half, nwires)
    )
    return f"""
module counter(input clk, input rst, output reg [15:0] count, output reg [15:0] acc, output [15:0] status);
{decls}
{level1}
{level2}
  assign status = d0 ^ d{nwires - 1};
  always @(posedge clk) begin
    if (rst) begin count <= 16'd0; acc <= 16'd0; end
    else begin count <= count + 16'd1; acc <= acc + (count ^ (count >> 2)) + 16'd3; end
  end
endmodule
module tb;
  reg clk; reg rst;
  wire [15:0] count; wire [15:0] acc; wire [15:0] status;
  counter dut(.clk(clk), .rst(rst), .count(count), .acc(acc), .status(status));
  initial begin clk = 0; rst = 1; #12 rst = 0; #{run_time}; $display("count=%d status=%d", count, status); $finish; end
  always #5 clk = ~clk;
endmodule
"""


def _timed_run(simulator_cls, source: str):
    start = time.perf_counter()
    simulator = simulator_cls(
        source, max_time=2_000_000, max_events=2_000_000, rng=VerilogRng(VerilogRng.DEFAULT_SEED)
    )
    result = simulator.run()
    elapsed = time.perf_counter() - start
    assert result.finished and result.error is None, result.error
    return elapsed, result


def _reference_problems():
    return [
        (f"{suite.name}/{problem.name}", problem)
        for suite in (rtllm_suite(), vgen_suite())
        for problem in suite
    ]


def _mutate(design: str, index: int) -> str:
    """Deterministic single-operator mutations for not-all-passing candidates."""
    mutations = [("+", "-"), ("&", "|"), ("^", "&"), ("~", " ")]
    old, new = mutations[index % len(mutations)]
    return design.replace(old, new, 1)


@pytest.mark.benchmark(group="sim-compiled")
def test_sim_compiled_speed_and_verdicts(benchmark):
    """Events/sec kernel, reference-suite verdict identity and the batched sweep."""
    source = kernel_source(KERNEL_WIRES, KERNEL_RUN_TIME)
    # Warm parser/import caches outside the timed region.
    _timed_run(CompiledSimulator, source)

    interp_time, interp_result = _timed_run(Simulator, source)
    compiled_time, compiled_result = _timed_run(CompiledSimulator, source)
    assert compiled_result.display_lines == interp_result.display_lines
    assert compiled_result.cycles == interp_result.cycles

    interp_eps = interp_result.cycles / interp_time
    compiled_eps = compiled_result.cycles / compiled_time
    speedup = compiled_eps / interp_eps

    # Verdict identity across every reference design.
    problems = _reference_problems()
    verdicts = {}
    mismatched = []
    for name, problem in problems:
        by_backend = {
            backend: check_design_functional(problem.reference, problem, backend=backend).passed
            for backend in ("interpreter", "compiled")
        }
        verdicts[name] = by_backend["compiled"]
        if by_backend["interpreter"] != by_backend["compiled"]:
            mismatched.append(name)
    assert not mismatched, f"backends disagree on: {mismatched}"
    assert all(verdicts.values()), "reference designs must pass their own testbenches"

    # Batched sweep: many candidates, one testbench, identical verdicts.
    batch_problem = next(problem for name, problem in problems if name.endswith("adder_8bit"))
    candidates = [
        batch_problem.reference if i % 3 == 0 else _mutate(batch_problem.reference, i)
        for i in range(BATCH_CANDIDATES)
    ]
    start = time.perf_counter()
    scalar_results = [
        check_design_functional(candidate, batch_problem, backend="compiled")
        for candidate in candidates
    ]
    scalar_time = time.perf_counter() - start
    start = time.perf_counter()
    batch_results = check_designs_functional(candidates, batch_problem, backend="compiled")
    batch_time = time.perf_counter() - start
    assert [r.passed for r in batch_results] == [r.passed for r in scalar_results]
    batch_speedup = scalar_time / batch_time if batch_time > 0 else float("inf")

    print("\n=== Simulation backends (counter + wire-network kernel) ===")
    print(f"interpreter: {interp_eps:>10,.0f} events/sec  ({interp_time:.3f}s)")
    print(f"compiled:    {compiled_eps:>10,.0f} events/sec  ({compiled_time:.3f}s)  {speedup:.2f}x")
    print(
        f"batched:     {len(candidates) / batch_time:>10,.1f} designs/sec  "
        f"(scalar {len(candidates) / scalar_time:,.1f}/sec)  {batch_speedup:.2f}x"
    )

    emit_bench_json(
        "sim_compiled",
        {
            "kernel": {"wires": KERNEL_WIRES, "run_time": KERNEL_RUN_TIME},
            "interpreter_events_per_sec": interp_eps,
            "compiled_events_per_sec": compiled_eps,
            "compiled_speedup": speedup,
            "batch_candidates": len(candidates),
            "batch_designs_per_sec": len(candidates) / batch_time,
            "scalar_designs_per_sec": len(candidates) / scalar_time,
            "batch_speedup": batch_speedup,
            "reference_problems": len(problems),
            "verdict_mismatches": len(mismatched),
        },
    )

    benchmark.pedantic(lambda: _timed_run(CompiledSimulator, source), rounds=1, iterations=1)

    assert speedup >= MIN_SPEEDUP, (
        f"compiled backend is only {speedup:.2f}x the interpreter's events/sec "
        f"(required >= {MIN_SPEEDUP}x)"
    )
