"""Table I — quality of generated Verilog (pass@k and Pass Rate).

The paper's Table I reports pass@1/5/10 and Pass Rate, for functional and
syntactic correctness, on RTLLM and VGen, for the three training methods
(Ours / Medusa / NTP), two architectures and four training-data sizes.  This
bench regenerates the core of that table for the shared decoder-only
(CodeLlama-style) model at the full data size: the per-method rows for both
benchmarks and both metrics.  (The data-size sweep is covered by the Fig. 6
bench; the encoder-decoder architecture is exercised there as well.)

Expected shape (not absolute numbers): Ours >= Medusa on both metrics, and
Ours competitive with or better than NTP, with the Medusa baseline losing the
most functional accuracy.
"""

from __future__ import annotations

import pytest

from repro.evalbench.runner import EvaluationRunner

from conftest import MAX_NEW_TOKENS, SAMPLES_PER_PROMPT, emit_bench_json


def _rows_payload(reports: dict) -> dict:
    return {
        method: {metric: report.row(metric) for metric in ("function", "syntax")}
        for method, report in reports.items()
    }


def _print_rows(suite_name: str, reports: dict) -> None:
    print(f"\n=== Table I ({suite_name}, decoder-only backbone, full data) ===")
    header = f"{'metric':<9} {'method':<8} {'pass@1':>8} {'pass@5':>8} {'pass@10':>8} {'PassRate':>9}"
    print(header)
    print("-" * len(header))
    for metric in ("function", "syntax"):
        for method, report in reports.items():
            row = report.row(metric)
            print(
                f"{metric:<9} {method:<8} {row['pass@1']:>8.2f} {row['pass@5']:>8.2f} "
                f"{row['pass@10']:>8.2f} {row['pass_rate']:>9.2f}"
            )


def _evaluate_suite(pipeline, suite):
    reports = {}
    for method in ("ours", "medusa", "ntp"):
        runner = EvaluationRunner(
            pipeline.decoder_for(method),
            samples_per_prompt=SAMPLES_PER_PROMPT,
            max_new_tokens=MAX_NEW_TOKENS,
            k_values=(1, 5, 10),
        )
        reports[method] = runner.evaluate_suite(suite, label=method)
    return reports


@pytest.mark.benchmark(group="table1-quality")
def test_table1_rtllm_quality(benchmark, trained_pipeline, rtllm_subset):
    """Regenerate the RTLLM rows of Table I; the timed kernel is one full-prompt grading pass."""
    reports = _evaluate_suite(trained_pipeline, rtllm_subset)
    _print_rows("RTLLM", reports)
    emit_bench_json("table1_rtllm_quality", _rows_payload(reports))

    runner = EvaluationRunner(trained_pipeline.decoder_for("ours"), samples_per_prompt=1, max_new_tokens=48)
    problem = rtllm_subset[0]
    benchmark.pedantic(lambda: runner.evaluate_problem(problem), rounds=1, iterations=1)

    for report in reports.values():
        assert 0.0 <= report.function_pass_rate <= 1.0
        assert report.function_pass_at_k[1] <= report.syntax_pass_at_k[1] + 1e-9


@pytest.mark.benchmark(group="table1-quality")
def test_table1_vgen_quality(benchmark, trained_pipeline, vgen_subset):
    """Regenerate the VGen rows of Table I."""
    reports = _evaluate_suite(trained_pipeline, vgen_subset)
    _print_rows("VGen", reports)
    emit_bench_json("table1_vgen_quality", _rows_payload(reports))

    runner = EvaluationRunner(trained_pipeline.decoder_for("ours"), samples_per_prompt=1, max_new_tokens=48)
    problem = vgen_subset[0]
    benchmark.pedantic(lambda: runner.evaluate_problem(problem), rounds=1, iterations=1)

    for report in reports.values():
        assert 0.0 <= report.syntax_pass_rate <= 1.0
