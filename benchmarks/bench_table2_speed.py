"""Table II — generation speed and speedup over the NTP baseline.

The paper's Table II reports tokens/second and the speedup relative to the
NTP-trained model (eq. 3 and eq. 4) for CodeLlama and CodeT5p.  This bench
regenerates the decoder-only (CodeLlama-style) column: each prompt of the
speed set is decoded with greedy decoding and temperature-0.8 sampling, and
the mean speed is reported for the three methods.

Two speed figures are printed:

* wall-clock tokens/second (eq. 3 verbatim), measured over the decode loop
  with the one-off prompt prefill excluded;
* tokens per decoding step — the architecture-independent quantity the paper's
  speedup tracks (one step = one forward pass of the large model).

A second table compares KV-cached incremental decoding against the
full-recompute path for every method: both must commit identical token
sequences, and the cached path must be at least 2x faster at the default
bench sizes (the whole point of the cache refactor).

A third table compares token-tree candidate verification
(``GenerationConfig.tree_verify``) against the row-batched layout for the
speculative methods: both must commit identical token sequences, and the
tree must verify strictly fewer positions per run — candidates of the
default Medusa candidate set always share at least the committed base token,
which the tree verifies once instead of once per candidate.

Expected shape: Ours > Medusa > NTP on tokens/step, with Ours and Medusa both
well above 1 token/step and NTP exactly 1.
"""

from __future__ import annotations

import pytest

from repro.evalbench.speed import compare_cache_modes, compare_tree_modes, measure_speed, speedup
from repro.models.generation import GenerationConfig

from conftest import SMOKE, SPEED_PROMPTS, emit_bench_json


def _speed_prompts(pipeline, rtllm_subset, vgen_subset, count):
    prompts = [p.prompt for p in rtllm_subset] + [p.prompt for p in vgen_subset]
    prompts += [e.prompt_text() for e in pipeline.examples]
    return prompts[:count]


@pytest.mark.benchmark(group="table2-speed")
def test_table2_generation_speed(benchmark, trained_pipeline, rtllm_subset, vgen_subset):
    """Regenerate Table II for the decoder-only backbone."""
    prompts = _speed_prompts(trained_pipeline, rtllm_subset, vgen_subset, SPEED_PROMPTS)
    max_new_tokens = 48 if SMOKE else 96

    reports = {}
    for method in ("ours", "medusa", "ntp"):
        decoder = trained_pipeline.decoder_for(method)
        reports[method] = measure_speed(
            decoder, prompts, max_new_tokens=max_new_tokens, sampling_temperature=0.8, include_sampling=True,
            label=method,
        )

    print("\n=== Table II (decoder-only backbone, KV-cached decoding) ===")
    header = (
        f"{'method':<8} {'tokens/s':>10} {'speedup':>9} {'tokens/step':>12} {'step-speedup':>13} {'mean steps':>11}"
    )
    print(header)
    print("-" * len(header))
    baseline = reports["ntp"]
    for method, report in reports.items():
        print(
            f"{method:<8} {report.mean_tokens_per_second:>10.1f} {speedup(report, baseline):>9.2f} "
            f"{report.mean_tokens_per_step:>12.2f} {speedup(report, baseline, use_steps=True):>13.2f} "
            f"{report.mean_steps:>11.1f}"
        )

    # Cached vs. full-recompute decoding: the wall-clock win of the KV cache.
    comparison_prompts = prompts[: max(2, len(prompts) // 2)]
    comparisons = {}
    for method in ("ours", "medusa", "ntp"):
        comparisons[method] = compare_cache_modes(
            trained_pipeline.decoder_for(method),
            trained_pipeline.decoder_for(method, use_cache=False),
            comparison_prompts,
            max_new_tokens=max_new_tokens,
            label=method,
        )

    print("\n=== KV cache: incremental vs. full-recompute decoding ===")
    header = f"{'method':<8} {'cached tok/s':>13} {'uncached tok/s':>15} {'cache speedup':>14} {'identical':>10}"
    print(header)
    print("-" * len(header))
    for method, comparison in comparisons.items():
        print(
            f"{method:<8} {comparison.cached.mean_tokens_per_second:>13.1f} "
            f"{comparison.uncached.mean_tokens_per_second:>15.1f} "
            f"{comparison.wall_clock_speedup:>14.2f} {str(comparison.tokens_identical):>10}"
        )

    # Token-tree vs. row-batched verification: the verify-FLOP win of the
    # deduplicated candidate tree (speculative methods only; NTP verifies
    # nothing).
    tree_comparisons = {}
    for method in ("ours", "medusa"):
        tree_comparisons[method] = compare_tree_modes(
            trained_pipeline.decoder_for(method),
            comparison_prompts,
            max_new_tokens=max_new_tokens,
            label=method,
        )

    print("\n=== Token-tree vs. row-batched candidate verification ===")
    header = (
        f"{'method':<8} {'tree verified':>14} {'row verified':>13} {'ratio':>7} "
        f"{'tree tok/s':>11} {'row tok/s':>10} {'identical':>10}"
    )
    print(header)
    print("-" * len(header))
    for method, comparison in tree_comparisons.items():
        print(
            f"{method:<8} {comparison.tree.total_verified_tokens:>14} "
            f"{comparison.row.total_verified_tokens:>13} {comparison.verified_token_ratio:>7.3f} "
            f"{comparison.tree.mean_tokens_per_second:>11.1f} "
            f"{comparison.row.mean_tokens_per_second:>10.1f} {str(comparison.tokens_identical):>10}"
        )

    emit_bench_json(
        "table2_speed",
        {
            "methods": {method: report.to_dict() for method, report in reports.items()},
            "ntp_speedup": {method: speedup(report, baseline) for method, report in reports.items()},
            "step_speedup": {method: speedup(report, baseline, use_steps=True) for method, report in reports.items()},
            "cache_comparison": {method: comparison.to_dict() for method, comparison in comparisons.items()},
            "tree_comparison": {method: comparison.to_dict() for method, comparison in tree_comparisons.items()},
        },
    )

    # Timed kernel: a single greedy decode with the "ours" decoder.
    decoder = trained_pipeline.decoder_for("ours")
    benchmark.pedantic(
        lambda: decoder.generate_from_text(prompts[0], GenerationConfig.greedy_config(48)), rounds=1, iterations=1
    )

    # The cache is an optimisation, not a behaviour change.
    assert all(comparison.tokens_identical for comparison in comparisons.values())
    # So is the token tree — identical tokens, strictly fewer verified
    # positions (candidates always share at least the committed base token).
    for method, comparison in tree_comparisons.items():
        assert comparison.tokens_identical, f"{method}: tree verification changed committed tokens"
        assert comparison.tree.total_verified_tokens < comparison.row.total_verified_tokens, (
            f"{method}: tree verified {comparison.tree.total_verified_tokens} positions, "
            f"row verified {comparison.row.total_verified_tokens}"
        )
    assert reports["ntp"].mean_tokens_per_step == pytest.approx(1.0, abs=1e-6)
    if not SMOKE:
        # Shape assertions (paper: speculative methods commit >1 token per step;
        # NTP exactly 1) and the headline of this PR: cached decoding is at
        # least 2x faster than full recompute at the default bench sizes.
        assert reports["ours"].mean_tokens_per_step > 1.0
        assert reports["medusa"].mean_tokens_per_step > 1.0
        assert speedup(reports["ours"], baseline, use_steps=True) > 1.0
        for method, comparison in comparisons.items():
            assert comparison.wall_clock_speedup >= 2.0, (
                f"{method}: cached decoding only {comparison.wall_clock_speedup:.2f}x faster"
            )
