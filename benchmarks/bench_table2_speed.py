"""Table II — generation speed and speedup over the NTP baseline.

The paper's Table II reports tokens/second and the speedup relative to the
NTP-trained model (eq. 3 and eq. 4) for CodeLlama and CodeT5p.  This bench
regenerates the decoder-only (CodeLlama-style) column: each prompt of the
speed set is decoded with greedy decoding and temperature-0.8 sampling, and
the mean speed is reported for the three methods.

Two speed figures are printed:

* wall-clock tokens/second (eq. 3 verbatim) — affected by the Python-level
  overhead of this reproduction's candidate verification pass;
* tokens per decoding step — the architecture-independent quantity the paper's
  speedup tracks (one step = one forward pass of the large model).

Expected shape: Ours > Medusa > NTP on tokens/step, with Ours and Medusa both
well above 1 token/step and NTP exactly 1.
"""

from __future__ import annotations

import pytest

from repro.evalbench.speed import measure_speed, speedup
from repro.models.generation import GenerationConfig

from conftest import SPEED_PROMPTS


def _speed_prompts(pipeline, rtllm_subset, vgen_subset, count):
    prompts = [p.prompt for p in rtllm_subset] + [p.prompt for p in vgen_subset]
    prompts += [e.prompt_text() for e in pipeline.examples]
    return prompts[:count]


@pytest.mark.benchmark(group="table2-speed")
def test_table2_generation_speed(benchmark, trained_pipeline, rtllm_subset, vgen_subset):
    """Regenerate Table II for the decoder-only backbone."""
    prompts = _speed_prompts(trained_pipeline, rtllm_subset, vgen_subset, SPEED_PROMPTS)

    reports = {}
    for method in ("ours", "medusa", "ntp"):
        decoder = trained_pipeline.decoder_for(method)
        reports[method] = measure_speed(
            decoder, prompts, max_new_tokens=96, sampling_temperature=0.8, include_sampling=True, label=method
        )

    print("\n=== Table II (decoder-only backbone) ===")
    header = (
        f"{'method':<8} {'tokens/s':>10} {'speedup':>9} {'tokens/step':>12} {'step-speedup':>13} {'mean steps':>11}"
    )
    print(header)
    print("-" * len(header))
    baseline = reports["ntp"]
    for method, report in reports.items():
        print(
            f"{method:<8} {report.mean_tokens_per_second:>10.1f} {speedup(report, baseline):>9.2f} "
            f"{report.mean_tokens_per_step:>12.2f} {speedup(report, baseline, use_steps=True):>13.2f} "
            f"{report.mean_steps:>11.1f}"
        )

    # Timed kernel: a single greedy decode with the "ours" decoder.
    decoder = trained_pipeline.decoder_for("ours")
    benchmark.pedantic(
        lambda: decoder.generate_from_text(prompts[0], GenerationConfig.greedy_config(48)), rounds=1, iterations=1
    )

    # Shape assertions (paper: speculative methods commit >1 token per step; NTP exactly 1).
    assert reports["ntp"].mean_tokens_per_step == pytest.approx(1.0, abs=1e-6)
    assert reports["ours"].mean_tokens_per_step > 1.0
    assert reports["medusa"].mean_tokens_per_step > 1.0
    assert speedup(reports["ours"], baseline, use_steps=True) > 1.0
