"""Serving throughput — continuous batching vs. sequential decoding.

Not a paper table: this bench tracks the serving tentpole.  Eight concurrent
requests are run through the :class:`~repro.serving.ServingEngine` (one
shared batched forward per step, FCFS admission under a token budget) and
compared against decoding the same prompts one after another with
:meth:`SpeculativeDecoder.generate`.

Reported per method (NTP / Medusa / Ours):

* requests/sec and tokens/sec for both modes, and their ratio;
* p50/p95 submission-to-completion latency.  Sequential requests queue
  behind each other (FCFS), so tail latency is where batching pays most.

Assertions:

* engine outputs are **token-identical** to sequential generate for every
  method — continuous batching is an optimisation, not a behaviour change;
* NTP serving is at least 2x sequential requests/sec (single-token steps
  leave the most Python/dispatch overhead for batching to amortise);
* the speculative methods (already batched across candidates within one
  request) still come out ahead — typically 1.2-1.9x, asserted >= 1.05x as a
  noise-tolerant regression floor.

A second workload (``test_shared_prefix_prefill_reuse``) serves N requests
over K distinct task preambles — the rtllm/vgen shape — with the
cross-request :class:`~repro.serving.PrefixCache` and chunked prefill
enabled, asserting token-identity to the no-reuse engine and a strict
reduction in prefilled prompt tokens (hit rate and prefill savings land in
the bench JSON).

A third workload (``test_streaming_ttft``) runs long-prompt requests through
the :class:`~repro.serving.AsyncServingEngine` streaming front-end and
tracks TTFT (time to first token) and inter-token latency percentiles,
asserting that chunked prefill delivers first tokens sooner than
whole-prompt prefill on a concurrent long-prompt batch — and that streamed
bursts concatenate to exactly the batch ``result()`` tokens.

A fourth workload (``test_paged_kv_shared_prefix_memory``) serves the same
shared-preamble prompts through the paged block-pool K/V backend and the
row-copy backend, asserting token-identity, a strictly lower peak K/V
footprint for paged (shared preamble pages are aliased, not duplicated),
and that paged prefix-cache hits copy zero K/V tokens while row hits
materialise every reused position (the zero-copy guarantee from
``docs/kv-memory.md``).  Peak bytes, COW events and the shared-block ratio
land in ``throughput_paged_kv.json``.
"""

from __future__ import annotations

import pytest

from repro.evalbench.throughput import (
    compare_serving_modes,
    measure_serving_throughput,
    measure_streaming_throughput,
)
from repro.models.generation import GenerationConfig
from repro.serving import PrefixCache, SchedulerConfig

from conftest import SMOKE, emit_bench_json

#: Concurrent requests per run (the acceptance criterion's batch size).
NUM_REQUESTS = 8


def _throughput_prompts(pipeline, rtllm_subset, vgen_subset, count):
    prompts = [p.prompt for p in rtllm_subset] + [p.prompt for p in vgen_subset]
    prompts += [e.prompt_text() for e in pipeline.examples]
    if len(prompts) < count:
        prompts = (prompts * (count // max(len(prompts), 1) + 1))
    return prompts[:count]


@pytest.mark.benchmark(group="serving-throughput")
def test_serving_throughput(benchmark, trained_pipeline, rtllm_subset, vgen_subset):
    """Continuous batching at 8 concurrent requests vs. the sequential baseline."""
    prompts = _throughput_prompts(trained_pipeline, rtllm_subset, vgen_subset, NUM_REQUESTS)
    max_new_tokens = 32 if SMOKE else 64
    config = GenerationConfig.greedy_config(max_new_tokens)
    scheduler_config = SchedulerConfig(max_active_requests=NUM_REQUESTS)

    comparisons = {}
    for method in ("ours", "medusa", "ntp"):
        comparisons[method] = compare_serving_modes(
            trained_pipeline.engine_for(method, scheduler_config=scheduler_config),
            trained_pipeline.decoder_for(method),
            prompts,
            config,
            label=method,
        )

    print(f"\n=== Serving throughput ({NUM_REQUESTS} concurrent requests, greedy) ===")
    header = (
        f"{'method':<8} {'serve req/s':>12} {'seq req/s':>10} {'speedup':>8} "
        f"{'serve tok/s':>12} {'p95 serve':>10} {'p95 seq':>9} {'identical':>10}"
    )
    print(header)
    print("-" * len(header))
    for method, comparison in comparisons.items():
        print(
            f"{method:<8} {comparison.serving.requests_per_second:>12.1f} "
            f"{comparison.sequential.requests_per_second:>10.1f} "
            f"{comparison.throughput_speedup:>8.2f} "
            f"{comparison.serving.tokens_per_second:>12.0f} "
            f"{comparison.serving.p95_latency:>10.3f} {comparison.sequential.p95_latency:>9.3f} "
            f"{str(comparison.tokens_identical):>10}"
        )

    emit_bench_json(
        "throughput",
        {
            "num_requests": NUM_REQUESTS,
            "max_new_tokens": max_new_tokens,
            "methods": {method: comparison.to_dict() for method, comparison in comparisons.items()},
        },
    )

    # Timed kernel: one full engine run over the prompt set ("ours").
    def serve_once():
        engine = trained_pipeline.engine_for("ours", scheduler_config=scheduler_config)
        for prompt in prompts:
            engine.submit_text(prompt, config)
        return engine.run()

    benchmark.pedantic(serve_once, rounds=1, iterations=1)

    # Continuous batching must not change behaviour.
    assert all(comparison.tokens_identical for comparison in comparisons.values())
    if not SMOKE:
        # The headline: batched NTP serving clears 2x requests/sec.  The
        # speculative methods already amortise Python overhead across their
        # candidate batch within a single request, so their serving win is
        # structurally smaller (typically 1.2-1.9x here); the floor below is
        # a regression guard with headroom for timer noise on short runs.
        assert comparisons["ntp"].throughput_speedup >= 2.0, (
            f"ntp serving only {comparisons['ntp'].throughput_speedup:.2f}x sequential"
        )
        for method in ("ours", "medusa"):
            assert comparisons[method].throughput_speedup >= 1.05, (
                f"{method} serving only {comparisons[method].throughput_speedup:.2f}x sequential"
            )


#: Shared-prefix workload shape: N requests over K distinct task preambles —
#: the rtllm/vgen serving pattern (many problems behind one instruction block).
SHARED_PREFIX_REQUESTS = 8 if SMOKE else 16
SHARED_PREFIX_PREAMBLES = [
    "// Task: implement the following Verilog module exactly as specified.\n"
    "// Use synthesizable constructs only and name ports as given.\n",
    "// You are a careful hardware engineer. Produce clean, synthesizable\n"
    "// Verilog for the design described below.\n",
]


def _shared_prefix_workload(pipeline, rtllm_subset, vgen_subset, count):
    bodies = _throughput_prompts(pipeline, rtllm_subset, vgen_subset, count)
    return [
        SHARED_PREFIX_PREAMBLES[index % len(SHARED_PREFIX_PREAMBLES)] + body
        for index, body in enumerate(bodies)
    ]


@pytest.mark.benchmark(group="serving-prefix-reuse")
def test_shared_prefix_prefill_reuse(benchmark, trained_pipeline, rtllm_subset, vgen_subset):
    """Prefix reuse + chunked prefill vs. the no-reuse engine on a shared-preamble workload.

    Asserts the tentpole guarantees: outputs are token-identical to the
    no-reuse engine (reuse is a compute-layout change), and the reuse engine
    prefills strictly fewer prompt tokens.  Hit rate and prefill savings are
    reported and emitted in the bench JSON.
    """
    prompts = _shared_prefix_workload(
        trained_pipeline, rtllm_subset, vgen_subset, SHARED_PREFIX_REQUESTS
    )
    max_new_tokens = 24 if SMOKE else 48
    config = GenerationConfig.greedy_config(max_new_tokens)
    # Constrained concurrency makes admission continuous, so later requests
    # can reuse prefixes retained from earlier completions of the same run.
    scheduler_config = SchedulerConfig(
        max_active_requests=4, max_prefill_tokens_per_step=32
    )

    baseline_engine = trained_pipeline.engine_for(
        "ours", scheduler_config=SchedulerConfig(max_active_requests=4)
    )
    baseline_report, baseline_results = measure_serving_throughput(
        baseline_engine, prompts, config, label="ours+no-reuse"
    )

    def serve_with_reuse():
        engine = trained_pipeline.engine_for(
            "ours",
            scheduler_config=scheduler_config,
            prefix_cache=PrefixCache(max_tokens=8192),
        )
        return measure_serving_throughput(engine, prompts, config, label="ours+prefix-reuse")

    reuse_report, reuse_results = benchmark.pedantic(serve_with_reuse, rounds=1, iterations=1)

    print(
        f"\n=== Shared-prefix serving ({SHARED_PREFIX_REQUESTS} requests, "
        f"{len(SHARED_PREFIX_PREAMBLES)} preambles, greedy) ==="
    )
    header = (
        f"{'mode':<12} {'prefilled':>10} {'reused':>8} {'savings':>8} "
        f"{'hit rate':>9} {'req/s':>8}"
    )
    print(header)
    print("-" * len(header))
    for report in (baseline_report, reuse_report):
        print(
            f"{report.label:<12} {report.prefill_tokens:>10} {report.reused_tokens:>8} "
            f"{report.prefill_savings:>8.2f} {report.prefix_hit_rate:>9.2f} "
            f"{report.requests_per_second:>8.1f}"
        )

    emit_bench_json(
        "throughput_prefix_reuse",
        {
            "num_requests": SHARED_PREFIX_REQUESTS,
            "num_preambles": len(SHARED_PREFIX_PREAMBLES),
            "max_new_tokens": max_new_tokens,
            "baseline": baseline_report.to_dict(),
            "prefix_reuse": reuse_report.to_dict(),
        },
    )

    # Reuse must not change behaviour ...
    assert [r.token_ids for r in reuse_results] == [r.token_ids for r in baseline_results]
    # ... and must demonstrably avoid prefill work on a shared-prefix workload.
    assert reuse_report.prefill_tokens < baseline_report.prefill_tokens, (
        f"prefix reuse prefilled {reuse_report.prefill_tokens} tokens, "
        f"baseline {baseline_report.prefill_tokens}"
    )
    assert reuse_report.prefix_hit_rate > 0.0
    assert reuse_report.prefill_savings > 0.0
    # Accounting closes: every prompt position was either prefilled or reused.
    assert (
        reuse_report.prefill_tokens + reuse_report.reused_tokens
        == baseline_report.prefill_tokens
    )


@pytest.mark.benchmark(group="serving-paged-kv")
def test_paged_kv_shared_prefix_memory(benchmark, trained_pipeline, rtllm_subset, vgen_subset):
    """Paged block-pool K/V vs. row-copy K/V on the shared-preamble workload.

    Both engines get the same prefix cache budget and admission knobs; the
    only difference is the K/V backend.  Paged retention pins preamble pages
    by reference and splices them into new requests by aliasing block ids, so
    the shared preamble exists once in memory regardless of how many requests
    reuse it — the row backend materialises a private copy per request.  The
    assertions pin the tentpole guarantees: identical tokens, strictly lower
    peak K/V bytes, and zero copied prefix tokens in paged mode.
    """
    prompts = _shared_prefix_workload(
        trained_pipeline, rtllm_subset, vgen_subset, SHARED_PREFIX_REQUESTS
    )
    max_new_tokens = 24 if SMOKE else 48
    config = GenerationConfig.greedy_config(max_new_tokens)
    scheduler_config = SchedulerConfig(
        max_active_requests=4, max_prefill_tokens_per_step=32
    )

    def engine_for_mode(kv_memory):
        return trained_pipeline.engine_for(
            "ours",
            scheduler_config=scheduler_config,
            prefix_cache=PrefixCache(max_tokens=8192),
            kv_memory=kv_memory,
        )

    row_report, row_results = measure_serving_throughput(
        engine_for_mode("row"), prompts, config, label="ours+row-kv"
    )

    def serve_paged():
        return measure_serving_throughput(
            engine_for_mode("paged"), prompts, config, label="ours+paged-kv"
        )

    paged_report, paged_results = benchmark.pedantic(serve_paged, rounds=1, iterations=1)

    reduction = 1.0 - paged_report.kv_peak_bytes / max(row_report.kv_peak_bytes, 1)
    print(
        f"\n=== Paged vs. row K/V memory ({SHARED_PREFIX_REQUESTS} requests, "
        f"{len(SHARED_PREFIX_PREAMBLES)} preambles, greedy) ==="
    )
    header = (
        f"{'mode':<10} {'peak KV bytes':>14} {'copied toks':>12} {'COW':>6} "
        f"{'hit rate':>9} {'req/s':>8}"
    )
    print(header)
    print("-" * len(header))
    for report in (row_report, paged_report):
        print(
            f"{report.kv_memory:<10} {report.kv_peak_bytes:>14} "
            f"{report.kv_prefix_copy_tokens:>12} {report.kv_cow_events:>6} "
            f"{report.prefix_hit_rate:>9.2f} {report.requests_per_second:>8.1f}"
        )
    print(f"peak KV reduction: {reduction:.1%}")

    emit_bench_json(
        "throughput_paged_kv",
        {
            "num_requests": SHARED_PREFIX_REQUESTS,
            "num_preambles": len(SHARED_PREFIX_PREAMBLES),
            "max_new_tokens": max_new_tokens,
            "row": row_report.to_dict(),
            "paged": paged_report.to_dict(),
            "peak_kv_reduction": reduction,
        },
    )

    # The backend is a memory-layout change, never a behaviour change.
    assert [r.token_ids for r in paged_results] == [r.token_ids for r in row_results]
    # Both backends exercised prefix reuse — otherwise nothing is compared.
    assert paged_report.prefix_hit_rate > 0.0 and row_report.prefix_hit_rate > 0.0
    # The memory claim: aliased preamble pages beat per-request copies.
    assert 0 < paged_report.kv_peak_bytes < row_report.kv_peak_bytes, (
        f"paged peak {paged_report.kv_peak_bytes} not below "
        f"row peak {row_report.kv_peak_bytes}"
    )
    # Zero-copy hits: paged splices pages, row gathers K/V into fresh buffers.
    assert paged_report.kv_prefix_copy_tokens == 0
    assert row_report.kv_prefix_copy_tokens > 0


#: Concurrent long-prompt requests in the streaming TTFT workload.
STREAMING_REQUESTS = 4
#: Per-step prefill budget of the chunked configuration.
STREAMING_CHUNK = 48


def _long_prompts(pipeline, rtllm_subset, vgen_subset, count):
    """Prompts long enough that prefill dominates TTFT, still leaving decode room."""
    tokenizer = pipeline.tokenizer
    max_seq_len = pipeline.models["ours"].backbone.max_seq_len
    target = int(max_seq_len * 0.7)
    bodies = _throughput_prompts(pipeline, rtllm_subset, vgen_subset, 16)
    prompts = []
    for index in range(count):
        text = bodies[index % len(bodies)]
        piece = 1
        while len(tokenizer.encode(text, add_bos=True)) < target:
            text += "\n" + bodies[(index + piece) % len(bodies)]
            piece += 1
        prompts.append(text)
    return prompts


@pytest.mark.benchmark(group="serving-streaming")
def test_streaming_ttft(benchmark, trained_pipeline, rtllm_subset, vgen_subset):
    """Streaming TTFT/ITL percentiles; chunked prefill must cut TTFT on long prompts.

    With whole-prompt prefill, every request admitted in the same round waits
    for *all* of the round's prompts to prefill before any first token lands
    (prefill completes for the whole admission batch inside one engine step).
    Chunked prefill spreads that work over steps FCFS, so request 1 starts
    decoding after roughly its own prefill, request 2 after two, … — a
    staircase whose mean TTFT is structurally below the whole-prefill
    plateau.  That structural gap (about (K+1)/2 vs K prompt-prefills at K
    concurrent long prompts) is what the assertion pins down; it holds in
    smoke mode too because it does not depend on absolute speed.
    """
    prompts = _long_prompts(trained_pipeline, rtllm_subset, vgen_subset, STREAMING_REQUESTS)
    max_new_tokens = 16 if SMOKE else 32
    config = GenerationConfig.greedy_config(max_new_tokens)

    whole_engine = trained_pipeline.engine_for(
        "ours", scheduler_config=SchedulerConfig(max_active_requests=STREAMING_REQUESTS)
    )
    whole_report, whole_results, whole_streamed = measure_streaming_throughput(
        whole_engine, prompts, config, label="ours+stream+whole-prefill"
    )

    def serve_chunked():
        engine = trained_pipeline.engine_for(
            "ours",
            scheduler_config=SchedulerConfig(
                max_active_requests=STREAMING_REQUESTS,
                max_prefill_tokens_per_step=STREAMING_CHUNK,
            ),
        )
        return measure_streaming_throughput(engine, prompts, config, label="ours+stream+chunked")

    chunked_report, chunked_results, chunked_streamed = benchmark.pedantic(
        serve_chunked, rounds=1, iterations=1
    )

    print(
        f"\n=== Streaming TTFT ({STREAMING_REQUESTS} concurrent long prompts, "
        f"chunk={STREAMING_CHUNK}, greedy) ==="
    )
    header = (
        f"{'mode':<14} {'mean ttft':>10} {'p50 ttft':>9} {'p95 ttft':>9} "
        f"{'p50 itl':>9} {'p95 itl':>9} {'tok/s':>8}"
    )
    print(header)
    print("-" * len(header))
    for report in (whole_report, chunked_report):
        print(
            f"{report.label.split('+', 1)[1]:<14} {report.mean_ttft:>10.3f} "
            f"{report.p50_ttft:>9.3f} {report.p95_ttft:>9.3f} "
            f"{report.p50_itl:>9.4f} {report.p95_itl:>9.4f} "
            f"{report.tokens_per_second:>8.0f}"
        )

    emit_bench_json(
        "throughput_streaming",
        {
            "num_requests": STREAMING_REQUESTS,
            "max_new_tokens": max_new_tokens,
            "prefill_chunk": STREAMING_CHUNK,
            "whole_prefill": whole_report.to_dict(),
            "chunked_prefill": chunked_report.to_dict(),
        },
    )

    # Streaming is observation-only: bursts concatenate to the result tokens,
    # and chunking does not change what is generated.
    assert whole_streamed == [r.token_ids for r in whole_results]
    assert chunked_streamed == [r.token_ids for r in chunked_results]
    assert [r.token_ids for r in chunked_results] == [r.token_ids for r in whole_results]
    # The tentpole claim: chunked prefill delivers first tokens sooner on a
    # concurrent long-prompt batch (structural staircase-vs-plateau gap).
    assert chunked_report.mean_ttft < whole_report.mean_ttft, (
        f"chunked prefill mean TTFT {chunked_report.mean_ttft:.3f}s not below "
        f"whole-prompt prefill {whole_report.mean_ttft:.3f}s"
    )
    # Percentiles are populated (every request streamed at least two tokens).
    for report in (whole_report, chunked_report):
        assert report.p95_ttft >= report.p50_ttft > 0.0
        assert report.p95_itl >= report.p50_itl > 0.0
