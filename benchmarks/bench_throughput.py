"""Serving throughput — continuous batching vs. sequential decoding.

Not a paper table: this bench tracks the serving tentpole.  Eight concurrent
requests are run through the :class:`~repro.serving.ServingEngine` (one
shared batched forward per step, FCFS admission under a token budget) and
compared against decoding the same prompts one after another with
:meth:`SpeculativeDecoder.generate`.

Reported per method (NTP / Medusa / Ours):

* requests/sec and tokens/sec for both modes, and their ratio;
* p50/p95 submission-to-completion latency.  Sequential requests queue
  behind each other (FCFS), so tail latency is where batching pays most.

Assertions:

* engine outputs are **token-identical** to sequential generate for every
  method — continuous batching is an optimisation, not a behaviour change;
* NTP serving is at least 2x sequential requests/sec (single-token steps
  leave the most Python/dispatch overhead for batching to amortise);
* the speculative methods (already batched across candidates within one
  request) still come out ahead — typically 1.2-1.9x, asserted >= 1.05x as a
  noise-tolerant regression floor.
"""

from __future__ import annotations

import pytest

from repro.evalbench.throughput import compare_serving_modes
from repro.models.generation import GenerationConfig
from repro.serving import SchedulerConfig

from conftest import SMOKE, emit_bench_json

#: Concurrent requests per run (the acceptance criterion's batch size).
NUM_REQUESTS = 8


def _throughput_prompts(pipeline, rtllm_subset, vgen_subset, count):
    prompts = [p.prompt for p in rtllm_subset] + [p.prompt for p in vgen_subset]
    prompts += [e.prompt_text() for e in pipeline.examples]
    if len(prompts) < count:
        prompts = (prompts * (count // max(len(prompts), 1) + 1))
    return prompts[:count]


@pytest.mark.benchmark(group="serving-throughput")
def test_serving_throughput(benchmark, trained_pipeline, rtllm_subset, vgen_subset):
    """Continuous batching at 8 concurrent requests vs. the sequential baseline."""
    prompts = _throughput_prompts(trained_pipeline, rtllm_subset, vgen_subset, NUM_REQUESTS)
    max_new_tokens = 32 if SMOKE else 64
    config = GenerationConfig.greedy_config(max_new_tokens)
    scheduler_config = SchedulerConfig(max_active_requests=NUM_REQUESTS)

    comparisons = {}
    for method in ("ours", "medusa", "ntp"):
        comparisons[method] = compare_serving_modes(
            trained_pipeline.engine_for(method, scheduler_config=scheduler_config),
            trained_pipeline.decoder_for(method),
            prompts,
            config,
            label=method,
        )

    print(f"\n=== Serving throughput ({NUM_REQUESTS} concurrent requests, greedy) ===")
    header = (
        f"{'method':<8} {'serve req/s':>12} {'seq req/s':>10} {'speedup':>8} "
        f"{'serve tok/s':>12} {'p95 serve':>10} {'p95 seq':>9} {'identical':>10}"
    )
    print(header)
    print("-" * len(header))
    for method, comparison in comparisons.items():
        print(
            f"{method:<8} {comparison.serving.requests_per_second:>12.1f} "
            f"{comparison.sequential.requests_per_second:>10.1f} "
            f"{comparison.throughput_speedup:>8.2f} "
            f"{comparison.serving.tokens_per_second:>12.0f} "
            f"{comparison.serving.p95_latency:>10.3f} {comparison.sequential.p95_latency:>9.3f} "
            f"{str(comparison.tokens_identical):>10}"
        )

    emit_bench_json(
        "throughput",
        {
            "num_requests": NUM_REQUESTS,
            "max_new_tokens": max_new_tokens,
            "methods": {method: comparison.to_dict() for method, comparison in comparisons.items()},
        },
    )

    # Timed kernel: one full engine run over the prompt set ("ours").
    def serve_once():
        engine = trained_pipeline.engine_for("ours", scheduler_config=scheduler_config)
        for prompt in prompts:
            engine.submit_text(prompt, config)
        return engine.run()

    benchmark.pedantic(serve_once, rounds=1, iterations=1)

    # Continuous batching must not change behaviour.
    assert all(comparison.tokens_identical for comparison in comparisons.values())
    if not SMOKE:
        # The headline: batched NTP serving clears 2x requests/sec.  The
        # speculative methods already amortise Python overhead across their
        # candidate batch within a single request, so their serving win is
        # structurally smaller (typically 1.2-1.9x here); the floor below is
        # a regression guard with headroom for timer noise on short runs.
        assert comparisons["ntp"].throughput_speedup >= 2.0, (
            f"ntp serving only {comparisons['ntp'].throughput_speedup:.2f}x sequential"
        )
        for method in ("ours", "medusa"):
            assert comparisons[method].throughput_speedup >= 1.05, (
                f"{method} serving only {comparisons[method].throughput_speedup:.2f}x sequential"
            )
