"""Traffic harness — SLO admission under a deterministic overload replay.

Not a paper table: this bench tracks the production-traffic tentpole.  A
seeded Poisson trace overloads a 2-slot engine on a **simulated clock**
(virtual step costs, so the whole scenario — arrivals, queueing, TTFT,
shedding — is deterministic and CI-stable), replayed twice:

* **without admission** — every request is accepted; bulk floods the queue
  and interactive TTFT degrades with it;
* **with SLO admission** — per-tenant token buckets plus the rolling-p95
  breach detector: bulk is shed while the interactive window p95 is in
  breach, deferred when its tenant bucket is dry, and never touched
  otherwise.  The detector trips on a tighter internal threshold
  (``TRIP_P95``) than the operator-facing SLO target (``TARGET_P95``), the
  usual early-warning headroom.

Assertions (all on deterministic virtual-time numbers):

* with admission, interactive p95 TTFT lands **under the SLO target**;
* without admission it is **strictly worse** than with (and over target —
  the scenario is a real overload, not a no-op);
* only bulk traffic is ever shed or deferred; interactive is never shed;
* the same replay repeated from scratch is **identical** (report-dict
  equality — the harness's reproducibility guarantee);
* the ops dashboard renders the final state headless (pure frame).

The scenario lands in ``traffic.json`` and the headline numbers append to
the tracked ``trend.json`` ledger under ``traffic_slo``.
"""

from __future__ import annotations

import pytest

from repro.serving import PriorityConfig, SchedulerConfig
from repro.traffic import (
    AdmissionController,
    OpsDashboard,
    SLOConfig,
    SimulatedClock,
    StepCostModel,
    TraceConfig,
    generate_trace,
    render_frame,
    snapshot_from_engine,
    replay_trace,
)

from conftest import SMOKE, emit_bench_json
from trend import append_trend_entry

_MODE = "smoke" if SMOKE else "default"

NUM_REQUESTS = 48 if SMOKE else 64
#: Operator-facing SLO: interactive p95 TTFT must stay under this.
TARGET_P95 = 0.50
#: Internal breach threshold the detector trips on (early warning).
TRIP_P95 = 0.03

TRACE_CONFIG = TraceConfig(
    num_requests=NUM_REQUESTS,
    seed=42,
    requests_per_second=16.0,
    arrival_process="poisson",
    num_tenants=4,
    preamble_groups=2,
    interactive_fraction=0.4,
    prompt_sentence_choices=(1, 2),
    max_new_token_choices=(8, 16),
)

COST_MODEL = StepCostModel(
    step_seconds=0.002, prefill_token_seconds=0.0005, decode_token_seconds=0.004
)


def _slo_controller() -> AdmissionController:
    return AdmissionController(
        SLOConfig(
            target_p95_ttft=TRIP_P95,
            window_seconds=5.0,
            recover_under=0.5,
            min_samples=2,
            tenant_rate=400.0,
            tenant_burst=128.0,
        )
    )


def _replay(pipeline, admission):
    """One overload replay on a fresh engine + fresh simulated clock."""
    clock = SimulatedClock()
    # aging_rounds=1 lets queued bulk age into the interactive band fast
    # enough that an un-shed bulk backlog genuinely delays interactive —
    # the degradation the admission controller exists to prevent.  (With the
    # default aging, this engine's speculation finishes requests in so few
    # steps that bulk never ages enough to interfere.)
    engine = pipeline.engine_for(
        "ours",
        scheduler_config=SchedulerConfig(
            max_active_requests=2, priorities=PriorityConfig(aging_rounds=1)
        ),
        clock=clock,
    )
    report = replay_trace(
        engine,
        generate_trace(TRACE_CONFIG),
        clock=clock,
        cost_model=COST_MODEL,
        admission=admission,
    )
    return engine, clock, report


@pytest.mark.benchmark(group="serving-traffic")
def test_traffic_slo_admission(benchmark, trained_pipeline):
    """Interactive p95 TTFT under target with SLO admission; worse without."""
    engine, clock, with_slo = _replay(trained_pipeline, _slo_controller())
    _, _, without = _replay(trained_pipeline, None)

    interactive_with = with_slo.class_summary("interactive")
    interactive_without = without.class_summary("interactive")
    bulk_with = with_slo.class_summary("bulk")

    # The SLO holds with admission, and dropping the controller strictly
    # degrades the very quantity it protects.
    p95_with = interactive_with["ttft"]["p95"]
    p95_without = interactive_without["ttft"]["p95"]
    assert p95_with <= TARGET_P95, (
        f"interactive p95 TTFT {p95_with:.3f}s exceeds the {TARGET_P95:.2f}s target "
        f"even with SLO admission"
    )
    assert p95_without > p95_with, (
        f"removing admission did not degrade interactive p95 TTFT "
        f"({p95_without:.3f}s vs {p95_with:.3f}s) — the scenario is not an overload"
    )
    assert p95_without > TARGET_P95, (
        f"without admission interactive p95 TTFT {p95_without:.3f}s is already under "
        f"target; the overload is too mild to exercise shedding"
    )

    # Only bulk is ever shed or deferred; nothing is shed without a breach.
    assert interactive_with["shed"] == 0
    assert bulk_with["shed"] > 0
    assert with_slo.admission["breach_count"] >= 1
    shed_outcomes = [o for o in with_slo.outcomes if o.status == "shed"]
    assert all(o.traffic_class == "bulk" for o in shed_outcomes)
    assert without.by_status().get("shed", 0) == 0

    # Reproducibility: the whole replay is a pure function of the trace.
    _, _, again = _replay(trained_pipeline, _slo_controller())
    assert again.to_dict() == with_slo.to_dict()

    # The dashboard renders the final state as a pure frame (no TTY).
    dashboard = OpsDashboard(engine=engine)
    for outcome in with_slo.outcomes:
        if outcome.status in ("finished", "cancelled", "deadline"):
            dashboard.note_finished(outcome.request_id)
    snapshot = snapshot_from_engine(
        engine,
        finished_ids=dashboard.finished_ids,
        window_seconds=with_slo.duration_seconds,
        admission_snapshot=with_slo.admission,
        now=clock.now,
    )
    frame = render_frame(snapshot, width=76)
    assert render_frame(snapshot, width=76) == frame
    assert "\x1b[" not in frame

    print(f"\n=== Traffic SLO admission ({NUM_REQUESTS} requests, simulated clock) ===")
    print(frame)
    print(
        f"interactive p95 TTFT: {p95_with * 1e3:.1f} ms with SLO admission vs "
        f"{p95_without * 1e3:.1f} ms without (target {TARGET_P95 * 1e3:.0f} ms); "
        f"bulk shed {bulk_with['shed']}, deferred attempts {bulk_with['deferred_attempts']}"
    )

    emit_bench_json(
        "traffic",
        {
            "num_requests": NUM_REQUESTS,
            "target_p95_ttft": TARGET_P95,
            "trip_p95_ttft": TRIP_P95,
            "cost_model": {
                "step_seconds": COST_MODEL.step_seconds,
                "prefill_token_seconds": COST_MODEL.prefill_token_seconds,
                "decode_token_seconds": COST_MODEL.decode_token_seconds,
            },
            "with_admission": with_slo.to_dict(),
            "without_admission": without.to_dict(),
            "dashboard_frame": frame,
        },
    )
    append_trend_entry(
        "traffic_slo",
        _MODE,
        {
            "p95_ttft_with_slo": p95_with,
            "p95_ttft_without_slo": p95_without,
            "target_p95_ttft": TARGET_P95,
            "bulk_shed": bulk_with["shed"],
            "bulk_deferred_attempts": bulk_with["deferred_attempts"],
            "interactive_served": interactive_with["served"],
            "requests_per_second": len(with_slo.outcomes) / with_slo.duration_seconds,
        },
    )

    # Timed kernel: one full SLO-admission replay (engine build included).
    benchmark.pedantic(
        lambda: _replay(trained_pipeline, _slo_controller()), rounds=1, iterations=1
    )
