"""Shared fixtures for the benchmark harness.

All Table/Figure benches share one trained pipeline (the CodeLlama-style
decoder-only backbone fine-tuned with the three methods) so the expensive
training cost is paid once per benchmark session.  Set the environment
variable ``REPRO_BENCH_FULL=1`` to use a larger configuration (longer training,
more benchmark problems, more samples per prompt) closer to the paper's
protocol; the default configuration is sized to finish in a few minutes.
"""

from __future__ import annotations

import os

import pytest

from repro.core.pipeline import PipelineConfig, VerilogSpecPipeline
from repro.evalbench.problems import ProblemSuite
from repro.evalbench.rtllm import rtllm_suite
from repro.evalbench.vgen import vgen_suite

FULL = os.environ.get("REPRO_BENCH_FULL", "0") == "1"

#: Number of benchmark problems per suite and samples per prompt used by the
#: quality benches (Table I, Fig. 1, Fig. 6).
PROBLEMS_PER_SUITE = 10 if FULL else 5
SAMPLES_PER_PROMPT = 10 if FULL else 3
MAX_NEW_TOKENS = 160 if FULL else 110
SPEED_PROMPTS = 20 if FULL else 6


def default_pipeline_config(**overrides) -> PipelineConfig:
    """The decoder-only (CodeLlama-style) configuration used by most benches."""
    config = PipelineConfig(
        corpus_items=240 if FULL else 160,
        vocab_size=800 if FULL else 700,
        architecture="decoder-only",
        model_dim=64 if FULL else 48,
        num_layers=2,
        num_attention_heads=4,
        num_medusa_heads=8,
        max_seq_len=384,
        epochs=8 if FULL else 3,
        max_train_seq_len=256,
    )
    for key, value in overrides.items():
        setattr(config, key, value)
    return config


@pytest.fixture(scope="session")
def trained_pipeline() -> VerilogSpecPipeline:
    """Decoder-only pipeline with all three methods trained (shared)."""
    pipeline = VerilogSpecPipeline(default_pipeline_config())
    pipeline.prepare()
    pipeline.train_all()
    return pipeline


@pytest.fixture(scope="session")
def rtllm_subset() -> ProblemSuite:
    suite = rtllm_suite()
    return ProblemSuite(name=suite.name, problems=list(suite)[:PROBLEMS_PER_SUITE])


@pytest.fixture(scope="session")
def vgen_subset() -> ProblemSuite:
    suite = vgen_suite()
    return ProblemSuite(name=suite.name, problems=list(suite)[:PROBLEMS_PER_SUITE])
