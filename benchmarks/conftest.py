"""Shared fixtures for the benchmark harness.

All Table/Figure benches share one trained pipeline (the CodeLlama-style
decoder-only backbone fine-tuned with the three methods) so the expensive
training cost is paid once per benchmark session.

Three sizes are supported via environment variables:

* default — finishes in a few minutes, the configuration the acceptance
  numbers are quoted at;
* ``REPRO_BENCH_FULL=1`` — larger configuration (longer training, more
  benchmark problems, more samples per prompt) closer to the paper's protocol;
* ``REPRO_BENCH_SMOKE=1`` — tiny corpus and few steps, for CI smoke jobs that
  must finish in minutes; shape assertions that need a well-trained model are
  relaxed in this mode.

Every bench emits a machine-readable JSON summary via :func:`emit_bench_json`
(default directory ``benchmarks/results/``, override with
``REPRO_BENCH_JSON_DIR``) so CI can upload the numbers as artifacts and future
PRs can track regressions.
"""

from __future__ import annotations

import json
import os
import platform
from pathlib import Path

import pytest

from repro.core.pipeline import PipelineConfig, VerilogSpecPipeline
from repro.evalbench.problems import ProblemSuite
from repro.evalbench.rtllm import rtllm_suite
from repro.evalbench.vgen import vgen_suite

FULL = os.environ.get("REPRO_BENCH_FULL", "0") == "1"
SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "0") == "1" and not FULL

#: Number of benchmark problems per suite and samples per prompt used by the
#: quality benches (Table I, Fig. 1, Fig. 6).
if SMOKE:
    PROBLEMS_PER_SUITE = 2
    SAMPLES_PER_PROMPT = 1
    MAX_NEW_TOKENS = 48
    SPEED_PROMPTS = 2
elif FULL:
    PROBLEMS_PER_SUITE = 10
    SAMPLES_PER_PROMPT = 10
    MAX_NEW_TOKENS = 160
    SPEED_PROMPTS = 20
else:
    PROBLEMS_PER_SUITE = 5
    SAMPLES_PER_PROMPT = 3
    MAX_NEW_TOKENS = 110
    SPEED_PROMPTS = 6


def default_pipeline_config(**overrides) -> PipelineConfig:
    """The decoder-only (CodeLlama-style) configuration used by most benches."""
    if SMOKE:
        config = PipelineConfig(
            corpus_items=60,
            vocab_size=500,
            architecture="decoder-only",
            model_dim=32,
            num_layers=2,
            num_attention_heads=4,
            num_medusa_heads=4,
            max_seq_len=384,
            epochs=1,
            max_train_seq_len=160,
        )
    else:
        config = PipelineConfig(
            corpus_items=240 if FULL else 160,
            vocab_size=800 if FULL else 700,
            architecture="decoder-only",
            model_dim=64 if FULL else 48,
            num_layers=2,
            num_attention_heads=4,
            num_medusa_heads=8,
            max_seq_len=384,
            epochs=8 if FULL else 3,
            max_train_seq_len=256,
        )
    for key, value in overrides.items():
        setattr(config, key, value)
    return config


def emit_bench_json(name: str, payload: dict) -> Path:
    """Write one bench's results as JSON for artifact upload / regression tracking."""
    out_dir = Path(os.environ.get("REPRO_BENCH_JSON_DIR", Path(__file__).parent / "results"))
    out_dir.mkdir(parents=True, exist_ok=True)
    mode = "smoke" if SMOKE else ("full" if FULL else "default")
    document = {
        "bench": name,
        "mode": mode,
        "python": platform.python_version(),
        "results": payload,
    }
    path = out_dir / f"{name}.json"
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    return path


@pytest.fixture(scope="session")
def trained_pipeline() -> VerilogSpecPipeline:
    """Decoder-only pipeline with all three methods trained (shared)."""
    pipeline = VerilogSpecPipeline(default_pipeline_config())
    pipeline.prepare()
    pipeline.train_all()
    return pipeline


@pytest.fixture(scope="session")
def rtllm_subset() -> ProblemSuite:
    suite = rtllm_suite()
    return ProblemSuite(name=suite.name, problems=list(suite)[:PROBLEMS_PER_SUITE])


@pytest.fixture(scope="session")
def vgen_subset() -> ProblemSuite:
    suite = vgen_suite()
    return ProblemSuite(name=suite.name, problems=list(suite)[:PROBLEMS_PER_SUITE])
