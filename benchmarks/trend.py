"""Append-only benchmark trend ledger (``benchmarks/results/trend.json``).

Unlike the per-bench ``results/*.json`` snapshots (overwritten on every run,
uploaded as CI artifacts, gitignored), the trend ledger is **tracked in git**
and only ever grows: each bench run appends one entry, so the file carries the
history of headline numbers across PRs and a reviewer can see a regression as
a diff instead of digging through artifact archives.

The schema is deliberately rigid and validated on every read *and* write:

* the document is ``{"schema": 1, "entries": [...]}``;
* every entry has a strictly increasing integer ``sequence`` (1-based, no
  gaps), a ``bench`` name, a ``mode`` (``smoke``/``default``/``full``) and a
  flat string->number ``metrics`` mapping;
* appending never rewrites or reorders existing entries — an append whose
  history does not extend the on-disk prefix is rejected.

Keeping the validator here (not in ``src/``) keeps the repo's library surface
free of benchmark plumbing; the tier-1 suite imports this module by path.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional

#: Current ledger schema version.
TREND_SCHEMA = 1

#: Default on-disk location (tracked; see the repo .gitignore exception).
TREND_PATH = Path(__file__).parent / "results" / "trend.json"

_MODES = ("smoke", "default", "full")


class TrendSchemaError(ValueError):
    """The trend ledger violates the append-only schema."""


def validate_trend(document: dict) -> List[dict]:
    """Validate a ledger document; returns its entries.

    Raises:
        TrendSchemaError: on any schema violation — wrong top-level shape,
            non-monotone or gapped ``sequence`` numbers, unknown ``mode`` or
            non-numeric metric values.
    """
    if not isinstance(document, dict) or document.get("schema") != TREND_SCHEMA:
        raise TrendSchemaError(f"trend ledger must be a dict with schema={TREND_SCHEMA}")
    entries = document.get("entries")
    if not isinstance(entries, list):
        raise TrendSchemaError("trend ledger 'entries' must be a list")
    for position, entry in enumerate(entries):
        expected_seq = position + 1
        if not isinstance(entry, dict):
            raise TrendSchemaError(f"entry {position} is not an object")
        if entry.get("sequence") != expected_seq:
            raise TrendSchemaError(
                f"entry {position} has sequence {entry.get('sequence')!r}; the ledger is append-only "
                f"with strictly increasing gap-free sequence numbers (expected {expected_seq})"
            )
        if not isinstance(entry.get("bench"), str) or not entry["bench"]:
            raise TrendSchemaError(f"entry {position} needs a non-empty 'bench' name")
        if entry.get("mode") not in _MODES:
            raise TrendSchemaError(f"entry {position} has unknown mode {entry.get('mode')!r}")
        metrics = entry.get("metrics")
        if not isinstance(metrics, dict) or not metrics:
            raise TrendSchemaError(f"entry {position} needs a non-empty 'metrics' mapping")
        for key, value in metrics.items():
            if not isinstance(key, str):
                raise TrendSchemaError(f"entry {position} metric names must be strings")
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise TrendSchemaError(f"entry {position} metric {key!r} must be a number, got {value!r}")
    return entries


def load_trend(path: Optional[Path] = None) -> List[dict]:
    """Read and validate the ledger; an absent file is an empty history."""
    path = TREND_PATH if path is None else path
    if not path.is_file():
        return []
    return validate_trend(json.loads(path.read_text()))


def append_trend_entry(
    bench: str,
    mode: str,
    metrics: Dict[str, float],
    path: Optional[Path] = None,
) -> dict:
    """Append one entry to the ledger and write it back.

    The existing history is re-validated before and after the append, so a
    hand-edited or truncated ledger fails loudly instead of silently
    restarting the sequence.
    """
    path = TREND_PATH if path is None else path
    entries = load_trend(path)
    entry = {
        "sequence": len(entries) + 1,
        "bench": bench,
        "mode": mode,
        "metrics": dict(metrics),
    }
    document = {"schema": TREND_SCHEMA, "entries": entries + [entry]}
    validate_trend(document)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    return entry
