"""Evaluate a trained model on the RTLLM- and VGen-style benchmark suites.

This example mirrors the paper's quality protocol (Table I): sample several
responses per benchmark prompt at multiple temperatures, grade syntax (compile)
and functionality (testbench simulation), and report pass@k plus Pass Rate for
each method.

Run with:  python examples/evaluate_benchmarks.py
"""

from __future__ import annotations

from repro.core.pipeline import PipelineConfig, VerilogSpecPipeline
from repro.evalbench.problems import ProblemSuite
from repro.evalbench.rtllm import rtllm_suite
from repro.evalbench.runner import EvaluationRunner
from repro.evalbench.vgen import vgen_suite


def main() -> None:
    pipeline = VerilogSpecPipeline(
        PipelineConfig(corpus_items=160, vocab_size=700, model_dim=64, num_layers=2, num_medusa_heads=8, epochs=4)
    )
    pipeline.prepare()
    pipeline.train_all()

    # A small slice of each suite keeps the example quick; drop the slicing to
    # evaluate the full 29 + 17 problems.
    suites = []
    for suite in (rtllm_suite(), vgen_suite()):
        suites.append(ProblemSuite(name=suite.name, problems=list(suite)[:6]))

    for suite in suites:
        print(f"\n=== {suite.name} ({len(suite)} problems) ===")
        header = f"{'method':<8} {'metric':<9} {'pass@1':>8} {'pass@5':>8} {'pass@10':>8} {'PassRate':>9}"
        print(header)
        print("-" * len(header))
        for method in ("ours", "medusa", "ntp"):
            runner = EvaluationRunner(
                pipeline.decoder_for(method), samples_per_prompt=5, max_new_tokens=120, k_values=(1, 5, 10)
            )
            report = runner.evaluate_suite(suite, label=method)
            for metric in ("function", "syntax"):
                row = report.row(metric)
                print(
                    f"{method:<8} {metric:<9} {row['pass@1']:>8.2f} {row['pass@5']:>8.2f} "
                    f"{row['pass@10']:>8.2f} {row['pass_rate']:>9.2f}"
                )


if __name__ == "__main__":
    main()
