"""Walk through the paper's syntax-enriched label construction (Fig. 3 and Fig. 4).

Starting from the paper's ``data_register`` example, this script shows every
intermediate artefact of the method:

1. AST keyword extraction and the supplementary keyword list (Fig. 3),
2. ``[FRAG]`` insertion around syntactically significant tokens,
3. tokenization with ``[FRAG]`` as an atomic token,
4. the shifted head-label matrix ("Before" panel of Fig. 4), and
5. the syntax-enriched label matrix after the parallel masking algorithm
   ("After" panel of Fig. 4), including the per-head ``[IGNORE]`` fractions the
   paper argues reduce later heads' prediction difficulty.

Run with:  python examples/label_construction.py
"""

from __future__ import annotations

import numpy as np

from repro.core.labels import build_shifted_labels, build_syntax_enriched_labels, ignore_fraction_per_head
from repro.tokenizer.bpe import BPETokenizer
from repro.verilog.fragments import insert_frag_markers
from repro.verilog.significant import EXTRA_KEYWORDS, extract_ast_keywords

CODE = """module data_register (
    input clk,
    input [3:0] data_in,
    output reg [3:0] data_out
);
    always @(posedge clk) begin
        data_out <= data_in;
    end
endmodule
"""

NUM_HEADS = 6


def main() -> None:
    print("Original code:\n" + CODE)

    ast_keywords = extract_ast_keywords(CODE)
    print(f"AST keywords (Fig. 3B): {ast_keywords}")
    print(f"First extra keywords:   {list(EXTRA_KEYWORDS[:10])} ...")

    annotated = insert_frag_markers(CODE)
    print("\nCode with [FRAG] markers (Fig. 3C), first 200 characters:")
    print(annotated[:200] + " ...")

    tokenizer = BPETokenizer()
    tokenizer.train([CODE, annotated], vocab_size=300)
    token_ids = tokenizer.encode(annotated, add_eos=True)
    tokens = [tokenizer.vocab.id_to_token(i) for i in token_ids]
    print(f"\nTokenized length: {len(tokens)} tokens; first 16: {tokens[:16]}")

    vocab = tokenizer.vocab
    before = build_shifted_labels(token_ids, NUM_HEADS, pad_id=vocab.pad_id)
    after = build_syntax_enriched_labels(
        token_ids, NUM_HEADS, frag_id=vocab.frag_id, pad_id=vocab.pad_id, ignore_id=vocab.ignore_id
    )

    def render(matrix: np.ndarray, columns: int = 8) -> None:
        for row in range(matrix.shape[0]):
            name = "Base " if row == 0 else f"Head{row}"
            cells = [tokenizer.vocab.id_to_token(int(t)) for t in matrix[row, :columns]]
            print(f"  {name}: " + " | ".join(f"{c:>10}" for c in cells))

    print("\nShifted labels BEFORE syntax enrichment (first 8 positions):")
    render(before)
    print("\nLabels AFTER syntax enrichment (first 8 positions):")
    render(after)

    fractions = ignore_fraction_per_head(after, vocab.ignore_id)
    print("\n[IGNORE] fraction per row (base, head1..headN):")
    print("  " + ", ".join(f"{f:.2f}" for f in fractions))
    print("Later heads have a higher ignore fraction, which is what makes them easier to train.")


if __name__ == "__main__":
    main()
