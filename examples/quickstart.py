"""Quickstart: train the three model variants and generate Verilog.

This example reproduces the paper's training setup end-to-end at a small
scale: it builds a synthetic Verilog corpus, refines it (dedup + syntax check +
``[FRAG]`` annotation), trains a tokenizer, fine-tunes the same backbone with
the three methods the paper compares (Ours / Medusa / NTP), and generates a
design with each, reporting decoding steps and tokens per step.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.core.pipeline import PipelineConfig, VerilogSpecPipeline
from repro.models.generation import GenerationConfig
from repro.verilog.syntax import check_syntax


def main() -> None:
    config = PipelineConfig(
        corpus_items=160,
        vocab_size=700,
        model_dim=64,
        num_layers=2,
        num_medusa_heads=8,
        epochs=4,
        max_seq_len=384,
        max_train_seq_len=256,
    )
    pipeline = VerilogSpecPipeline(config)

    print("Preparing corpus and tokenizer ...")
    artifacts = pipeline.prepare()
    print(f"  {len(artifacts.examples)} refined training examples, vocab size {artifacts.tokenizer.vocab_size}")

    for method in ("ours", "medusa", "ntp"):
        print(f"Training method {method!r} ...")
        pipeline.train_method(method)
        history = pipeline.histories[method]
        print(f"  final loss {history.final_loss():.3f}")

    prompt = (
        "Please act as a professional Verilog designer.\n"
        "Write a Verilog module named data_register that implements an 8-bit register "
        "which captures data_in on the positive edge of the clock.\n"
    )
    print("\nPrompt:\n" + prompt)
    for method in ("ours", "medusa", "ntp"):
        decoder = pipeline.decoder_for(method)
        result = decoder.generate_from_text(prompt, GenerationConfig.greedy_config(140))
        syntax_ok = check_syntax(result.code).ok
        print(f"--- {method} ---")
        print(f"  decoding steps: {result.steps}, tokens: {result.tokens_generated}, "
              f"tokens/step: {result.tokens_per_step:.2f}, syntax ok: {syntax_ok}")
        print("  generated code (first 5 lines):")
        for line in result.code.splitlines()[:5]:
            print("    " + line)


if __name__ == "__main__":
    main()
