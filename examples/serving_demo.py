"""Multi-request serving demo: continuous batching vs. sequential decoding.

Trains the three model variants, submits N concurrent generation requests to
the continuous-batching :class:`~repro.serving.ServingEngine` (one shared
batched forward per step, FCFS admission under a token budget) and compares
throughput and latency against decoding the same prompts one after another.
The engine's outputs are checked token-identical to sequential ``generate``.

Run with:  python examples/serving_demo.py
Smoke:     python examples/serving_demo.py --smoke      (tiny model, seconds)
"""

from __future__ import annotations

import sys

from repro.core.pipeline import PipelineConfig, VerilogSpecPipeline
from repro.evalbench.throughput import compare_serving_modes, measure_serving_throughput
from repro.models.generation import GenerationConfig
from repro.serving import PrefixCache, SchedulerConfig


def main() -> None:
    smoke = "--smoke" in sys.argv[1:]
    if smoke:
        config = PipelineConfig(
            corpus_items=40,
            vocab_size=400,
            model_dim=32,
            num_layers=1,
            num_attention_heads=2,
            num_medusa_heads=4,
            max_seq_len=288,
            epochs=1,
            max_train_seq_len=160,
        )
        num_requests, max_new_tokens = 6, 24
    else:
        config = PipelineConfig(
            corpus_items=160, vocab_size=700, model_dim=64, num_layers=2, num_medusa_heads=8, epochs=4
        )
        num_requests, max_new_tokens = 8, 64

    pipeline = VerilogSpecPipeline(config)
    pipeline.prepare()
    pipeline.train_all()

    prompts = [example.prompt_text() for example in pipeline.examples]
    prompts = (prompts * (num_requests // max(len(prompts), 1) + 1))[:num_requests]
    generation = GenerationConfig.greedy_config(max_new_tokens)
    scheduler = SchedulerConfig(max_active_requests=num_requests)

    print(f"Serving {num_requests} concurrent requests, {max_new_tokens} new tokens each ...")
    header = (
        f"{'method':<8} {'serve req/s':>12} {'seq req/s':>10} {'speedup':>8} "
        f"{'p50 serve':>10} {'p50 seq':>9} {'p95 serve':>10} {'p95 seq':>9} {'identical':>10}"
    )
    print("\n" + header)
    print("-" * len(header))
    all_identical = True
    for method in ("ours", "medusa", "ntp"):
        comparison = compare_serving_modes(
            pipeline.engine_for(method, scheduler_config=scheduler),
            pipeline.decoder_for(method),
            prompts,
            generation,
            label=method,
        )
        all_identical = all_identical and comparison.tokens_identical
        print(
            f"{method:<8} {comparison.serving.requests_per_second:>12.1f} "
            f"{comparison.sequential.requests_per_second:>10.1f} "
            f"{comparison.throughput_speedup:>8.2f} "
            f"{comparison.serving.p50_latency:>10.3f} {comparison.sequential.p50_latency:>9.3f} "
            f"{comparison.serving.p95_latency:>10.3f} {comparison.sequential.p95_latency:>9.3f} "
            f"{str(comparison.tokens_identical):>10}"
        )

    if not all_identical:
        raise SystemExit("serving outputs diverged from sequential generate")
    print(
        "\nAll serving outputs are token-identical to sequential generate; "
        "sequential p95 latency includes FCFS queueing behind earlier requests."
    )

    # Cross-request prefix reuse: N requests behind 2 shared task preambles.
    preambles = [
        "// Task: implement the following Verilog module exactly as specified.\n",
        "// You are a careful hardware engineer; write synthesizable Verilog.\n",
    ]
    shared = [preambles[i % 2] + prompt for i, prompt in enumerate(prompts * 2)]
    reuse_scheduler = SchedulerConfig(max_active_requests=2, max_prefill_tokens_per_step=32)
    baseline_engine = pipeline.engine_for(
        "ours", scheduler_config=SchedulerConfig(max_active_requests=2)
    )
    _, baseline_results = measure_serving_throughput(baseline_engine, shared, generation)
    reuse_engine = pipeline.engine_for(
        "ours", scheduler_config=reuse_scheduler, prefix_cache=PrefixCache(max_tokens=8192)
    )
    _, reuse_results = measure_serving_throughput(reuse_engine, shared, generation)
    if [r.token_ids for r in reuse_results] != [r.token_ids for r in baseline_results]:
        raise SystemExit("prefix reuse changed the served outputs")
    baseline_stats = baseline_engine.prefix_cache_stats()
    stats = reuse_engine.prefix_cache_stats()
    print(
        f"\nPrefix reuse over {len(shared)} shared-preamble requests: "
        f"{stats['prompt_tokens_prefilled']} prompt tokens prefilled vs "
        f"{baseline_stats['prompt_tokens_prefilled']} without reuse "
        f"(hit rate {stats['hit_rate']:.0%}, prefill savings {stats['prefill_savings']:.0%}); "
        "outputs token-identical."
    )


if __name__ == "__main__":
    main()
