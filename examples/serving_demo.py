"""Multi-request serving demo: continuous batching vs. sequential decoding.

Trains the three model variants, submits N concurrent generation requests to
the continuous-batching :class:`~repro.serving.ServingEngine` (one shared
batched forward per step, FCFS admission under a token budget) and compares
throughput and latency against decoding the same prompts one after another.
The engine's outputs are checked token-identical to sequential ``generate``.

``--stream`` instead demonstrates the asyncio streaming front-end
(:class:`~repro.serving.AsyncServingEngine`): tokens printed as they commit,
priority-aware admission, a cooperative cancel and a per-request deadline,
with a TTFT/inter-token latency summary.  Streamed bursts are checked to
concatenate to exactly the batch ``result()`` tokens.

Run with:  python examples/serving_demo.py
Smoke:     python examples/serving_demo.py --smoke      (tiny model, seconds)
Streaming: python examples/serving_demo.py --smoke --stream
"""

from __future__ import annotations

import asyncio
import sys

from repro.core.pipeline import PipelineConfig, VerilogSpecPipeline
from repro.evalbench.throughput import compare_serving_modes, measure_serving_throughput
from repro.models.generation import GenerationConfig
from repro.serving import (
    AsyncServingEngine,
    PrefixCache,
    PriorityConfig,
    RequestCancelled,
    RequestDeadlineExceeded,
    SchedulerConfig,
)


async def streaming_demo(pipeline: VerilogSpecPipeline, max_new_tokens: int) -> None:
    """Stream tokens live, then demonstrate priorities, cancel and deadline."""
    tokenizer = pipeline.tokenizer
    # prepare() always yields several examples; the demo uses the first four.
    prompts = [example.prompt_text() for example in pipeline.examples][:4]
    generation = GenerationConfig.greedy_config(max_new_tokens)

    # 1. Live token stream: bursts print the moment the engine commits them.
    engine = pipeline.engine_for("ours")
    print("Streaming one request (each [..] is one committed burst):\n")
    async with AsyncServingEngine(engine) as server:
        handle = await server.submit_text(prompts[0], generation)
        streamed: list[int] = []
        async for burst in handle.stream():
            streamed.extend(burst)
            print(f"[{tokenizer.decode(burst, keep_frag=True)}]", end="", flush=True)
        result = await handle.result()
    print("\n")
    if streamed != result.token_ids:
        raise SystemExit("streamed bursts diverged from the batch result")
    print(
        f"Streamed {len(streamed)} tokens in {len(result.step_records)} bursts; "
        "concatenation is identical to result().token_ids."
    )

    # 2. Priority classes: a high-priority request overtakes queued bulk work.
    engine = pipeline.engine_for(
        "ours",
        scheduler_config=SchedulerConfig(
            max_active_requests=1, priorities=PriorityConfig(aging_rounds=8)
        ),
    )
    async with AsyncServingEngine(engine) as server:
        bulk = [await server.submit_text(p, generation, priority=0) for p in prompts]
        urgent = await server.submit_text(prompts[0], generation, priority=5)
        order: list[str] = []

        async def watch(handle, name):
            try:
                await handle.result()
            except RequestCancelled:
                pass
            order.append(name)

        await asyncio.gather(
            *(watch(h, f"bulk-{i}") for i, h in enumerate(bulk)), watch(urgent, "urgent")
        )
    print(f"\nPriority admission (1 slot): completion order {order}")
    if order.index("urgent") >= len(order) - 1:
        raise SystemExit("urgent request did not overtake the bulk queue")

    # 3. Cooperative cancellation and a per-request deadline.
    engine = pipeline.engine_for("ours")
    long_config = GenerationConfig.greedy_config(max_new_tokens * 8)
    async with AsyncServingEngine(engine) as server:
        victim = await server.submit_text(prompts[1], long_config)
        collected = 0
        async for burst in victim.stream():
            collected += len(burst)
            if collected >= 4:
                victim.cancel()
        try:
            await victim.result()
            raise SystemExit("cancelled request still returned a result")
        except RequestCancelled as error:
            print(
                f"\nCancelled after {error.partial.tokens_generated} tokens; "
                "its KV row and scheduler budget were freed the same step."
            )
        deadlined = await server.submit_text(prompts[2], long_config, deadline=0.05)
        try:
            await deadlined.result()
            raise SystemExit("deadline did not fire")
        except RequestDeadlineExceeded as error:
            print(
                f"Deadline (50 ms) cancelled the next request after "
                f"{error.partial.tokens_generated} tokens."
            )

    # 4. TTFT / inter-token latency summary over a small concurrent batch.
    engine = pipeline.engine_for("ours")
    async with AsyncServingEngine(engine) as server:
        handles = [await server.submit_text(p, generation) for p in prompts]
        await asyncio.gather(*(h.result() for h in handles))
    print("\nPer-request streaming latencies:")
    print(f"{'request':<10} {'ttft (ms)':>10} {'bursts':>7} {'tokens':>7}")
    for handle in handles:
        metrics = engine.stream_metrics(handle.request_id)
        print(
            f"{handle.request_id:<10} {metrics['ttft_seconds'] * 1e3:>10.1f} "
            f"{len(metrics['commit_events']):>7} "
            f"{sum(n for _, n in metrics['commit_events']):>7}"
        )


def main() -> None:
    smoke = "--smoke" in sys.argv[1:]
    stream = "--stream" in sys.argv[1:]
    if smoke:
        config = PipelineConfig(
            corpus_items=40,
            vocab_size=400,
            model_dim=32,
            num_layers=1,
            num_attention_heads=2,
            num_medusa_heads=4,
            max_seq_len=288,
            epochs=1,
            max_train_seq_len=160,
        )
        num_requests, max_new_tokens = 6, 24
    else:
        config = PipelineConfig(
            corpus_items=160, vocab_size=700, model_dim=64, num_layers=2, num_medusa_heads=8, epochs=4
        )
        num_requests, max_new_tokens = 8, 64

    pipeline = VerilogSpecPipeline(config)
    pipeline.prepare()
    pipeline.train_all()

    if stream:
        asyncio.run(streaming_demo(pipeline, max_new_tokens))
        return

    prompts = [example.prompt_text() for example in pipeline.examples]
    prompts = (prompts * (num_requests // max(len(prompts), 1) + 1))[:num_requests]
    generation = GenerationConfig.greedy_config(max_new_tokens)
    scheduler = SchedulerConfig(max_active_requests=num_requests)

    print(f"Serving {num_requests} concurrent requests, {max_new_tokens} new tokens each ...")
    header = (
        f"{'method':<8} {'serve req/s':>12} {'seq req/s':>10} {'speedup':>8} "
        f"{'p50 serve':>10} {'p50 seq':>9} {'p95 serve':>10} {'p95 seq':>9} {'identical':>10}"
    )
    print("\n" + header)
    print("-" * len(header))
    all_identical = True
    for method in ("ours", "medusa", "ntp"):
        comparison = compare_serving_modes(
            pipeline.engine_for(method, scheduler_config=scheduler),
            pipeline.decoder_for(method),
            prompts,
            generation,
            label=method,
        )
        all_identical = all_identical and comparison.tokens_identical
        print(
            f"{method:<8} {comparison.serving.requests_per_second:>12.1f} "
            f"{comparison.sequential.requests_per_second:>10.1f} "
            f"{comparison.throughput_speedup:>8.2f} "
            f"{comparison.serving.p50_latency:>10.3f} {comparison.sequential.p50_latency:>9.3f} "
            f"{comparison.serving.p95_latency:>10.3f} {comparison.sequential.p95_latency:>9.3f} "
            f"{str(comparison.tokens_identical):>10}"
        )

    if not all_identical:
        raise SystemExit("serving outputs diverged from sequential generate")
    print(
        "\nAll serving outputs are token-identical to sequential generate; "
        "sequential p95 latency includes FCFS queueing behind earlier requests."
    )

    # Cross-request prefix reuse: N requests behind 2 shared task preambles.
    preambles = [
        "// Task: implement the following Verilog module exactly as specified.\n",
        "// You are a careful hardware engineer; write synthesizable Verilog.\n",
    ]
    shared = [preambles[i % 2] + prompt for i, prompt in enumerate(prompts * 2)]
    reuse_scheduler = SchedulerConfig(max_active_requests=2, max_prefill_tokens_per_step=32)
    # The baseline runs the row-copy K/V backend without reuse, so the
    # token-identity check below covers both engine guarantees at once:
    # prefix reuse and the paged block pool are each behaviour-preserving.
    baseline_engine = pipeline.engine_for(
        "ours", scheduler_config=SchedulerConfig(max_active_requests=2), kv_memory="row"
    )
    _, baseline_results = measure_serving_throughput(baseline_engine, shared, generation)
    reuse_engine = pipeline.engine_for(
        "ours", scheduler_config=reuse_scheduler, prefix_cache=PrefixCache(max_tokens=8192)
    )
    _, reuse_results = measure_serving_throughput(reuse_engine, shared, generation)
    if [r.token_ids for r in reuse_results] != [r.token_ids for r in baseline_results]:
        raise SystemExit("prefix reuse changed the served outputs")
    baseline_stats = baseline_engine.prefix_cache_stats()
    stats = reuse_engine.prefix_cache_stats()
    print(
        f"\nPrefix reuse over {len(shared)} shared-preamble requests: "
        f"{stats['prompt_tokens_prefilled']} prompt tokens prefilled vs "
        f"{baseline_stats['prompt_tokens_prefilled']} without reuse "
        f"(hit rate {stats['hit_rate']:.0%}, prefill savings {stats['prefill_savings']:.0%}); "
        "outputs token-identical."
    )

    # The paged block pool behind the reuse engine: retained preamble pages
    # stay pinned (occupancy), hits alias them instead of copying
    # (prefix_copy_tokens stays 0), and appends into shared blocks trigger
    # copy-on-write.  See docs/kv-memory.md for the full lifecycle.
    pool = reuse_engine.kv_pool_stats()
    row_pool = baseline_engine.kv_pool_stats()
    print(
        f"KV block pool ({pool['num_blocks']} blocks x {pool['block_size']} tokens): "
        f"{pool['blocks_in_use']} in use ({pool['occupancy']:.0%} occupancy, "
        f"retained prefixes), {pool['shared_blocks']} shared "
        f"({pool['shared_block_ratio']:.0%} of in-use), "
        f"{pool['cow_events']} copy-on-write copies."
    )
    print(
        f"Zero-copy reuse: {stats['prompt_tokens_reused']} prompt tokens reused, "
        f"{pool['prefix_copy_tokens']} K/V tokens copied doing it; "
        f"peak KV bytes {pool['peak_kv_bytes']:,} paged+reuse vs "
        f"{row_pool['peak_kv_bytes']:,} row baseline."
    )


if __name__ == "__main__":
    main()
