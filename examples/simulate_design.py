"""Use the Verilog substrate directly: parse, analyse and simulate a design.

This example exercises the two substrates the evaluation relies on without any
machine-learning component:

* the parser / significant-token extractor (the Stagira-parser substitute), and
* the event-driven simulator with a self-checking testbench (the iverilog
  substitute).

Run with:  python examples/simulate_design.py
"""

from __future__ import annotations

from repro.evalbench.designs import fifo
from repro.sim.testbench import run_testbench
from repro.verilog.fragments import insert_frag_markers
from repro.verilog.significant import extract_ast_keywords
from repro.verilog.syntax import check_syntax


def main() -> None:
    prompt, reference, testbench = fifo("sync_fifo", depth=4, width=8)

    print("Benchmark prompt:\n  " + prompt + "\n")

    result = check_syntax(reference)
    print(f"Reference design parses: {result.ok}; modules: {result.module_names}")
    print(f"AST keywords: {extract_ast_keywords(reference)[:12]} ...")

    annotated = insert_frag_markers(reference)
    print(f"\n[FRAG]-annotated reference (first 160 chars):\n{annotated[:160]} ...\n")

    print("Simulating the reference against its self-checking testbench ...")
    outcome = run_testbench(reference, testbench)
    print(f"  compiled: {outcome.compiled}, simulated: {outcome.simulated}, passed: {outcome.passed}")
    print("  simulation output:")
    for line in outcome.output.splitlines():
        print("    " + line)

    print("\nNow simulating a deliberately broken FIFO (read pointer never advances) ...")
    broken = reference.replace("rd_ptr <= (rd_ptr + 1) % DEPTH;", "rd_ptr <= rd_ptr;")
    outcome = run_testbench(broken, testbench)
    print(f"  compiled: {outcome.compiled}, passed: {outcome.passed}")
    for line in outcome.output.splitlines():
        print("    " + line)


if __name__ == "__main__":
    main()
