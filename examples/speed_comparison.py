"""Speed comparison across decoding strategies (the paper's Table II protocol).

Builds a paper-style speed prompt set (benchmark prompts plus template-augmented
prompts, the 575-prompt protocol scaled down), decodes each prompt with greedy
decoding and temperature-0.8 sampling under the three methods, and reports
tokens/second, tokens per decoding step and the speedup over the NTP baseline.

Run with:  python examples/speed_comparison.py
"""

from __future__ import annotations

from repro.core.pipeline import PipelineConfig, VerilogSpecPipeline
from repro.data.prompt_augmentation import build_speed_prompt_set
from repro.evalbench.rtllm import rtllm_suite
from repro.evalbench.speed import compare_cache_modes, measure_speed, speedup
from repro.evalbench.vgen import vgen_suite


def main() -> None:
    pipeline = VerilogSpecPipeline(
        PipelineConfig(corpus_items=160, vocab_size=700, model_dim=64, num_layers=2, num_medusa_heads=8, epochs=4)
    )
    pipeline.prepare()
    pipeline.train_all()

    # The paper uses 575 prompts; 20 keeps this example quick.
    prompts = build_speed_prompt_set(total=20, suites=(rtllm_suite(), vgen_suite()))
    print(f"Measuring speed over {len(prompts)} prompts x 2 decoding modes ...")

    reports = {}
    for method in ("ours", "medusa", "ntp"):
        decoder = pipeline.decoder_for(method)
        reports[method] = measure_speed(decoder, prompts, max_new_tokens=96, include_sampling=True, label=method)

    baseline = reports["ntp"]
    header = f"{'method':<8} {'tokens/s':>10} {'speedup':>9} {'tokens/step':>12} {'step-speedup':>13}"
    print("\n" + header)
    print("-" * len(header))
    for method, report in reports.items():
        print(
            f"{method:<8} {report.mean_tokens_per_second:>10.1f} {speedup(report, baseline):>9.2f} "
            f"{report.mean_tokens_per_step:>12.2f} {speedup(report, baseline, use_steps=True):>13.2f}"
        )

    # The wall-clock win of KV-cached incremental decoding over full recompute.
    comparison = compare_cache_modes(
        pipeline.decoder_for("ours"),
        pipeline.decoder_for("ours", use_cache=False),
        prompts[:5],
        max_new_tokens=96,
        label="ours",
    )
    print(
        f"\nKV cache (ours): {comparison.cached.mean_tokens_per_second:.1f} tok/s cached vs "
        f"{comparison.uncached.mean_tokens_per_second:.1f} tok/s uncached "
        f"({comparison.wall_clock_speedup:.1f}x, identical outputs: {comparison.tokens_identical})"
    )


if __name__ == "__main__":
    main()
