"""Traffic harness demo: trace replay, SLO admission and the ops dashboard.

Generates a seeded multi-tenant trace (Poisson arrivals, interactive/bulk
mix, shared tenant preambles), overloads a 2-slot serving engine on a
**simulated clock** — so the whole run is deterministic and takes virtual,
not wall, time — and replays it twice:

* without admission control: bulk floods the queue and interactive TTFT
  degrades with it;
* with the SLO-aware :class:`~repro.traffic.AdmissionController`: bulk is
  shed while the rolling interactive p95 TTFT is in breach, interactive is
  never touched.

After each replay the ANSI ops dashboard renders the final engine state as
a pure text frame (no TTY required), and the demo prints a side-by-side
summary of the two regimes.

Run with:  python examples/traffic_demo.py
Smoke:     python examples/traffic_demo.py --smoke      (tiny model, seconds)
"""

from __future__ import annotations

import sys

from repro.core.pipeline import PipelineConfig, VerilogSpecPipeline
from repro.serving import PriorityConfig, SchedulerConfig
from repro.traffic import (
    AdmissionController,
    OpsDashboard,
    SLOConfig,
    SimulatedClock,
    StepCostModel,
    TraceConfig,
    generate_trace,
    render_frame,
    replay_trace,
    snapshot_from_engine,
)

#: Internal breach threshold the detector trips on; the operator-facing SLO
#: target the summary is judged against is looser (see the bench).
TRIP_P95 = 0.03

COST_MODEL = StepCostModel(
    step_seconds=0.002, prefill_token_seconds=0.0005, decode_token_seconds=0.004
)


def build_trace(num_requests: int):
    config = TraceConfig(
        num_requests=num_requests,
        seed=42,
        requests_per_second=16.0,
        arrival_process="poisson",
        num_tenants=4,
        preamble_groups=2,
        interactive_fraction=0.4,
        prompt_sentence_choices=(1, 2),
        max_new_token_choices=(8, 16),
    )
    return generate_trace(config)


def replay(pipeline: VerilogSpecPipeline, trace, admission):
    """One replay on a fresh 2-slot engine and a fresh simulated clock."""
    clock = SimulatedClock()
    engine = pipeline.engine_for(
        "ours",
        scheduler_config=SchedulerConfig(
            max_active_requests=2, priorities=PriorityConfig(aging_rounds=1)
        ),
        clock=clock,
    )
    report = replay_trace(
        engine, trace, clock=clock, cost_model=COST_MODEL, admission=admission
    )
    return engine, clock, report


def show_dashboard(engine, clock, report, title: str) -> None:
    dashboard = OpsDashboard(engine=engine)
    for outcome in report.outcomes:
        if outcome.status in ("finished", "cancelled", "deadline"):
            dashboard.note_finished(outcome.request_id)
    snapshot = snapshot_from_engine(
        engine,
        finished_ids=dashboard.finished_ids,
        window_seconds=report.duration_seconds,
        admission_snapshot=report.admission,
        now=clock.now,
    )
    print(f"\n--- {title} ---")
    print(render_frame(snapshot, width=76))


def main() -> None:
    smoke = "--smoke" in sys.argv[1:]
    if smoke:
        config = PipelineConfig(
            corpus_items=40,
            vocab_size=400,
            model_dim=32,
            num_layers=1,
            num_attention_heads=2,
            num_medusa_heads=4,
            max_seq_len=288,
            epochs=1,
            max_train_seq_len=160,
        )
        num_requests = 32
    else:
        config = PipelineConfig(
            corpus_items=160, vocab_size=700, model_dim=64, num_layers=2, num_medusa_heads=8, epochs=4
        )
        num_requests = 64

    pipeline = VerilogSpecPipeline(config)
    pipeline.prepare()
    pipeline.train_method("ours")

    trace = build_trace(num_requests)
    print(
        f"Trace: {len(trace.requests)} requests over {trace.duration_seconds:.1f}s virtual, "
        f"{len(trace.tenants())} tenants, "
        f"{sum(1 for r in trace.requests if r.traffic_class == 'interactive')} interactive / "
        f"{sum(1 for r in trace.requests if r.traffic_class == 'bulk')} bulk"
    )

    # Regime 1: every request admitted; bulk backlog drags interactive down.
    engine, clock, without = replay(pipeline, trace, admission=None)
    show_dashboard(engine, clock, without, "without admission control")

    # Regime 2: SLO-aware admission sheds bulk while interactive is in breach.
    admission = AdmissionController(
        SLOConfig(
            target_p95_ttft=TRIP_P95,
            window_seconds=5.0,
            recover_under=0.5,
            min_samples=2,
            tenant_rate=400.0,
            tenant_burst=128.0,
        )
    )
    engine, clock, with_slo = replay(pipeline, trace, admission=admission)
    show_dashboard(engine, clock, with_slo, "with SLO admission")

    print(f"\n{'':<14} {'interactive p95 TTFT':>22} {'bulk shed':>10} {'served':>8}")
    for label, report in (("without", without), ("with SLO", with_slo)):
        interactive = report.class_summary("interactive")
        bulk = report.class_summary("bulk")
        print(
            f"{label:<14} {interactive['ttft']['p95'] * 1e3:>19.1f} ms "
            f"{bulk['shed']:>10} {interactive['served'] + bulk['served']:>8}"
        )

    p95_with = with_slo.class_summary("interactive")["ttft"]["p95"]
    p95_without = without.class_summary("interactive")["ttft"]["p95"]
    if p95_with >= p95_without:
        raise SystemExit("SLO admission did not improve interactive p95 TTFT")
    shed = [o for o in with_slo.outcomes if o.status == "shed"]
    if any(o.traffic_class != "bulk" for o in shed):
        raise SystemExit("admission shed non-bulk traffic")
    print(
        f"\nSLO admission cut interactive p95 TTFT from {p95_without * 1e3:.0f} ms to "
        f"{p95_with * 1e3:.0f} ms by shedding {len(shed)} bulk requests; interactive "
        "traffic was never shed.  Same seed, same numbers, every run."
    )


if __name__ == "__main__":
    main()
