#!/usr/bin/env python
"""Dependency-free docs validator (the CI docs job).

mkdocs is not part of the dev environment, so CI validates the docs tree with
this checker instead of ``mkdocs build --strict``. It enforces the subset of
strict-mode guarantees the docs actually rely on:

* every page listed in ``mkdocs.yml``'s nav exists (and vice versa: every
  markdown file under ``docs/`` is reachable from the nav);
* every page starts with a single H1;
* fenced code blocks are balanced;
* relative markdown links resolve — to an existing docs page/file, and when
  an anchor is given (``page.md#section``), to a real heading on that page;
* repository-relative links out of ``docs/`` (e.g. ``benchmarks/results/``)
  resolve to files or directories that exist.

Exits non-zero with a list of problems; prints a summary otherwise.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
DOCS = REPO / "docs"
MKDOCS = REPO / "mkdocs.yml"

LINK_RE = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^(#{1,6})\s+(.*)$")


def slugify(heading: str) -> str:
    """Approximate the mkdocs/GitHub anchor id for a heading."""
    text = re.sub(r"[`*_]", "", heading.strip().lower())
    text = re.sub(r"[^\w\s-]", "", text)
    return re.sub(r"[\s]+", "-", text).strip("-")


def nav_pages() -> list[str]:
    """Markdown paths referenced from mkdocs.yml's nav (no yaml dependency)."""
    pages: list[str] = []
    in_nav = False
    for line in MKDOCS.read_text().splitlines():
        if line.startswith("nav:"):
            in_nav = True
            continue
        if in_nav:
            if line.strip() and not line.startswith((" ", "-", "\t")):
                break
            match = re.search(r":\s*([\w./-]+\.md)\s*$", line)
            if match:
                pages.append(match.group(1))
    return pages


def check() -> list[str]:
    problems: list[str] = []
    doc_files = sorted(DOCS.glob("**/*.md"))
    if not doc_files:
        return ["docs/ contains no markdown files"]

    # Nav completeness (both directions).
    nav = nav_pages()
    if not nav:
        problems.append("mkdocs.yml: no nav pages found")
    for page in nav:
        if not (DOCS / page).is_file():
            problems.append(f"mkdocs.yml: nav references missing page {page}")
    nav_set = set(nav)
    for path in doc_files:
        rel = path.relative_to(DOCS).as_posix()
        if rel not in nav_set:
            problems.append(f"docs/{rel}: not listed in mkdocs.yml nav")

    # Collect headings per page for anchor checks.
    headings: dict[str, set[str]] = {}
    for path in doc_files:
        rel = path.relative_to(DOCS).as_posix()
        anchors = set()
        in_fence = False
        for line in path.read_text().splitlines():
            if line.strip().startswith("```"):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            match = HEADING_RE.match(line)
            if match:
                anchors.add(slugify(match.group(2)))
        headings[rel] = anchors

    for path in doc_files:
        rel = path.relative_to(DOCS).as_posix()
        text = path.read_text()
        lines = text.splitlines()

        # Exactly one H1, and it comes first.
        h1s = []
        in_fence = False
        for line in lines:
            if line.strip().startswith("```"):
                in_fence = not in_fence
                continue
            if not in_fence and line.startswith("# "):
                h1s.append(line)
        if len(h1s) != 1:
            problems.append(f"docs/{rel}: expected exactly one H1, found {len(h1s)}")
        elif not lines[0].startswith("# "):
            problems.append(f"docs/{rel}: H1 must be the first line")

        # Balanced code fences.
        if sum(1 for line in lines if line.strip().startswith("```")) % 2 != 0:
            problems.append(f"docs/{rel}: unbalanced code fences")

        # Links resolve.
        in_fence = False
        for line in lines:
            if line.strip().startswith("```"):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            for target in LINK_RE.findall(line):
                if target.startswith(("http://", "https://", "mailto:")):
                    continue
                page, _, anchor = target.partition("#")
                if not page:  # same-page anchor
                    if anchor and anchor not in headings[rel]:
                        problems.append(f"docs/{rel}: broken anchor #{anchor}")
                    continue
                resolved = (path.parent / page).resolve()
                if not resolved.exists():
                    problems.append(f"docs/{rel}: broken link {target}")
                    continue
                if anchor:
                    try:
                        link_rel = resolved.relative_to(DOCS).as_posix()
                    except ValueError:
                        link_rel = None
                    if link_rel is not None and anchor not in headings.get(link_rel, set()):
                        problems.append(f"docs/{rel}: broken anchor {target}")
    return problems


def main() -> int:
    problems = check()
    if problems:
        for problem in problems:
            print(f"ERROR: {problem}")
        print(f"\n{len(problems)} problem(s) found")
        return 1
    pages = len(list(DOCS.glob('**/*.md')))
    print(f"docs OK: {pages} pages, nav complete, headings and links valid")
    return 0


if __name__ == "__main__":
    sys.exit(main())
