#!/usr/bin/env python
"""Regenerate the golden regression fixtures under ``tests/golden/``.

Two fixture families are maintained here:

* **Token goldens** (``ours/medusa/ntp.json``) pin exact prompt -> output
  token sequences for all three decoding methods under greedy decoding and
  seeded sampling, so a decoding refactor that silently changes committed
  tokens fails loudly in ``tests/test_golden.py`` instead of drifting.
* **Simulation goldens** (``sim_reference_designs.json``) freeze the
  interpreter's observable outcome (result fields, ``$display`` lines, final
  signal state) for every reference design + testbench; both simulation
  backends must reproduce them in ``tests/test_sim_golden.py``.

The pipeline is built from the same canonical configuration the test fixture
uses (``tests/conftest.py::tiny_pipeline_config``); run this script — and
commit the diff — only when an intentional behaviour change invalidates the
fixtures:

    PYTHONPATH=src python scripts/regen_golden.py            # everything
    PYTHONPATH=src python scripts/regen_golden.py --only sim # simulation only
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))
sys.path.insert(0, str(REPO / "tests"))

from conftest import tiny_pipeline_config  # noqa: E402 (tests/ on path)
from test_sim_golden import capture_sim_case, golden_problems  # noqa: E402

from repro.core.pipeline import VerilogSpecPipeline  # noqa: E402
from repro.models.generation import GenerationConfig  # noqa: E402

GOLDEN_DIR = REPO / "tests" / "golden"
NUM_PROMPTS = 2
METHODS = ("ours", "medusa", "ntp")


def golden_configs() -> list:
    """The decoding configurations pinned by the fixtures."""
    return [
        GenerationConfig.greedy_config(24),
        GenerationConfig.sampling_config(0.8, 20, seed=1),
    ]


def config_to_dict(config: GenerationConfig) -> dict:
    return {
        "max_new_tokens": config.max_new_tokens,
        "temperature": config.temperature,
        "top_k": config.top_k,
        "greedy": config.greedy,
        "seed": config.seed,
    }


def regen_sim_goldens() -> None:
    """Freeze interpreter runs of every reference design + testbench."""
    GOLDEN_DIR.mkdir(exist_ok=True)
    cases = [
        capture_sim_case(name, problem.reference, problem.testbench, backend="interpreter")
        for name, problem in golden_problems()
    ]
    fixture = {
        "description": (
            "Interpreter-backend simulation outcomes for every reference design; "
            "both backends must reproduce these (tests/test_sim_golden.py)."
        ),
        "cases": cases,
    }
    path = GOLDEN_DIR / "sim_reference_designs.json"
    path.write_text(json.dumps(fixture, indent=2) + "\n")
    print(f"wrote {path.relative_to(REPO)}: {len(cases)} reference simulations")


def regen_token_goldens() -> None:
    pipeline = VerilogSpecPipeline(tiny_pipeline_config())
    pipeline.prepare()
    pipeline.train_all()
    prompts = [example.prompt_text() for example in pipeline.examples][:NUM_PROMPTS]

    GOLDEN_DIR.mkdir(exist_ok=True)
    for method in METHODS:
        decoder = pipeline.decoder_for(method)
        cases = []
        for config in golden_configs():
            outputs = [decoder.generate_from_text(prompt, config).token_ids for prompt in prompts]
            cases.append({"config": config_to_dict(config), "outputs": outputs})
        fixture = {
            "method": method,
            "pipeline": "tests/conftest.py::tiny_pipeline_config",
            "prompts": prompts,
            "cases": cases,
        }
        path = GOLDEN_DIR / f"{method}.json"
        path.write_text(json.dumps(fixture, indent=2) + "\n")
        total = sum(len(ids) for case in cases for ids in case["outputs"])
        print(f"wrote {path.relative_to(REPO)}: {len(cases)} configs x {len(prompts)} prompts, {total} tokens")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--only",
        choices=("tokens", "sim", "all"),
        default="all",
        help="which fixture family to regenerate (default: all)",
    )
    args = parser.parse_args()
    if args.only in ("tokens", "all"):
        regen_token_goldens()
    if args.only in ("sim", "all"):
        regen_sim_goldens()
    return 0


if __name__ == "__main__":
    sys.exit(main())
