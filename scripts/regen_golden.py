#!/usr/bin/env python
"""Regenerate the golden-token regression fixtures under ``tests/golden/``.

The goldens pin exact prompt -> output token sequences for all three decoding
methods (Ours / Medusa / NTP) under greedy decoding and seeded sampling, so a
decoding refactor that silently changes committed tokens fails loudly in
``tests/test_golden.py`` instead of drifting.

The pipeline is built from the same canonical configuration the test fixture
uses (``tests/conftest.py::tiny_pipeline_config``); run this script — and
commit the diff — only when an intentional behaviour change invalidates the
fixtures:

    PYTHONPATH=src python scripts/regen_golden.py
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))
sys.path.insert(0, str(REPO / "tests"))

from conftest import tiny_pipeline_config  # noqa: E402 (tests/ on path)

from repro.core.pipeline import VerilogSpecPipeline  # noqa: E402
from repro.models.generation import GenerationConfig  # noqa: E402

GOLDEN_DIR = REPO / "tests" / "golden"
NUM_PROMPTS = 2
METHODS = ("ours", "medusa", "ntp")


def golden_configs() -> list:
    """The decoding configurations pinned by the fixtures."""
    return [
        GenerationConfig.greedy_config(24),
        GenerationConfig.sampling_config(0.8, 20, seed=1),
    ]


def config_to_dict(config: GenerationConfig) -> dict:
    return {
        "max_new_tokens": config.max_new_tokens,
        "temperature": config.temperature,
        "top_k": config.top_k,
        "greedy": config.greedy,
        "seed": config.seed,
    }


def main() -> int:
    pipeline = VerilogSpecPipeline(tiny_pipeline_config())
    pipeline.prepare()
    pipeline.train_all()
    prompts = [example.prompt_text() for example in pipeline.examples][:NUM_PROMPTS]

    GOLDEN_DIR.mkdir(exist_ok=True)
    for method in METHODS:
        decoder = pipeline.decoder_for(method)
        cases = []
        for config in golden_configs():
            outputs = [decoder.generate_from_text(prompt, config).token_ids for prompt in prompts]
            cases.append({"config": config_to_dict(config), "outputs": outputs})
        fixture = {
            "method": method,
            "pipeline": "tests/conftest.py::tiny_pipeline_config",
            "prompts": prompts,
            "cases": cases,
        }
        path = GOLDEN_DIR / f"{method}.json"
        path.write_text(json.dumps(fixture, indent=2) + "\n")
        total = sum(len(ids) for case in cases for ids in case["outputs"])
        print(f"wrote {path.relative_to(REPO)}: {len(cases)} configs x {len(prompts)} prompts, {total} tokens")
    return 0


if __name__ == "__main__":
    sys.exit(main())
