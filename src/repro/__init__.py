"""Reproduction of speculative Verilog decoding with fragment-integrity truncation.

A scale-reduced, numpy-only reproduction of the paper's stack: synthetic
corpus construction, BPE tokenization, Medusa-style multi-head fine-tuning,
KV-cached speculative decoding with typical acceptance and fragment-integrity
truncation, a continuous-batching multi-request serving engine
(:mod:`repro.serving`), and the paper's quality/speed evaluation benches plus
a serving-throughput bench.
"""

__version__ = "0.1.0"

__all__ = ["__version__"]
