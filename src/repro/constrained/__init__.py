"""Grammar-constrained decoding fused with speculative verification.

The package turns the repo's Verilog front end (:mod:`repro.verilog`) into an
*online* constraint: an incremental :class:`SyntaxMaskState` tracks the code
text committed so far and answers, per BPE token id, whether committing it
keeps the text a viable prefix of some syntactically valid design.  The mask
plugs into both decode paths —

* :mod:`repro.core.decoding` samples proposal tokens through
  :func:`masked_argmax` / :func:`masked_choice`, so every committed token
  preserves viability;
* :func:`repro.core.token_tree.prefilter_candidates` truncates speculative
  candidates at their first violation *before* tree construction, so
  grammar-dead branches never reach the verification forward;

— and is inert by construction when ``GenerationConfig.grammar`` is ``None``
or the model's own choice is already legal (token-identity guarantee).
"""

from repro.constrained.mask import (
    SUPPORTED_GRAMMARS,
    SyntaxMaskState,
    closure_token_ids,
    grammar_mask,
    masked_argmax,
    masked_choice,
    masked_sample,
    token_pieces,
)
from repro.constrained.viability import (
    PrefixVerdict,
    classify_prefix,
    clear_viability_caches,
    completion_suffix,
    is_complete_source,
    is_viable_prefix,
)
from repro.core.token_tree import prefilter_candidates

__all__ = [
    "PrefixVerdict",
    "SUPPORTED_GRAMMARS",
    "SyntaxMaskState",
    "classify_prefix",
    "clear_viability_caches",
    "closure_token_ids",
    "completion_suffix",
    "grammar_mask",
    "is_complete_source",
    "is_viable_prefix",
    "masked_argmax",
    "masked_choice",
    "masked_sample",
    "prefilter_candidates",
    "token_pieces",
]
