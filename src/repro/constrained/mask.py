"""Incremental grammar mask over BPE token ids (``GenerationConfig(grammar=...)``).

:class:`SyntaxMaskState` is the per-request decoding state of grammar
constrained generation: it accumulates the *code text* of the committed
tokens (exactly the ``keep_frag=False`` view the graders see) and answers,
for any candidate token id, whether appending that token keeps the text a
viable Verilog prefix (:mod:`repro.constrained.viability`).

Design points that keep it cheap and identity-preserving:

* **token pieces** — each vocabulary id is mapped once to its decoded text
  contribution (``Ġ``/``Ċ`` markers expanded; ``[PAD]``/``[BOS]``/
  ``[IGNORE]``/``[EOS]`` decode to nothing; ``[FRAG]`` is stripped from code).
  Empty-piece structural tokens can never change the text, so ``[FRAG]`` is
  always allowed — fragment-integrity truncation keeps working under the
  grammar unchanged — while pad/bos/ignore/unk are never sensible mid-decode
  and are masked out;
* **EOS gating** — ``[EOS]`` is allowed exactly when the accumulated text is
  already a complete source (>= 1 module), so a finished design can stop but
  an open module cannot;
* **snapshot / restore** — the state is an append-only stack of cumulative
  texts, so speculative tree branches cost one integer snapshot and one list
  truncation to roll back (no re-lexing);
* **laziness** — callers probe ``allows(token_id)`` in model-preference order
  (argmax first); when the mask is inert the first probe hits and the decode
  path is byte-identical to unconstrained generation.  ``allowed_token_ids``
  materialises the full mask only where a caller really needs it.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.constrained.viability import (
    PrefixVerdict,
    classify_prefix,
    completion_suffix,
)
from repro.models.generation import (
    GenerationConfig,
    _fallback_rng,
    sample_from_logits,
    sampling_probabilities,
)

#: Grammars :func:`grammar_mask` knows how to build.  The only entry today is
#: the in-repo Verilog grammar; the registry exists so ``GenerationConfig``
#: can carry a plain string and reject typos at mask-construction time.
SUPPORTED_GRAMMARS = ("verilog",)

_SPACE_MARKER = "Ġ"
_NEWLINE_MARKER = "Ċ"

#: Per-tokenizer piece-table cache attribute (built once per vocabulary).
_PIECES_ATTR = "_constrained_piece_table"


def token_pieces(tokenizer) -> List[str]:
    """Per-id decoded code-text contribution of every vocabulary token.

    Mirrors ``BPETokenizer.decode(..., keep_frag=False)`` token by token:
    structural specials contribute the empty string, everything else expands
    its whitespace markers.  The table is cached on the tokenizer (one
    vocabulary, one table).
    """
    cached = getattr(tokenizer, _PIECES_ATTR, None)
    if cached is not None and len(cached) == tokenizer.vocab_size:
        return cached
    special = tokenizer.special
    silent = {special.pad, special.ignore, special.bos, special.eos, special.frag}
    pieces = [
        "" if token in silent else token.replace(_SPACE_MARKER, " ").replace(_NEWLINE_MARKER, "\n")
        for token in tokenizer.vocab.tokens()
    ]
    setattr(tokenizer, _PIECES_ATTR, pieces)
    return pieces


class SyntaxMaskState:
    """Incremental syntax mask: committed text plus per-token viability tests.

    Args:
        pieces: per-id decoded text contribution (see :func:`token_pieces`).
        eos_id: end-of-sequence id; allowed only on a complete source.
        blocked_ids: ids never allowed under the grammar (pad/bos/unk/ignore —
            they decode to nothing useful mid-generation).
        text: initial committed text (defaults to empty: generated code is
            graded standalone, independent of the prompt).
    """

    def __init__(
        self,
        pieces: Sequence[str],
        eos_id: int,
        blocked_ids: Sequence[int] = (),
        text: str = "",
    ) -> None:
        self._pieces = pieces
        self._eos_id = int(eos_id)
        self._blocked = frozenset(int(i) for i in blocked_ids)
        #: Cumulative text after each committed token; ``_stack[-1]`` is the
        #: current text.  Append-only, so a snapshot is just a length.
        self._stack: List[str] = [text]

    # -- committed text ---------------------------------------------------- #

    @property
    def text(self) -> str:
        """The committed code text the mask is constraining."""
        return self._stack[-1]

    @property
    def eos_id(self) -> int:
        return self._eos_id

    def is_complete(self) -> bool:
        """True when the committed text already parses with >= 1 module."""
        return classify_prefix(self.text) is PrefixVerdict.COMPLETE

    # -- per-token tests --------------------------------------------------- #

    def piece(self, token_id: int) -> str:
        return self._pieces[int(token_id)]

    def allows(self, token_id: int) -> bool:
        """True when committing ``token_id`` keeps the text a viable prefix."""
        token_id = int(token_id)
        if token_id == self._eos_id:
            return self.is_complete()
        if token_id in self._blocked:
            return False
        piece = self._pieces[token_id]
        if not piece:
            # Structural tokens ([FRAG]) contribute no text and cannot hurt.
            return True
        return classify_prefix(self.text + piece) is not PrefixVerdict.INVALID

    def allowed_token_ids(self, candidate_ids: Optional[Sequence[int]] = None) -> List[int]:
        """All allowed token ids (or the allowed subset of ``candidate_ids``).

        The full-vocabulary form exists for inspection and tests; the decode
        paths probe :meth:`allows` lazily in model-preference order instead.
        """
        universe = range(len(self._pieces)) if candidate_ids is None else candidate_ids
        return [int(t) for t in universe if self.allows(t)]

    # -- state transitions ------------------------------------------------- #

    def advance(self, token_id: int) -> None:
        """Commit ``token_id``: append its piece to the constrained text."""
        self._stack.append(self.text + self._pieces[int(token_id)])

    def snapshot(self) -> int:
        """Cheap marker of the current state (pass to :meth:`restore`)."""
        return len(self._stack)

    def restore(self, snapshot: int) -> None:
        """Roll the state back to a :meth:`snapshot` (tree-branch rollback)."""
        del self._stack[snapshot:]

    # -- budget-exhaustion closure ----------------------------------------- #

    def completion_text(self) -> Optional[str]:
        """Suffix closing every open construct (None when already complete
        or — pathologically — no closure was found)."""
        if self.is_complete():
            return None
        return completion_suffix(self.text)


def grammar_mask(grammar: Optional[str], tokenizer) -> Optional[SyntaxMaskState]:
    """Build the per-request mask for ``GenerationConfig.grammar``.

    ``None`` (the default) means unconstrained decoding and returns ``None``
    — every call site treats an absent mask as a strict no-op, which is what
    keeps token identity trivially intact for existing configs.
    """
    if grammar is None:
        return None
    if grammar not in SUPPORTED_GRAMMARS:
        raise ValueError(f"unknown grammar {grammar!r} (supported: {SUPPORTED_GRAMMARS})")
    vocab = tokenizer.vocab
    blocked = [vocab.pad_id, vocab.bos_id, vocab.unk_id, vocab.ignore_id]
    return SyntaxMaskState(token_pieces(tokenizer), eos_id=vocab.eos_id, blocked_ids=blocked)


def masked_argmax(logits: np.ndarray, mask: Optional[SyntaxMaskState]) -> int:
    """Argmax constrained to allowed tokens (identity when the mask is inert).

    Probes tokens in descending logit order, so when the model's own argmax
    is grammar-legal the unconstrained choice is returned after one check.
    """
    first = int(np.argmax(logits))
    if mask is None or mask.allows(first):
        return first
    for token_id in np.argsort(logits)[::-1]:
        token_id = int(token_id)
        if token_id != first and mask.allows(token_id):
            return token_id
    return first


def masked_choice(
    probabilities: np.ndarray,
    generator: np.random.Generator,
    mask: Optional[SyntaxMaskState],
) -> int:
    """Sample from ``probabilities`` restricted to allowed tokens.

    Rejection sampling with removal: draw, and if the token is disallowed,
    zero it out, renormalise and redraw.  This samples exactly the
    conditional distribution over allowed tokens, and — crucially — the
    *first* draw consumes the same generator state as unconstrained
    sampling, so an inert mask changes neither the token nor the rng stream.
    """
    token_id = int(generator.choice(len(probabilities), p=probabilities))
    if mask is None or mask.allows(token_id):
        return token_id
    remaining = probabilities.astype(np.float64, copy=True)
    while True:
        remaining[token_id] = 0.0
        total = remaining.sum()
        if total <= 0.0:
            # Nothing sampleable is allowed; fall back to the best allowed
            # token outright (the zero-probability tail).
            return masked_argmax(probabilities, mask)
        remaining = remaining / total
        token_id = int(generator.choice(len(remaining), p=remaining))
        if mask.allows(token_id):
            return token_id


def masked_sample(
    logits: np.ndarray,
    config: GenerationConfig,
    rng: Optional[np.random.Generator],
    mask: Optional[SyntaxMaskState],
) -> int:
    """Drop-in grammar-aware replacement for ``sample_from_logits``.

    With ``mask=None`` this *is* ``sample_from_logits`` (same call, same rng
    consumption).  With a mask, greedy picks :func:`masked_argmax` and
    sampling draws :func:`masked_choice` from the exact distribution
    unconstrained sampling would use — so whenever the mask does not
    intervene, the chosen token and the generator state both match the
    unconstrained decode step for step.
    """
    if mask is None:
        return sample_from_logits(logits, config, rng)
    if config.greedy or config.temperature <= 0.0:
        return masked_argmax(logits, mask)
    if rng is None:
        rng = _fallback_rng(config.seed)
    return masked_choice(sampling_probabilities(logits, config), rng, mask)


def closure_token_ids(mask: Optional[SyntaxMaskState], tokenizer) -> List[int]:
    """Token ids that complete an unfinished constrained design.

    Invoked when generation stops (budget/context) before the text parses:
    the closure suffix is computed grammar-first (:func:`completion_suffix`),
    re-encoded with the request's tokenizer, and kept only if the decoded
    result really completes the source — BPE round-trips can normalise
    whitespace, so the guarantee is re-checked on the decoded text rather
    than assumed.
    """
    if mask is None:
        return []
    suffix = mask.completion_text()
    if not suffix:
        return []
    ids = tokenizer.encode(suffix, add_bos=False)
    decoded = tokenizer.decode(ids, keep_frag=False)
    if classify_prefix(mask.text + decoded) is not PrefixVerdict.COMPLETE:
        return []
    for token_id in ids:
        mask.advance(token_id)
    return ids


#: Type of the ``allows`` probe call sites may pass around.
AllowsFn = Callable[[int], bool]
