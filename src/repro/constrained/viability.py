"""Viable-prefix classification over the Verilog lexer/parser.

The grammar mask (:mod:`repro.constrained.mask`) needs one primitive: given
the text decoded so far, is it still the prefix of *some* syntactically valid
Verilog source?  This module answers that by driving the repo's own lexer and
recursive-descent parser (:mod:`repro.verilog`) in a prefix-tolerant way:

* the **lexer** runs in streaming mode; an error is tolerated only when it
  consumed the input to the very end (an unterminated string/comment or a
  number still missing its digits is an *incomplete trailing token*, not a
  syntax error).  An error anchored mid-stream can never be repaired by more
  input, so the prefix is dead;
* the **parser** runs over the cleanly-lexed portion; a :class:`ParseError`
  whose offending token is EOF (or raised with the parser's lookahead already
  at EOF) means the prefix merely *ends too early* and stays viable, while an
  error anchored at a real token rejects the prefix outright;
* the **last token is tentative** when it touches the end of the text: an
  identifier like ``endmodul`` may still grow into the ``endmodule`` keyword,
  so a parse failure with the last token included is retried without it.

The key property the mask relies on is *prefix-closure*: every prefix of a
viable string is itself viable (more input can only be appended at the end),
so committing BPE pieces one at a time can never paint the decoder into a
corner that a full re-check would have caught earlier.

:func:`completion_suffix` inverts the check: from any viable prefix it builds
a short textual suffix that closes every open construct (guided by the
parser's own ``expected ...`` diagnostics), which the constrained decoder uses
to guarantee a complete design when the token budget runs out mid-module.
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass
from functools import lru_cache
from typing import Optional, Tuple

from repro.verilog.lexer import KEYWORDS, MULTI_CHAR_OPERATORS, Lexer, LexerError, TokenKind
from repro.verilog.parser import ParseError, Parser


class PrefixVerdict(enum.Enum):
    """Classification of a text against the Verilog grammar."""

    #: No continuation can make the text parse; the prefix is dead.
    INVALID = "invalid"
    #: Not a complete source yet, but some continuation parses.
    VIABLE = "viable"
    #: Parses as-is into a source file with at least one module.
    COMPLETE = "complete"


#: Token kinds that may still grow when they touch the end of the text
#: (``endmodul`` -> ``endmodule``, ``<`` -> ``<=``, ``4`` -> ``4'h0``...).
#: Strings end with their closing quote and punctuation is single-char, so
#: neither can extend.
_EXTENDABLE_KINDS = frozenset(
    {
        TokenKind.IDENTIFIER,
        TokenKind.KEYWORD,
        TokenKind.NUMBER,
        TokenKind.OPERATOR,
        TokenKind.DIRECTIVE,
        TokenKind.SYSTEM_IDENTIFIER,
    }
)


@dataclass(frozen=True)
class _ScanResult:
    """Outcome of the prefix-tolerant streaming lex."""

    #: False when the lexer rejected the text mid-stream (dead prefix).
    ok: bool
    #: True when the text ends inside an incomplete token (unterminated
    #: string/comment, number missing digits...); ``cut`` then marks where
    #: the incomplete construct starts.
    partial: bool = False
    #: Character offset at which the incomplete trailing construct begins.
    cut: int = 0
    #: The lexer's error message when ``partial`` (drives closure healing).
    partial_message: str = ""
    #: True when the last complete token touches the end of the text and its
    #: kind may extend with more characters.
    extendable: bool = False
    #: Character offset where the last complete token starts.
    last_start: int = 0
    #: Source text of the last complete token.
    last_text: str = ""
    #: Kind of the last complete token (None when the text has no tokens).
    last_kind: Optional[TokenKind] = None


def _scan(text: str) -> _ScanResult:
    """Stream-lex ``text``, tolerating an incomplete construct only at the end."""
    lexer = Lexer(text)
    last_start = 0
    last_end = 0
    last_text = ""
    last_kind: Optional[TokenKind] = None
    while True:
        before = lexer.pos
        try:
            token = lexer.next_token()
        except LexerError as exc:
            if lexer.pos >= len(text):
                # The error consumed the input: an incomplete trailing token,
                # repairable by appending more characters.
                return _ScanResult(
                    ok=True,
                    partial=True,
                    cut=before,
                    partial_message=str(exc),
                    last_start=last_start,
                    last_text=last_text,
                    last_kind=last_kind,
                )
            return _ScanResult(ok=False)
        if token.kind is TokenKind.EOF:
            break
        last_start = lexer.pos - len(token.text)
        last_end = lexer.pos
        last_text = token.text
        last_kind = token.kind
    extendable = last_kind in _EXTENDABLE_KINDS and last_end == len(text) and last_end > 0
    return _ScanResult(
        ok=True,
        extendable=extendable,
        last_start=last_start,
        last_text=last_text,
        last_kind=last_kind,
    )


@lru_cache(maxsize=16384)
def _parse_probe(body: str) -> Tuple[PrefixVerdict, str]:
    """Parse ``body`` (cleanly lexable) and classify the outcome.

    Returns ``(verdict, message)`` where ``message`` is the parse error text
    (empty for COMPLETE) — :func:`completion_suffix` reads the parser's own
    ``expected ...`` demand out of it.
    """
    try:
        parser = Parser(body)
    except (LexerError, RecursionError):
        return PrefixVerdict.INVALID, "unlexable"
    try:
        parser.parse_source()
    except ParseError as exc:
        at_eof = (exc.token is not None and exc.token.kind is TokenKind.EOF) or (
            parser._peek().kind is TokenKind.EOF
        )
        # An error at (or raised while looking at) EOF means the input simply
        # ended too early — more tokens may fix it.  Anchored at a real token
        # it is a hard rejection: that token can never change.
        if at_eof:
            return PrefixVerdict.VIABLE, str(exc)
        return PrefixVerdict.INVALID, str(exc)
    except RecursionError:
        return PrefixVerdict.INVALID, "recursion limit"
    return PrefixVerdict.COMPLETE, ""


@lru_cache(maxsize=65536)
def classify_prefix(text: str) -> PrefixVerdict:
    """Classify ``text`` as INVALID / VIABLE / COMPLETE Verilog.

    Empty (or whitespace/comment-only) text is VIABLE: a module can still
    follow.  COMPLETE requires at least one fully parsed module and no
    dangling partial token.
    """
    scan = _scan(text)
    if not scan.ok:
        return PrefixVerdict.INVALID
    if scan.partial:
        # The incomplete tail commits to one token kind (an open string can
        # only become a STRING, ``4'``/``4'h`` only a NUMBER, an open ``/*``
        # only whitespace), so heal it into a concrete witness of that kind
        # and parse in context: a number dangling where the grammar can never
        # accept a number is a dead prefix even though the token itself could
        # be finished.
        healed = _heal_partial_tail(text, scan.partial_message)
        if healed is None:
            return PrefixVerdict.INVALID
        verdict, _ = _parse_probe(text + healed)
        return PrefixVerdict.VIABLE if verdict is not PrefixVerdict.INVALID else PrefixVerdict.INVALID
    verdict, _ = _parse_probe(text)
    if verdict is PrefixVerdict.INVALID and scan.extendable:
        # The last token touches the end of the text, so it may still grow
        # into a *different* token (``endmodul`` -> ``endmodule`` keyword,
        # ``begin`` -> ``beginx`` identifier, ``<`` -> ``<=``).  Viability
        # needs a concrete witness: some extension whose parse survives.
        # Merely dropping the token would wrongly revive prefixes like
        # ``endmodule`` whose every extension is equally dead.
        if _extend_last_token(text, scan) is not None:
            return PrefixVerdict.VIABLE
    return verdict


def is_viable_prefix(text: str) -> bool:
    """True when ``text`` is (a prefix of) some syntactically valid source."""
    return classify_prefix(text) is not PrefixVerdict.INVALID


def is_complete_source(text: str) -> bool:
    """True when ``text`` parses as-is with at least one module."""
    return classify_prefix(text) is PrefixVerdict.COMPLETE


# --------------------------------------------------------------------------- #
# Grammar-guided closure
# --------------------------------------------------------------------------- #

#: ``expected 'X' at line ...`` -> the literal token the parser demands.
_EXPECTED_RE = re.compile(r"^expected '([^']+)'")

#: Parser diagnostics that name the construct left open, mapped to its closer.
_EOF_CLOSERS = [
    ("unexpected end of file inside begin/end block", "end"),
    ("unexpected end of file inside case", "endcase"),
    ("unexpected end of file inside generate", "endgenerate"),
    ("unexpected end of file inside module", "endmodule"),
    ("source contains no modules", "module"),
    ("expected identifier", "x"),
    ("expected expression", "0"),
    ("expected '=' or '<=' in assignment", "="),
    ("expected assignment operator", "="),
]


def _heal_partial_tail(text: str, message: str) -> Optional[str]:
    """Characters that finish the incomplete lexical construct at the end of ``text``."""
    if "unterminated block comment" in message:
        return "*/"
    if "unterminated string literal" in message:
        # A trailing backslash would escape the closing quote.
        return 'x"' if text.endswith("\\") else '"'
    if "invalid number base" in message:
        return "h0"  # ``4'`` or ``4's`` still waiting for its base
    if "number literal missing digits" in message:
        return "0"
    return None


def _extend_last_token(text: str, scan: _ScanResult) -> Optional[str]:
    """Grow a tentative last token into one that keeps the prefix alive.

    Used when the text is viable *only* because its last token may extend
    (e.g. committed pieces ending in ``endmodul``): try completing it into
    each keyword / multi-char operator it prefixes.
    """
    tail = scan.last_text
    candidates = []
    if scan.last_kind in (TokenKind.IDENTIFIER, TokenKind.KEYWORD):
        candidates = [kw[len(tail):] for kw in sorted(KEYWORDS) if kw.startswith(tail) and len(kw) > len(tail)]
        if scan.last_kind is TokenKind.KEYWORD:
            # A keyword can also grow into a plain identifier (``begin`` ->
            # ``beginx``), which changes its token kind and may start e.g. a
            # module instantiation where the keyword itself was illegal.
            candidates.append("x")
    elif scan.last_kind is TokenKind.OPERATOR:
        candidates = [op[len(tail):] for op in MULTI_CHAR_OPERATORS if op.startswith(tail) and len(op) > len(tail)]
    elif scan.last_kind is TokenKind.NUMBER:
        candidates = ["'h0"]
    for extension in candidates:
        probe, _ = _parse_probe(text + extension)
        if probe is not PrefixVerdict.INVALID:
            return extension
    return None


def completion_suffix(text: str, max_appends: int = 128) -> Optional[str]:
    """Build a suffix that turns a viable prefix into a complete source.

    Repeatedly parses ``text + suffix`` and appends exactly the token the
    parser demands next (``expected ';'`` -> ``;``, ``expected identifier``
    -> a fresh name, an open ``begin`` -> ``end``, ...).  Each appended token
    is consumed before the next diagnostic, so the parse position strictly
    advances and the loop terminates in one append per open construct.

    Returns ``None`` when ``text`` is not a viable prefix or no closure was
    found within ``max_appends`` steps (pathological inputs only).
    """
    suffix = ""
    for _ in range(max_appends):
        current = text + suffix
        scan = _scan(current)
        if not scan.ok:
            return None
        if scan.partial:
            healed = _heal_partial_tail(current, scan.partial_message)
            if healed is None:
                return None
            suffix += healed
            continue
        verdict, message = _parse_probe(current)
        if verdict is PrefixVerdict.COMPLETE:
            return suffix
        if verdict is PrefixVerdict.INVALID:
            if not scan.extendable:
                return None
            extension = _extend_last_token(current, scan)
            if extension is None:
                return None
            suffix += extension
            continue
        # VIABLE: satisfy the parser's immediate demand.
        piece = None
        match = _EXPECTED_RE.match(message)
        if match is not None:
            piece = match.group(1)
        else:
            for marker, closer in _EOF_CLOSERS:
                if message.startswith(marker):
                    piece = closer
                    break
        if piece is None:
            return None
        suffix += " " + piece
    return None


def clear_viability_caches() -> None:
    """Drop the memoized classifications (tests use this to bound memory)."""
    _parse_probe.cache_clear()
    classify_prefix.cache_clear()
