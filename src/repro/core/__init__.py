"""The paper's primary contribution: syntax-enriched speculative decoding.

Modules:

* :mod:`repro.core.labels` — syntax-enriched label construction (Fig. 4),
* :mod:`repro.core.acceptance` — the typical-acceptance criterion (eq. 1),
* :mod:`repro.core.integrity` — fragment-integrity truncation,
* :mod:`repro.core.decoding` — the speculative decoding loop with the three
  strategies compared in the paper (Ours / Medusa / NTP),
* :mod:`repro.core.token_tree` — prefix-deduplicated token trees and the
  attention masks for tree-structured candidate verification,
* :mod:`repro.core.training` — the multi-head training objective (eq. 2) and
  the fine-tuning loop,
* :mod:`repro.core.pipeline` — an end-to-end convenience API gluing dataset,
  tokenizer, model, training and evaluation together.
"""

from repro.core.labels import (
    build_shifted_labels,
    apply_syntax_enrichment,
    apply_syntax_enrichment_reference,
    build_syntax_enriched_labels,
)
from repro.core.acceptance import TypicalAcceptance
from repro.core.integrity import truncate_to_complete_fragment
from repro.core.decoding import DecodingStrategy, SpeculativeDecoder, DecodeResult
from repro.core.token_tree import TokenTree
from repro.core.training import MedusaLoss, TrainerConfig, MedusaTrainer, TrainingSample
from repro.core.pipeline import PipelineConfig, VerilogSpecPipeline

__all__ = [
    "build_shifted_labels",
    "apply_syntax_enrichment",
    "apply_syntax_enrichment_reference",
    "build_syntax_enriched_labels",
    "TypicalAcceptance",
    "truncate_to_complete_fragment",
    "DecodingStrategy",
    "SpeculativeDecoder",
    "DecodeResult",
    "TokenTree",
    "MedusaLoss",
    "TrainerConfig",
    "MedusaTrainer",
    "TrainingSample",
    "PipelineConfig",
    "VerilogSpecPipeline",
]
