"""Typical-acceptance criterion for speculative token verification (eq. 1).

A candidate token proposed by a Medusa head is accepted when its probability
under the *base* model exceeds an entropy-adaptive threshold::

    p_base(x) > min(epsilon, delta * exp(-H(p_base(.))))

where ``H`` is the entropy of the base model's full next-token distribution at
that position.  A token is only accepted if the criterion holds for it *and*
every preceding candidate token (the accepted prefix property).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.nn.functional import entropy, softmax


@dataclass
class TypicalAcceptance:
    """Callable implementation of the typical-acceptance rule.

    Attributes:
        epsilon: the hard probability threshold cap.
        delta: the entropy-scaled threshold coefficient.
    """

    epsilon: float = 0.09
    delta: float = 0.3

    def threshold(self, probabilities: np.ndarray) -> float:
        """The acceptance threshold for one next-token distribution."""
        h = float(entropy(probabilities))
        return min(self.epsilon, self.delta * np.exp(-h))

    def accepts(self, probabilities: np.ndarray, token_id: int) -> bool:
        """Whether ``token_id`` is acceptable under ``probabilities``."""
        return float(probabilities[token_id]) > self.threshold(probabilities)

    def accepted_prefix_length(
        self, logits_per_position: Sequence[np.ndarray], candidate_tokens: Sequence[int]
    ) -> int:
        """Length of the longest accepted prefix of ``candidate_tokens``.

        Args:
            logits_per_position: base-model logits for each candidate position,
                i.e. ``logits_per_position[i]`` is the distribution over the
                token at position ``t+i+1`` given the prefix plus candidates
                ``0..i-1``.
            candidate_tokens: the proposed token ids.

        Returns:
            The number of leading candidates that satisfy the criterion.  The
            prefix property is enforced: the count stops at the first rejection.
        """
        accepted = 0
        for logits, token_id in zip(logits_per_position, candidate_tokens):
            probabilities = softmax(np.asarray(logits, dtype=np.float64))
            if not self.accepts(probabilities, int(token_id)):
                break
            accepted += 1
        return accepted

    def acceptance_flags(
        self, logits_per_position: Sequence[np.ndarray], candidate_tokens: Sequence[int]
    ) -> List[bool]:
        """Per-position acceptance flags (without the prefix constraint)."""
        flags: List[bool] = []
        for logits, token_id in zip(logits_per_position, candidate_tokens):
            probabilities = softmax(np.asarray(logits, dtype=np.float64))
            flags.append(self.accepts(probabilities, int(token_id)))
        return flags
