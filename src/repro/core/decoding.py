"""Speculative decoding loop (paper Sec. III-B).

:class:`SpeculativeDecoder` implements the three decoding regimes the paper
compares:

* ``NTP`` — conventional next-token prediction with the base head only;
* ``MEDUSA`` — multi-head speculative decoding with typical acceptance;
* ``OURS`` — Medusa-style speculation plus the fragment-integrity check that
  truncates every accepted run back to a syntactically complete fragment.

At each decoding step the model proposes a small set of candidate
continuations (the base head's top tokens extended with the Medusa heads'
predictions), verifies all candidates in a single batched forward pass, scores
them with the typical-acceptance rule (eq. 1), optionally truncates to the
last fragment boundary, and commits the longest accepted candidate prefix.

Two verification layouts are supported, committing identical tokens:

* **row-batched** (the default, kept as the reference implementation) — each
  candidate occupies its own padded batch row, so tokens shared between
  candidates are verified once per candidate;
* **token-tree** (``GenerationConfig.tree_verify``) — the candidate set is
  merged into a prefix-deduplicated tree (:mod:`repro.core.token_tree`),
  Medusa/SpecInfer style, and verified in one forward over a single row with
  a tree attention mask; shared prefixes are verified exactly once, and the
  accepted root-to-leaf path is compacted back into the KV cache with
  :meth:`~repro.nn.kv_cache.KVCache.keep_path`.

By default the decoder runs **incrementally** over a per-layer KV cache
(:mod:`repro.nn.kv_cache`): the prompt is prefilled once, every verification
is one batched cached forward over just the candidate tokens, and the cache is
rolled back to the committed prefix afterwards so rejected speculative tokens
never pollute later steps.  Pass ``use_cache=False`` to fall back to the
original full-recompute loop (kept for equivalence testing); both paths commit
identical token sequences.

The per-step bodies (:func:`propose_candidates`, :func:`pad_candidates`,
:func:`select_best_candidate`, the greedy verifier and the context-budget
helpers) are module-level functions shared with the continuous-batching
serving engine (:mod:`repro.serving`), which runs the same step for many
requests inside one shared batched forward.
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.constrained.mask import SyntaxMaskState, closure_token_ids, grammar_mask, masked_sample
from repro.core.acceptance import TypicalAcceptance
from repro.core.integrity import truncate_to_complete_fragment
from repro.core.token_tree import (
    TokenTree,
    prefilter_candidates,
    tree_bias_cached,
    tree_bias_full,
    tree_position_offsets,
    tree_position_offsets_full,
)
from repro.models.generation import GenerationConfig, sample_from_logits, top_k_token_ids
from repro.models.medusa import MedusaLM
from repro.tokenizer.bpe import BPETokenizer


class DecodingStrategy(enum.Enum):
    """The decoding regimes compared in the paper."""

    NTP = "ntp"
    MEDUSA = "medusa"
    OURS = "ours"


# --------------------------------------------------------------------------- #
# Per-step building blocks
#
# The bodies of one speculative decoding step, factored out of
# :class:`SpeculativeDecoder` so the multi-request serving engine
# (:mod:`repro.serving.engine`) can run the identical propose/verify/commit
# logic for many requests inside one shared batched forward.  Keeping a single
# implementation is what makes the engine's token-identical-to-sequential
# guarantee checkable rather than aspirational.
# --------------------------------------------------------------------------- #


def propose_candidates(
    base_logits: np.ndarray,
    head_logits: Sequence[np.ndarray],
    config: GenerationConfig,
    rng: np.random.Generator,
    num_candidates: int,
    max_heads: int,
    mask: Optional[SyntaxMaskState] = None,
) -> List[List[int]]:
    """Build candidate continuations from base + Medusa-head predictions.

    Args:
        base_logits: ``(V,)`` base-head logits at the last committed position.
        head_logits: per-head ``(V,)`` logits at the same position.
        config: sampling configuration (greedy vs. temperature sampling for
            the first token; the speculated tail is always head argmax).
        rng: per-request random generator (consumed only under sampling).
        num_candidates: maximum number of candidates to return.
        max_heads: number of Medusa heads to speculate with.
        mask: optional grammar mask (:mod:`repro.constrained`).  Constrains
            only the committed first token; the speculated tails and the
            alternative base token stay unconstrained here and are truncated
            at their first violation by :func:`repro.core.token_tree
            .prefilter_candidates` before verification.

    Returns:
        Candidate token lists; candidate 0 always starts with the token the
        base model itself commits this step.
    """
    first_token = masked_sample(base_logits, config, rng, mask)
    heads = list(head_logits[:max_heads])
    # One stacked argmax instead of one call per head: identical results,
    # and proposal runs once per request per step in the serving engine, so
    # its constant factors are on the throughput-critical path.
    head_top1 = [int(t) for t in np.argmax(np.stack(heads), axis=-1)] if heads else []
    base_top = top_k_token_ids(base_logits, num_candidates)

    candidates: List[List[int]] = []
    # Candidate 1: committed base token + every head's top-1.
    candidates.append([first_token] + head_top1)
    # Candidate 2: alternative base token + heads' top-1.
    if len(base_top) > 1 and int(base_top[1]) != first_token:
        candidates.append([int(base_top[1])] + head_top1)
    elif len(base_top) > 0 and int(base_top[0]) != first_token:
        candidates.append([int(base_top[0])] + head_top1)
    # Candidate 3: committed base token + head-1's runner-up then top-1s
    # (only head 0's runner-up is ever needed).
    if max_heads >= 1:
        head0 = heads[0]
        head0_top2 = int(top_k_token_ids(head0, 2)[1]) if head0.shape[-1] > 1 else int(np.argmax(head0))
        alt = [first_token, head0_top2] + head_top1[1:]
        candidates.append(alt)
    return dedupe_candidates(candidates)[: max(num_candidates, 1)]


def dedupe_candidates(candidates: List[List[int]]) -> List[List[int]]:
    """Drop duplicate candidates, keeping first occurrences (order preserved).

    Identical candidates verify identical positions and can never beat their
    first occurrence in :func:`select_best_candidate`, so each duplicate is a
    wasted verification row (or tree branch).  Duplicates mainly arise when
    the context/budget clip truncates candidates that differ only in their
    tails down to the same prefix — with a budget of one remaining token,
    every candidate collapses to ``[first_token]``.

    Candidate 0 (the one starting with the token the base model itself
    commits) is always a first occurrence, so its special role is preserved.
    """
    seen = set()
    unique: List[List[int]] = []
    for candidate in candidates:
        key = tuple(candidate)
        if key not in seen:
            seen.add(key)
            unique.append(candidate)
    return unique


def pad_candidates(candidates: List[List[int]], width: Optional[int] = None) -> List[List[int]]:
    """Right-pad candidates to equal length (repeating the last token) for batching.

    Args:
        candidates: non-empty candidate token lists.
        width: target window width; defaults to the longest candidate.  The
            serving engine passes the widest window across *all* requests so
            every row of the shared forward has the same shape.

    Returns:
        Padded copies; the padding tokens are never committed (acceptance
        only ever keeps a prefix of the original candidate).
    """
    length = max(len(c) for c in candidates)
    if width is not None:
        length = max(length, width)
    return [c + [c[-1]] * (length - len(c)) for c in candidates]


def greedy_match_length(logits_per_position: Sequence[np.ndarray], candidate_tokens: Sequence[int]) -> int:
    """Length of the prefix whose tokens equal the base model's argmax.

    This is the lossless verification used for greedy decoding: a speculated
    token is kept only if the base model itself would have produced it, so
    the committed sequence is identical to what plain next-token prediction
    would generate.
    """
    matched = 0
    for logits, token_id in zip(logits_per_position, candidate_tokens):
        if int(np.argmax(logits)) != int(token_id):
            break
        matched += 1
    return matched


def select_best_candidate(
    candidates: List[List[int]],
    logits_lists: Optional[Sequence[Sequence[np.ndarray]]],
    config: GenerationConfig,
    acceptance: TypicalAcceptance,
    strategy: DecodingStrategy,
    frag_id: int,
    eos_id: int,
    greedy_argmax: Optional[Sequence[Sequence[int]]] = None,
) -> Tuple[List[int], int, int]:
    """Score every verified candidate and pick the longest committed run.

    The first token of each candidate comes from the base model itself and is
    always committed; acceptance applies to the speculated tail.  Under
    greedy decoding the verification is exact-match against the base model's
    argmax (lossless, as in Medusa's greedy mode); under sampling it is the
    typical-acceptance rule (eq. 1).

    Args:
        candidates: candidate token lists (unpadded).
        logits_lists: ``logits_lists[row][i]`` are the base-model logits at
            the position that predicts candidate token ``i`` (index 0 is
            unused by the scoring, since token 0 is always committed).  May
            be ``None`` when ``greedy_argmax`` is provided and the config is
            greedy.
        config: decoding configuration (selects greedy vs. typical acceptance).
        acceptance: the typical-acceptance rule used under sampling.
        strategy: :attr:`DecodingStrategy.OURS` additionally truncates the
            accepted run back to the last complete fragment boundary.
        frag_id: token id of the ``[FRAG]`` boundary marker.
        eos_id: end-of-sequence token id (ends the run wherever it appears).
        greedy_argmax: optional fast path for greedy verification —
            ``greedy_argmax[row][j]`` is the base model's argmax at the
            position predicting candidate token ``j + 1``, typically one
            vectorised ``np.argmax`` over the whole verification window
            instead of a call per position.

    Returns:
        ``(tokens, accepted, row)`` — the committed tokens, the accepted
        length before fragment truncation, and the winning candidate index.
    """
    greedy = config.greedy or config.temperature <= 0.0
    best_tokens: List[int] = []
    best_accepted = 0
    best_row = 0
    for row, candidate in enumerate(candidates):
        if greedy and greedy_argmax is not None:
            accepted_tail = 0
            for predicted, token in zip(greedy_argmax[row], candidate[1:]):
                if int(predicted) != int(token):
                    break
                accepted_tail += 1
        elif greedy:
            accepted_tail = greedy_match_length(logits_lists[row][1:], candidate[1:])
        else:
            accepted_tail = acceptance.accepted_prefix_length(logits_lists[row][1:], candidate[1:])
        accepted = 1 + accepted_tail
        tokens = candidate[:accepted]
        if strategy is DecodingStrategy.OURS:
            tokens = truncate_to_complete_fragment(tokens, frag_id, eos_id=eos_id)
        # EOS anywhere in the run ends the output there.
        if eos_id in tokens:
            tokens = tokens[: tokens.index(eos_id) + 1]
        if len(tokens) > len(best_tokens):
            best_tokens = tokens
            best_accepted = accepted
            best_row = row
    if not best_tokens:
        best_tokens = [candidates[0][0]]
        best_accepted = 1
        best_row = 0
    return best_tokens, best_accepted, best_row


def decoder_budget_exceeded(prompt_len: int, output_len: int, extra: int, max_seq_len: int) -> bool:
    """True when adding ``extra`` tokens would exceed a decoder-only context window."""
    return prompt_len + output_len + extra >= max_seq_len - 1


def max_step_extra(prompt_len: int, output_len: int, remaining: int, max_seq_len: int) -> int:
    """Largest candidate length a decoder-only request may speculate this step.

    Starts from the request's remaining new-token budget and shrinks until
    the candidate window fits the context window (never below 1; callers
    check :func:`decoder_budget_exceeded` with ``extra=1`` before stepping).
    """
    max_extra = remaining
    while decoder_budget_exceeded(prompt_len, output_len, max_extra, max_seq_len) and max_extra > 1:
        max_extra -= 1
    return max_extra


@dataclass
class StepRecord:
    """Bookkeeping for one decoding step (used by the Fig. 5 bench).

    ``verified`` counts the positions the verification forward actually
    computed this step: candidate rows x padded window width for row-batched
    verification, the node count of the deduplicated tree for token-tree
    verification, and 1 for plain next-token prediction.  The tree-vs-row
    speed bench compares these counts directly.
    """

    proposed: int
    accepted: int
    committed: int
    ends_at_boundary: bool
    verified: int = 1
    #: Positions the verification forward *would* have computed this step had
    #: the grammar pre-filter not pruned the candidate set (``None`` for
    #: unconstrained steps, where it equals ``verified``).  The constrained
    #: bench's verified-token-savings claim compares the two within one run —
    #: comparing totals across separate runs would be confounded by the runs
    #: taking different numbers of steps.
    verified_unpruned: Optional[int] = None


@dataclass
class DecodeResult:
    """Outcome of one generation run."""

    token_ids: List[int]
    text: str
    code: str
    steps: int
    tokens_generated: int
    wall_time_seconds: float
    step_records: List[StepRecord] = field(default_factory=list)
    stopped_by_eos: bool = False
    #: Time spent on the one-off prompt prefill (cached decoding); 0.0 for the
    #: full-recompute path, which has no separable prefill.
    prefill_seconds: float = 0.0
    #: Prompt positions served from the serving engine's cross-request prefix
    #: cache instead of being prefilled; always 0 for sequential decoding.
    prompt_tokens_reused: int = 0
    #: True when the serving engine cancelled the run (explicit cancel or an
    #: expired deadline); ``token_ids`` then holds the partial output
    #: committed before cancellation.  Always False for sequential decoding.
    cancelled: bool = False
    #: Trailing tokens appended by the grammar closure when a constrained run
    #: exhausted its budget mid-module (0 for unconstrained runs and for
    #: constrained runs that completed on their own).  They are part of
    #: ``token_ids``/``code`` but were never proposed or verified.
    closure_tokens: int = 0

    @property
    def decode_seconds(self) -> float:
        """Wall time of the decode loop, excluding the one-off prompt prefill."""
        return max(self.wall_time_seconds - self.prefill_seconds, 0.0)

    @property
    def tokens_per_second(self) -> float:
        """Raw generation speed (eq. 3 numerator / denominator for one output).

        Measured with ``time.perf_counter`` over the decode loop only:
        tokenization happens outside the timed region and the one-off prompt
        prefill is excluded, so cached and uncached runs (and prompts of
        different lengths) compare apples-to-apples on the per-token rate.
        """
        denominator = self.decode_seconds if self.decode_seconds > 0 else self.wall_time_seconds
        if denominator <= 0:
            return 0.0
        return self.tokens_generated / denominator

    @property
    def tokens_per_step(self) -> float:
        """Mean number of tokens committed per decoding step."""
        if self.steps == 0:
            return 0.0
        return self.tokens_generated / self.steps

    @property
    def tokens_verified(self) -> int:
        """Total positions run through candidate verification (see :class:`StepRecord`)."""
        return sum(record.verified for record in self.step_records)

    @property
    def tokens_verified_unpruned(self) -> int:
        """What :attr:`tokens_verified` would have been without grammar pruning.

        Per step this is :attr:`StepRecord.verified_unpruned` when the grammar
        pre-filter ran and :attr:`StepRecord.verified` otherwise, so for
        unconstrained runs the two totals coincide and the difference is
        exactly the verified-position savings of constrained decoding.
        """
        return sum(
            record.verified if record.verified_unpruned is None else record.verified_unpruned
            for record in self.step_records
        )


class SpeculativeDecoder:
    """Generates Verilog with one of the three decoding strategies.

    Args:
        model: A trained :class:`~repro.models.medusa.MedusaLM` (decoder-only
            or encoder-decoder backbone).
        tokenizer: The tokenizer the model was trained with.
        strategy: ``NTP`` (one token per step), ``MEDUSA`` (speculative) or
            ``OURS`` (speculative + fragment-integrity truncation).
        acceptance: Typical-acceptance rule for sampling runs (defaults to
            the paper's eq. 1 parameters).
        num_candidates: Candidate continuations verified per step.
        max_speculative_heads: Cap on the Medusa heads used for speculation
            (defaults to all heads the model has).
        use_cache: ``True`` decodes incrementally over a KV cache (default);
            ``False`` re-runs the full forward each step (kept for
            equivalence testing).  Both commit identical tokens.
    """

    def __init__(
        self,
        model: MedusaLM,
        tokenizer: BPETokenizer,
        strategy: DecodingStrategy = DecodingStrategy.OURS,
        acceptance: Optional[TypicalAcceptance] = None,
        num_candidates: int = 3,
        max_speculative_heads: Optional[int] = None,
        use_cache: bool = True,
    ) -> None:
        self.model = model
        self.tokenizer = tokenizer
        self.strategy = strategy
        self.acceptance = acceptance or TypicalAcceptance()
        self.num_candidates = max(1, num_candidates)
        #: Incremental decoding over a per-layer KV cache (the default); set
        #: False to re-run the full forward every step (equivalence testing).
        self.use_cache = use_cache
        self.max_speculative_heads = (
            model.num_medusa_heads if max_speculative_heads is None else min(max_speculative_heads, model.num_medusa_heads)
        )
        vocab = tokenizer.vocab
        self.frag_id = vocab.frag_id
        self.eos_id = vocab.eos_id
        self.bos_id = vocab.bos_id

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #

    def generate(self, prompt_ids: Sequence[int], config: Optional[GenerationConfig] = None) -> DecodeResult:
        """Generate a completion for ``prompt_ids``.

        Args:
            prompt_ids: Tokenized prompt (BOS included).
            config: Decoding configuration; defaults to greedy with the
                standard token budget.

        Returns:
            A :class:`DecodeResult` with the committed tokens, decoded text,
            per-step records and timing (prefill separated from decode).
        """
        config = config or GenerationConfig.greedy_config()
        rng = np.random.default_rng(config.seed)
        mask = grammar_mask(config.grammar, self.tokenizer)
        start = time.perf_counter()
        prefill_seconds = 0.0
        if self.strategy is DecodingStrategy.NTP or self.model.num_medusa_heads == 0:
            if self.use_cache:
                output_ids, records, stopped, prefill_seconds = self._generate_ntp_cached(
                    list(prompt_ids), config, rng, mask
                )
            else:
                output_ids, records, stopped = self._generate_ntp(list(prompt_ids), config, rng, mask)
        elif self.use_cache:
            output_ids, records, stopped, prefill_seconds = self._generate_speculative_cached(
                list(prompt_ids), config, rng, mask
            )
        else:
            output_ids, records, stopped = self._generate_speculative(list(prompt_ids), config, rng, mask)
        closure = closure_token_ids(mask, self.tokenizer) if mask is not None else []
        if closure:
            # Budget ran out mid-module: append the grammar closure so the
            # constrained contract (the emitted code parses) holds even for
            # truncated runs.  Unconstrained runs never enter this branch.
            output_ids = output_ids + closure
        elapsed = time.perf_counter() - start
        text = self.tokenizer.decode(output_ids, keep_frag=True)
        code = self.tokenizer.decode(output_ids, keep_frag=False)
        return DecodeResult(
            token_ids=output_ids,
            text=text,
            code=code,
            steps=len(records),
            tokens_generated=len(output_ids),
            wall_time_seconds=elapsed,
            step_records=records,
            stopped_by_eos=stopped,
            prefill_seconds=prefill_seconds,
            closure_tokens=len(closure),
        )

    def generate_from_text(self, prompt: str, config: Optional[GenerationConfig] = None) -> DecodeResult:
        """Tokenize ``prompt`` and generate a completion."""
        prompt_ids = self.tokenizer.encode(prompt, add_bos=True)
        return self.generate(prompt_ids, config)

    # ------------------------------------------------------------------ #
    # Model plumbing
    # ------------------------------------------------------------------ #

    def _model_inputs(self, prompt_ids: List[int], output_ids: List[int]) -> Tuple[np.ndarray, Optional[np.ndarray]]:
        """Build (decoder input, encoder input) for the current architecture."""
        if self.model.is_encoder_decoder:
            decoder = np.asarray([self.bos_id] + output_ids, dtype=np.int64)
            encoder = np.asarray(prompt_ids, dtype=np.int64)
            return decoder, encoder
        decoder = np.asarray(prompt_ids + output_ids, dtype=np.int64)
        return decoder, None

    def _truncate_budget(self, prompt_ids: List[int], output_len: int, extra: int) -> bool:
        """True when adding ``extra`` tokens would exceed the context window.

        Encoder-decoder models spend decoder positions only on BOS + output;
        decoder-only models share the window between prompt and output.
        """
        max_seq_len = self.model.backbone.max_seq_len
        if self.model.is_encoder_decoder:
            return decoder_budget_exceeded(1, output_len, extra, max_seq_len)
        return decoder_budget_exceeded(len(prompt_ids), output_len, extra, max_seq_len)

    def _prefill(self, prompt_ids: List[int], cache) -> Tuple[np.ndarray, List[np.ndarray]]:
        """Run the one-off prompt forward that seeds the KV cache.

        For encoder-decoder models this encodes the prompt (caching the
        encoder memory and, lazily, its per-layer cross-attention projections)
        and prefills the decoder with BOS; for decoder-only models it prefills
        the whole prompt.  Returns the last-position (base, head) logits.
        """
        if self.model.is_encoder_decoder:
            self.model.encode_prompt(np.asarray(prompt_ids, dtype=np.int64))
            prefill_ids = np.asarray([[self.bos_id]], dtype=np.int64)
        else:
            prefill_ids = np.asarray([prompt_ids], dtype=np.int64)
        base_logits, hidden = self.model.forward_hidden(prefill_ids, cache=cache)
        heads = self.model.head_logits_at(hidden[:, -1])
        return base_logits[0, -1], [h[0] for h in heads]

    # ------------------------------------------------------------------ #
    # NTP baseline
    # ------------------------------------------------------------------ #

    def _generate_ntp(
        self,
        prompt_ids: List[int],
        config: GenerationConfig,
        rng: np.random.Generator,
        mask: Optional[SyntaxMaskState] = None,
    ) -> Tuple[List[int], List[StepRecord], bool]:
        output_ids: List[int] = []
        records: List[StepRecord] = []
        stopped = False
        for _ in range(config.max_new_tokens):
            if self._truncate_budget(prompt_ids, len(output_ids), 1):
                break
            decoder, encoder = self._model_inputs(prompt_ids, output_ids)
            base_logits, _ = self.model.forward_hidden(decoder, encoder)
            next_token = masked_sample(base_logits[0, -1], config, rng, mask)
            if mask is not None:
                mask.advance(next_token)
            output_ids.append(next_token)
            records.append(StepRecord(proposed=1, accepted=1, committed=1, ends_at_boundary=True))
            if next_token == self.eos_id:
                stopped = True
                break
        return output_ids, records, stopped

    def _generate_ntp_cached(
        self,
        prompt_ids: List[int],
        config: GenerationConfig,
        rng: np.random.Generator,
        mask: Optional[SyntaxMaskState] = None,
    ) -> Tuple[List[int], List[StepRecord], bool, float]:
        """NTP decoding with a KV cache: prefill once, then one-token forwards."""
        output_ids: List[int] = []
        records: List[StepRecord] = []
        stopped = False
        if self._truncate_budget(prompt_ids, 0, 1):
            # Prompt already fills the context window; match the uncached path
            # (which breaks before its first forward) instead of overflowing.
            return output_ids, records, stopped, 0.0
        cache = self.model.new_cache()
        prefill_start = time.perf_counter()
        last_base, _ = self._prefill(prompt_ids, cache)
        prefill_seconds = time.perf_counter() - prefill_start
        while len(output_ids) < config.max_new_tokens:
            if self._truncate_budget(prompt_ids, len(output_ids), 1):
                break
            next_token = masked_sample(last_base, config, rng, mask)
            if mask is not None:
                mask.advance(next_token)
            output_ids.append(next_token)
            records.append(StepRecord(proposed=1, accepted=1, committed=1, ends_at_boundary=True))
            if next_token == self.eos_id:
                stopped = True
                break
            if len(output_ids) < config.max_new_tokens and not self._truncate_budget(prompt_ids, len(output_ids), 1):
                base_logits, _ = self.model.forward_hidden(np.asarray([[next_token]], dtype=np.int64), cache=cache)
                last_base = base_logits[0, -1]
        return output_ids, records, stopped, prefill_seconds

    # ------------------------------------------------------------------ #
    # Speculative decoding (Medusa / Ours)
    # ------------------------------------------------------------------ #

    def _propose_candidates(
        self,
        base_logits: np.ndarray,
        head_logits: List[np.ndarray],
        config: GenerationConfig,
        rng: np.random.Generator,
        mask: Optional[SyntaxMaskState] = None,
    ) -> List[List[int]]:
        """Build candidate continuations from base + head predictions."""
        return propose_candidates(
            base_logits,
            head_logits,
            config,
            rng,
            num_candidates=self.num_candidates,
            max_heads=self.max_speculative_heads,
            mask=mask,
        )

    @staticmethod
    def _pad_candidates(candidates: List[List[int]]) -> List[List[int]]:
        """See :func:`pad_candidates` (kept as a method for API stability)."""
        return pad_candidates(candidates)

    def _verify_candidates_tree(
        self,
        prompt_ids: List[int],
        output_ids: List[int],
        tree: TokenTree,
    ) -> List[List[np.ndarray]]:
        """Full-recompute token-tree verification: one forward over one row.

        The decoder input is the committed prefix followed by the tree's
        (deduplicated) node tokens; a tree attention mask and per-node
        position offsets make the logits at node ``n`` equal what the
        row-batched forward produces at the corresponding candidate token.
        Returns per-candidate logits lists in :func:`select_best_candidate`'s
        layout.
        """
        if self.model.is_encoder_decoder:
            prefix = [self.bos_id] + output_ids
            encoder_batch = np.asarray(prompt_ids, dtype=np.int64)[None, :]
        else:
            prefix = prompt_ids + output_ids
            encoder_batch = None
        prefix_len = len(prefix)
        row = np.asarray([prefix + tree.tokens], dtype=np.int64)
        bias = tree_bias_full(prefix_len, tree)
        offsets = tree_position_offsets_full(prefix_len, tree)
        base_logits, _ = self.model.forward_hidden(
            row, encoder_batch, attn_bias=bias, position_offsets=offsets
        )
        # The predictor of candidate token i is node i-1's logits; token 0's
        # predictor is the last prefix position (unused by the scoring).
        per_candidate: List[List[np.ndarray]] = []
        for nodes in tree.candidate_nodes:
            logits_list = [base_logits[0, prefix_len - 1]]
            logits_list += [base_logits[0, prefix_len + node] for node in nodes[:-1]]
            per_candidate.append(logits_list)
        return per_candidate

    def _verify_candidates(
        self,
        prompt_ids: List[int],
        output_ids: List[int],
        candidates: List[List[int]],
    ) -> List[List[np.ndarray]]:
        """Return base-model logits for every candidate position (batched)."""
        padded = self._pad_candidates(candidates)
        length = len(padded[0])
        batch_rows = []
        encoder_batch = None
        if self.model.is_encoder_decoder:
            for candidate in padded:
                batch_rows.append([self.bos_id] + output_ids + candidate)
            encoder_batch = np.tile(np.asarray(prompt_ids, dtype=np.int64)[None, :], (len(padded), 1))
        else:
            for candidate in padded:
                batch_rows.append(prompt_ids + output_ids + candidate)
        batch = np.asarray(batch_rows, dtype=np.int64)
        base_logits, _ = self.model.forward_hidden(batch, encoder_batch)
        # Position that predicts candidate token i is (prefix_len - 1 + i).
        prefix_len = batch.shape[1] - length
        per_candidate: List[List[np.ndarray]] = []
        for row, candidate in enumerate(candidates):
            logits_list = [base_logits[row, prefix_len - 1 + i] for i in range(len(candidate))]
            per_candidate.append(logits_list)
        return per_candidate

    def _select_best_candidate(
        self,
        candidates: List[List[int]],
        logits_lists: List[List[np.ndarray]],
        config: GenerationConfig,
    ) -> Tuple[List[int], int, int]:
        """Score every verified candidate and pick the longest committed run.

        The first token of each candidate comes from the base model itself and
        is always committed; acceptance applies to the speculated tail.  Under
        greedy decoding the verification is exact-match against the base
        model's argmax (lossless, as in Medusa's greedy mode); under sampling
        it is the typical-acceptance rule (eq. 1).  ``logits_lists[row][i]``
        are the base-model logits at the position that predicts candidate
        token ``i`` (index 0 is unused by the scoring, since token 0 is always
        committed).  Returns ``(tokens, accepted, row)``.
        """
        return select_best_candidate(
            candidates,
            logits_lists,
            config,
            acceptance=self.acceptance,
            strategy=self.strategy,
            frag_id=self.frag_id,
            eos_id=self.eos_id,
        )

    def _clip_candidates(
        self, prompt_ids: List[int], output_ids: List[int], candidates: List[List[int]], remaining: int
    ) -> List[List[int]]:
        """Clip candidates to the remaining budget / context window."""
        max_extra = remaining
        while self._truncate_budget(prompt_ids, len(output_ids), max_extra) and max_extra > 1:
            max_extra -= 1
        return [c[:max_extra] for c in candidates]

    def _apply_grammar_prefilter(
        self,
        candidates: List[List[int]],
        config: GenerationConfig,
        mask: Optional[SyntaxMaskState],
    ) -> Tuple[List[List[int]], Optional[int]]:
        """Prune candidates under the grammar mask, before verification.

        Returns ``(filtered, unpruned)`` where ``unpruned`` is the number of
        positions this step's verification *would* have computed on the
        unfiltered set (``None`` when unconstrained) — the like-for-like
        baseline for the verified-savings accounting, measured at the same
        step on the same proposal state.  The filtered set is re-deduped:
        truncation can collapse candidates that differed only past their
        first violation.
        """
        if mask is None:
            return candidates, None
        if config.tree_verify:
            unpruned = TokenTree.from_candidates(candidates).size
        else:
            unpruned = len(candidates) * max(len(candidate) for candidate in candidates)
        filtered = dedupe_candidates(prefilter_candidates(candidates, mask))
        return filtered, unpruned

    def _generate_speculative(
        self,
        prompt_ids: List[int],
        config: GenerationConfig,
        rng: np.random.Generator,
        mask: Optional[SyntaxMaskState] = None,
    ) -> Tuple[List[int], List[StepRecord], bool]:
        output_ids: List[int] = []
        records: List[StepRecord] = []
        stopped = False
        while len(output_ids) < config.max_new_tokens:
            remaining = config.max_new_tokens - len(output_ids)
            if self._truncate_budget(prompt_ids, len(output_ids), 1):
                break
            decoder, encoder = self._model_inputs(prompt_ids, output_ids)
            base_logits, hidden = self.model.forward_hidden(decoder, encoder)
            last_base = base_logits[0, -1]
            last_heads = [h[0] for h in self.model.head_logits_at(hidden[:, -1])]
            candidates = self._propose_candidates(last_base, last_heads, config, rng, mask)
            candidates = dedupe_candidates(self._clip_candidates(prompt_ids, output_ids, candidates, remaining))
            candidates, unpruned = self._apply_grammar_prefilter(candidates, config, mask)

            if config.tree_verify:
                tree = TokenTree.from_candidates(candidates)
                verification = self._verify_candidates_tree(prompt_ids, output_ids, tree)
                verified = tree.size
            else:
                verification = self._verify_candidates(prompt_ids, output_ids, candidates)
                verified = len(candidates) * max(len(candidate) for candidate in candidates)
            best_tokens, best_accepted, _ = self._select_best_candidate(candidates, verification, config)

            if mask is not None:
                for token_id in best_tokens:
                    mask.advance(token_id)
            output_ids.extend(best_tokens)
            records.append(
                StepRecord(
                    proposed=len(candidates[0]),
                    accepted=best_accepted,
                    committed=len(best_tokens),
                    ends_at_boundary=best_tokens[-1] in (self.frag_id, self.eos_id),
                    verified=verified,
                    verified_unpruned=unpruned,
                )
            )
            if self.eos_id in best_tokens:
                stopped = True
                break
        return output_ids, records, stopped

    def _generate_speculative_cached(
        self,
        prompt_ids: List[int],
        config: GenerationConfig,
        rng: np.random.Generator,
        mask: Optional[SyntaxMaskState] = None,
    ) -> Tuple[List[int], List[StepRecord], bool, float]:
        """Speculative decoding over a KV cache (the fast path).

        The prompt is prefilled once; afterwards each step runs exactly one
        batched incremental forward — over the candidate tokens only — which
        serves both as the verification pass for this step and as the source
        of the next step's proposal logits (the position of the last committed
        token).  After typical acceptance and fragment truncation the cache is
        collapsed to the accepted candidate's row and rolled back to the
        committed prefix, so rejected speculative tokens never pollute it.
        """
        output_ids: List[int] = []
        records: List[StepRecord] = []
        stopped = False
        if self._truncate_budget(prompt_ids, 0, 1):
            # Prompt already fills the context window; match the uncached path.
            return output_ids, records, stopped, 0.0
        if config.tree_verify:
            # The whole tree (all branches) is appended to the one cache row
            # before compaction, so the row needs headroom beyond the context
            # window: up to num_candidates full-length candidates of nodes.
            headroom = self.num_candidates * (self.max_speculative_heads + 1)
            cache = self.model.new_cache(capacity=self.model.backbone.max_seq_len + headroom)
        else:
            cache = self.model.new_cache()
        prefill_start = time.perf_counter()
        last_base, last_heads = self._prefill(prompt_ids, cache)
        prefill_seconds = time.perf_counter() - prefill_start
        while len(output_ids) < config.max_new_tokens:
            remaining = config.max_new_tokens - len(output_ids)
            if self._truncate_budget(prompt_ids, len(output_ids), 1):
                break
            candidates = self._propose_candidates(last_base, last_heads, config, rng, mask)
            candidates = dedupe_candidates(self._clip_candidates(prompt_ids, output_ids, candidates, remaining))
            candidates, unpruned = self._apply_grammar_prefilter(candidates, config, mask)
            prefix_len = cache.length
            greedy = config.greedy or config.temperature <= 0.0

            if config.tree_verify:
                # Token-tree verification: merge the candidates into one
                # prefix-deduplicated tree and verify every node in a single
                # cached forward over a single row — shared candidate
                # prefixes cost one position instead of one per candidate.
                tree = TokenTree.from_candidates(candidates)
                bias = tree_bias_cached([tree], [prefix_len], window=tree.size, view=prefix_len + tree.size)
                offsets = tree_position_offsets([tree], tree.size)
                base_v, hidden_v = self.model.forward_hidden(
                    np.asarray([tree.tokens], dtype=np.int64),
                    cache=cache,
                    attn_bias=bias,
                    position_offsets=offsets,
                )
                # The predictor of candidate token i is its candidate's node
                # i-1; token 0's predictor is the held proposal logits.
                if greedy:
                    argmax_nodes = np.argmax(base_v[0], axis=-1)
                    greedy_argmax = [
                        argmax_nodes[np.asarray(nodes[:-1], dtype=np.int64)] for nodes in tree.candidate_nodes
                    ]
                    logits_lists = None
                else:
                    greedy_argmax = None
                    logits_lists = [
                        [last_base] + [base_v[0, node] for node in nodes[:-1]] for nodes in tree.candidate_nodes
                    ]
            else:
                # Row-batched verification (the reference layout): every
                # candidate extends the same committed prefix, so expand the
                # cache to one row per candidate and run one incremental
                # forward over just the candidate tokens.
                padded = self._pad_candidates(candidates)
                cache.expand_batch(len(padded))
                base_v, hidden_v = self.model.forward_hidden(np.asarray(padded, dtype=np.int64), cache=cache)
                # Logits predicting candidate token i live at window position
                # i-1; token 0's predictor is the last prefix position (= the
                # proposal logits we already hold, unused by the scoring).
                if greedy:
                    # Greedy verification only compares argmaxes: one
                    # vectorised argmax over the window replaces per-position
                    # logit reads.
                    argmax_v = np.argmax(base_v, axis=-1)
                    greedy_argmax = [argmax_v[row, : len(candidate) - 1] for row, candidate in enumerate(candidates)]
                    logits_lists = None
                else:
                    greedy_argmax = None
                    logits_lists = [
                        [last_base] + [base_v[row, i - 1] for i in range(1, len(candidate))]
                        for row, candidate in enumerate(candidates)
                    ]
            best_tokens, best_accepted, best_row = select_best_candidate(
                candidates,
                logits_lists,
                config,
                acceptance=self.acceptance,
                strategy=self.strategy,
                frag_id=self.frag_id,
                eos_id=self.eos_id,
                greedy_argmax=greedy_argmax,
            )
            committed = len(best_tokens)

            if config.tree_verify:
                # Compact the appended tree to the accepted root-to-leaf path.
                path = tree.path(best_row, committed)
                cache.keep_path(prefix_len, path)
                verified = tree.size
                last_node = path[-1]
                next_base = base_v[0, last_node]
                next_hidden = hidden_v[0, last_node]
            else:
                # Roll back: keep the accepted row, drop rejected/truncated
                # tokens.
                cache.keep_row(best_row)
                cache.truncate(prefix_len + committed)
                verified = len(padded) * len(padded[0])
                next_base = base_v[best_row, committed - 1]
                next_hidden = hidden_v[best_row, committed - 1]

            if mask is not None:
                for token_id in best_tokens:
                    mask.advance(token_id)
            output_ids.extend(best_tokens)
            records.append(
                StepRecord(
                    proposed=len(candidates[0]),
                    accepted=best_accepted,
                    committed=committed,
                    ends_at_boundary=best_tokens[-1] in (self.frag_id, self.eos_id),
                    verified=verified,
                    verified_unpruned=unpruned,
                )
            )
            if self.eos_id in best_tokens:
                stopped = True
                break
            # The verification forward already produced the hidden state at the
            # last committed position — it seeds the next step's proposal (the
            # Medusa heads are evaluated only there, never over the window).
            last_base = next_base
            last_heads = [h[0] for h in self.model.head_logits_at(next_hidden[None, :])]
        return output_ids, records, stopped, prefill_seconds
