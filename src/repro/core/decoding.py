"""Speculative decoding loop (paper Sec. III-B).

:class:`SpeculativeDecoder` implements the three decoding regimes the paper
compares:

* ``NTP`` — conventional next-token prediction with the base head only;
* ``MEDUSA`` — multi-head speculative decoding with typical acceptance;
* ``OURS`` — Medusa-style speculation plus the fragment-integrity check that
  truncates every accepted run back to a syntactically complete fragment.

At each decoding step the model proposes a small set of candidate
continuations (the base head's top tokens extended with the Medusa heads'
predictions), verifies all candidates in a single batched forward pass — the
stand-in for Medusa's tree attention — scores them with the typical-acceptance
rule (eq. 1), optionally truncates to the last fragment boundary, and commits
the longest accepted candidate prefix.

By default the decoder runs **incrementally** over a per-layer KV cache
(:mod:`repro.nn.kv_cache`): the prompt is prefilled once, every verification
is one batched cached forward over just the candidate tokens, and the cache is
rolled back to the committed prefix afterwards so rejected speculative tokens
never pollute later steps.  Pass ``use_cache=False`` to fall back to the
original full-recompute loop (kept for equivalence testing); both paths commit
identical token sequences.
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.acceptance import TypicalAcceptance
from repro.core.integrity import truncate_to_complete_fragment
from repro.models.generation import GenerationConfig, sample_from_logits, top_k_token_ids
from repro.models.medusa import MedusaLM
from repro.tokenizer.bpe import BPETokenizer


class DecodingStrategy(enum.Enum):
    """The decoding regimes compared in the paper."""

    NTP = "ntp"
    MEDUSA = "medusa"
    OURS = "ours"


@dataclass
class StepRecord:
    """Bookkeeping for one decoding step (used by the Fig. 5 bench)."""

    proposed: int
    accepted: int
    committed: int
    ends_at_boundary: bool


@dataclass
class DecodeResult:
    """Outcome of one generation run."""

    token_ids: List[int]
    text: str
    code: str
    steps: int
    tokens_generated: int
    wall_time_seconds: float
    step_records: List[StepRecord] = field(default_factory=list)
    stopped_by_eos: bool = False
    #: Time spent on the one-off prompt prefill (cached decoding); 0.0 for the
    #: full-recompute path, which has no separable prefill.
    prefill_seconds: float = 0.0

    @property
    def decode_seconds(self) -> float:
        """Wall time of the decode loop, excluding the one-off prompt prefill."""
        return max(self.wall_time_seconds - self.prefill_seconds, 0.0)

    @property
    def tokens_per_second(self) -> float:
        """Raw generation speed (eq. 3 numerator / denominator for one output).

        Measured with ``time.perf_counter`` over the decode loop only:
        tokenization happens outside the timed region and the one-off prompt
        prefill is excluded, so cached and uncached runs (and prompts of
        different lengths) compare apples-to-apples on the per-token rate.
        """
        denominator = self.decode_seconds if self.decode_seconds > 0 else self.wall_time_seconds
        if denominator <= 0:
            return 0.0
        return self.tokens_generated / denominator

    @property
    def tokens_per_step(self) -> float:
        """Mean number of tokens committed per decoding step."""
        if self.steps == 0:
            return 0.0
        return self.tokens_generated / self.steps


class SpeculativeDecoder:
    """Generates Verilog with one of the three decoding strategies."""

    def __init__(
        self,
        model: MedusaLM,
        tokenizer: BPETokenizer,
        strategy: DecodingStrategy = DecodingStrategy.OURS,
        acceptance: Optional[TypicalAcceptance] = None,
        num_candidates: int = 3,
        max_speculative_heads: Optional[int] = None,
        use_cache: bool = True,
    ) -> None:
        self.model = model
        self.tokenizer = tokenizer
        self.strategy = strategy
        self.acceptance = acceptance or TypicalAcceptance()
        self.num_candidates = max(1, num_candidates)
        #: Incremental decoding over a per-layer KV cache (the default); set
        #: False to re-run the full forward every step (equivalence testing).
        self.use_cache = use_cache
        self.max_speculative_heads = (
            model.num_medusa_heads if max_speculative_heads is None else min(max_speculative_heads, model.num_medusa_heads)
        )
        vocab = tokenizer.vocab
        self.frag_id = vocab.frag_id
        self.eos_id = vocab.eos_id
        self.bos_id = vocab.bos_id

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #

    def generate(self, prompt_ids: Sequence[int], config: Optional[GenerationConfig] = None) -> DecodeResult:
        """Generate a completion for ``prompt_ids``."""
        config = config or GenerationConfig.greedy_config()
        rng = np.random.default_rng(config.seed)
        start = time.perf_counter()
        prefill_seconds = 0.0
        if self.strategy is DecodingStrategy.NTP or self.model.num_medusa_heads == 0:
            if self.use_cache:
                output_ids, records, stopped, prefill_seconds = self._generate_ntp_cached(
                    list(prompt_ids), config, rng
                )
            else:
                output_ids, records, stopped = self._generate_ntp(list(prompt_ids), config, rng)
        elif self.use_cache:
            output_ids, records, stopped, prefill_seconds = self._generate_speculative_cached(
                list(prompt_ids), config, rng
            )
        else:
            output_ids, records, stopped = self._generate_speculative(list(prompt_ids), config, rng)
        elapsed = time.perf_counter() - start
        text = self.tokenizer.decode(output_ids, keep_frag=True)
        code = self.tokenizer.decode(output_ids, keep_frag=False)
        return DecodeResult(
            token_ids=output_ids,
            text=text,
            code=code,
            steps=len(records),
            tokens_generated=len(output_ids),
            wall_time_seconds=elapsed,
            step_records=records,
            stopped_by_eos=stopped,
            prefill_seconds=prefill_seconds,
        )

    def generate_from_text(self, prompt: str, config: Optional[GenerationConfig] = None) -> DecodeResult:
        """Tokenize ``prompt`` and generate a completion."""
        prompt_ids = self.tokenizer.encode(prompt, add_bos=True)
        return self.generate(prompt_ids, config)

    # ------------------------------------------------------------------ #
    # Model plumbing
    # ------------------------------------------------------------------ #

    def _model_inputs(self, prompt_ids: List[int], output_ids: List[int]) -> Tuple[np.ndarray, Optional[np.ndarray]]:
        """Build (decoder input, encoder input) for the current architecture."""
        if self.model.is_encoder_decoder:
            decoder = np.asarray([self.bos_id] + output_ids, dtype=np.int64)
            encoder = np.asarray(prompt_ids, dtype=np.int64)
            return decoder, encoder
        decoder = np.asarray(prompt_ids + output_ids, dtype=np.int64)
        return decoder, None

    def _truncate_budget(self, prompt_ids: List[int], output_len: int, extra: int) -> bool:
        """True when adding ``extra`` tokens would exceed the context window."""
        if self.model.is_encoder_decoder:
            used = 1 + output_len + extra
        else:
            used = len(prompt_ids) + output_len + extra
        return used >= self.model.backbone.max_seq_len - 1

    def _prefill(self, prompt_ids: List[int], cache) -> Tuple[np.ndarray, List[np.ndarray]]:
        """Run the one-off prompt forward that seeds the KV cache.

        For encoder-decoder models this encodes the prompt (caching the
        encoder memory and, lazily, its per-layer cross-attention projections)
        and prefills the decoder with BOS; for decoder-only models it prefills
        the whole prompt.  Returns the last-position (base, head) logits.
        """
        if self.model.is_encoder_decoder:
            self.model.encode_prompt(np.asarray(prompt_ids, dtype=np.int64))
            prefill_ids = np.asarray([[self.bos_id]], dtype=np.int64)
        else:
            prefill_ids = np.asarray([prompt_ids], dtype=np.int64)
        base_logits, head_logits = self.model.forward(prefill_ids, cache=cache)
        return base_logits[0, -1], [h[0, -1] for h in head_logits]

    # ------------------------------------------------------------------ #
    # NTP baseline
    # ------------------------------------------------------------------ #

    def _generate_ntp(
        self, prompt_ids: List[int], config: GenerationConfig, rng: np.random.Generator
    ) -> Tuple[List[int], List[StepRecord], bool]:
        output_ids: List[int] = []
        records: List[StepRecord] = []
        stopped = False
        for _ in range(config.max_new_tokens):
            if self._truncate_budget(prompt_ids, len(output_ids), 1):
                break
            decoder, encoder = self._model_inputs(prompt_ids, output_ids)
            base_logits, _ = self.model.forward(decoder, encoder)
            next_token = sample_from_logits(base_logits[0, -1], config, rng)
            output_ids.append(next_token)
            records.append(StepRecord(proposed=1, accepted=1, committed=1, ends_at_boundary=True))
            if next_token == self.eos_id:
                stopped = True
                break
        return output_ids, records, stopped

    def _generate_ntp_cached(
        self, prompt_ids: List[int], config: GenerationConfig, rng: np.random.Generator
    ) -> Tuple[List[int], List[StepRecord], bool, float]:
        """NTP decoding with a KV cache: prefill once, then one-token forwards."""
        output_ids: List[int] = []
        records: List[StepRecord] = []
        stopped = False
        if self._truncate_budget(prompt_ids, 0, 1):
            # Prompt already fills the context window; match the uncached path
            # (which breaks before its first forward) instead of overflowing.
            return output_ids, records, stopped, 0.0
        cache = self.model.new_cache()
        prefill_start = time.perf_counter()
        last_base, _ = self._prefill(prompt_ids, cache)
        prefill_seconds = time.perf_counter() - prefill_start
        while len(output_ids) < config.max_new_tokens:
            if self._truncate_budget(prompt_ids, len(output_ids), 1):
                break
            next_token = sample_from_logits(last_base, config, rng)
            output_ids.append(next_token)
            records.append(StepRecord(proposed=1, accepted=1, committed=1, ends_at_boundary=True))
            if next_token == self.eos_id:
                stopped = True
                break
            if len(output_ids) < config.max_new_tokens and not self._truncate_budget(prompt_ids, len(output_ids), 1):
                base_logits, _ = self.model.forward(np.asarray([[next_token]], dtype=np.int64), cache=cache)
                last_base = base_logits[0, -1]
        return output_ids, records, stopped, prefill_seconds

    # ------------------------------------------------------------------ #
    # Speculative decoding (Medusa / Ours)
    # ------------------------------------------------------------------ #

    def _propose_candidates(
        self,
        base_logits: np.ndarray,
        head_logits: List[np.ndarray],
        config: GenerationConfig,
        rng: np.random.Generator,
    ) -> List[List[int]]:
        """Build candidate continuations from base + head predictions."""
        first_token = sample_from_logits(base_logits, config, rng)
        head_count = self.max_speculative_heads
        head_top1 = [int(np.argmax(logits)) for logits in head_logits[:head_count]]
        head_top2 = [
            int(top_k_token_ids(logits, 2)[1]) if logits.shape[-1] > 1 else int(np.argmax(logits))
            for logits in head_logits[:head_count]
        ]
        base_top = top_k_token_ids(base_logits, self.num_candidates)

        candidates: List[List[int]] = []
        # Candidate 1: committed base token + every head's top-1.
        candidates.append([first_token] + head_top1)
        # Candidate 2: alternative base token + heads' top-1.
        if len(base_top) > 1 and int(base_top[1]) != first_token:
            candidates.append([int(base_top[1])] + head_top1)
        elif len(base_top) > 0 and int(base_top[0]) != first_token:
            candidates.append([int(base_top[0])] + head_top1)
        # Candidate 3: committed base token + head-1's runner-up then top-1s.
        if head_count >= 1:
            alt = [first_token, head_top2[0]] + head_top1[1:]
            candidates.append(alt)
        return candidates[: max(self.num_candidates, 1)]

    @staticmethod
    def _greedy_match_length(logits_per_position: List[np.ndarray], candidate_tokens: List[int]) -> int:
        """Length of the prefix whose tokens equal the base model's argmax.

        This is the lossless verification used for greedy decoding: a
        speculated token is kept only if the base model itself would have
        produced it, so the committed sequence is identical to what plain
        next-token prediction would generate.
        """
        matched = 0
        for logits, token_id in zip(logits_per_position, candidate_tokens):
            if int(np.argmax(logits)) != int(token_id):
                break
            matched += 1
        return matched

    @staticmethod
    def _pad_candidates(candidates: List[List[int]]) -> List[List[int]]:
        """Right-pad candidates to equal length (repeating the last token) for batching."""
        length = max(len(c) for c in candidates)
        return [c + [c[-1]] * (length - len(c)) for c in candidates]

    def _verify_candidates(
        self,
        prompt_ids: List[int],
        output_ids: List[int],
        candidates: List[List[int]],
    ) -> List[List[np.ndarray]]:
        """Return base-model logits for every candidate position (batched)."""
        padded = self._pad_candidates(candidates)
        length = len(padded[0])
        batch_rows = []
        encoder_batch = None
        if self.model.is_encoder_decoder:
            for candidate in padded:
                batch_rows.append([self.bos_id] + output_ids + candidate)
            encoder_batch = np.tile(np.asarray(prompt_ids, dtype=np.int64)[None, :], (len(padded), 1))
        else:
            for candidate in padded:
                batch_rows.append(prompt_ids + output_ids + candidate)
        batch = np.asarray(batch_rows, dtype=np.int64)
        base_logits, _ = self.model.forward(batch, encoder_batch)
        # Position that predicts candidate token i is (prefix_len - 1 + i).
        prefix_len = batch.shape[1] - length
        per_candidate: List[List[np.ndarray]] = []
        for row, candidate in enumerate(candidates):
            logits_list = [base_logits[row, prefix_len - 1 + i] for i in range(len(candidate))]
            per_candidate.append(logits_list)
        return per_candidate

    def _select_best_candidate(
        self,
        candidates: List[List[int]],
        logits_lists: List[List[np.ndarray]],
        config: GenerationConfig,
    ) -> Tuple[List[int], int, int]:
        """Score every verified candidate and pick the longest committed run.

        The first token of each candidate comes from the base model itself and
        is always committed; acceptance applies to the speculated tail.  Under
        greedy decoding the verification is exact-match against the base
        model's argmax (lossless, as in Medusa's greedy mode); under sampling
        it is the typical-acceptance rule (eq. 1).  ``logits_lists[row][i]``
        are the base-model logits at the position that predicts candidate
        token ``i`` (index 0 is unused by the scoring, since token 0 is always
        committed).  Returns ``(tokens, accepted, row)``.
        """
        best_tokens: List[int] = []
        best_accepted = 0
        best_row = 0
        for row, (candidate, logits_list) in enumerate(zip(candidates, logits_lists)):
            if config.greedy or config.temperature <= 0.0:
                accepted_tail = self._greedy_match_length(logits_list[1:], candidate[1:])
            else:
                accepted_tail = self.acceptance.accepted_prefix_length(logits_list[1:], candidate[1:])
            accepted = 1 + accepted_tail
            tokens = candidate[:accepted]
            if self.strategy is DecodingStrategy.OURS:
                tokens = truncate_to_complete_fragment(tokens, self.frag_id, eos_id=self.eos_id)
            # EOS anywhere in the run ends the output there.
            if self.eos_id in tokens:
                tokens = tokens[: tokens.index(self.eos_id) + 1]
            if len(tokens) > len(best_tokens):
                best_tokens = tokens
                best_accepted = accepted
                best_row = row
        if not best_tokens:
            best_tokens = [candidates[0][0]]
            best_accepted = 1
            best_row = 0
        return best_tokens, best_accepted, best_row

    def _clip_candidates(
        self, prompt_ids: List[int], output_ids: List[int], candidates: List[List[int]], remaining: int
    ) -> List[List[int]]:
        """Clip candidates to the remaining budget / context window."""
        max_extra = remaining
        while self._truncate_budget(prompt_ids, len(output_ids), max_extra) and max_extra > 1:
            max_extra -= 1
        return [c[:max_extra] for c in candidates]

    def _generate_speculative(
        self, prompt_ids: List[int], config: GenerationConfig, rng: np.random.Generator
    ) -> Tuple[List[int], List[StepRecord], bool]:
        output_ids: List[int] = []
        records: List[StepRecord] = []
        stopped = False
        while len(output_ids) < config.max_new_tokens:
            remaining = config.max_new_tokens - len(output_ids)
            if self._truncate_budget(prompt_ids, len(output_ids), 1):
                break
            decoder, encoder = self._model_inputs(prompt_ids, output_ids)
            base_logits, head_logits = self.model.forward(decoder, encoder)
            last_base = base_logits[0, -1]
            last_heads = [h[0, -1] for h in head_logits]
            candidates = self._propose_candidates(last_base, last_heads, config, rng)
            candidates = self._clip_candidates(prompt_ids, output_ids, candidates, remaining)

            verification = self._verify_candidates(prompt_ids, output_ids, candidates)
            best_tokens, best_accepted, _ = self._select_best_candidate(candidates, verification, config)

            output_ids.extend(best_tokens)
            records.append(
                StepRecord(
                    proposed=len(candidates[0]),
                    accepted=best_accepted,
                    committed=len(best_tokens),
                    ends_at_boundary=best_tokens[-1] in (self.frag_id, self.eos_id),
                )
            )
            if self.eos_id in best_tokens:
                stopped = True
                break
        return output_ids, records, stopped

    def _generate_speculative_cached(
        self, prompt_ids: List[int], config: GenerationConfig, rng: np.random.Generator
    ) -> Tuple[List[int], List[StepRecord], bool, float]:
        """Speculative decoding over a KV cache (the fast path).

        The prompt is prefilled once; afterwards each step runs exactly one
        batched incremental forward — over the candidate tokens only — which
        serves both as the verification pass for this step and as the source
        of the next step's proposal logits (the position of the last committed
        token).  After typical acceptance and fragment truncation the cache is
        collapsed to the accepted candidate's row and rolled back to the
        committed prefix, so rejected speculative tokens never pollute it.
        """
        output_ids: List[int] = []
        records: List[StepRecord] = []
        stopped = False
        if self._truncate_budget(prompt_ids, 0, 1):
            # Prompt already fills the context window; match the uncached path.
            return output_ids, records, stopped, 0.0
        cache = self.model.new_cache()
        prefill_start = time.perf_counter()
        last_base, last_heads = self._prefill(prompt_ids, cache)
        prefill_seconds = time.perf_counter() - prefill_start
        while len(output_ids) < config.max_new_tokens:
            remaining = config.max_new_tokens - len(output_ids)
            if self._truncate_budget(prompt_ids, len(output_ids), 1):
                break
            candidates = self._propose_candidates(last_base, last_heads, config, rng)
            candidates = self._clip_candidates(prompt_ids, output_ids, candidates, remaining)

            # Batched cached verification: every candidate extends the same
            # committed prefix, so expand the cache to one row per candidate
            # and run one incremental forward over just the candidate tokens.
            padded = self._pad_candidates(candidates)
            prefix_len = cache.length
            cache.expand_batch(len(padded))
            base_v, heads_v = self.model.forward(np.asarray(padded, dtype=np.int64), cache=cache)
            # Logits predicting candidate token i live at window position i-1;
            # token 0's predictor is the last prefix position (= the proposal
            # logits we already hold, unused by the scoring).
            logits_lists = [
                [last_base] + [base_v[row, i - 1] for i in range(1, len(candidate))]
                for row, candidate in enumerate(candidates)
            ]
            best_tokens, best_accepted, best_row = self._select_best_candidate(candidates, logits_lists, config)

            # Roll back: keep the accepted row, drop rejected/truncated tokens.
            committed = len(best_tokens)
            cache.keep_row(best_row)
            cache.truncate(prefix_len + committed)

            output_ids.extend(best_tokens)
            records.append(
                StepRecord(
                    proposed=len(candidates[0]),
                    accepted=best_accepted,
                    committed=committed,
                    ends_at_boundary=best_tokens[-1] in (self.frag_id, self.eos_id),
                )
            )
            if self.eos_id in best_tokens:
                stopped = True
                break
            # The verification forward already produced the logits at the last
            # committed position — they seed the next step's proposal.
            last_base = base_v[best_row, committed - 1]
            last_heads = [h[best_row, committed - 1] for h in heads_v]
        return output_ids, records, stopped, prefill_seconds
