"""Speculative decoding loop (paper Sec. III-B).

:class:`SpeculativeDecoder` implements the three decoding regimes the paper
compares:

* ``NTP`` — conventional next-token prediction with the base head only;
* ``MEDUSA`` — multi-head speculative decoding with typical acceptance;
* ``OURS`` — Medusa-style speculation plus the fragment-integrity check that
  truncates every accepted run back to a syntactically complete fragment.

At each decoding step the model proposes a small set of candidate
continuations (the base head's top tokens extended with the Medusa heads'
predictions), verifies all candidates in a single batched forward pass — the
stand-in for Medusa's tree attention — scores them with the typical-acceptance
rule (eq. 1), optionally truncates to the last fragment boundary, and commits
the longest accepted candidate prefix.
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.acceptance import TypicalAcceptance
from repro.core.integrity import truncate_to_complete_fragment
from repro.models.generation import GenerationConfig, sample_from_logits, top_k_token_ids
from repro.models.medusa import MedusaLM
from repro.tokenizer.bpe import BPETokenizer


class DecodingStrategy(enum.Enum):
    """The decoding regimes compared in the paper."""

    NTP = "ntp"
    MEDUSA = "medusa"
    OURS = "ours"


@dataclass
class StepRecord:
    """Bookkeeping for one decoding step (used by the Fig. 5 bench)."""

    proposed: int
    accepted: int
    committed: int
    ends_at_boundary: bool


@dataclass
class DecodeResult:
    """Outcome of one generation run."""

    token_ids: List[int]
    text: str
    code: str
    steps: int
    tokens_generated: int
    wall_time_seconds: float
    step_records: List[StepRecord] = field(default_factory=list)
    stopped_by_eos: bool = False

    @property
    def tokens_per_second(self) -> float:
        """Raw generation speed (eq. 3 numerator / denominator for one output)."""
        if self.wall_time_seconds <= 0:
            return 0.0
        return self.tokens_generated / self.wall_time_seconds

    @property
    def tokens_per_step(self) -> float:
        """Mean number of tokens committed per decoding step."""
        if self.steps == 0:
            return 0.0
        return self.tokens_generated / self.steps


class SpeculativeDecoder:
    """Generates Verilog with one of the three decoding strategies."""

    def __init__(
        self,
        model: MedusaLM,
        tokenizer: BPETokenizer,
        strategy: DecodingStrategy = DecodingStrategy.OURS,
        acceptance: Optional[TypicalAcceptance] = None,
        num_candidates: int = 3,
        max_speculative_heads: Optional[int] = None,
    ) -> None:
        self.model = model
        self.tokenizer = tokenizer
        self.strategy = strategy
        self.acceptance = acceptance or TypicalAcceptance()
        self.num_candidates = max(1, num_candidates)
        self.max_speculative_heads = (
            model.num_medusa_heads if max_speculative_heads is None else min(max_speculative_heads, model.num_medusa_heads)
        )
        vocab = tokenizer.vocab
        self.frag_id = vocab.frag_id
        self.eos_id = vocab.eos_id
        self.bos_id = vocab.bos_id

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #

    def generate(self, prompt_ids: Sequence[int], config: Optional[GenerationConfig] = None) -> DecodeResult:
        """Generate a completion for ``prompt_ids``."""
        config = config or GenerationConfig.greedy_config()
        rng = np.random.default_rng(config.seed)
        start = time.perf_counter()
        if self.strategy is DecodingStrategy.NTP or self.model.num_medusa_heads == 0:
            output_ids, records, stopped = self._generate_ntp(list(prompt_ids), config, rng)
        else:
            output_ids, records, stopped = self._generate_speculative(list(prompt_ids), config, rng)
        elapsed = time.perf_counter() - start
        text = self.tokenizer.decode(output_ids, keep_frag=True)
        code = self.tokenizer.decode(output_ids, keep_frag=False)
        return DecodeResult(
            token_ids=output_ids,
            text=text,
            code=code,
            steps=len(records),
            tokens_generated=len(output_ids),
            wall_time_seconds=elapsed,
            step_records=records,
            stopped_by_eos=stopped,
        )

    def generate_from_text(self, prompt: str, config: Optional[GenerationConfig] = None) -> DecodeResult:
        """Tokenize ``prompt`` and generate a completion."""
        prompt_ids = self.tokenizer.encode(prompt, add_bos=True)
        return self.generate(prompt_ids, config)

    # ------------------------------------------------------------------ #
    # Model plumbing
    # ------------------------------------------------------------------ #

    def _model_inputs(self, prompt_ids: List[int], output_ids: List[int]) -> Tuple[np.ndarray, Optional[np.ndarray]]:
        """Build (decoder input, encoder input) for the current architecture."""
        if self.model.is_encoder_decoder:
            decoder = np.asarray([self.bos_id] + output_ids, dtype=np.int64)
            encoder = np.asarray(prompt_ids, dtype=np.int64)
            return decoder, encoder
        decoder = np.asarray(prompt_ids + output_ids, dtype=np.int64)
        return decoder, None

    def _truncate_budget(self, prompt_ids: List[int], output_len: int, extra: int) -> bool:
        """True when adding ``extra`` tokens would exceed the context window."""
        if self.model.is_encoder_decoder:
            used = 1 + output_len + extra
        else:
            used = len(prompt_ids) + output_len + extra
        return used >= self.model.backbone.max_seq_len - 1

    # ------------------------------------------------------------------ #
    # NTP baseline
    # ------------------------------------------------------------------ #

    def _generate_ntp(
        self, prompt_ids: List[int], config: GenerationConfig, rng: np.random.Generator
    ) -> Tuple[List[int], List[StepRecord], bool]:
        output_ids: List[int] = []
        records: List[StepRecord] = []
        stopped = False
        for _ in range(config.max_new_tokens):
            if self._truncate_budget(prompt_ids, len(output_ids), 1):
                break
            decoder, encoder = self._model_inputs(prompt_ids, output_ids)
            base_logits, _ = self.model.forward(decoder, encoder)
            next_token = sample_from_logits(base_logits[0, -1], config, rng)
            output_ids.append(next_token)
            records.append(StepRecord(proposed=1, accepted=1, committed=1, ends_at_boundary=True))
            if next_token == self.eos_id:
                stopped = True
                break
        return output_ids, records, stopped

    # ------------------------------------------------------------------ #
    # Speculative decoding (Medusa / Ours)
    # ------------------------------------------------------------------ #

    def _propose_candidates(
        self,
        base_logits: np.ndarray,
        head_logits: List[np.ndarray],
        config: GenerationConfig,
        rng: np.random.Generator,
    ) -> List[List[int]]:
        """Build candidate continuations from base + head predictions."""
        first_token = sample_from_logits(base_logits, config, rng)
        head_count = self.max_speculative_heads
        head_top1 = [int(np.argmax(logits)) for logits in head_logits[:head_count]]
        head_top2 = [
            int(top_k_token_ids(logits, 2)[1]) if logits.shape[-1] > 1 else int(np.argmax(logits))
            for logits in head_logits[:head_count]
        ]
        base_top = top_k_token_ids(base_logits, self.num_candidates)

        candidates: List[List[int]] = []
        # Candidate 1: committed base token + every head's top-1.
        candidates.append([first_token] + head_top1)
        # Candidate 2: alternative base token + heads' top-1.
        if len(base_top) > 1 and int(base_top[1]) != first_token:
            candidates.append([int(base_top[1])] + head_top1)
        elif len(base_top) > 0 and int(base_top[0]) != first_token:
            candidates.append([int(base_top[0])] + head_top1)
        # Candidate 3: committed base token + head-1's runner-up then top-1s.
        if head_count >= 1:
            alt = [first_token, head_top2[0]] + head_top1[1:]
            candidates.append(alt)
        return candidates[: max(self.num_candidates, 1)]

    @staticmethod
    def _greedy_match_length(logits_per_position: List[np.ndarray], candidate_tokens: List[int]) -> int:
        """Length of the prefix whose tokens equal the base model's argmax.

        This is the lossless verification used for greedy decoding: a
        speculated token is kept only if the base model itself would have
        produced it, so the committed sequence is identical to what plain
        next-token prediction would generate.
        """
        matched = 0
        for logits, token_id in zip(logits_per_position, candidate_tokens):
            if int(np.argmax(logits)) != int(token_id):
                break
            matched += 1
        return matched

    def _verify_candidates(
        self,
        prompt_ids: List[int],
        output_ids: List[int],
        candidates: List[List[int]],
    ) -> List[List[np.ndarray]]:
        """Return base-model logits for every candidate position (batched)."""
        length = max(len(c) for c in candidates)
        padded = [c + [c[-1]] * (length - len(c)) for c in candidates]
        batch_rows = []
        encoder_batch = None
        if self.model.is_encoder_decoder:
            for candidate in padded:
                batch_rows.append([self.bos_id] + output_ids + candidate)
            encoder_batch = np.tile(np.asarray(prompt_ids, dtype=np.int64)[None, :], (len(padded), 1))
        else:
            for candidate in padded:
                batch_rows.append(prompt_ids + output_ids + candidate)
        batch = np.asarray(batch_rows, dtype=np.int64)
        base_logits, _ = self.model.forward(batch, encoder_batch)
        # Position that predicts candidate token i is (prefix_len - 1 + i).
        prefix_len = batch.shape[1] - length
        per_candidate: List[List[np.ndarray]] = []
        for row, candidate in enumerate(candidates):
            logits_list = [base_logits[row, prefix_len - 1 + i] for i in range(len(candidate))]
            per_candidate.append(logits_list)
        return per_candidate

    def _generate_speculative(
        self, prompt_ids: List[int], config: GenerationConfig, rng: np.random.Generator
    ) -> Tuple[List[int], List[StepRecord], bool]:
        output_ids: List[int] = []
        records: List[StepRecord] = []
        stopped = False
        while len(output_ids) < config.max_new_tokens:
            remaining = config.max_new_tokens - len(output_ids)
            if self._truncate_budget(prompt_ids, len(output_ids), 1):
                break
            decoder, encoder = self._model_inputs(prompt_ids, output_ids)
            base_logits, head_logits = self.model.forward(decoder, encoder)
            last_base = base_logits[0, -1]
            last_heads = [h[0, -1] for h in head_logits]
            candidates = self._propose_candidates(last_base, last_heads, config, rng)

            # Clip candidates to the remaining budget / context window.
            max_extra = remaining
            while self._truncate_budget(prompt_ids, len(output_ids), max_extra) and max_extra > 1:
                max_extra -= 1
            candidates = [c[:max_extra] for c in candidates]

            verification = self._verify_candidates(prompt_ids, output_ids, candidates)

            best_tokens: List[int] = []
            best_accepted = 0
            for candidate, logits_list in zip(candidates, verification):
                # The first token comes from the base model itself and is always
                # committed; acceptance applies to the speculated tail.  Under
                # greedy decoding the verification is exact-match against the
                # base model's argmax (lossless, as in Medusa's greedy mode);
                # under sampling it is the typical-acceptance rule (eq. 1).
                if config.greedy or config.temperature <= 0.0:
                    accepted_tail = self._greedy_match_length(logits_list[1:], candidate[1:])
                else:
                    accepted_tail = self.acceptance.accepted_prefix_length(logits_list[1:], candidate[1:])
                accepted = 1 + accepted_tail
                tokens = candidate[:accepted]
                if self.strategy is DecodingStrategy.OURS:
                    tokens = truncate_to_complete_fragment(tokens, self.frag_id, eos_id=self.eos_id)
                # EOS anywhere in the run ends the output there.
                if self.eos_id in tokens:
                    tokens = tokens[: tokens.index(self.eos_id) + 1]
                if len(tokens) > len(best_tokens):
                    best_tokens = tokens
                    best_accepted = accepted
            if not best_tokens:
                best_tokens = [candidates[0][0]]
                best_accepted = 1

            output_ids.extend(best_tokens)
            records.append(
                StepRecord(
                    proposed=len(candidates[0]),
                    accepted=best_accepted,
                    committed=len(best_tokens),
                    ends_at_boundary=best_tokens[-1] in (self.frag_id, self.eos_id),
                )
            )
            if best_tokens[-1] == self.eos_id or self.eos_id in best_tokens:
                stopped = True
                break
        return output_ids, records, stopped
