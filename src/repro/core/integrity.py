"""Fragment-integrity check for accepted speculative tokens (paper Sec. III-B).

After the typical-acceptance rule has accepted a run of candidate tokens, the
paper re-evaluates the run and *discards any trailing tokens that break the
integrity of the current code fragment*: if the tokens up to position ``v``
already form a complete fragment (they end at a ``[FRAG]`` boundary), the
outputs of the remaining heads are dropped.

Operationally, with ``[FRAG]`` being a single vocabulary token, a prefix is
complete exactly when its last token is the ``[FRAG]`` marker (or when it ends
with EOS).  The integrity check therefore truncates the accepted run back to
the last such boundary — unless the run contains *no* boundary at all, in which
case the first token is kept so that decoding always makes progress (this
mirrors the base model's guaranteed one-token advance in Medusa).
"""

from __future__ import annotations

from typing import List, Optional, Sequence


def truncate_to_complete_fragment(
    accepted_tokens: Sequence[int],
    frag_id: int,
    eos_id: Optional[int] = None,
    minimum_tokens: int = 1,
) -> List[int]:
    """Drop trailing tokens that would leave an incomplete fragment.

    Args:
        accepted_tokens: token ids accepted by the typical-acceptance rule, in
            order (the token at ``t+1`` first).
        frag_id: id of the ``[FRAG]`` fragment-boundary token.
        eos_id: optional end-of-sequence id; an EOS also closes a fragment.
        minimum_tokens: the minimum number of tokens to keep when no boundary
            is present (1 preserves Medusa's guaranteed single-token progress;
            0 would stall decoding).

    Returns:
        The (possibly shorter) list of tokens that ends at a fragment boundary,
        or the first ``minimum_tokens`` tokens when the run contains none.
    """
    tokens = list(accepted_tokens)
    if not tokens:
        return tokens
    last_boundary = -1
    for index, token in enumerate(tokens):
        if token == frag_id or (eos_id is not None and token == eos_id):
            last_boundary = index
    if last_boundary >= 0:
        return tokens[: last_boundary + 1]
    return tokens[: max(minimum_tokens, 0)]


def ends_at_fragment_boundary(tokens: Sequence[int], frag_id: int, eos_id: Optional[int] = None) -> bool:
    """True when the token run is empty or ends with ``[FRAG]`` (or EOS)."""
    if not tokens:
        return True
    last = tokens[-1]
    return last == frag_id or (eos_id is not None and last == eos_id)
