"""Syntax-enriched label construction (paper Sec. III-C, Fig. 4).

Given the base model's label sequence ``L0`` (the tokenized Verilog code with
``[FRAG]`` markers), the label for head ``i`` is the left-shift ``L0[i:]``
padded back to the original length with ``[PAD]``.  The stacked label matrix
has shape ``(num_heads + 1, seq_len)`` with the base label in row 0.

The *syntax enrichment* step then replaces, in every column, all head labels
beyond the last ``[FRAG]`` marker with ``[IGNORE]``, so that each supervised
prefix down the head axis ends exactly at a fragment boundary.  Two
implementations are provided:

* :func:`apply_syntax_enrichment` — the vectorised "parallel algorithm" from
  the right panel of Fig. 4 (reverse iteration over heads with a boolean
  fragment mask and early termination);
* :func:`apply_syntax_enrichment_reference` — a direct per-column
  implementation used as the oracle in property-based tests.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np


def build_shifted_labels(base_label: Sequence[int], num_heads: int, pad_id: int) -> np.ndarray:
    """Stack the base label and its per-head left-shifts (Fig. 4, "Before").

    Args:
        base_label: the base model's label sequence ``L0``.
        num_heads: number of Medusa heads ``n``.
        pad_id: id of the ``[PAD]`` token appended to shifted labels.

    Returns:
        An integer array of shape ``(num_heads + 1, len(base_label))`` whose
        row ``i`` is ``L0[i:]`` followed by ``i`` pad tokens.
    """
    base = np.asarray(base_label, dtype=np.int64)
    seq_len = base.shape[0]
    labels = np.full((num_heads + 1, seq_len), pad_id, dtype=np.int64)
    for i in range(num_heads + 1):
        if i < seq_len:
            labels[i, : seq_len - i] = base[i:]
    return labels


def apply_syntax_enrichment(labels: np.ndarray, frag_id: int, ignore_id: int) -> np.ndarray:
    """Vectorised syntax-enrichment masking (the paper's parallel algorithm).

    For every sequence position (column), head labels located *after* the last
    ``[FRAG]`` token along the head axis are replaced with ``[IGNORE]`` so the
    supervised fragment is always syntactically complete.  Columns whose head
    labels contain no ``[FRAG]`` at all are left untouched.

    The base row (row 0) is never modified.

    Args:
        labels: array of shape ``(num_heads + 1, seq_len)`` from
            :func:`build_shifted_labels`.  The input is not modified.
        frag_id: token id of ``[FRAG]``.
        ignore_id: token id of ``[IGNORE]``.

    Returns:
        A new array with the masking applied.
    """
    out = labels.copy()
    num_rows = out.shape[0]
    if num_rows <= 1:
        return out
    # Step 1: initialise the fragment mask — columns with a [FRAG] anywhere in
    # the head rows.
    has_frag_mask = (out[1:, :] == frag_id).sum(axis=0) > 0
    # Step 2: iterate over heads in reverse.
    for i in range(num_rows - 1, 0, -1):
        temp_mask = out[i, :] != frag_id
        has_frag_mask &= temp_mask
        if not has_frag_mask.any():
            # Early termination: nothing left to mask.
            break
        out[i, has_frag_mask] = ignore_id
    return out


def apply_syntax_enrichment_reference(labels: np.ndarray, frag_id: int, ignore_id: int) -> np.ndarray:
    """Naive per-column implementation of the syntax-enrichment masking.

    Used as an oracle in tests: for each column, find the last row (head) whose
    label is ``[FRAG]``; every later row becomes ``[IGNORE]``.  Columns without
    any ``[FRAG]`` among the head rows are unchanged.
    """
    out = labels.copy()
    num_rows, seq_len = out.shape
    for column in range(seq_len):
        last_frag_row: Optional[int] = None
        for row in range(1, num_rows):
            if out[row, column] == frag_id:
                last_frag_row = row
        if last_frag_row is None:
            continue
        for row in range(last_frag_row + 1, num_rows):
            out[row, column] = ignore_id
    return out


def build_syntax_enriched_labels(
    base_label: Sequence[int],
    num_heads: int,
    frag_id: int,
    pad_id: int,
    ignore_id: int,
    ignore_prompt_mask: Optional[Sequence[bool]] = None,
) -> np.ndarray:
    """Full label-construction pipeline: shift, pad, then syntax-enrich.

    Args:
        base_label: the base model's label sequence (already containing the
            ``[FRAG]`` markers, and possibly ``ignore_id`` at prompt positions).
        num_heads: number of Medusa heads.
        frag_id: id of ``[FRAG]``.
        pad_id: id of ``[PAD]``.
        ignore_id: id of ``[IGNORE]``.
        ignore_prompt_mask: optional per-position mask; where True, the labels
            of *all* rows are forced to ``ignore_id`` (used to exclude prompt
            positions from the loss for decoder-only models).

    Returns:
        The ``(num_heads + 1, seq_len)`` label matrix used by
        :class:`repro.core.training.MedusaLoss`.
    """
    labels = build_shifted_labels(base_label, num_heads, pad_id)
    labels = apply_syntax_enrichment(labels, frag_id, ignore_id)
    # [PAD] positions never contribute to the loss either.
    labels[labels == pad_id] = ignore_id
    if ignore_prompt_mask is not None:
        mask = np.asarray(ignore_prompt_mask, dtype=bool)
        labels[:, mask] = ignore_id
    return labels


def ignore_fraction_per_head(labels: np.ndarray, ignore_id: int) -> List[float]:
    """Fraction of ``[IGNORE]`` positions in each row of the label matrix.

    The paper notes that the proportion of ignored positions grows for later
    heads, which reduces their prediction difficulty; this helper exposes that
    statistic for tests and the ablation bench.
    """
    return [float(np.mean(labels[row] == ignore_id)) for row in range(labels.shape[0])]
