"""End-to-end pipeline: corpus -> refinement -> tokenizer -> training -> decoding.

:class:`VerilogSpecPipeline` wires the whole reproduction together so that the
examples and the benchmark harness can, in a few lines, reproduce the paper's
experimental conditions: fine-tune the same backbone with the three training
methods (Ours / Medusa / NTP), on a chosen fraction of the corpus, and obtain a
decoder per method for quality and speed evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.decoding import DecodingStrategy, SpeculativeDecoder
from repro.core.training import MedusaTrainer, TrainerConfig, TrainingSample
from repro.data.alpaca import AlpacaExample, build_alpaca_dataset, subset_fractions
from repro.data.corpus import CorpusConfig, SyntheticVerilogCorpus
from repro.data.refinement import RefinementConfig, refine_corpus
from repro.models.decoder_lm import DecoderConfig, TinyCodeLlama
from repro.models.encdec_lm import EncDecConfig, TinyCodeT5p
from repro.models.medusa import MedusaLM
from repro.tokenizer.bpe import BPETokenizer

#: Mapping from method name to decoding strategy.
METHOD_STRATEGIES = {
    "ours": DecodingStrategy.OURS,
    "medusa": DecodingStrategy.MEDUSA,
    "ntp": DecodingStrategy.NTP,
}


@dataclass
class PipelineConfig:
    """Configuration of the end-to-end pipeline.

    The defaults are sized for test/bench runs that finish in seconds; the
    examples use larger values.
    """

    # Corpus.
    corpus_items: int = 120
    corpus_seed: int = 0
    # Tokenizer.
    vocab_size: int = 800
    # Model.
    architecture: str = "decoder-only"  # or "encoder-decoder"
    model_dim: int = 64
    num_layers: int = 2
    num_attention_heads: int = 4
    num_medusa_heads: int = 10
    max_seq_len: int = 320
    model_seed: int = 0
    # Training.
    epochs: int = 2
    learning_rate: float = 5e-4
    warmup_steps: int = 40
    max_train_seq_len: int = 256
    # Data fraction used for training (1.0 = full corpus).
    data_fraction: float = 1.0


@dataclass
class PipelineArtifacts:
    """Everything produced by :meth:`VerilogSpecPipeline.prepare`."""

    examples: List[AlpacaExample] = field(default_factory=list)
    tokenizer: Optional[BPETokenizer] = None


class VerilogSpecPipeline:
    """Builds and trains the three model variants the paper compares."""

    def __init__(self, config: Optional[PipelineConfig] = None) -> None:
        self.config = config or PipelineConfig()
        self.tokenizer: Optional[BPETokenizer] = None
        self.examples: List[AlpacaExample] = []
        self.models: Dict[str, MedusaLM] = {}
        self.histories: Dict[str, object] = {}

    # ------------------------------------------------------------------ #
    # Data and tokenizer
    # ------------------------------------------------------------------ #

    def prepare(self) -> PipelineArtifacts:
        """Generate the corpus, refine it and train the tokenizer."""
        corpus = SyntheticVerilogCorpus(
            CorpusConfig(num_items=self.config.corpus_items, seed=self.config.corpus_seed)
        )
        report = refine_corpus(corpus.generate(), RefinementConfig())
        examples = build_alpaca_dataset(report.items)
        if self.config.data_fraction < 1.0:
            subsets = subset_fractions(examples, fractions=(self.config.data_fraction,), seed=self.config.corpus_seed)
            examples = subsets[self.config.data_fraction]
        self.examples = examples

        tokenizer = BPETokenizer()
        corpus_texts: List[str] = []
        for example in examples:
            corpus_texts.append(example.prompt_text())
            corpus_texts.append(example.output_with_frag)
        tokenizer.train(corpus_texts, vocab_size=self.config.vocab_size)
        self.tokenizer = tokenizer
        return PipelineArtifacts(examples=examples, tokenizer=tokenizer)

    # ------------------------------------------------------------------ #
    # Models
    # ------------------------------------------------------------------ #

    def build_model(self, method: str) -> MedusaLM:
        """Instantiate a fresh model for ``method`` ("ours"/"medusa"/"ntp")."""
        if self.tokenizer is None:
            raise RuntimeError("call prepare() before build_model()")
        vocab_size = self.tokenizer.vocab_size
        config = self.config
        if config.architecture == "encoder-decoder":
            backbone = TinyCodeT5p(
                EncDecConfig(
                    vocab_size=vocab_size,
                    dim=config.model_dim,
                    num_encoder_layers=config.num_layers,
                    num_decoder_layers=config.num_layers,
                    num_heads=config.num_attention_heads,
                    max_seq_len=config.max_seq_len,
                    seed=config.model_seed,
                )
            )
        else:
            backbone = TinyCodeLlama(
                DecoderConfig(
                    vocab_size=vocab_size,
                    dim=config.model_dim,
                    num_layers=config.num_layers,
                    num_heads=config.num_attention_heads,
                    max_seq_len=config.max_seq_len,
                    seed=config.model_seed,
                )
            )
        num_heads = 0 if method == "ntp" else config.num_medusa_heads
        return MedusaLM(backbone, vocab_size=vocab_size, num_medusa_heads=num_heads, seed=config.model_seed)

    def training_samples(self, method: str) -> List[TrainingSample]:
        """Tokenize the Alpaca examples for ``method``.

        The ``ours`` variant trains on ``[FRAG]``-annotated code; the baselines
        train on the identical data without the markers (paper Sec. IV-A.1).
        """
        if self.tokenizer is None:
            raise RuntimeError("call prepare() before training_samples()")
        samples: List[TrainingSample] = []
        for example in self.examples:
            target_text = example.output_with_frag if method == "ours" else example.output
            prompt_ids = self.tokenizer.encode(example.prompt_text(), add_bos=True)
            target_ids = self.tokenizer.encode(target_text, add_eos=True)
            samples.append(TrainingSample(prompt_ids=prompt_ids, target_ids=target_ids, name=example.name))
        return samples

    def train_method(self, method: str, trainer_config: Optional[TrainerConfig] = None) -> MedusaLM:
        """Build and fine-tune the model for one method; caches the result."""
        if method not in METHOD_STRATEGIES:
            raise ValueError(f"unknown method {method!r}")
        model = self.build_model(method)
        config = trainer_config or TrainerConfig(
            epochs=self.config.epochs,
            learning_rate=self.config.learning_rate,
            warmup_steps=self.config.warmup_steps,
            max_seq_len=self.config.max_train_seq_len,
            method=method,
        )
        config.method = method
        trainer = MedusaTrainer(model, self.tokenizer, config)
        history = trainer.train(self.training_samples(method))
        self.models[method] = model
        self.histories[method] = history
        return model

    def train_all(self, methods: Sequence[str] = ("ours", "medusa", "ntp")) -> Dict[str, MedusaLM]:
        """Train every method variant and return the model dictionary."""
        for method in methods:
            self.train_method(method)
        return self.models

    # ------------------------------------------------------------------ #
    # Decoding
    # ------------------------------------------------------------------ #

    def decoder_for(self, method: str, num_candidates: int = 3, use_cache: bool = True) -> SpeculativeDecoder:
        """Return a :class:`SpeculativeDecoder` for a trained method.

        Args:
            method: ``"ours"``, ``"medusa"`` or ``"ntp"`` (must be trained).
            num_candidates: Speculative candidates verified per step.
            use_cache: ``False`` selects the full-recompute decoding path
                (kept for cached-vs-uncached equivalence and speed
                comparisons).

        Returns:
            A decoder wrapping the trained model for ``method``.
        """
        if method not in self.models:
            raise KeyError(f"method {method!r} has not been trained yet")
        return SpeculativeDecoder(
            self.models[method],
            self.tokenizer,
            strategy=METHOD_STRATEGIES[method],
            num_candidates=num_candidates,
            use_cache=use_cache,
        )

    def engine_for(
        self,
        method: str,
        num_candidates: int = 3,
        scheduler_config=None,
        prefix_cache=None,
        kv_memory: str = "paged",
        kv_block_size: int = 16,
        kv_pool_blocks=None,
        clock=None,
    ):
        """Return a continuous-batching :class:`~repro.serving.ServingEngine`.

        The engine serves many concurrent requests through one shared batched
        forward per step and commits token sequences identical to
        :meth:`decoder_for`'s sequential ``generate``.

        Args:
            method: ``"ours"``, ``"medusa"`` or ``"ntp"`` (must be trained).
            num_candidates: Speculative candidates verified per step.
            scheduler_config: Optional
                :class:`~repro.serving.SchedulerConfig` with admission knobs.
            prefix_cache: Optional :class:`~repro.serving.PrefixCache`
                enabling cross-request prompt-prefix reuse (outputs stay
                token-identical; only prefill work changes).
            kv_memory: K/V storage mode — ``"paged"`` (default: refcounted
                block pool with copy-on-write sharing) or ``"row"``
                (contiguous per-row buffers); see ``docs/kv-memory.md``.
            kv_block_size: Tokens per physical block in paged mode.
            kv_pool_blocks: Paged pool capacity in blocks (``None`` sizes it
                from the scheduler budgets).
            clock: Optional time source for engine timestamps (the traffic
                harness passes a :class:`~repro.traffic.clock.SimulatedClock`
                for deterministic trace replay; ``None`` = wall clock).

        Returns:
            A fresh engine wrapping the trained model for ``method``.
        """
        from repro.serving import ServingEngine

        if method not in self.models:
            raise KeyError(f"method {method!r} has not been trained yet")
        return ServingEngine(
            self.models[method],
            self.tokenizer,
            strategy=METHOD_STRATEGIES[method],
            num_candidates=num_candidates,
            scheduler_config=scheduler_config,
            prefix_cache=prefix_cache,
            kv_memory=kv_memory,
            kv_block_size=kv_block_size,
            kv_pool_blocks=kv_pool_blocks,
            clock=clock,
        )
