"""Prefix-deduplicated token trees for speculative candidate verification.

Row-batched verification (:func:`repro.core.decoding.pad_candidates` + one
forward row per candidate) re-computes every token the candidates share: with
the default Medusa candidate set, candidates 1 and 3 differ only after the
committed base token, yet each occupies a full padded row.  SpecInfer/Medusa
tree attention instead merges the candidate set into one *token tree* — every
shared prefix becomes a single node — and verifies the whole tree in one
forward over one row:

* each node's token is embedded once, at position ``prefix + depth`` (siblings
  share a position, exactly as if each root-to-leaf path were its own row);
* an additive attention mask lets each node attend the cached committed
  prefix plus its own ancestor chain and nothing else, so the logits at node
  ``n`` equal the logits the row-batched forward produces at the same token of
  any candidate passing through ``n``.

:class:`TokenTree` is the builder (a tiny trie keyed on ``(parent, token)``);
the module-level helpers construct the additive masks consumed by
:meth:`~repro.nn.layers.CausalSelfAttention.forward` for the cached and the
full-recompute verification paths.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

#: Additive mask value for "may not attend"; matches the causal-mask constant
#: in :mod:`repro.nn.layers` (large enough that float32 softmax underflows the
#: masked weights to exactly 0.0, small enough to stay finite).
MASK_VALUE = -1e9


@dataclass
class TokenTree:
    """A candidate set merged into a prefix-deduplicated tree.

    Nodes are stored flat in insertion order, which guarantees every parent
    precedes its children (so node ids along any root-to-leaf path are
    strictly increasing — the property :meth:`~repro.nn.kv_cache.KVCache
    .keep_path` compaction relies on).

    Attributes:
        tokens: token id per node.
        parents: parent node id per node (``-1`` for depth-0 roots, which
            hang directly off the committed prefix).
        depths: 0-based depth per node; node ``n`` sits at sequence position
            ``prefix_len + depths[n]``.
        candidate_nodes: for each input candidate, the node ids spelling it
            out — the map from verification logits back to candidates.
    """

    tokens: List[int] = field(default_factory=list)
    parents: List[int] = field(default_factory=list)
    depths: List[int] = field(default_factory=list)
    candidate_nodes: List[List[int]] = field(default_factory=list)

    @property
    def size(self) -> int:
        """Number of nodes (== tokens the verification forward computes)."""
        return len(self.tokens)

    @property
    def num_candidates(self) -> int:
        return len(self.candidate_nodes)

    @classmethod
    def from_candidates(cls, candidates: Sequence[Sequence[int]], dedup: bool = True) -> "TokenTree":
        """Merge candidate token lists into a tree by shared-prefix insertion.

        Args:
            candidates: non-empty candidate token lists (as produced by
                :func:`repro.core.decoding.propose_candidates`).
            dedup: merge shared prefixes (the point of the tree).  ``False``
                keeps every candidate as an independent root chain — a
                "forest" that computes exactly what the row-batched layout
                computes, used by the serving engine for requests that did
                not opt into tree verification inside a tree-mode batch.

        Returns:
            The merged tree; ``tree.size <= sum(len(c) for c in candidates)``
            with equality iff no two candidates share a prefix (or ``dedup``
            is off).
        """
        if not candidates or any(len(candidate) == 0 for candidate in candidates):
            raise ValueError("candidates must be non-empty token lists")
        tree = cls()
        children: Dict[Tuple[int, int], int] = {}
        for candidate in candidates:
            parent = -1
            nodes: List[int] = []
            for token in candidate:
                key = (parent, int(token))
                node = children.get(key) if dedup else None
                if node is None:
                    node = len(tree.tokens)
                    children[key] = node
                    tree.tokens.append(int(token))
                    tree.parents.append(parent)
                    tree.depths.append(0 if parent < 0 else tree.depths[parent] + 1)
                nodes.append(node)
                parent = node
            tree.candidate_nodes.append(nodes)
        return tree

    def ancestor_mask(self) -> np.ndarray:
        """Boolean ``(size, size)`` matrix: ``[i, j]`` iff ``j`` is ``i`` or an ancestor of ``i``."""
        size = self.size
        mask = np.zeros((size, size), dtype=bool)
        for node in range(size):
            ancestor = node
            while ancestor >= 0:
                mask[node, ancestor] = True
                ancestor = self.parents[ancestor]
        return mask

    def path(self, candidate_index: int, length: Optional[int] = None) -> List[int]:
        """Node ids of the first ``length`` tokens of a candidate (its accepted path)."""
        nodes = self.candidate_nodes[candidate_index]
        return list(nodes if length is None else nodes[:length])


def prefilter_candidates(candidates: List[List[int]], mask) -> List[List[int]]:
    """Truncate speculative candidates at their first grammar violation.

    The grammar pre-filter of constrained decoding
    (:mod:`repro.constrained`): runs *before* tree construction and
    verification, so grammar-dead branches never cost a verification
    position — the tree built from the filtered set is a pruned subtree of
    the unconstrained one, which is exactly why the verified-position count
    strictly drops whenever the mask rejects anything.

    ``mask`` is any object with the :class:`~repro.constrained.mask
    .SyntaxMaskState` protocol (``allows`` / ``advance`` / ``snapshot`` /
    ``restore``); ``None`` is the inert fast path and returns the input
    unchanged.  Each candidate is walked from the current committed state,
    with snapshot/restore keeping branches independent, and cut at the first
    disallowed token.  Candidates truncated to nothing are dropped;
    candidate 0's first token was committed under the mask by the proposal
    itself, so the result is never empty in practice (a defensive fallback
    keeps its first token if every candidate dies).
    """
    if mask is None:
        return candidates
    snapshot = mask.snapshot()
    filtered: List[List[int]] = []
    try:
        for candidate in candidates:
            mask.restore(snapshot)
            kept = 0
            for token_id in candidate:
                if not mask.allows(token_id):
                    break
                mask.advance(token_id)
                kept += 1
            if kept:
                filtered.append(candidate[:kept])
    finally:
        mask.restore(snapshot)
    if not filtered:
        return [list(candidates[0][:1])]
    return filtered


def tree_bias_cached(
    trees: Sequence[TokenTree],
    past_lengths: Sequence[int],
    window: int,
    view: int,
) -> np.ndarray:
    """Additive attention bias for a cached tree-verification forward.

    Row ``r`` of the forward appends ``trees[r]``'s nodes (right-padded to
    ``window``) after its cached prefix of ``past_lengths[r]`` positions, so
    the key buffer covers ``view`` positions.  Query node ``i`` of row ``r``
    may attend:

    * the row's whole committed prefix (key positions ``< past_lengths[r]``);
    * its ancestor chain including itself (key ``past_lengths[r] + j`` with
      ``j`` an ancestor-or-self node id).

    Everything else — sibling branches, the row's padded window slots, stale
    key storage belonging to longer rows — is masked.  Padded *query* slots
    attend the prefix only (their softmax stays well-defined; their outputs
    are garbage by construction and never read).

    Returns:
        ``(len(trees), window, view)`` float32 bias (``0.0`` attend /
        :data:`MASK_VALUE` masked) for
        :meth:`~repro.nn.layers.CausalSelfAttention.forward`.
    """
    batch = len(trees)
    if len(past_lengths) != batch:
        raise ValueError(f"past_lengths length {len(past_lengths)} != number of trees {batch}")
    bias = np.full((batch, window, view), MASK_VALUE, dtype=np.float32)
    for row, tree in enumerate(trees):
        past = int(past_lengths[row])
        size = tree.size
        if size > window or past + size > view:
            raise ValueError(
                f"row {row}: tree of {size} nodes exceeds window {window} / view {view} at prefix {past}"
            )
        bias[row, :, :past] = 0.0
        block = bias[row, :size, past : past + size]
        block[tree.ancestor_mask()] = 0.0
    return bias


def tree_bias_full(prefix_len: int, tree: TokenTree) -> np.ndarray:
    """Additive attention bias for a full-recompute tree verification.

    The uncached path runs one forward over ``prefix + tree.tokens`` with no
    KV cache, so the mask covers the whole sequence: the prefix keeps its
    causal structure, and each tree node attends the full prefix plus its
    ancestor chain.

    Returns:
        ``(1, S, S)`` float32 bias with ``S = prefix_len + tree.size``.
    """
    if prefix_len <= 0:
        raise ValueError(f"prefix length must be positive, got {prefix_len}")
    size = tree.size
    total = prefix_len + size
    bias = np.full((total, total), MASK_VALUE, dtype=np.float32)
    prefix_keys = np.arange(prefix_len)
    bias[:prefix_len, :prefix_len][prefix_keys[None, :] <= prefix_keys[:, None]] = 0.0
    bias[prefix_len:, :prefix_len] = 0.0
    bias[prefix_len:, prefix_len:][tree.ancestor_mask()] = 0.0
    return bias[None, :, :]


def tree_position_offsets(trees: Sequence[TokenTree], window: int) -> np.ndarray:
    """Per-row position offsets (``depth`` per node) for a cached tree forward.

    Padded window slots get offset 0; they are excluded from the sequence-
    length check via the cache's per-row append widths and their outputs are
    never read.

    Returns:
        ``(len(trees), window)`` int64 offsets for ``position_offsets=``.
    """
    offsets = np.zeros((len(trees), window), dtype=np.int64)
    for row, tree in enumerate(trees):
        offsets[row, : tree.size] = tree.depths
    return offsets


def tree_position_offsets_full(prefix_len: int, tree: TokenTree) -> np.ndarray:
    """Position offsets for a full-recompute tree forward over ``prefix + tree``.

    The uncached companion of :func:`tree_position_offsets`: prefix tokens
    keep their consecutive positions and each tree node sits at
    ``prefix_len + depth``.

    Returns:
        ``(1, prefix_len + tree.size)`` int64 offsets for ``position_offsets=``.
    """
    offsets = np.concatenate(
        [np.arange(prefix_len, dtype=np.int64), prefix_len + np.asarray(tree.depths, dtype=np.int64)]
    )
    return offsets[None, :]


def pad_tree_tokens(trees: Sequence[TokenTree], window: int) -> np.ndarray:
    """Right-pad each tree's node tokens to ``window`` for the batched forward.

    The padding repeats the last node's token (any valid id works — padded
    slots are fully masked and kept out of the cache by per-row append
    widths).
    """
    rows = np.zeros((len(trees), window), dtype=np.int64)
    for row, tree in enumerate(trees):
        rows[row, : tree.size] = tree.tokens
        if tree.size < window:
            rows[row, tree.size :] = tree.tokens[-1]
    return rows
