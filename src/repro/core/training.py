"""Training objective and fine-tuning loop (paper Sec. IV-A.2, eq. 2).

The overall loss is::

    Loss = Loss_base + lambda * sum_i (Loss_head_i * gamma^i)

where ``lambda`` follows a sine growth schedule from 0 to ``lambda_max`` over
training and ``gamma`` is a per-head decay coefficient (0.8 in the paper).
Head parameters are trained at 4x the base learning rate (handled through
``Parameter.lr_scale`` set by :class:`repro.models.medusa.MedusaLM`).

:class:`MedusaTrainer` runs the loop for all three method variants:

* ``ours`` — targets are ``[FRAG]``-annotated code and head labels are
  syntax-enriched (:func:`repro.core.labels.build_syntax_enriched_labels`);
* ``medusa`` — plain shifted head labels (original MEDUSA-2 joint training);
* ``ntp`` — no Medusa heads, base cross-entropy only.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.labels import build_shifted_labels, build_syntax_enriched_labels
from repro.models.medusa import MedusaLM
from repro.nn.functional import cross_entropy, cross_entropy_grad
from repro.nn.optim import AdamW, WarmupCosineSchedule
from repro.tokenizer.bpe import BPETokenizer


@dataclass
class TrainingSample:
    """One instruction-tuning example.

    Attributes:
        prompt_ids: tokenized natural-language instruction (Alpaca input).
        target_ids: tokenized Verilog output, ending with EOS.  For the
            ``ours`` variant the code text contains ``[FRAG]`` markers.
        name: optional identifier (used in logs and tests).
    """

    prompt_ids: List[int]
    target_ids: List[int]
    name: str = ""


@dataclass
class MedusaLoss:
    """Computes the combined loss (eq. 2) and the per-head logit gradients."""

    ignore_id: int
    lambda_max: float = 0.2
    gamma: float = 0.8

    def lambda_at(self, progress: float) -> float:
        """Sine-growth schedule for the head-loss weight.

        ``progress`` runs from 0 to 1 over training; the weight rises as
        ``sin(pi/2 * progress)`` towards ``lambda_max``.
        """
        progress = min(max(progress, 0.0), 1.0)
        return self.lambda_max * math.sin(0.5 * math.pi * progress)

    def compute(
        self,
        base_logits: np.ndarray,
        head_logits: Sequence[np.ndarray],
        labels: np.ndarray,
        progress: float,
    ) -> Tuple[float, Dict[str, float], np.ndarray, List[np.ndarray]]:
        """Compute the loss and gradients with respect to all logits.

        Args:
            base_logits: ``(1, T, V)`` base-head logits.
            head_logits: list of ``(1, T, V)`` Medusa-head logits.
            labels: ``(num_heads + 1, T)`` label matrix (row 0 = base).
            progress: training progress in [0, 1] for the lambda schedule.

        Returns:
            ``(total_loss, parts, grad_base, grad_heads)`` where ``parts`` maps
            loss component names to values and the gradients have the same
            shapes as their logits.
        """
        _, seq_len, vocab = base_logits.shape
        lam = self.lambda_at(progress)
        parts: Dict[str, float] = {}

        flat_base = base_logits.reshape(seq_len, vocab)
        base_loss, base_probs, _ = cross_entropy(flat_base, labels[0], ignore_index=self.ignore_id)
        grad_base = cross_entropy_grad(base_probs, labels[0], ignore_index=self.ignore_id).reshape(base_logits.shape)
        parts["base"] = base_loss
        total = base_loss

        grad_heads: List[np.ndarray] = []
        for index, logits in enumerate(head_logits):
            weight = lam * (self.gamma ** (index + 1))
            flat = logits.reshape(seq_len, vocab)
            head_loss, head_probs, count = cross_entropy(flat, labels[index + 1], ignore_index=self.ignore_id)
            parts[f"head{index + 1}"] = head_loss
            total += weight * head_loss
            if count == 0 or weight == 0.0:
                grad_heads.append(np.zeros_like(logits))
                continue
            grad = cross_entropy_grad(head_probs, labels[index + 1], ignore_index=self.ignore_id) * weight
            grad_heads.append(grad.reshape(logits.shape))
        parts["lambda"] = lam
        return total, parts, grad_base, grad_heads


@dataclass
class TrainerConfig:
    """Hyper-parameters of the fine-tuning loop."""

    epochs: int = 2
    learning_rate: float = 5e-4
    warmup_steps: int = 40
    weight_decay: float = 0.01
    lambda_max: float = 0.2
    gamma: float = 0.8
    max_seq_len: int = 256
    shuffle_seed: int = 0
    log_every: int = 0
    #: ``"ours"``, ``"medusa"`` or ``"ntp"``.
    method: str = "ours"


@dataclass
class TrainingHistory:
    """Loss curve recorded during training."""

    steps: List[int] = field(default_factory=list)
    total_loss: List[float] = field(default_factory=list)
    base_loss: List[float] = field(default_factory=list)

    def final_loss(self) -> float:
        return self.total_loss[-1] if self.total_loss else float("nan")


class MedusaTrainer:
    """Fine-tunes a :class:`MedusaLM` on instruction samples."""

    def __init__(self, model: MedusaLM, tokenizer: BPETokenizer, config: Optional[TrainerConfig] = None) -> None:
        self.model = model
        self.tokenizer = tokenizer
        self.config = config or TrainerConfig()
        vocab = tokenizer.vocab
        self.ignore_id = vocab.ignore_id
        self.pad_id = vocab.pad_id
        self.frag_id = vocab.frag_id
        self.bos_id = vocab.bos_id
        self.loss = MedusaLoss(ignore_id=self.ignore_id, lambda_max=self.config.lambda_max, gamma=self.config.gamma)

    # -- sample preparation ---------------------------------------------------

    def prepare_inputs(self, sample: TrainingSample) -> Tuple[np.ndarray, Optional[np.ndarray], np.ndarray]:
        """Build (decoder input ids, encoder ids, label matrix) for a sample."""
        max_len = min(self.config.max_seq_len, self.model.backbone.max_seq_len)
        if self.model.is_encoder_decoder:
            encoder_ids = np.asarray(sample.prompt_ids[: max_len], dtype=np.int64)
            target = sample.target_ids[: max_len - 1]
            input_ids = np.asarray([self.bos_id] + target[:-1] if len(target) > 1 else [self.bos_id], dtype=np.int64)
            base_label = np.asarray(target, dtype=np.int64)
            # Align label length with input length.
            if base_label.shape[0] != input_ids.shape[0]:
                base_label = base_label[: input_ids.shape[0]]
            prompt_mask = None
        else:
            full = list(sample.prompt_ids) + list(sample.target_ids)
            full = full[:max_len]
            input_ids = np.asarray(full[:-1], dtype=np.int64)
            base_label = np.asarray(full[1:], dtype=np.int64)
            encoder_ids = None
            prompt_len = max(len(sample.prompt_ids) - 1, 0)
            prompt_mask = np.zeros(base_label.shape[0], dtype=bool)
            prompt_mask[: min(prompt_len, base_label.shape[0])] = True

        num_heads = self.model.num_medusa_heads
        if self.config.method == "ours":
            labels = build_syntax_enriched_labels(
                base_label,
                num_heads,
                frag_id=self.frag_id,
                pad_id=self.pad_id,
                ignore_id=self.ignore_id,
                ignore_prompt_mask=prompt_mask,
            )
        else:
            labels = build_shifted_labels(base_label, num_heads, pad_id=self.pad_id)
            labels[labels == self.pad_id] = self.ignore_id
            if prompt_mask is not None:
                labels[:, prompt_mask] = self.ignore_id
        return input_ids, encoder_ids, labels

    # -- training loop --------------------------------------------------------

    def train(self, samples: Sequence[TrainingSample]) -> TrainingHistory:
        """Run the fine-tuning loop over ``samples`` and return the loss curve."""
        if not samples:
            raise ValueError("no training samples provided")
        config = self.config
        total_steps = max(1, config.epochs * len(samples))
        schedule = WarmupCosineSchedule(config.learning_rate, config.warmup_steps, total_steps)
        optimizer = AdamW(self.model.parameters(), lr=config.learning_rate, weight_decay=config.weight_decay)
        history = TrainingHistory()
        rng = np.random.default_rng(config.shuffle_seed)

        step = 0
        for _epoch in range(config.epochs):
            order = rng.permutation(len(samples))
            for index in order:
                sample = samples[index]
                input_ids, encoder_ids, labels = self.prepare_inputs(sample)
                if input_ids.shape[0] < 2:
                    continue
                progress = step / total_steps
                base_logits, head_logits = self.model.forward(input_ids, encoder_ids)
                total, parts, grad_base, grad_heads = self.loss.compute(base_logits, head_logits, labels, progress)
                self.model.zero_grad()
                self.model.backward(grad_base, grad_heads)
                optimizer.step(lr=schedule.lr_at(step))
                optimizer.zero_grad()
                history.steps.append(step)
                history.total_loss.append(float(total))
                history.base_loss.append(float(parts["base"]))
                if config.log_every and step % config.log_every == 0:
                    print(f"step {step}: loss={total:.4f} base={parts['base']:.4f} lambda={parts['lambda']:.3f}")
                step += 1
        return history
