"""Dataset construction substrate (paper Sec. III-A).

The paper builds its corpus from GitHub Verilog files plus MG-Verilog and
RTLCoder, then refines it: split into modules, de-duplicate with MinHash +
Jaccard similarity, filter malformed files, syntax-check with the Stagira
parser, and attach natural-language descriptions (GPT-4 generated for the
GitHub portion).  With no network access, this subpackage substitutes a
parameterised synthetic Verilog generator for the scrape and a template-based
description generator for GPT-4 — but runs the *same* refinement pipeline on
top of them.
"""

from repro.data.corpus import CorpusConfig, CorpusItem, SyntheticVerilogCorpus
from repro.data.descriptions import describe_design
from repro.data.minhash import MinHashDeduplicator, jaccard_similarity, minhash_signature
from repro.data.refinement import RefinementConfig, RefinementReport, refine_corpus, split_into_modules
from repro.data.alpaca import AlpacaExample, build_alpaca_dataset, subset_fractions

__all__ = [
    "CorpusConfig",
    "CorpusItem",
    "SyntheticVerilogCorpus",
    "describe_design",
    "MinHashDeduplicator",
    "jaccard_similarity",
    "minhash_signature",
    "RefinementConfig",
    "RefinementReport",
    "refine_corpus",
    "split_into_modules",
    "AlpacaExample",
    "build_alpaca_dataset",
    "subset_fractions",
]
