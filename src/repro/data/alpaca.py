"""Alpaca-style instruction dataset construction (paper Sec. IV-A.1).

The refined corpus is formatted into Alpaca-style instruction/output pairs:
the natural-language description is the instruction, the Verilog code is the
output.  The paper fine-tunes on the full dataset and on random 1/4, 1/2 and
3/4 subsets to study data-efficiency; :func:`subset_fractions` reproduces that
split.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.data.refinement import RefinedItem

#: The instruction preamble used by the paper's prompts (and our benchmarks).
INSTRUCTION_PREFIX = "Please act as a professional Verilog designer.\n"


@dataclass
class AlpacaExample:
    """One instruction-tuning example in Alpaca format."""

    instruction: str
    output: str
    #: The output annotated with [FRAG] markers (used by the "ours" variant).
    output_with_frag: str
    name: str = ""

    def prompt_text(self) -> str:
        """The text presented to the model as the prompt."""
        return INSTRUCTION_PREFIX + self.instruction.strip() + "\n"


def build_alpaca_dataset(items: Sequence[RefinedItem], max_items: Optional[int] = None) -> List[AlpacaExample]:
    """Convert refined corpus items into Alpaca examples."""
    examples: List[AlpacaExample] = []
    for item in items:
        examples.append(
            AlpacaExample(
                instruction=item.description,
                output=item.code,
                output_with_frag=item.code_with_frag,
                name=item.name,
            )
        )
        if max_items is not None and len(examples) >= max_items:
            break
    return examples


def subset_fractions(
    examples: Sequence[AlpacaExample],
    fractions: Sequence[float] = (0.25, 0.5, 0.75, 1.0),
    seed: int = 0,
) -> Dict[float, List[AlpacaExample]]:
    """Random nested subsets of the dataset, one per fraction.

    The subsets are nested (the 1/4 subset is contained in the 1/2 subset and
    so on), mirroring how increasing amounts of the same corpus are used in the
    paper's data-scaling study (Table I rows, Fig. 6).
    """
    rng = np.random.default_rng(seed)
    order = rng.permutation(len(examples))
    subsets: Dict[float, List[AlpacaExample]] = {}
    for fraction in fractions:
        count = max(1, int(round(len(examples) * fraction))) if examples else 0
        subsets[fraction] = [examples[i] for i in order[:count]]
    return subsets


def filter_by_length(
    examples: Sequence[AlpacaExample], tokenizer, max_tokens: int
) -> List[AlpacaExample]:
    """Drop examples whose prompt+output exceed ``max_tokens`` tokens.

    Mirrors the paper's exclusion of examples beyond CodeT5p's 2048-token
    context limit.
    """
    kept: List[AlpacaExample] = []
    for example in examples:
        total = len(tokenizer.encode(example.prompt_text())) + len(tokenizer.encode(example.output_with_frag))
        if total <= max_tokens:
            kept.append(example)
    return kept
