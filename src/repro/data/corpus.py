"""Synthetic Verilog corpus generator.

This is the reproduction's stand-in for the paper's GitHub scrape plus the
MG-Verilog and RTLCoder datasets.  It produces (description, code) pairs for a
dozen common RTL design families with randomised parameters (widths, depths,
module/port names, reset polarity, coding-style variations), which gives the
tokenizer and the models a corpus with realistic structural statistics:
module headers, port declarations, always blocks, case statements, arithmetic
and so on.

Every generated item is syntactically valid under :mod:`repro.verilog` (this
is asserted in the tests), so the refinement pipeline's syntax-check stage has
the same role as in the paper — catching genuinely malformed code (the
generator can also be asked to emit a controlled fraction of corrupted items
to exercise that path).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.data.descriptions import describe_design


@dataclass
class CorpusItem:
    """One corpus entry: a Verilog module plus its natural-language description."""

    name: str
    family: str
    description: str
    code: str
    parameters: Dict[str, int] = field(default_factory=dict)


@dataclass
class CorpusConfig:
    """Configuration of the synthetic corpus generator."""

    num_items: int = 200
    seed: int = 0
    #: Fraction of deliberately corrupted items (exercise the syntax filter).
    corrupted_fraction: float = 0.0
    #: Fraction of near-duplicate items (exercise the MinHash deduplicator).
    duplicate_fraction: float = 0.0
    families: Optional[List[str]] = None


_NAME_POOLS = {
    "mux": ["mux", "selector", "data_mux", "mux_unit"],
    "register": ["data_register", "pipe_reg", "dff_register", "reg_stage"],
    "counter": ["counter", "up_counter", "event_counter", "tick_counter"],
    "adder": ["adder", "add_unit", "sum_block", "fast_adder"],
    "alu": ["alu", "arith_unit", "alu_core", "mini_alu"],
    "decoder": ["decoder", "addr_decoder", "one_hot_decoder", "dec_unit"],
    "encoder": ["encoder", "priority_encoder", "enc_unit", "prio_enc"],
    "shifter": ["shifter", "shift_reg", "barrel_shift", "shift_unit"],
    "comparator": ["comparator", "cmp_unit", "magnitude_cmp", "compare_block"],
    "fsm": ["fsm", "ctrl_fsm", "state_machine", "sequencer"],
    "gray": ["gray_converter", "bin2gray", "gray_encoder", "gray_unit"],
    "parity": ["parity_gen", "parity_unit", "parity_checker", "even_parity"],
    "clkdiv": ["clk_divider", "clock_div", "freq_divider", "div_unit"],
    "edge": ["edge_detector", "pulse_gen", "rise_detect", "edge_unit"],
}


def _signal(rng: np.random.Generator, base: str) -> str:
    suffixes = ["", "_i", "_in", "_sig", "_w"]
    return base + str(rng.choice(suffixes))


class SyntheticVerilogCorpus:
    """Generates a randomised corpus of small RTL designs."""

    def __init__(self, config: Optional[CorpusConfig] = None) -> None:
        self.config = config or CorpusConfig()
        self.rng = np.random.default_rng(self.config.seed)
        self._generators: Dict[str, Callable[[str, np.random.Generator], Tuple[str, Dict[str, int]]]] = {
            "mux": self._gen_mux,
            "register": self._gen_register,
            "counter": self._gen_counter,
            "adder": self._gen_adder,
            "alu": self._gen_alu,
            "decoder": self._gen_decoder,
            "encoder": self._gen_encoder,
            "shifter": self._gen_shifter,
            "comparator": self._gen_comparator,
            "fsm": self._gen_fsm,
            "gray": self._gen_gray,
            "parity": self._gen_parity,
            "clkdiv": self._gen_clkdiv,
            "edge": self._gen_edge,
        }

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #

    def families(self) -> List[str]:
        """Names of all supported design families."""
        return list(self._generators)

    def generate(self) -> List[CorpusItem]:
        """Generate the configured number of corpus items."""
        families = self.config.families or self.families()
        items: List[CorpusItem] = []
        for index in range(self.config.num_items):
            family = families[index % len(families)]
            items.append(self.generate_item(family, index))
        rng = np.random.default_rng(self.config.seed + 99)
        items = self._inject_duplicates(items, rng)
        items = self._inject_corruption(items, rng)
        return items

    def generate_item(self, family: str, index: int = 0) -> CorpusItem:
        """Generate one corpus item of ``family``."""
        if family not in self._generators:
            raise KeyError(f"unknown design family {family!r}")
        rng = np.random.default_rng(self.config.seed * 100003 + index)
        name = str(rng.choice(_NAME_POOLS[family])) + (f"_{index}" if rng.random() < 0.3 else "")
        code, parameters = self._generators[family](name, rng)
        description = describe_design(family, name, parameters)
        return CorpusItem(name=name, family=family, description=description, code=code, parameters=parameters)

    # ------------------------------------------------------------------ #
    # Corruption / duplication for pipeline testing
    # ------------------------------------------------------------------ #

    def _inject_duplicates(self, items: List[CorpusItem], rng: np.random.Generator) -> List[CorpusItem]:
        if self.config.duplicate_fraction <= 0 or not items:
            return items
        num_duplicates = int(len(items) * self.config.duplicate_fraction)
        out = list(items)
        for _ in range(num_duplicates):
            source = items[int(rng.integers(0, len(items)))]
            # A near-duplicate: same code with whitespace jitter.
            code = source.code.replace("    ", "  ")
            out.append(
                CorpusItem(
                    name=source.name + "_dup",
                    family=source.family,
                    description=source.description,
                    code=code,
                    parameters=dict(source.parameters),
                )
            )
        return out

    def _inject_corruption(self, items: List[CorpusItem], rng: np.random.Generator) -> List[CorpusItem]:
        if self.config.corrupted_fraction <= 0 or not items:
            return items
        num_corrupted = int(len(items) * self.config.corrupted_fraction)
        out = list(items)
        corruptions = [
            lambda code: code.replace("endmodule", ""),
            lambda code: code.replace(";", "", 1),
            lambda code: code.replace("begin", "begn", 1),
            lambda code: "// only comments\n// nothing else here\n",
        ]
        for i in range(num_corrupted):
            source = items[int(rng.integers(0, len(items)))]
            corrupt = corruptions[i % len(corruptions)]
            out.append(
                CorpusItem(
                    name=source.name + "_broken",
                    family=source.family,
                    description=source.description,
                    code=corrupt(source.code),
                    parameters=dict(source.parameters),
                )
            )
        return out

    # ------------------------------------------------------------------ #
    # Design family generators
    # ------------------------------------------------------------------ #

    def _gen_mux(self, name: str, rng: np.random.Generator) -> Tuple[str, Dict[str, int]]:
        width = int(rng.choice([1, 2, 4, 8, 16]))
        inputs = int(rng.choice([2, 4]))
        sel_width = 1 if inputs == 2 else 2
        a, b = _signal(rng, "a"), _signal(rng, "b")
        rng_style = rng.random()
        if inputs == 2:
            body = (
                f"    assign out = sel ? {b} : {a};\n"
                if rng_style < 0.5
                else f"    always @* begin\n        if (sel) out = {b};\n        else out = {a};\n    end\n"
            )
            out_decl = "output" if rng_style < 0.5 else "output reg"
            code = (
                f"module {name} (\n"
                f"    input [{width - 1}:0] {a},\n"
                f"    input [{width - 1}:0] {b},\n"
                f"    input sel,\n"
                f"    {out_decl} [{width - 1}:0] out\n"
                f");\n{body}endmodule\n"
            )
        else:
            c, d = _signal(rng, "c"), _signal(rng, "d")
            code = (
                f"module {name} (\n"
                f"    input [{width - 1}:0] {a},\n"
                f"    input [{width - 1}:0] {b},\n"
                f"    input [{width - 1}:0] {c},\n"
                f"    input [{width - 1}:0] {d},\n"
                f"    input [{sel_width - 1}:0] sel,\n"
                f"    output reg [{width - 1}:0] out\n"
                f");\n"
                f"    always @* begin\n"
                f"        case (sel)\n"
                f"            2'b00: out = {a};\n"
                f"            2'b01: out = {b};\n"
                f"            2'b10: out = {c};\n"
                f"            default: out = {d};\n"
                f"        endcase\n"
                f"    end\n"
                f"endmodule\n"
            )
        return code, {"width": width, "inputs": inputs}

    def _gen_register(self, name: str, rng: np.random.Generator) -> Tuple[str, Dict[str, int]]:
        width = int(rng.choice([1, 4, 8, 16, 32]))
        has_reset = bool(rng.random() < 0.7)
        has_enable = bool(rng.random() < 0.5)
        ports = ["    input clk"]
        if has_reset:
            ports.append("    input rst")
        if has_enable:
            ports.append("    input en")
        ports.append(f"    input [{width - 1}:0] data_in")
        ports.append(f"    output reg [{width - 1}:0] data_out")
        sensitivity = "posedge clk or posedge rst" if has_reset else "posedge clk"
        body = "    always @(" + sensitivity + ") begin\n"
        if has_reset:
            body += f"        if (rst) data_out <= {width}'d0;\n"
            body += "        else " + ("if (en) " if has_enable else "") + "data_out <= data_in;\n"
        else:
            body += "        " + ("if (en) " if has_enable else "") + "data_out <= data_in;\n"
        body += "    end\n"
        code = f"module {name} (\n" + ",\n".join(ports) + "\n);\n" + body + "endmodule\n"
        return code, {"width": width, "has_reset": int(has_reset), "has_enable": int(has_enable)}

    def _gen_counter(self, name: str, rng: np.random.Generator) -> Tuple[str, Dict[str, int]]:
        width = int(rng.choice([2, 4, 8, 16]))
        use_param = bool(rng.random() < 0.5)
        down = bool(rng.random() < 0.3)
        step = "count - 1" if down else "count + 1"
        if use_param:
            code = (
                f"module {name} #(parameter WIDTH = {width}) (\n"
                f"    input clk,\n    input rst,\n    input en,\n"
                f"    output reg [WIDTH-1:0] count\n);\n"
                f"    always @(posedge clk or posedge rst) begin\n"
                f"        if (rst) count <= 0;\n"
                f"        else if (en) count <= {step};\n"
                f"    end\nendmodule\n"
            )
        else:
            code = (
                f"module {name} (\n"
                f"    input clk,\n    input rst,\n    input en,\n"
                f"    output reg [{width - 1}:0] count\n);\n"
                f"    always @(posedge clk or posedge rst) begin\n"
                f"        if (rst) count <= {width}'d0;\n"
                f"        else if (en) count <= {step};\n"
                f"    end\nendmodule\n"
            )
        return code, {"width": width, "down": int(down)}

    def _gen_adder(self, name: str, rng: np.random.Generator) -> Tuple[str, Dict[str, int]]:
        width = int(rng.choice([4, 8, 16, 32]))
        with_carry = bool(rng.random() < 0.5)
        if with_carry:
            code = (
                f"module {name} (\n"
                f"    input [{width - 1}:0] a,\n    input [{width - 1}:0] b,\n    input cin,\n"
                f"    output [{width - 1}:0] sum,\n    output cout\n);\n"
                f"    assign {{cout, sum}} = a + b + cin;\n"
                f"endmodule\n"
            )
        else:
            code = (
                f"module {name} (\n"
                f"    input [{width - 1}:0] a,\n    input [{width - 1}:0] b,\n"
                f"    output [{width - 1}:0] sum\n);\n"
                f"    assign sum = a + b;\n"
                f"endmodule\n"
            )
        return code, {"width": width, "with_carry": int(with_carry)}

    def _gen_alu(self, name: str, rng: np.random.Generator) -> Tuple[str, Dict[str, int]]:
        width = int(rng.choice([4, 8, 16]))
        num_ops = int(rng.choice([4, 8]))
        op_width = 2 if num_ops == 4 else 3
        operations = [
            "a + b", "a - b", "a & b", "a | b", "a ^ b", "~a", "a << 1", "a >> 1",
        ][:num_ops]
        cases = "\n".join(
            f"            {op_width}'d{i}: result = {expr};" for i, expr in enumerate(operations[:-1])
        )
        code = (
            f"module {name} (\n"
            f"    input [{width - 1}:0] a,\n    input [{width - 1}:0] b,\n"
            f"    input [{op_width - 1}:0] op,\n"
            f"    output reg [{width - 1}:0] result,\n    output zero\n);\n"
            f"    assign zero = (result == {width}'d0);\n"
            f"    always @* begin\n"
            f"        case (op)\n{cases}\n"
            f"            default: result = {operations[-1]};\n"
            f"        endcase\n    end\nendmodule\n"
        )
        return code, {"width": width, "num_ops": num_ops}

    def _gen_decoder(self, name: str, rng: np.random.Generator) -> Tuple[str, Dict[str, int]]:
        in_width = int(rng.choice([2, 3]))
        out_width = 2**in_width
        with_enable = bool(rng.random() < 0.5)
        enable_port = "    input en,\n" if with_enable else ""
        enable_expr = "en ? " if with_enable else ""
        tail = f" : {out_width}'d0" if with_enable else ""
        code = (
            f"module {name} (\n"
            f"    input [{in_width - 1}:0] sel,\n{enable_port}"
            f"    output [{out_width - 1}:0] out\n);\n"
            f"    assign out = {enable_expr}({out_width}'d1 << sel){tail};\n"
            f"endmodule\n"
        )
        return code, {"in_width": in_width, "out_width": out_width, "with_enable": int(with_enable)}

    def _gen_encoder(self, name: str, rng: np.random.Generator) -> Tuple[str, Dict[str, int]]:
        in_width = 4
        code = (
            f"module {name} (\n"
            f"    input [{in_width - 1}:0] in,\n"
            f"    output reg [1:0] out,\n    output reg valid\n);\n"
            f"    always @* begin\n"
            f"        valid = 1'b1;\n"
            f"        casez (in)\n"
            f"            4'b1???: out = 2'd3;\n"
            f"            4'b01??: out = 2'd2;\n"
            f"            4'b001?: out = 2'd1;\n"
            f"            4'b0001: out = 2'd0;\n"
            f"            default: begin out = 2'd0; valid = 1'b0; end\n"
            f"        endcase\n    end\nendmodule\n"
        )
        return code, {"in_width": in_width}

    def _gen_shifter(self, name: str, rng: np.random.Generator) -> Tuple[str, Dict[str, int]]:
        width = int(rng.choice([4, 8, 16]))
        serial = bool(rng.random() < 0.5)
        if serial:
            code = (
                f"module {name} (\n"
                f"    input clk,\n    input rst,\n    input serial_in,\n"
                f"    output reg [{width - 1}:0] q\n);\n"
                f"    always @(posedge clk or posedge rst) begin\n"
                f"        if (rst) q <= {width}'d0;\n"
                f"        else q <= {{q[{width - 2}:0], serial_in}};\n"
                f"    end\nendmodule\n"
            )
        else:
            code = (
                f"module {name} (\n"
                f"    input [{width - 1}:0] data,\n"
                f"    input [2:0] amount,\n    input dir,\n"
                f"    output [{width - 1}:0] out\n);\n"
                f"    assign out = dir ? (data >> amount) : (data << amount);\n"
                f"endmodule\n"
            )
        return code, {"width": width, "serial": int(serial)}

    def _gen_comparator(self, name: str, rng: np.random.Generator) -> Tuple[str, Dict[str, int]]:
        width = int(rng.choice([4, 8, 16]))
        code = (
            f"module {name} (\n"
            f"    input [{width - 1}:0] a,\n    input [{width - 1}:0] b,\n"
            f"    output eq,\n    output gt,\n    output lt\n);\n"
            f"    assign eq = (a == b);\n"
            f"    assign gt = (a > b);\n"
            f"    assign lt = (a < b);\n"
            f"endmodule\n"
        )
        return code, {"width": width}

    def _gen_fsm(self, name: str, rng: np.random.Generator) -> Tuple[str, Dict[str, int]]:
        num_states = int(rng.choice([3, 4]))
        code = (
            f"module {name} (\n"
            f"    input clk,\n    input rst,\n    input start,\n    input done,\n"
            f"    output reg busy,\n    output reg [1:0] state\n);\n"
            f"    localparam IDLE = 2'd0, RUN = 2'd1, WAIT = 2'd2, FINISH = 2'd3;\n"
            f"    always @(posedge clk or posedge rst) begin\n"
            f"        if (rst) state <= IDLE;\n"
            f"        else begin\n"
            f"            case (state)\n"
            f"                IDLE: if (start) state <= RUN;\n"
            f"                RUN: if (done) state <= {'WAIT' if num_states > 3 else 'IDLE'};\n"
            + (f"                WAIT: state <= FINISH;\n                FINISH: state <= IDLE;\n" if num_states > 3 else "")
            + f"                default: state <= IDLE;\n"
            f"            endcase\n"
            f"        end\n"
            f"    end\n"
            f"    always @* begin\n"
            f"        busy = (state != IDLE);\n"
            f"    end\nendmodule\n"
        )
        return code, {"num_states": num_states}

    def _gen_gray(self, name: str, rng: np.random.Generator) -> Tuple[str, Dict[str, int]]:
        width = int(rng.choice([4, 8]))
        code = (
            f"module {name} (\n"
            f"    input [{width - 1}:0] bin,\n"
            f"    output [{width - 1}:0] gray\n);\n"
            f"    assign gray = bin ^ (bin >> 1);\n"
            f"endmodule\n"
        )
        return code, {"width": width}

    def _gen_parity(self, name: str, rng: np.random.Generator) -> Tuple[str, Dict[str, int]]:
        width = int(rng.choice([4, 8, 16]))
        odd = bool(rng.random() < 0.5)
        expr = "~^data" if odd else "^data"
        code = (
            f"module {name} (\n"
            f"    input [{width - 1}:0] data,\n"
            f"    output parity\n);\n"
            f"    assign parity = {expr};\n"
            f"endmodule\n"
        )
        return code, {"width": width, "odd": int(odd)}

    def _gen_clkdiv(self, name: str, rng: np.random.Generator) -> Tuple[str, Dict[str, int]]:
        width = int(rng.choice([2, 3, 4]))
        code = (
            f"module {name} (\n"
            f"    input clk,\n    input rst,\n"
            f"    output clk_out\n);\n"
            f"    reg [{width - 1}:0] div_count;\n"
            f"    always @(posedge clk or posedge rst) begin\n"
            f"        if (rst) div_count <= {width}'d0;\n"
            f"        else div_count <= div_count + 1;\n"
            f"    end\n"
            f"    assign clk_out = div_count[{width - 1}];\n"
            f"endmodule\n"
        )
        return code, {"divide_by": 2**width}

    def _gen_edge(self, name: str, rng: np.random.Generator) -> Tuple[str, Dict[str, int]]:
        falling = bool(rng.random() < 0.5)
        expr = "~signal_in & signal_d" if falling else "signal_in & ~signal_d"
        code = (
            f"module {name} (\n"
            f"    input clk,\n    input rst,\n    input signal_in,\n"
            f"    output pulse\n);\n"
            f"    reg signal_d;\n"
            f"    always @(posedge clk or posedge rst) begin\n"
            f"        if (rst) signal_d <= 1'b0;\n"
            f"        else signal_d <= signal_in;\n"
            f"    end\n"
            f"    assign pulse = {expr};\n"
            f"endmodule\n"
        )
        return code, {"falling": int(falling)}
