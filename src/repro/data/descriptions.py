"""Natural-language description generation (GPT-4 substitute).

The paper uses GPT-4 to generate functional descriptions for the GitHub
portion of its corpus, and reuses the summaries shipped with MG-Verilog and
RTLCoder.  Offline, :func:`describe_design` produces instruction-style
descriptions from templates parameterised by the design family and its
generation parameters.  Several phrasings exist per family so the instruction
side of the dataset has lexical variety.
"""

from __future__ import annotations

import hashlib
from typing import Dict

_TEMPLATES: Dict[str, list] = {
    "mux": [
        "Write a Verilog module named {name} that implements a {inputs}-to-1 multiplexer for {width}-bit data.",
        "Create a {width}-bit wide {inputs}-input multiplexer called {name} that selects one of its data inputs based on the select signal.",
        "Design a Verilog multiplexer module {name} with {inputs} data inputs of {width} bits each and a select input.",
    ],
    "register": [
        "Write a Verilog module named {name} that implements a {width}-bit register which captures data_in on the positive edge of the clock.",
        "Create a {width}-bit data register called {name} using non-blocking assignment on the rising clock edge.",
        "Design a clocked register module {name} that stores a {width}-bit input value.",
    ],
    "counter": [
        "Write a Verilog module named {name} that implements a {width}-bit {direction} counter with synchronous enable and asynchronous reset.",
        "Create a {width}-bit {direction} counter called {name}; it should reset to zero and count when enable is high.",
        "Design a counter module {name} that counts {direction} by one every clock cycle when enabled, with width {width} bits.",
    ],
    "adder": [
        "Write a Verilog module named {name} that adds two {width}-bit operands{carry_clause}.",
        "Create a {width}-bit adder called {name} computing the sum of inputs a and b{carry_clause}.",
        "Design a combinational adder module {name} for {width}-bit inputs{carry_clause}.",
    ],
    "alu": [
        "Write a Verilog module named {name} implementing a {width}-bit ALU with {num_ops} operations selected by an opcode input, plus a zero flag.",
        "Create an arithmetic logic unit called {name} that performs {num_ops} operations on {width}-bit operands and reports when the result is zero.",
        "Design a {width}-bit ALU module {name} supporting addition, subtraction and bitwise operations chosen by the op input.",
    ],
    "decoder": [
        "Write a Verilog module named {name} that decodes a {in_width}-bit input into a one-hot {out_width}-bit output.",
        "Create a {in_width}-to-{out_width} one-hot decoder called {name}.",
        "Design a binary decoder module {name} with a {in_width}-bit select input and {out_width} output lines.",
    ],
    "encoder": [
        "Write a Verilog module named {name} that implements a 4-to-2 priority encoder with a valid output.",
        "Create a priority encoder called {name} that reports the index of the highest asserted input bit.",
        "Design a 4-input priority encoder module {name} with a valid flag for the all-zero case.",
    ],
    "shifter": [
        "Write a Verilog module named {name} that implements a {width}-bit {kind}.",
        "Create a {width}-bit {kind} called {name}.",
        "Design a {kind} module {name} operating on {width}-bit data.",
    ],
    "comparator": [
        "Write a Verilog module named {name} that compares two {width}-bit inputs and outputs equality, greater-than and less-than flags.",
        "Create a {width}-bit magnitude comparator called {name} with eq, gt and lt outputs.",
        "Design a comparator module {name} for two {width}-bit unsigned numbers.",
    ],
    "fsm": [
        "Write a Verilog module named {name} that implements a {num_states}-state control FSM with start and done inputs and a busy output.",
        "Create a finite state machine called {name} with {num_states} states that asserts busy while running.",
        "Design a sequential controller module {name}; it leaves IDLE on start and returns after done, using {num_states} states.",
    ],
    "gray": [
        "Write a Verilog module named {name} that converts a {width}-bit binary number to Gray code.",
        "Create a binary-to-Gray converter called {name} for {width}-bit inputs.",
        "Design a combinational module {name} producing the Gray code of its {width}-bit binary input.",
    ],
    "parity": [
        "Write a Verilog module named {name} that computes the {kind} parity of a {width}-bit input.",
        "Create a {kind} parity generator called {name} for {width}-bit data.",
        "Design a parity module {name} that outputs the {kind} parity bit of its {width}-bit input.",
    ],
    "clkdiv": [
        "Write a Verilog module named {name} that divides the input clock frequency by {divide_by} using a counter.",
        "Create a clock divider called {name} with a divide ratio of {divide_by}.",
        "Design a frequency divider module {name} producing an output clock at 1/{divide_by} of the input rate.",
    ],
    "edge": [
        "Write a Verilog module named {name} that detects a {edge_kind} edge on its input and produces a single-cycle pulse.",
        "Create a {edge_kind}-edge detector called {name} generating a pulse when the input transitions.",
        "Design an edge detector module {name} for {edge_kind} transitions of signal_in.",
    ],
}


def describe_design(family: str, name: str, parameters: Dict[str, int]) -> str:
    """Produce a natural-language description of a generated design.

    The template is chosen deterministically from the design name so the same
    item always receives the same description (important for dataset
    reproducibility and deduplication).
    """
    templates = _TEMPLATES.get(family)
    if not templates:
        return f"Write a Verilog module named {name}."
    digest = int(hashlib.sha256(f"{family}:{name}".encode()).hexdigest(), 16)
    template = templates[digest % len(templates)]
    fields = {
        "name": name,
        "width": parameters.get("width", 8),
        "inputs": parameters.get("inputs", 2),
        "num_ops": parameters.get("num_ops", 4),
        "in_width": parameters.get("in_width", 2),
        "out_width": parameters.get("out_width", 4),
        "num_states": parameters.get("num_states", 3),
        "divide_by": parameters.get("divide_by", 4),
        "direction": "down" if parameters.get("down") else "up",
        "carry_clause": " with carry-in and carry-out" if parameters.get("with_carry") else "",
        "kind": "serial shift register" if parameters.get("serial") else "bidirectional barrel shifter",
        "edge_kind": "falling" if parameters.get("falling") else "rising",
    }
    if family == "parity":
        fields["kind"] = "odd" if parameters.get("odd") else "even"
    return template.format(**fields)
