"""MinHash signatures and Jaccard-similarity deduplication (paper Sec. III-A).

The paper removes duplicate Verilog modules "using MinHash and Jaccard
similarity metrics".  This module implements both pieces:

* :func:`minhash_signature` — a k-permutation MinHash signature over token
  shingles of a document;
* :func:`jaccard_similarity` — the exact Jaccard similarity between two
  shingle sets (used to verify candidate pairs and in tests);
* :class:`MinHashDeduplicator` — LSH-style banding over signatures to find
  candidate near-duplicates, verified with the estimated Jaccard similarity.
"""

from __future__ import annotations

import hashlib
import re
from typing import Dict, List, Sequence, Set, Tuple

import numpy as np

_TOKEN_PATTERN = re.compile(r"[A-Za-z_][A-Za-z0-9_]*|\d+|[^\sA-Za-z0-9_]")

_MERSENNE_PRIME = (1 << 61) - 1
_MAX_HASH = (1 << 32) - 1


def _tokenize(text: str) -> List[str]:
    return _TOKEN_PATTERN.findall(text)


def shingles(text: str, size: int = 3) -> Set[str]:
    """Token shingles (n-grams) of ``text``."""
    tokens = _tokenize(text)
    if len(tokens) < size:
        return {" ".join(tokens)} if tokens else set()
    return {" ".join(tokens[i : i + size]) for i in range(len(tokens) - size + 1)}


def jaccard_similarity(text_a: str, text_b: str, shingle_size: int = 3) -> float:
    """Exact Jaccard similarity between the shingle sets of two documents."""
    set_a = shingles(text_a, shingle_size)
    set_b = shingles(text_b, shingle_size)
    if not set_a and not set_b:
        return 1.0
    if not set_a or not set_b:
        return 0.0
    return len(set_a & set_b) / len(set_a | set_b)


def _stable_hash(value: str) -> int:
    return int.from_bytes(hashlib.blake2b(value.encode(), digest_size=8).digest(), "big")


def minhash_signature(text: str, num_permutations: int = 64, shingle_size: int = 3, seed: int = 1) -> np.ndarray:
    """MinHash signature of ``text`` using ``num_permutations`` hash functions."""
    rng = np.random.default_rng(seed)
    coefficients_a = rng.integers(1, _MERSENNE_PRIME, size=num_permutations, dtype=np.int64)
    coefficients_b = rng.integers(0, _MERSENNE_PRIME, size=num_permutations, dtype=np.int64)
    doc_shingles = shingles(text, shingle_size)
    signature = np.full(num_permutations, np.iinfo(np.int64).max, dtype=np.int64)
    for shingle in doc_shingles:
        base = _stable_hash(shingle) & _MAX_HASH
        hashes = (coefficients_a * base + coefficients_b) % _MERSENNE_PRIME
        signature = np.minimum(signature, hashes)
    return signature


def estimated_jaccard(signature_a: np.ndarray, signature_b: np.ndarray) -> float:
    """Estimate Jaccard similarity as the fraction of matching signature slots."""
    if signature_a.shape != signature_b.shape or signature_a.size == 0:
        return 0.0
    return float(np.mean(signature_a == signature_b))


class MinHashDeduplicator:
    """Near-duplicate removal with MinHash + LSH banding.

    Documents whose estimated Jaccard similarity exceeds ``threshold`` are
    considered duplicates; only the first occurrence is kept.
    """

    def __init__(
        self,
        threshold: float = 0.8,
        num_permutations: int = 64,
        bands: int = 16,
        shingle_size: int = 3,
        seed: int = 1,
    ) -> None:
        if num_permutations % bands != 0:
            raise ValueError("num_permutations must be divisible by bands")
        self.threshold = threshold
        self.num_permutations = num_permutations
        self.bands = bands
        self.rows_per_band = num_permutations // bands
        self.shingle_size = shingle_size
        self.seed = seed

    def deduplicate(self, documents: Sequence[str]) -> Tuple[List[int], List[Tuple[int, int]]]:
        """Return (kept indices, duplicate pairs) over ``documents``.

        A duplicate pair ``(i, j)`` with ``i < j`` means document ``j`` was
        dropped because it is a near-duplicate of document ``i``.
        """
        signatures = [
            minhash_signature(doc, self.num_permutations, self.shingle_size, self.seed) for doc in documents
        ]
        buckets: Dict[Tuple[int, bytes], List[int]] = {}
        duplicates: List[Tuple[int, int]] = []
        dropped: Set[int] = set()

        for index, signature in enumerate(signatures):
            if index in dropped:
                continue
            candidate_set: Set[int] = set()
            keys = []
            for band in range(self.bands):
                start = band * self.rows_per_band
                key = (band, signature[start : start + self.rows_per_band].tobytes())
                keys.append(key)
                for other in buckets.get(key, []):
                    candidate_set.add(other)
            is_duplicate = False
            for other in sorted(candidate_set):
                if other in dropped:
                    continue
                similarity = estimated_jaccard(signature, signatures[other])
                if similarity >= self.threshold:
                    duplicates.append((other, index))
                    dropped.add(index)
                    is_duplicate = True
                    break
            if is_duplicate:
                continue
            for key in keys:
                buckets.setdefault(key, []).append(index)

        kept = [i for i in range(len(documents)) if i not in dropped]
        return kept, duplicates
