"""Speed-evaluation prompt augmentation (GPT-4 prompt-set substitute).

For the speed evaluation the paper supplements the RTLLM and VGen prompts with
additional GPT-4-generated prompts in the same formats, reaching 575 prompts
in total.  Offline, :func:`build_speed_prompt_set` produces an arbitrary-size
prompt set by combining:

* the benchmark prompts themselves (RTLLM free-form + VGen header style), and
* template-generated prompts over the corpus design families with randomised
  module names, widths and phrasings (the GPT-4 substitute).

The generated prompts are *specification only* — they have no testbench — which
is exactly how the paper uses them (speed measurement does not grade
correctness).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.data.corpus import CorpusConfig, SyntheticVerilogCorpus
from repro.data.descriptions import describe_design
from repro.evalbench.problems import ProblemSuite

#: Instruction prefix shared with the training data and benchmarks.
_PREFIX = "Please act as a professional Verilog designer.\n"

#: Phrasing variants wrapped around the family description templates.
_WRAPPERS = (
    "{description}",
    "{description} Include all port declarations in the module header.",
    "{description} Use non-blocking assignments for all sequential logic.",
    "{description} Keep the implementation purely synthesizable.",
    "{description} Add a one-line comment describing each output.",
)


def augmented_prompts(count: int, seed: int = 0) -> List[str]:
    """Generate ``count`` RTLLM-style prompts over the corpus design families."""
    corpus = SyntheticVerilogCorpus(CorpusConfig(seed=seed))
    families = corpus.families()
    rng = np.random.default_rng(seed)
    prompts: List[str] = []
    index = 0
    while len(prompts) < count:
        family = families[index % len(families)]
        item = corpus.generate_item(family, index)
        description = describe_design(family, item.name, item.parameters)
        wrapper = _WRAPPERS[int(rng.integers(0, len(_WRAPPERS)))]
        prompts.append(_PREFIX + wrapper.format(description=description) + "\n")
        index += 1
    return prompts


def build_speed_prompt_set(
    total: int = 575,
    suites: Optional[Sequence[ProblemSuite]] = None,
    seed: int = 0,
) -> List[str]:
    """Build the paper-style speed prompt set.

    Args:
        total: target number of prompts (the paper uses 575).
        suites: benchmark suites whose prompts are included first; defaults to
            none (pure augmentation) so this module has no import cycle with
            :mod:`repro.evalbench` — callers normally pass the RTLLM and VGen
            suites.
        seed: seed for the augmentation generator.

    Returns:
        A list of exactly ``total`` prompts (benchmark prompts first, then
        template-augmented prompts).
    """
    prompts: List[str] = []
    if suites:
        for suite in suites:
            prompts.extend(suite.prompts())
    if len(prompts) >= total:
        return prompts[:total]
    prompts.extend(augmented_prompts(total - len(prompts), seed=seed))
    return prompts
