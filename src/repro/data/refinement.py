"""Data refinement pipeline (paper Fig. 2, "Code Refinement" path).

The paper's pipeline is: split raw files into modules, remove duplicates with
MinHash/Jaccard, filter files lacking complete ``module``/``endmodule``
structures or consisting mostly of comments, syntax-check everything with the
Stagira parser keeping only passing samples, and finally annotate the cleaned
code with its syntactically significant tokens (``[FRAG]`` insertion).

:func:`refine_corpus` runs exactly these stages over a list of
:class:`~repro.data.corpus.CorpusItem` and reports what each stage removed.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.data.corpus import CorpusItem
from repro.data.minhash import MinHashDeduplicator
from repro.verilog.fragments import insert_frag_markers
from repro.verilog.syntax import check_syntax


@dataclass
class RefinementConfig:
    """Configuration of the refinement pipeline."""

    dedup_threshold: float = 0.8
    minhash_permutations: int = 64
    minhash_bands: int = 16
    #: Items whose comment-character fraction exceeds this are dropped.
    max_comment_fraction: float = 0.6
    #: Whether to annotate cleaned code with [FRAG] markers.
    add_frag_markers: bool = True


@dataclass
class RefinedItem:
    """A corpus item that survived refinement."""

    name: str
    family: str
    description: str
    code: str
    code_with_frag: str


@dataclass
class RefinementReport:
    """Statistics of one refinement run."""

    total_input: int = 0
    after_module_split: int = 0
    removed_structure_filter: int = 0
    removed_comment_filter: int = 0
    removed_duplicates: int = 0
    removed_syntax: int = 0
    kept: int = 0
    items: List[RefinedItem] = field(default_factory=list)


_COMMENT_PATTERN = re.compile(r"//[^\n]*|/\*.*?\*/", re.DOTALL)


def split_into_modules(source: str) -> List[str]:
    """Split a Verilog file into its top-level module texts.

    Mirrors the paper's "each file is segmented into functional Verilog
    modules" step.  Text outside any module is discarded.
    """
    modules: List[str] = []
    pattern = re.compile(r"\bmodule\b")
    end_pattern = re.compile(r"\bendmodule\b")
    position = 0
    while True:
        start_match = pattern.search(source, position)
        if start_match is None:
            break
        end_match = end_pattern.search(source, start_match.end())
        if end_match is None:
            break
        modules.append(source[start_match.start() : end_match.end()].strip() + "\n")
        position = end_match.end()
    return modules


def has_complete_module_structure(source: str) -> bool:
    """True when the text contains matching ``module``/``endmodule`` keywords."""
    return bool(re.search(r"\bmodule\b", source)) and bool(re.search(r"\bendmodule\b", source))


def comment_fraction(source: str) -> float:
    """Fraction of characters that belong to comments."""
    if not source.strip():
        return 1.0
    comment_chars = sum(len(match.group(0)) for match in _COMMENT_PATTERN.finditer(source))
    return comment_chars / max(len(source), 1)


def refine_corpus(
    items: Sequence[CorpusItem], config: Optional[RefinementConfig] = None
) -> RefinementReport:
    """Run the full refinement pipeline over raw corpus items."""
    config = config or RefinementConfig()
    report = RefinementReport(total_input=len(items))

    # Stage 1: split into modules (one item may contain several modules).
    staged: List[Tuple[CorpusItem, str]] = []
    for item in items:
        modules = split_into_modules(item.code)
        if not modules:
            # Keep the raw text so later stages can reject it explicitly.
            staged.append((item, item.code))
            continue
        for module_text in modules:
            staged.append((item, module_text))
    report.after_module_split = len(staged)

    # Stage 2: structural filter (complete module/endmodule, not mostly comments).
    structurally_ok: List[Tuple[CorpusItem, str]] = []
    for item, code in staged:
        if not has_complete_module_structure(code):
            report.removed_structure_filter += 1
            continue
        if comment_fraction(code) > config.max_comment_fraction:
            report.removed_comment_filter += 1
            continue
        structurally_ok.append((item, code))

    # Stage 3: MinHash/Jaccard deduplication.
    deduplicator = MinHashDeduplicator(
        threshold=config.dedup_threshold,
        num_permutations=config.minhash_permutations,
        bands=config.minhash_bands,
    )
    kept_indices, duplicate_pairs = deduplicator.deduplicate([code for _, code in structurally_ok])
    report.removed_duplicates = len(duplicate_pairs)
    deduplicated = [structurally_ok[i] for i in kept_indices]

    # Stage 4: syntax check with the parser; keep only cleaned code.
    for item, code in deduplicated:
        result = check_syntax(code)
        if not result.ok:
            report.removed_syntax += 1
            continue
        code_with_frag = insert_frag_markers(code) if config.add_frag_markers else code
        report.items.append(
            RefinedItem(
                name=item.name,
                family=item.family,
                description=item.description,
                code=code,
                code_with_frag=code_with_frag,
            )
        )
    report.kept = len(report.items)
    return report
