"""Evaluation benchmarks and metrics (paper Sec. IV-B).

Provides RTLLM-style and VGen-style problem suites built on the in-repo
simulator, the pass@k / Pass Rate metrics, syntax and functional graders,
the speed/speedup measurement harness (eq. 3/4) and the serving-throughput
harness (requests/sec, tokens/sec, latency percentiles vs. the sequential
baseline).
"""

from repro.evalbench.problems import Problem, ProblemSuite
from repro.evalbench.rtllm import rtllm_suite
from repro.evalbench.vgen import vgen_suite
from repro.evalbench.passk import pass_at_k, pass_at_k_from_counts, pass_at_k_single, pass_rate
from repro.evalbench.syntax_eval import check_design_compiles
from repro.evalbench.functional import check_design_functional, check_designs_functional
from repro.evalbench.speed import (
    CacheComparison,
    SpeedReport,
    TreeComparison,
    compare_cache_modes,
    compare_tree_modes,
    measure_speed,
    speedup,
)
from repro.evalbench.throughput import (
    ServingComparison,
    ThroughputReport,
    compare_serving_modes,
    measure_sequential_throughput,
    measure_serving_throughput,
    measure_streaming_throughput,
)
from repro.evalbench.runner import EvaluationRunner, PromptEvaluation, QualityReport

__all__ = [
    "Problem",
    "ProblemSuite",
    "rtllm_suite",
    "vgen_suite",
    "pass_at_k",
    "pass_at_k_from_counts",
    "pass_at_k_single",
    "pass_rate",
    "check_design_compiles",
    "check_design_functional",
    "check_designs_functional",
    "CacheComparison",
    "SpeedReport",
    "TreeComparison",
    "compare_cache_modes",
    "compare_tree_modes",
    "measure_speed",
    "speedup",
    "ServingComparison",
    "ThroughputReport",
    "compare_serving_modes",
    "measure_sequential_throughput",
    "measure_serving_throughput",
    "measure_streaming_throughput",
    "EvaluationRunner",
    "PromptEvaluation",
    "QualityReport",
]
