"""Reference designs and self-checking testbenches for the benchmark suites.

Every builder returns a ``(prompt, reference, testbench)`` triple.  Prompts
describe the module name and its ports explicitly (as both RTLLM and the
low-level VGen prompts do), references are golden implementations, and
testbenches are self-checking: they print ``TEST PASSED`` when every check
passes and ``MISMATCH``/``TEST FAILED`` otherwise, which is what the
functional grader looks for.

Combinational problems share a generic vector-based testbench generator whose
expected values are computed in Python; sequential problems use hand-written
templates.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

DesignTriple = Tuple[str, str, str]


# --------------------------------------------------------------------------- #
# Generic combinational testbench generation
# --------------------------------------------------------------------------- #


def combinational_testbench(
    module_name: str,
    inputs: Sequence[Tuple[str, int]],
    outputs: Sequence[Tuple[str, int]],
    vectors: Sequence[Tuple[Dict[str, int], Dict[str, int]]],
) -> str:
    """Build a self-checking testbench applying explicit input/output vectors.

    Args:
        module_name: name of the device under test.
        inputs: ``(port, width)`` pairs driven by the testbench.
        outputs: ``(port, width)`` pairs checked by the testbench.
        vectors: list of ``(input values, expected output values)`` pairs.
    """
    lines: List[str] = [f"module {module_name}_tb;"]
    for name, width in inputs:
        decl = f"    reg [{width - 1}:0] {name};" if width > 1 else f"    reg {name};"
        lines.append(decl)
    for name, width in outputs:
        decl = f"    wire [{width - 1}:0] {name};" if width > 1 else f"    wire {name};"
        lines.append(decl)
    lines.append("    integer errors;")
    connections = ", ".join(f".{name}({name})" for name, _ in list(inputs) + list(outputs))
    lines.append(f"    {module_name} dut({connections});")
    lines.append("    initial begin")
    lines.append("        errors = 0;")
    for input_values, expected in vectors:
        for name, width in inputs:
            value = input_values.get(name, 0) & ((1 << width) - 1)
            lines.append(f"        {name} = {width}'d{value};")
        lines.append("        #10;")
        for name, width in outputs:
            if name not in expected:
                continue
            value = expected[name] & ((1 << width) - 1)
            lines.append(f"        if ({name} !== {width}'d{value}) begin")
            lines.append(f"            errors = errors + 1;")
            lines.append(f'            $display("MISMATCH {name}: got %d expected {value}", {name});')
            lines.append("        end")
    lines.append('        if (errors == 0) $display("TEST PASSED");')
    lines.append('        else $display("TEST FAILED: %d errors", errors);')
    lines.append("        $finish;")
    lines.append("    end")
    lines.append("endmodule")
    return "\n".join(lines) + "\n"


def _port_list_text(inputs: Sequence[Tuple[str, int]], outputs: Sequence[Tuple[str, int]], reg_outputs: bool = False) -> str:
    parts = []
    for name, width in inputs:
        rng = f" [{width - 1}:0]" if width > 1 else ""
        parts.append(f"    input{rng} {name}")
    for name, width in outputs:
        rng = f" [{width - 1}:0]" if width > 1 else ""
        kind = " reg" if reg_outputs else ""
        parts.append(f"    output{kind}{rng} {name}")
    return ",\n".join(parts)


def _header(module_name: str, inputs, outputs, reg_outputs: bool = False) -> str:
    return f"module {module_name} (\n{_port_list_text(inputs, outputs, reg_outputs)}\n);"


# --------------------------------------------------------------------------- #
# Combinational designs
# --------------------------------------------------------------------------- #


def mux2(module_name: str = "mux2to1", width: int = 8) -> DesignTriple:
    """2-to-1 multiplexer."""
    inputs = [("a", width), ("b", width), ("sel", 1)]
    outputs = [("out", width)]
    prompt = (
        f"Implement a Verilog module named {module_name} that selects between two {width}-bit inputs. "
        f"Ports: input [{width - 1}:0] a, input [{width - 1}:0] b, input sel, output [{width - 1}:0] out. "
        "When sel is 0 the output equals a; when sel is 1 the output equals b."
    )
    reference = (
        _header(module_name, inputs, outputs)
        + "\n    assign out = sel ? b : a;\nendmodule\n"
    )
    mask = (1 << width) - 1
    vectors = []
    for a, b, sel in [(0x3C & mask, 0x55 & mask, 0), (0x3C & mask, 0x55 & mask, 1), (0, mask, 1), (mask, 0, 0)]:
        vectors.append(({"a": a, "b": b, "sel": sel}, {"out": b if sel else a}))
    return prompt, reference, combinational_testbench(module_name, inputs, outputs, vectors)


def mux4(module_name: str = "mux4to1", width: int = 8) -> DesignTriple:
    """4-to-1 multiplexer."""
    inputs = [("a", width), ("b", width), ("c", width), ("d", width), ("sel", 2)]
    outputs = [("out", width)]
    prompt = (
        f"Implement a Verilog module named {module_name}: a 4-to-1 multiplexer for {width}-bit data. "
        f"Ports: input [{width - 1}:0] a, b, c, d, input [1:0] sel, output [{width - 1}:0] out. "
        "sel=0 selects a, sel=1 selects b, sel=2 selects c, sel=3 selects d."
    )
    reference = (
        _header(module_name, inputs, outputs, reg_outputs=True)
        + "\n    always @* begin\n        case (sel)\n            2'd0: out = a;\n            2'd1: out = b;\n"
        "            2'd2: out = c;\n            default: out = d;\n        endcase\n    end\nendmodule\n"
    )
    mask = (1 << width) - 1
    values = {"a": 1 & mask, "b": 2 & mask, "c": 4 & mask, "d": 8 & mask}
    vectors = []
    for sel, key in enumerate(["a", "b", "c", "d"]):
        stimulus = dict(values)
        stimulus["sel"] = sel
        vectors.append((stimulus, {"out": values[key]}))
    return prompt, reference, combinational_testbench(module_name, inputs, outputs, vectors)


def adder(module_name: str = "adder", width: int = 8, with_carry: bool = True) -> DesignTriple:
    """Ripple adder with optional carry ports."""
    mask = (1 << width) - 1
    if with_carry:
        inputs = [("a", width), ("b", width), ("cin", 1)]
        outputs = [("sum", width), ("cout", 1)]
        prompt = (
            f"Implement a Verilog module named {module_name}: a {width}-bit adder with carry. "
            f"Ports: input [{width - 1}:0] a, input [{width - 1}:0] b, input cin, "
            f"output [{width - 1}:0] sum, output cout. The outputs satisfy {{cout, sum}} = a + b + cin."
        )
        reference = (
            _header(module_name, inputs, outputs)
            + "\n    assign {cout, sum} = a + b + cin;\nendmodule\n"
        )
        vectors = []
        for a, b, cin in [(1, 2, 0), (mask, 1, 0), (mask, mask, 1), (0x2A & mask, 0x15 & mask, 1)]:
            total = a + b + cin
            vectors.append(({"a": a, "b": b, "cin": cin}, {"sum": total & mask, "cout": (total >> width) & 1}))
    else:
        inputs = [("a", width), ("b", width)]
        outputs = [("sum", width)]
        prompt = (
            f"Implement a Verilog module named {module_name}: a {width}-bit adder. "
            f"Ports: input [{width - 1}:0] a, input [{width - 1}:0] b, output [{width - 1}:0] sum. "
            "The output is the sum of the inputs (modulo 2^width)."
        )
        reference = _header(module_name, inputs, outputs) + "\n    assign sum = a + b;\nendmodule\n"
        vectors = [({"a": a, "b": b}, {"sum": (a + b) & mask}) for a, b in [(1, 2), (10, 20), (mask, 1), (77 & mask, 33 & mask)]]
    return prompt, reference, combinational_testbench(module_name, inputs, outputs, vectors)


def subtractor(module_name: str = "subtractor", width: int = 8) -> DesignTriple:
    """Combinational subtractor."""
    mask = (1 << width) - 1
    inputs = [("a", width), ("b", width)]
    outputs = [("diff", width), ("borrow", 1)]
    prompt = (
        f"Implement a Verilog module named {module_name}: a {width}-bit subtractor. "
        f"Ports: input [{width - 1}:0] a, input [{width - 1}:0] b, output [{width - 1}:0] diff, output borrow. "
        "diff = a - b and borrow is 1 when a < b."
    )
    reference = (
        _header(module_name, inputs, outputs)
        + "\n    assign diff = a - b;\n    assign borrow = (a < b);\nendmodule\n"
    )
    vectors = []
    for a, b in [(10, 3), (3, 10), (mask, mask), (0, 1)]:
        vectors.append(({"a": a, "b": b}, {"diff": (a - b) & mask, "borrow": int(a < b)}))
    return prompt, reference, combinational_testbench(module_name, inputs, outputs, vectors)


def alu(module_name: str = "alu", width: int = 8) -> DesignTriple:
    """Small 8-operation ALU with a zero flag."""
    mask = (1 << width) - 1
    inputs = [("a", width), ("b", width), ("op", 3)]
    outputs = [("result", width), ("zero", 1)]
    prompt = (
        f"Implement a Verilog module named {module_name}: a {width}-bit ALU. "
        f"Ports: input [{width - 1}:0] a, input [{width - 1}:0] b, input [2:0] op, "
        f"output [{width - 1}:0] result, output zero. Operations: op=0 add, op=1 subtract, op=2 AND, "
        "op=3 OR, op=4 XOR, op=5 NOT a, op=6 shift a left by 1, op=7 pass a. "
        "zero is 1 when the result is 0."
    )
    reference = (
        _header(module_name, inputs, outputs, reg_outputs=False).replace("output [", "output reg [", 1).replace("output reg [7:0] result", f"output reg [{width - 1}:0] result")
    )
    # Build the reference explicitly to avoid the replace juggling above.
    reference = (
        f"module {module_name} (\n"
        f"    input [{width - 1}:0] a,\n    input [{width - 1}:0] b,\n    input [2:0] op,\n"
        f"    output reg [{width - 1}:0] result,\n    output zero\n);\n"
        f"    assign zero = (result == {width}'d0);\n"
        "    always @* begin\n        case (op)\n"
        "            3'd0: result = a + b;\n            3'd1: result = a - b;\n            3'd2: result = a & b;\n"
        "            3'd3: result = a | b;\n            3'd4: result = a ^ b;\n            3'd5: result = ~a;\n"
        "            3'd6: result = a << 1;\n            default: result = a;\n        endcase\n    end\nendmodule\n"
    )

    def model(a: int, b: int, op: int) -> int:
        operations = [a + b, a - b, a & b, a | b, a ^ b, ~a, a << 1, a]
        return operations[op] & mask

    vectors = []
    for op in range(8):
        a, b = 0x3C & mask, 0x05 & mask
        result = model(a, b, op)
        vectors.append(({"a": a, "b": b, "op": op}, {"result": result, "zero": int(result == 0)}))
    vectors.append(({"a": 5, "b": 5, "op": 1}, {"result": 0, "zero": 1}))
    return prompt, reference, combinational_testbench(module_name, inputs, outputs, vectors)


def comparator(module_name: str = "comparator", width: int = 8) -> DesignTriple:
    """Magnitude comparator."""
    inputs = [("a", width), ("b", width)]
    outputs = [("eq", 1), ("gt", 1), ("lt", 1)]
    prompt = (
        f"Implement a Verilog module named {module_name} comparing two {width}-bit unsigned inputs. "
        f"Ports: input [{width - 1}:0] a, input [{width - 1}:0] b, output eq, output gt, output lt. "
        "eq=1 when a==b, gt=1 when a>b, lt=1 when a<b."
    )
    reference = (
        _header(module_name, inputs, outputs)
        + "\n    assign eq = (a == b);\n    assign gt = (a > b);\n    assign lt = (a < b);\nendmodule\n"
    )
    vectors = []
    for a, b in [(5, 5), (9, 3), (3, 9), (0, 0)]:
        vectors.append(({"a": a, "b": b}, {"eq": int(a == b), "gt": int(a > b), "lt": int(a < b)}))
    return prompt, reference, combinational_testbench(module_name, inputs, outputs, vectors)


def decoder(module_name: str = "decoder3to8", in_width: int = 3) -> DesignTriple:
    """Binary to one-hot decoder."""
    out_width = 1 << in_width
    inputs = [("sel", in_width)]
    outputs = [("out", out_width)]
    prompt = (
        f"Implement a Verilog module named {module_name}: a {in_width}-to-{out_width} one-hot decoder. "
        f"Ports: input [{in_width - 1}:0] sel, output [{out_width - 1}:0] out. "
        "Exactly the bit indexed by sel is 1, all other bits are 0."
    )
    reference = (
        _header(module_name, inputs, outputs)
        + f"\n    assign out = {out_width}'d1 << sel;\nendmodule\n"
    )
    vectors = [({"sel": i}, {"out": 1 << i}) for i in range(out_width)]
    return prompt, reference, combinational_testbench(module_name, inputs, outputs, vectors)


def priority_encoder(module_name: str = "priority_encoder") -> DesignTriple:
    """4-to-2 priority encoder with valid flag."""
    inputs = [("in", 4)]
    outputs = [("out", 2), ("valid", 1)]
    prompt = (
        f"Implement a Verilog module named {module_name}: a 4-to-2 priority encoder. "
        "Ports: input [3:0] in, output [1:0] out, output valid. "
        "out is the index of the highest set bit of in; valid is 0 when in is all zeros."
    )
    reference = (
        f"module {module_name} (\n    input [3:0] in,\n    output reg [1:0] out,\n    output reg valid\n);\n"
        "    always @* begin\n        valid = 1'b1;\n        casez (in)\n"
        "            4'b1???: out = 2'd3;\n            4'b01??: out = 2'd2;\n"
        "            4'b001?: out = 2'd1;\n            4'b0001: out = 2'd0;\n"
        "            default: begin out = 2'd0; valid = 1'b0; end\n        endcase\n    end\nendmodule\n"
    )
    vectors = []
    for value in [0b0000, 0b0001, 0b0010, 0b0101, 0b1000, 0b1111]:
        if value == 0:
            expected = {"out": 0, "valid": 0}
        else:
            expected = {"out": value.bit_length() - 1, "valid": 1}
        vectors.append(({"in": value}, expected))
    return prompt, reference, combinational_testbench(module_name, inputs, outputs, vectors)


def gray_converter(module_name: str = "bin2gray", width: int = 8) -> DesignTriple:
    """Binary to Gray-code converter."""
    inputs = [("bin", width)]
    outputs = [("gray", width)]
    prompt = (
        f"Implement a Verilog module named {module_name} that converts a {width}-bit binary value to Gray code. "
        f"Ports: input [{width - 1}:0] bin, output [{width - 1}:0] gray. gray = bin ^ (bin >> 1)."
    )
    reference = _header(module_name, inputs, outputs) + "\n    assign gray = bin ^ (bin >> 1);\nendmodule\n"
    vectors = [({"bin": v}, {"gray": v ^ (v >> 1)}) for v in [0, 1, 2, 3, 7, 12, 255 & ((1 << width) - 1)]]
    return prompt, reference, combinational_testbench(module_name, inputs, outputs, vectors)


def parity_generator(module_name: str = "parity_gen", width: int = 8, odd: bool = False) -> DesignTriple:
    """Even/odd parity generator."""
    inputs = [("data", width)]
    outputs = [("parity", 1)]
    kind = "odd" if odd else "even"
    prompt = (
        f"Implement a Verilog module named {module_name} that computes the {kind} parity bit of a {width}-bit input. "
        f"Ports: input [{width - 1}:0] data, output parity."
    )
    expr = "~^data" if odd else "^data"
    reference = _header(module_name, inputs, outputs) + f"\n    assign parity = {expr};\nendmodule\n"
    vectors = []
    for value in [0, 1, 3, 7, 0xFF & ((1 << width) - 1), 0xA5 & ((1 << width) - 1)]:
        ones = bin(value).count("1")
        parity = ones % 2
        if odd:
            parity ^= 1
        vectors.append(({"data": value}, {"parity": parity}))
    return prompt, reference, combinational_testbench(module_name, inputs, outputs, vectors)


def barrel_shifter(module_name: str = "barrel_shifter", width: int = 8) -> DesignTriple:
    """Bidirectional logical shifter."""
    mask = (1 << width) - 1
    inputs = [("data", width), ("amount", 3), ("dir", 1)]
    outputs = [("out", width)]
    prompt = (
        f"Implement a Verilog module named {module_name}: a {width}-bit shifter. "
        f"Ports: input [{width - 1}:0] data, input [2:0] amount, input dir, output [{width - 1}:0] out. "
        "When dir is 0 the data is shifted left by amount; when dir is 1 it is shifted right."
    )
    reference = (
        _header(module_name, inputs, outputs)
        + "\n    assign out = dir ? (data >> amount) : (data << amount);\nendmodule\n"
    )
    vectors = []
    for data, amount, direction in [(0x0F, 2, 0), (0xF0 & mask, 3, 1), (1, 7, 0), (mask, 1, 1)]:
        expected = (data >> amount) if direction else (data << amount)
        vectors.append(({"data": data, "amount": amount, "dir": direction}, {"out": expected & mask}))
    return prompt, reference, combinational_testbench(module_name, inputs, outputs, vectors)


def half_adder(module_name: str = "half_adder") -> DesignTriple:
    """1-bit half adder."""
    inputs = [("a", 1), ("b", 1)]
    outputs = [("sum", 1), ("carry", 1)]
    prompt = (
        f"Implement a Verilog module named {module_name}: a half adder. "
        "Ports: input a, input b, output sum, output carry. sum = a XOR b, carry = a AND b."
    )
    reference = (
        _header(module_name, inputs, outputs)
        + "\n    assign sum = a ^ b;\n    assign carry = a & b;\nendmodule\n"
    )
    vectors = [({"a": a, "b": b}, {"sum": a ^ b, "carry": a & b}) for a in (0, 1) for b in (0, 1)]
    return prompt, reference, combinational_testbench(module_name, inputs, outputs, vectors)


def full_adder(module_name: str = "full_adder") -> DesignTriple:
    """1-bit full adder."""
    inputs = [("a", 1), ("b", 1), ("cin", 1)]
    outputs = [("sum", 1), ("cout", 1)]
    prompt = (
        f"Implement a Verilog module named {module_name}: a full adder. "
        "Ports: input a, input b, input cin, output sum, output cout. "
        "{cout, sum} = a + b + cin."
    )
    reference = (
        _header(module_name, inputs, outputs)
        + "\n    assign {cout, sum} = a + b + cin;\nendmodule\n"
    )
    vectors = []
    for a in (0, 1):
        for b in (0, 1):
            for cin in (0, 1):
                total = a + b + cin
                vectors.append(({"a": a, "b": b, "cin": cin}, {"sum": total & 1, "cout": total >> 1}))
    return prompt, reference, combinational_testbench(module_name, inputs, outputs, vectors)


def logic_gate(module_name: str = "and_gate", operation: str = "and", width: int = 1) -> DesignTriple:
    """Simple two-input gate module (and/or/xor/nand/nor/xnor)."""
    mask = (1 << width) - 1
    expressions = {
        "and": "a & b",
        "or": "a | b",
        "xor": "a ^ b",
        "nand": "~(a & b)",
        "nor": "~(a | b)",
        "xnor": "~(a ^ b)",
    }
    models = {
        "and": lambda a, b: a & b,
        "or": lambda a, b: a | b,
        "xor": lambda a, b: a ^ b,
        "nand": lambda a, b: ~(a & b) & mask,
        "nor": lambda a, b: ~(a | b) & mask,
        "xnor": lambda a, b: ~(a ^ b) & mask,
    }
    inputs = [("a", width), ("b", width)]
    outputs = [("y", width)]
    prompt = (
        f"Implement a Verilog module named {module_name} computing the bitwise {operation.upper()} of two "
        f"{width}-bit inputs. Ports: input{'' if width == 1 else f' [{width - 1}:0]'} a, "
        f"input{'' if width == 1 else f' [{width - 1}:0]'} b, output{'' if width == 1 else f' [{width - 1}:0]'} y."
    )
    reference = _header(module_name, inputs, outputs) + f"\n    assign y = {expressions[operation]};\nendmodule\n"
    pairs = [(0, 0), (0, mask), (mask, 0), (mask, mask), (0b0101 & mask, 0b0011 & mask)]
    vectors = [({"a": a, "b": b}, {"y": models[operation](a, b)}) for a, b in pairs]
    return prompt, reference, combinational_testbench(module_name, inputs, outputs, vectors)


def absolute_value(module_name: str = "abs_value", width: int = 8) -> DesignTriple:
    """Absolute value of a signed input."""
    mask = (1 << width) - 1
    inputs = [("in", width)]
    outputs = [("out", width)]
    prompt = (
        f"Implement a Verilog module named {module_name} that outputs the absolute value of a signed {width}-bit "
        f"two's-complement input. Ports: input [{width - 1}:0] in, output [{width - 1}:0] out. "
        f"When the sign bit in[{width - 1}] is 1, out = -in, otherwise out = in."
    )
    reference = (
        _header(module_name, inputs, outputs)
        + f"\n    assign out = in[{width - 1}] ? (~in + 1'b1) : in;\nendmodule\n"
    )
    vectors = []
    for value in [5, 0, (-7) & mask, (-128) & mask, 127 & mask]:
        signed = value - (1 << width) if value >> (width - 1) else value
        vectors.append(({"in": value}, {"out": abs(signed) & mask}))
    return prompt, reference, combinational_testbench(module_name, inputs, outputs, vectors)


def min_max(module_name: str = "min_max", width: int = 8) -> DesignTriple:
    """Minimum and maximum of two unsigned values."""
    inputs = [("a", width), ("b", width)]
    outputs = [("min_out", width), ("max_out", width)]
    prompt = (
        f"Implement a Verilog module named {module_name} that outputs the minimum and maximum of two {width}-bit "
        f"unsigned inputs. Ports: input [{width - 1}:0] a, input [{width - 1}:0] b, "
        f"output [{width - 1}:0] min_out, output [{width - 1}:0] max_out."
    )
    reference = (
        _header(module_name, inputs, outputs)
        + "\n    assign min_out = (a < b) ? a : b;\n    assign max_out = (a > b) ? a : b;\nendmodule\n"
    )
    vectors = [({"a": a, "b": b}, {"min_out": min(a, b), "max_out": max(a, b)}) for a, b in [(3, 9), (9, 3), (7, 7), (0, 255)]]
    return prompt, reference, combinational_testbench(module_name, inputs, outputs, vectors)


# --------------------------------------------------------------------------- #
# Sequential designs
# --------------------------------------------------------------------------- #


def data_register(module_name: str = "data_register", width: int = 4) -> DesignTriple:
    """The paper's running example: a clocked data register (Fig. 5)."""
    prompt = (
        f'Create a simple Verilog module named "{module_name}" that takes a {width}-bit input data_in and assigns '
        f"it to a {width}-bit output data_out using a non-blocking assignment on the positive edge of the clock. "
        f"Ports: input clk, input [{width - 1}:0] data_in, output reg [{width - 1}:0] data_out."
    )
    reference = (
        f"module {module_name} (\n    input clk,\n    input [{width - 1}:0] data_in,\n"
        f"    output reg [{width - 1}:0] data_out\n);\n"
        "    always @(posedge clk) begin\n        data_out <= data_in;\n    end\nendmodule\n"
    )
    testbench = f"""module {module_name}_tb;
    reg clk = 0;
    reg [{width - 1}:0] data_in;
    wire [{width - 1}:0] data_out;
    integer errors;
    {module_name} dut(.clk(clk), .data_in(data_in), .data_out(data_out));
    always #5 clk = ~clk;
    initial begin
        errors = 0;
        data_in = {width}'d3;
        #12;
        if (data_out !== {width}'d3) begin errors = errors + 1; $display("MISMATCH after first edge: %d", data_out); end
        data_in = {width}'d9;
        #10;
        if (data_out !== {width}'d9) begin errors = errors + 1; $display("MISMATCH after second edge: %d", data_out); end
        data_in = {width}'d5;
        #3;
        if (data_out !== {width}'d9) begin errors = errors + 1; $display("MISMATCH before edge: %d", data_out); end
        #10;
        if (data_out !== {width}'d5) begin errors = errors + 1; $display("MISMATCH after third edge: %d", data_out); end
        if (errors == 0) $display("TEST PASSED");
        else $display("TEST FAILED: %d errors", errors);
        $finish;
    end
endmodule
"""
    return prompt, reference, testbench


def dff(module_name: str = "dff", with_reset: bool = True) -> DesignTriple:
    """D flip-flop with optional asynchronous reset."""
    reset_port = "input rst,\n    " if with_reset else ""
    prompt = (
        f"Implement a Verilog module named {module_name}: a D flip-flop"
        + (" with asynchronous active-high reset" if with_reset else "")
        + f". Ports: input clk, {'input rst, ' if with_reset else ''}input d, output reg q. "
        "q follows d on the rising clock edge" + (" and clears to 0 when rst is high." if with_reset else ".")
    )
    if with_reset:
        body = (
            "    always @(posedge clk or posedge rst) begin\n"
            "        if (rst) q <= 1'b0;\n        else q <= d;\n    end\n"
        )
    else:
        body = "    always @(posedge clk) begin\n        q <= d;\n    end\n"
    reference = f"module {module_name} (\n    input clk,\n    {reset_port}input d,\n    output reg q\n);\n{body}endmodule\n"
    reset_decl = "reg rst;" if with_reset else ""
    reset_conn = ".rst(rst), " if with_reset else ""
    reset_init = "rst = 1; #7 rst = 0;" if with_reset else ""
    reset_check = (
        'rst = 1; #3; if (q !== 1\'b0) begin errors = errors + 1; $display("MISMATCH reset"); end rst = 0;'
        if with_reset
        else ""
    )
    testbench = f"""module {module_name}_tb;
    reg clk = 0;
    reg d;
    {reset_decl}
    wire q;
    integer errors;
    {module_name} dut(.clk(clk), {reset_conn}.d(d), .q(q));
    always #5 clk = ~clk;
    initial begin
        errors = 0;
        d = 0;
        {reset_init}
        d = 1;
        #10;
        if (q !== 1'b1) begin errors = errors + 1; $display("MISMATCH q should be 1"); end
        d = 0;
        #10;
        if (q !== 1'b0) begin errors = errors + 1; $display("MISMATCH q should be 0"); end
        d = 1;
        #10;
        {reset_check}
        if (errors == 0) $display("TEST PASSED");
        else $display("TEST FAILED: %d errors", errors);
        $finish;
    end
endmodule
"""
    return prompt, reference, testbench


def t_flip_flop(module_name: str = "t_ff") -> DesignTriple:
    """Toggle flip-flop."""
    prompt = (
        f"Implement a Verilog module named {module_name}: a T flip-flop with asynchronous reset. "
        "Ports: input clk, input rst, input t, output reg q. On the rising clock edge, q toggles when t is 1 "
        "and holds when t is 0; rst clears q to 0."
    )
    reference = (
        f"module {module_name} (\n    input clk,\n    input rst,\n    input t,\n    output reg q\n);\n"
        "    always @(posedge clk or posedge rst) begin\n"
        "        if (rst) q <= 1'b0;\n        else if (t) q <= ~q;\n    end\nendmodule\n"
    )
    testbench = f"""module {module_name}_tb;
    reg clk = 0, rst, t;
    wire q;
    integer errors;
    {module_name} dut(.clk(clk), .rst(rst), .t(t), .q(q));
    always #5 clk = ~clk;
    initial begin
        errors = 0;
        rst = 1; t = 0;
        #7 rst = 0;
        t = 1;
        #10;
        if (q !== 1'b1) begin errors = errors + 1; $display("MISMATCH toggle 1"); end
        #10;
        if (q !== 1'b0) begin errors = errors + 1; $display("MISMATCH toggle 2"); end
        t = 0;
        #10;
        if (q !== 1'b0) begin errors = errors + 1; $display("MISMATCH hold"); end
        if (errors == 0) $display("TEST PASSED");
        else $display("TEST FAILED: %d errors", errors);
        $finish;
    end
endmodule
"""
    return prompt, reference, testbench


def counter(module_name: str = "up_counter", width: int = 4, down: bool = False) -> DesignTriple:
    """Up/down counter with enable and asynchronous reset."""
    direction = "down" if down else "up"
    step = "count - 1'b1" if down else "count + 1'b1"
    prompt = (
        f"Implement a Verilog module named {module_name}: a {width}-bit {direction} counter. "
        f"Ports: input clk, input rst, input en, output reg [{width - 1}:0] count. "
        "rst asynchronously clears the counter to 0; when en is high the counter "
        f"{'decrements' if down else 'increments'} by 1 on each rising clock edge."
    )
    reference = (
        f"module {module_name} (\n    input clk,\n    input rst,\n    input en,\n"
        f"    output reg [{width - 1}:0] count\n);\n"
        "    always @(posedge clk or posedge rst) begin\n"
        f"        if (rst) count <= {width}'d0;\n        else if (en) count <= {step};\n    end\nendmodule\n"
    )
    mask = (1 << width) - 1
    expected_after_5 = (0 - 5) & mask if down else 5
    expected_hold = expected_after_5
    testbench = f"""module {module_name}_tb;
    reg clk = 0, rst, en;
    wire [{width - 1}:0] count;
    integer errors;
    {module_name} dut(.clk(clk), .rst(rst), .en(en), .count(count));
    always #5 clk = ~clk;
    initial begin
        errors = 0;
        rst = 1; en = 0;
        #12 rst = 0;
        if (count !== {width}'d0) begin errors = errors + 1; $display("MISMATCH reset value %d", count); end
        en = 1;
        #50;
        if (count !== {width}'d{expected_after_5}) begin errors = errors + 1; $display("MISMATCH after 5 edges: %d", count); end
        en = 0;
        #20;
        if (count !== {width}'d{expected_hold}) begin errors = errors + 1; $display("MISMATCH hold: %d", count); end
        rst = 1;
        #3;
        if (count !== {width}'d0) begin errors = errors + 1; $display("MISMATCH async reset: %d", count); end
        if (errors == 0) $display("TEST PASSED");
        else $display("TEST FAILED: %d errors", errors);
        $finish;
    end
endmodule
"""
    return prompt, reference, testbench


def shift_register(module_name: str = "shift_register", width: int = 4) -> DesignTriple:
    """Serial-in shift register."""
    prompt = (
        f"Implement a Verilog module named {module_name}: a {width}-bit serial-in shift register. "
        f"Ports: input clk, input rst, input serial_in, output reg [{width - 1}:0] q. "
        "On each rising clock edge the register shifts left by one and serial_in becomes the new LSB; "
        "rst asynchronously clears it."
    )
    reference = (
        f"module {module_name} (\n    input clk,\n    input rst,\n    input serial_in,\n"
        f"    output reg [{width - 1}:0] q\n);\n"
        "    always @(posedge clk or posedge rst) begin\n"
        f"        if (rst) q <= {width}'d0;\n"
        f"        else q <= {{q[{width - 2}:0], serial_in}};\n    end\nendmodule\n"
    )
    testbench = f"""module {module_name}_tb;
    reg clk = 0, rst, serial_in;
    wire [{width - 1}:0] q;
    integer errors;
    {module_name} dut(.clk(clk), .rst(rst), .serial_in(serial_in), .q(q));
    always #5 clk = ~clk;
    initial begin
        errors = 0;
        rst = 1; serial_in = 0;
        #12 rst = 0;
        serial_in = 1; #10;
        serial_in = 0; #10;
        serial_in = 1; #10;
        serial_in = 1; #10;
        if (q !== {width}'b1011) begin errors = errors + 1; $display("MISMATCH q=%b expected 1011", q); end
        if (errors == 0) $display("TEST PASSED");
        else $display("TEST FAILED: %d errors", errors);
        $finish;
    end
endmodule
"""
    return prompt, reference, testbench


def clock_divider(module_name: str = "clk_div2", width: int = 1) -> DesignTriple:
    """Divide-by-2^width clock divider."""
    ratio = 2 ** (width)
    prompt = (
        f"Implement a Verilog module named {module_name} that divides the input clock frequency by {ratio}. "
        "Ports: input clk, input rst, output clk_out. Use a counter; rst asynchronously clears it. "
        "clk_out is the most significant bit of the counter."
    )
    reference = (
        f"module {module_name} (\n    input clk,\n    input rst,\n    output clk_out\n);\n"
        f"    reg [{width - 1}:0] div_count;\n"
        "    always @(posedge clk or posedge rst) begin\n"
        f"        if (rst) div_count <= {width}'d0;\n        else div_count <= div_count + 1'b1;\n    end\n"
        f"    assign clk_out = div_count[{width - 1}];\nendmodule\n"
    )
    testbench = f"""module {module_name}_tb;
    reg clk = 0, rst;
    wire clk_out;
    integer errors;
    integer transitions;
    reg prev;
    {module_name} dut(.clk(clk), .rst(rst), .clk_out(clk_out));
    always #5 clk = ~clk;
    initial begin
        errors = 0;
        transitions = 0;
        rst = 1;
        #12 rst = 0;
        prev = clk_out;
        repeat (16) begin
            #10;
            if (clk_out !== prev) transitions = transitions + 1;
            prev = clk_out;
        end
        if (transitions !== 16 / {ratio // 2 if ratio > 1 else 1} / 1) begin
        end
        if (transitions < 2) begin errors = errors + 1; $display("MISMATCH clk_out never toggles"); end
        if (errors == 0) $display("TEST PASSED");
        else $display("TEST FAILED: %d errors", errors);
        $finish;
    end
endmodule
"""
    return prompt, reference, testbench


def edge_detector(module_name: str = "edge_detector", falling: bool = False) -> DesignTriple:
    """Rising/falling edge detector producing a one-cycle pulse."""
    kind = "falling" if falling else "rising"
    expr = "~signal_in & signal_d" if falling else "signal_in & ~signal_d"
    prompt = (
        f"Implement a Verilog module named {module_name} that detects a {kind} edge of signal_in and produces a "
        "single-cycle pulse. Ports: input clk, input rst, input signal_in, output pulse. "
        "Register signal_in and compare it with its previous value."
    )
    reference = (
        f"module {module_name} (\n    input clk,\n    input rst,\n    input signal_in,\n    output pulse\n);\n"
        "    reg signal_d;\n"
        "    always @(posedge clk or posedge rst) begin\n"
        "        if (rst) signal_d <= 1'b0;\n        else signal_d <= signal_in;\n    end\n"
        f"    assign pulse = {expr};\nendmodule\n"
    )
    first_level = "0" if not falling else "1"
    second_level = "1" if not falling else "0"
    testbench = f"""module {module_name}_tb;
    reg clk = 0, rst, signal_in;
    wire pulse;
    integer errors;
    {module_name} dut(.clk(clk), .rst(rst), .signal_in(signal_in), .pulse(pulse));
    always #5 clk = ~clk;
    initial begin
        errors = 0;
        rst = 1; signal_in = {first_level};
        #12 rst = 0;
        #10;
        if (pulse !== 1'b0) begin errors = errors + 1; $display("MISMATCH idle pulse"); end
        signal_in = {second_level};
        #2;
        if (pulse !== 1'b1) begin errors = errors + 1; $display("MISMATCH missing pulse"); end
        #10;
        if (pulse !== 1'b0) begin errors = errors + 1; $display("MISMATCH pulse too long"); end
        if (errors == 0) $display("TEST PASSED");
        else $display("TEST FAILED: %d errors", errors);
        $finish;
    end
endmodule
"""
    return prompt, reference, testbench


def simple_fsm(module_name: str = "ctrl_fsm") -> DesignTriple:
    """3-state start/done controller FSM."""
    prompt = (
        f"Implement a Verilog module named {module_name}: a control FSM. "
        "Ports: input clk, input rst, input start, input done, output busy. "
        "States: IDLE (0) and RUN (1). The FSM leaves IDLE when start is high, returns to IDLE when done is high, "
        "and busy is high whenever the FSM is not in IDLE. rst asynchronously returns to IDLE."
    )
    reference = (
        f"module {module_name} (\n    input clk,\n    input rst,\n    input start,\n    input done,\n"
        "    output busy\n);\n"
        "    reg state;\n"
        "    localparam IDLE = 1'b0, RUN = 1'b1;\n"
        "    always @(posedge clk or posedge rst) begin\n"
        "        if (rst) state <= IDLE;\n"
        "        else begin\n"
        "            case (state)\n"
        "                IDLE: if (start) state <= RUN;\n"
        "                RUN: if (done) state <= IDLE;\n"
        "            endcase\n"
        "        end\n"
        "    end\n"
        "    assign busy = (state != IDLE);\nendmodule\n"
    )
    testbench = f"""module {module_name}_tb;
    reg clk = 0, rst, start, done;
    wire busy;
    integer errors;
    {module_name} dut(.clk(clk), .rst(rst), .start(start), .done(done), .busy(busy));
    always #5 clk = ~clk;
    initial begin
        errors = 0;
        rst = 1; start = 0; done = 0;
        #12 rst = 0;
        if (busy !== 1'b0) begin errors = errors + 1; $display("MISMATCH idle busy"); end
        start = 1; #10; start = 0;
        if (busy !== 1'b1) begin errors = errors + 1; $display("MISMATCH busy after start"); end
        #20;
        if (busy !== 1'b1) begin errors = errors + 1; $display("MISMATCH busy while running"); end
        done = 1; #10; done = 0;
        if (busy !== 1'b0) begin errors = errors + 1; $display("MISMATCH busy after done"); end
        if (errors == 0) $display("TEST PASSED");
        else $display("TEST FAILED: %d errors", errors);
        $finish;
    end
endmodule
"""
    return prompt, reference, testbench


def ring_counter(module_name: str = "ring_counter", width: int = 4) -> DesignTriple:
    """One-hot ring counter."""
    prompt = (
        f"Implement a Verilog module named {module_name}: a {width}-bit ring counter. "
        f"Ports: input clk, input rst, output reg [{width - 1}:0] q. "
        f"On reset q is {width}'b0001; on each rising clock edge the single one bit rotates left."
    )
    reference = (
        f"module {module_name} (\n    input clk,\n    input rst,\n    output reg [{width - 1}:0] q\n);\n"
        "    always @(posedge clk or posedge rst) begin\n"
        f"        if (rst) q <= {width}'d1;\n"
        f"        else q <= {{q[{width - 2}:0], q[{width - 1}]}};\n    end\nendmodule\n"
    )
    testbench = f"""module {module_name}_tb;
    reg clk = 0, rst;
    wire [{width - 1}:0] q;
    integer errors;
    {module_name} dut(.clk(clk), .rst(rst), .q(q));
    always #5 clk = ~clk;
    initial begin
        errors = 0;
        rst = 1;
        #12 rst = 0;
        if (q !== {width}'d1) begin errors = errors + 1; $display("MISMATCH reset %b", q); end
        #10;
        if (q !== {width}'d2) begin errors = errors + 1; $display("MISMATCH step1 %b", q); end
        #10;
        if (q !== {width}'d4) begin errors = errors + 1; $display("MISMATCH step2 %b", q); end
        #{10 * (width - 2)};
        if (q !== {width}'d1) begin errors = errors + 1; $display("MISMATCH wrap %b", q); end
        if (errors == 0) $display("TEST PASSED");
        else $display("TEST FAILED: %d errors", errors);
        $finish;
    end
endmodule
"""
    return prompt, reference, testbench


def pipeline_register(module_name: str = "pipe_reg", width: int = 8, stages: int = 2) -> DesignTriple:
    """Two-stage pipeline register."""
    prompt = (
        f"Implement a Verilog module named {module_name}: a {stages}-stage pipeline register for {width}-bit data. "
        f"Ports: input clk, input rst, input [{width - 1}:0] din, output reg [{width - 1}:0] dout. "
        f"Data appears at dout exactly {stages} clock cycles after it is presented at din; rst clears both stages."
    )
    reference = (
        f"module {module_name} (\n    input clk,\n    input rst,\n    input [{width - 1}:0] din,\n"
        f"    output reg [{width - 1}:0] dout\n);\n"
        f"    reg [{width - 1}:0] stage1;\n"
        "    always @(posedge clk or posedge rst) begin\n"
        f"        if (rst) begin stage1 <= {width}'d0; dout <= {width}'d0; end\n"
        "        else begin stage1 <= din; dout <= stage1; end\n    end\nendmodule\n"
    )
    testbench = f"""module {module_name}_tb;
    reg clk = 0, rst;
    reg [{width - 1}:0] din;
    wire [{width - 1}:0] dout;
    integer errors;
    {module_name} dut(.clk(clk), .rst(rst), .din(din), .dout(dout));
    always #5 clk = ~clk;
    initial begin
        errors = 0;
        rst = 1; din = 0;
        #12 rst = 0;
        din = {width}'d7;
        #10 din = {width}'d11;
        #10;
        if (dout !== {width}'d7) begin errors = errors + 1; $display("MISMATCH stage latency: %d", dout); end
        #10;
        if (dout !== {width}'d11) begin errors = errors + 1; $display("MISMATCH second value: %d", dout); end
        if (errors == 0) $display("TEST PASSED");
        else $display("TEST FAILED: %d errors", errors);
        $finish;
    end
endmodule
"""
    return prompt, reference, testbench


def accumulator(module_name: str = "accumulator", width: int = 8) -> DesignTriple:
    """Accumulating adder register."""
    prompt = (
        f"Implement a Verilog module named {module_name}: a {width}-bit accumulator. "
        f"Ports: input clk, input rst, input en, input [{width - 1}:0] din, output reg [{width - 1}:0] acc. "
        "When en is high, acc increases by din on each rising clock edge; rst asynchronously clears it."
    )
    reference = (
        f"module {module_name} (\n    input clk,\n    input rst,\n    input en,\n"
        f"    input [{width - 1}:0] din,\n    output reg [{width - 1}:0] acc\n);\n"
        "    always @(posedge clk or posedge rst) begin\n"
        f"        if (rst) acc <= {width}'d0;\n        else if (en) acc <= acc + din;\n    end\nendmodule\n"
    )
    testbench = f"""module {module_name}_tb;
    reg clk = 0, rst, en;
    reg [{width - 1}:0] din;
    wire [{width - 1}:0] acc;
    integer errors;
    {module_name} dut(.clk(clk), .rst(rst), .en(en), .din(din), .acc(acc));
    always #5 clk = ~clk;
    initial begin
        errors = 0;
        rst = 1; en = 0; din = 0;
        #12 rst = 0;
        en = 1; din = {width}'d5;
        #30;
        if (acc !== {width}'d15) begin errors = errors + 1; $display("MISMATCH acc=%d expected 15", acc); end
        en = 0; din = {width}'d9;
        #20;
        if (acc !== {width}'d15) begin errors = errors + 1; $display("MISMATCH hold acc=%d", acc); end
        if (errors == 0) $display("TEST PASSED");
        else $display("TEST FAILED: %d errors", errors);
        $finish;
    end
endmodule
"""
    return prompt, reference, testbench


def fifo(module_name: str = "sync_fifo", depth: int = 4, width: int = 8) -> DesignTriple:
    """Small synchronous FIFO."""
    prompt = (
        f"Implement a Verilog module named {module_name}: a synchronous FIFO with depth {depth} and {width}-bit data. "
        f"Ports: input clk, input rst, input wr_en, input rd_en, input [{width - 1}:0] din, "
        f"output [{width - 1}:0] dout, output full, output empty. "
        "Writes are accepted when not full, reads when not empty; dout always shows the oldest stored element."
    )
    reference = (
        f"module {module_name} #(parameter DEPTH = {depth}, parameter WIDTH = {width}) (\n"
        "    input clk,\n    input rst,\n    input wr_en,\n    input rd_en,\n"
        "    input [WIDTH-1:0] din,\n    output [WIDTH-1:0] dout,\n    output full,\n    output empty\n);\n"
        "    reg [WIDTH-1:0] mem [0:DEPTH-1];\n"
        "    reg [2:0] wr_ptr, rd_ptr, count;\n"
        "    assign full = (count == DEPTH);\n"
        "    assign empty = (count == 0);\n"
        "    assign dout = mem[rd_ptr];\n"
        "    always @(posedge clk) begin\n"
        "        if (rst) begin\n            wr_ptr <= 0; rd_ptr <= 0; count <= 0;\n        end else begin\n"
        "            if (wr_en && !full) begin\n                mem[wr_ptr] <= din;\n"
        "                wr_ptr <= (wr_ptr + 1) % DEPTH;\n                count <= count + 1;\n            end\n"
        "            if (rd_en && !empty) begin\n                rd_ptr <= (rd_ptr + 1) % DEPTH;\n"
        "                count <= count - 1;\n            end\n        end\n    end\nendmodule\n"
    )
    testbench = f"""module {module_name}_tb;
    reg clk = 0, rst, wr_en, rd_en;
    reg [{width - 1}:0] din;
    wire [{width - 1}:0] dout;
    wire full, empty;
    integer errors;
    {module_name} dut(.clk(clk), .rst(rst), .wr_en(wr_en), .rd_en(rd_en), .din(din), .dout(dout), .full(full), .empty(empty));
    always #5 clk = ~clk;
    initial begin
        errors = 0;
        rst = 1; wr_en = 0; rd_en = 0; din = 0;
        #12 rst = 0;
        if (empty !== 1'b1) begin errors = errors + 1; $display("MISMATCH empty after reset"); end
        wr_en = 1; din = {width}'d170; #10;
        din = {width}'d187; #10;
        wr_en = 0;
        if (empty !== 1'b0) begin errors = errors + 1; $display("MISMATCH not empty after writes"); end
        if (dout !== {width}'d170) begin errors = errors + 1; $display("MISMATCH dout=%d expected 170", dout); end
        rd_en = 1; #10; rd_en = 0;
        if (dout !== {width}'d187) begin errors = errors + 1; $display("MISMATCH dout=%d expected 187", dout); end
        rd_en = 1; #10; rd_en = 0;
        if (empty !== 1'b1) begin errors = errors + 1; $display("MISMATCH empty after reads"); end
        if (errors == 0) $display("TEST PASSED");
        else $display("TEST FAILED: %d errors", errors);
        $finish;
    end
endmodule
"""
    return prompt, reference, testbench


def pwm_generator(module_name: str = "pwm_gen", width: int = 4) -> DesignTriple:
    """Counter-comparator PWM generator."""
    prompt = (
        f"Implement a Verilog module named {module_name}: a PWM generator with a free-running {width}-bit counter. "
        f"Ports: input clk, input rst, input [{width - 1}:0] duty, output pwm. "
        "The counter increments every clock cycle (rst clears it) and pwm is high while the counter is less than duty."
    )
    reference = (
        f"module {module_name} (\n    input clk,\n    input rst,\n    input [{width - 1}:0] duty,\n    output pwm\n);\n"
        f"    reg [{width - 1}:0] cnt;\n"
        "    always @(posedge clk or posedge rst) begin\n"
        f"        if (rst) cnt <= {width}'d0;\n        else cnt <= cnt + 1'b1;\n    end\n"
        "    assign pwm = (cnt < duty);\nendmodule\n"
    )
    testbench = f"""module {module_name}_tb;
    reg clk = 0, rst;
    reg [{width - 1}:0] duty;
    wire pwm;
    integer errors;
    integer highs;
    integer i;
    {module_name} dut(.clk(clk), .rst(rst), .duty(duty), .pwm(pwm));
    always #5 clk = ~clk;
    initial begin
        errors = 0;
        highs = 0;
        duty = {width}'d4;
        rst = 1;
        #12 rst = 0;
        for (i = 0; i < 16; i = i + 1) begin
            #10;
            if (pwm) highs = highs + 1;
        end
        if (highs !== 4) begin errors = errors + 1; $display("MISMATCH duty cycle: %d highs", highs); end
        if (errors == 0) $display("TEST PASSED");
        else $display("TEST FAILED: %d errors", errors);
        $finish;
    end
endmodule
"""
    return prompt, reference, testbench
