"""Functional-correctness grading.

A design is functionally correct when its outputs match the expected results
for all testbench-provided stimuli (paper Sec. IV-B.2).  The self-checking
testbenches in :mod:`repro.evalbench.designs` encode the expected values and
print ``TEST PASSED`` only when every check succeeds, so functional grading
reduces to running the simulation and inspecting its output.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

from repro.evalbench.problems import Problem
from repro.sim.testbench import DEFAULT_BACKEND, run_testbench, run_testbench_batch


@dataclass
class FunctionalEvalResult:
    """Outcome of a functional check."""

    compiled: bool
    passed: bool
    output: str = ""
    errors: List[str] = field(default_factory=list)


def check_design_functional(
    design: str, problem: Problem, max_time: int = 100_000, backend: str = DEFAULT_BACKEND
) -> FunctionalEvalResult:
    """Simulate ``design`` against ``problem``'s testbench and grade the output."""
    result = run_testbench(design, problem.testbench, max_time=max_time, backend=backend)
    return FunctionalEvalResult(
        compiled=result.compiled,
        passed=result.passed,
        output=result.output,
        errors=result.errors,
    )


def check_designs_functional(
    designs: Sequence[str], problem: Problem, max_time: int = 100_000, backend: str = DEFAULT_BACKEND
) -> List[FunctionalEvalResult]:
    """Grade many candidate designs against one problem's testbench.

    The compiled backend batches eligible candidates into a single vectorized
    sweep (:func:`repro.sim.testbench.run_testbench_batch`), which is the main
    lever for grading large sample sets quickly; results are identical to
    per-design :func:`check_design_functional` calls.
    """
    results = run_testbench_batch(list(designs), problem.testbench, max_time=max_time, backend=backend)
    return [
        FunctionalEvalResult(
            compiled=result.compiled,
            passed=result.passed,
            output=result.output,
            errors=result.errors,
        )
        for result in results
    ]
