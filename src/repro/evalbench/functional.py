"""Functional-correctness grading.

A design is functionally correct when its outputs match the expected results
for all testbench-provided stimuli (paper Sec. IV-B.2).  The self-checking
testbenches in :mod:`repro.evalbench.designs` encode the expected values and
print ``TEST PASSED`` only when every check succeeds, so functional grading
reduces to running the simulation and inspecting its output.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.evalbench.problems import Problem
from repro.sim.testbench import run_testbench


@dataclass
class FunctionalEvalResult:
    """Outcome of a functional check."""

    compiled: bool
    passed: bool
    output: str = ""
    errors: List[str] = field(default_factory=list)


def check_design_functional(design: str, problem: Problem, max_time: int = 100_000) -> FunctionalEvalResult:
    """Simulate ``design`` against ``problem``'s testbench and grade the output."""
    result = run_testbench(design, problem.testbench, max_time=max_time)
    return FunctionalEvalResult(
        compiled=result.compiled,
        passed=result.passed,
        output=result.output,
        errors=result.errors,
    )
