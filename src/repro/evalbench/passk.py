"""pass@k and Pass Rate metrics (paper eq. 5 and eq. 6).

``pass@k`` is the unbiased estimator introduced by the HumanEval/VerilogEval
line of work: for a prompt with ``n`` samples of which ``c`` pass, the
probability that at least one of ``k`` randomly chosen samples passes is
``1 - C(n - c, k) / C(n, k)``.  The benchmark-level value is the mean over
prompts.  ``Pass Rate`` is the fraction of prompts for which *any* of the
samples passed.
"""

from __future__ import annotations

from math import comb
from typing import Sequence


def pass_at_k_single(n: int, c: int, k: int) -> float:
    """pass@k for one prompt with ``n`` samples and ``c`` passing samples."""
    if n < 0 or c < 0 or c > n:
        raise ValueError("invalid sample counts")
    if k <= 0:
        raise ValueError("k must be positive")
    if n == 0:
        return 0.0
    k = min(k, n)
    if c == 0:
        return 0.0
    if n - c < k:
        return 1.0
    return 1.0 - comb(n - c, k) / comb(n, k)


def pass_at_k_from_counts(counts: Sequence[Sequence[int]], k: int) -> float:
    """Mean pass@k over prompts given ``(n, c)`` pairs."""
    if not counts:
        return 0.0
    return sum(pass_at_k_single(n, c, k) for n, c in counts) / len(counts)


def pass_at_k(results_per_prompt: Sequence[Sequence[bool]], k: int) -> float:
    """Mean pass@k over prompts given per-sample pass/fail flags."""
    counts = [(len(results), sum(bool(r) for r in results)) for results in results_per_prompt]
    return pass_at_k_from_counts(counts, k)


def pass_rate(results_per_prompt: Sequence[Sequence[bool]]) -> float:
    """Fraction of prompts with at least one passing sample (eq. 6)."""
    if not results_per_prompt:
        return 0.0
    successes = sum(1 for results in results_per_prompt if any(results))
    return successes / len(results_per_prompt)
