"""pass@k and Pass Rate metrics (paper eq. 5 and eq. 6).

``pass@k`` is the unbiased estimator introduced by the HumanEval/VerilogEval
line of work: for a prompt with ``n`` samples of which ``c`` pass, the
probability that at least one of ``k`` randomly chosen samples passes is
``1 - C(n - c, k) / C(n, k)``.  The benchmark-level value is the mean over
prompts.  ``Pass Rate`` is the fraction of prompts for which *any* of the
samples passed.

Requesting ``k`` larger than the sample count ``n`` is a misconfiguration:
the estimator is undefined there, and silently evaluating at ``k = n``
mislabels the reported column (a "pass@10" computed from 5 samples is a
pass@5).  The single-prompt helpers surface it — as a :class:`UserWarning`
by default (the clamped value is still returned, keeping exploratory use
working) or a :class:`ValueError` under ``strict=True``, which the
evaluation runner enables so benchmark tables can never ship mislabeled
columns.
"""

from __future__ import annotations

import warnings
from math import comb
from typing import Sequence


def pass_at_k_single(n: int, c: int, k: int, strict: bool = False) -> float:
    """pass@k for one prompt with ``n`` samples and ``c`` passing samples.

    Args:
        n: number of samples drawn for the prompt.
        c: number of passing samples (``0 <= c <= n``).
        k: the ``k`` of pass@k; must be positive.
        strict: when ``k > n > 0``, raise :class:`ValueError` instead of
            warning and evaluating at ``k = n``.
    """
    if n < 0 or c < 0 or c > n:
        raise ValueError("invalid sample counts")
    if k <= 0:
        raise ValueError("k must be positive")
    if n == 0:
        return 0.0
    if k > n:
        if strict:
            raise ValueError(f"pass@{k} requested with only n={n} samples; the estimator needs k <= n")
        warnings.warn(
            f"pass@{k} requested with only n={n} samples; evaluating at k={n} "
            "(the reported value is pass@" + str(n) + ", not pass@" + str(k) + ")",
            UserWarning,
            stacklevel=2,
        )
        k = n
    if c == 0:
        return 0.0
    if n - c < k:
        return 1.0
    return 1.0 - comb(n - c, k) / comb(n, k)


def pass_at_k_from_counts(counts: Sequence[Sequence[int]], k: int, strict: bool = False) -> float:
    """Mean pass@k over prompts given ``(n, c)`` pairs."""
    if not counts:
        return 0.0
    return sum(pass_at_k_single(n, c, k, strict=strict) for n, c in counts) / len(counts)


def pass_at_k(results_per_prompt: Sequence[Sequence[bool]], k: int, strict: bool = False) -> float:
    """Mean pass@k over prompts given per-sample pass/fail flags."""
    counts = [(len(results), sum(bool(r) for r in results)) for results in results_per_prompt]
    return pass_at_k_from_counts(counts, k, strict=strict)


def pass_rate(results_per_prompt: Sequence[Sequence[bool]]) -> float:
    """Fraction of prompts with at least one passing sample (eq. 6)."""
    if not results_per_prompt:
        return 0.0
    successes = sum(1 for results in results_per_prompt if any(results))
    return successes / len(results_per_prompt)
