"""Benchmark problem definitions.

A :class:`Problem` bundles everything needed to grade one benchmark entry:

* ``prompt`` — the natural-language specification shown to the model
  (RTLLM-style free description, or VGen-style description plus module header);
* ``reference`` — a golden design that passes the testbench (used to validate
  the benchmark itself and as the target of oracle tests);
* ``testbench`` — a self-checking testbench that prints ``TEST PASSED`` /
  ``TEST FAILED`` markers, exactly the convention the functional grader in
  :mod:`repro.evalbench.functional` looks for;
* ``module_name`` — the required top-level module name.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional


@dataclass(frozen=True)
class Problem:
    """One benchmark problem."""

    name: str
    prompt: str
    reference: str
    testbench: str
    module_name: str
    category: str = "combinational"


@dataclass
class ProblemSuite:
    """A named collection of problems (e.g. RTLLM or VGen)."""

    name: str
    problems: List[Problem] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.problems)

    def __iter__(self) -> Iterator[Problem]:
        return iter(self.problems)

    def __getitem__(self, index: int) -> Problem:
        return self.problems[index]

    def get(self, name: str) -> Optional[Problem]:
        """Return the problem called ``name`` if present."""
        for problem in self.problems:
            if problem.name == name:
                return problem
        return None

    def prompts(self) -> List[str]:
        """All prompts in suite order."""
        return [problem.prompt for problem in self.problems]
