"""RTLLM-style benchmark suite.

RTLLM contains 29 RTL design problems specified with free-form natural
language.  This module builds a 29-problem suite of the same format on top of
the in-repo simulator: every problem carries a free-form prompt (module name
and ports described in prose), a golden reference and a self-checking
testbench.  The problems span the combinational and sequential categories the
original benchmark covers (arithmetic, multiplexing, encoding, registers,
counters, FSMs, FIFOs).
"""

from __future__ import annotations

from repro.evalbench import designs
from repro.evalbench.problems import Problem, ProblemSuite


def rtllm_suite() -> ProblemSuite:
    """Build the 29-problem RTLLM-style suite."""
    entries = [
        ("mux2to1_8", designs.mux2("mux2to1", width=8), "combinational"),
        ("mux4to1_8", designs.mux4("mux4to1", width=8), "combinational"),
        ("adder_8bit", designs.adder("adder_8bit", width=8, with_carry=True), "arithmetic"),
        ("adder_16bit", designs.adder("adder_16bit", width=16, with_carry=True), "arithmetic"),
        ("adder_nocarry_8", designs.adder("simple_adder", width=8, with_carry=False), "arithmetic"),
        ("subtractor_8bit", designs.subtractor("subtractor_8bit", width=8), "arithmetic"),
        ("alu_8bit", designs.alu("alu", width=8), "arithmetic"),
        ("comparator_8bit", designs.comparator("comparator_8bit", width=8), "combinational"),
        ("decoder_3to8", designs.decoder("decoder3to8", in_width=3), "combinational"),
        ("decoder_2to4", designs.decoder("decoder2to4", in_width=2), "combinational"),
        ("priority_encoder", designs.priority_encoder("priority_encoder"), "combinational"),
        ("bin2gray_8", designs.gray_converter("bin2gray", width=8), "combinational"),
        ("parity_even_8", designs.parity_generator("parity_gen", width=8, odd=False), "combinational"),
        ("barrel_shifter_8", designs.barrel_shifter("barrel_shifter", width=8), "combinational"),
        ("half_adder", designs.half_adder("half_adder"), "arithmetic"),
        ("full_adder", designs.full_adder("full_adder"), "arithmetic"),
        ("abs_value_8", designs.absolute_value("abs_value", width=8), "arithmetic"),
        ("min_max_8", designs.min_max("min_max", width=8), "combinational"),
        ("data_register_4", designs.data_register("data_register", width=4), "sequential"),
        ("dff_async_rst", designs.dff("dff", with_reset=True), "sequential"),
        ("t_flip_flop", designs.t_flip_flop("t_ff"), "sequential"),
        ("up_counter_4", designs.counter("up_counter", width=4, down=False), "sequential"),
        ("down_counter_4", designs.counter("down_counter", width=4, down=True), "sequential"),
        ("shift_register_4", designs.shift_register("shift_register", width=4), "sequential"),
        ("edge_detector", designs.edge_detector("edge_detector", falling=False), "sequential"),
        ("ctrl_fsm", designs.simple_fsm("ctrl_fsm"), "sequential"),
        ("ring_counter_4", designs.ring_counter("ring_counter", width=4), "sequential"),
        ("accumulator_8", designs.accumulator("accumulator", width=8), "sequential"),
        ("sync_fifo_4x8", designs.fifo("sync_fifo", depth=4, width=8), "sequential"),
    ]
    problems = []
    for name, (prompt, reference, testbench), category in entries:
        module_name = _module_name_from_reference(reference)
        problems.append(
            Problem(
                name=name,
                prompt="Please act as a professional Verilog designer.\n" + prompt,
                reference=reference,
                testbench=testbench,
                module_name=module_name,
                category=category,
            )
        )
    return ProblemSuite(name="RTLLM", problems=problems)


def _module_name_from_reference(reference: str) -> str:
    for line in reference.splitlines():
        stripped = line.strip()
        if stripped.startswith("module "):
            rest = stripped[len("module ") :]
            for delimiter in (" ", "(", "#"):
                index = rest.find(delimiter)
                if index > 0:
                    rest = rest[:index]
            return rest.strip()
    raise ValueError("reference has no module definition")
