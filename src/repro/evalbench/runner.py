"""End-to-end quality evaluation runner.

:class:`EvaluationRunner` reproduces the paper's quality protocol (Sec. IV-A.3
and IV-B.2): for each benchmark prompt it samples ``n`` responses spread over a
set of temperatures, grades every response for syntax and functional
correctness, and aggregates pass@k (k in {1, 5, 10}) plus Pass Rate.

Passing ``grammar="verilog"`` runs the whole evaluation in constrained mode
(:mod:`repro.constrained`): every sample is decoded under the syntax mask, so
syntax pass@1 is 1.0 by construction, and the report additionally carries the
verified-position totals (actual vs. what the same steps would have verified
unpruned) — the token-savings side of the constrained-decoding trade.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.decoding import DecodeResult, SpeculativeDecoder
from repro.evalbench.functional import check_designs_functional
from repro.evalbench.passk import pass_at_k, pass_rate
from repro.evalbench.problems import Problem, ProblemSuite
from repro.evalbench.syntax_eval import check_design_compiles
from repro.models.generation import GenerationConfig
from repro.sim.testbench import BACKENDS, DEFAULT_BACKEND


@dataclass
class PromptEvaluation:
    """Per-prompt grading outcome."""

    problem_name: str
    samples: List[str] = field(default_factory=list)
    #: Per-sample parse outcome (the design alone is valid Verilog) — the
    #: property constrained decoding guarantees.  ``syntax_flags`` is the
    #: stricter compile check (design + testbench elaborate together).
    parse_flags: List[bool] = field(default_factory=list)
    syntax_flags: List[bool] = field(default_factory=list)
    functional_flags: List[bool] = field(default_factory=list)
    #: Verification-forward positions actually computed across this prompt's
    #: samples, and what the same steps would have computed without the
    #: grammar pre-filter (equal when unconstrained) — see
    #: :attr:`repro.core.decoding.DecodeResult.tokens_verified_unpruned`.
    tokens_verified: int = 0
    tokens_verified_unpruned: int = 0
    #: Grammar-closure tokens appended across this prompt's samples.
    closure_tokens: int = 0


@dataclass
class QualityReport:
    """Aggregated quality metrics for one suite/model/strategy."""

    suite: str
    label: str
    num_prompts: int
    samples_per_prompt: int
    syntax_pass_at_k: Dict[int, float]
    function_pass_at_k: Dict[int, float]
    syntax_pass_rate: float
    function_pass_rate: float
    prompt_results: List[PromptEvaluation] = field(default_factory=list)
    #: Grammar the samples were decoded under (None = unconstrained).
    grammar: Optional[str] = None
    #: Parse-level pass@k / Pass Rate (design-only syntax validity).  This is
    #: the column constrained decoding drives to 1.0 by construction; the
    #: ``syntax_*`` fields additionally require testbench elaboration.
    parse_pass_at_k: Dict[int, float] = field(default_factory=dict)
    parse_pass_rate: float = 0.0
    #: Suite-wide verification-position totals (see :class:`PromptEvaluation`).
    tokens_verified: int = 0
    tokens_verified_unpruned: int = 0
    closure_tokens: int = 0

    def row(self, metric: str = "function") -> Dict[str, float]:
        """One Table-I-style row: pass@1/5/10 plus Pass Rate, in percent."""
        source = self.function_pass_at_k if metric == "function" else self.syntax_pass_at_k
        rate = self.function_pass_rate if metric == "function" else self.syntax_pass_rate
        return {
            "pass@1": 100.0 * source.get(1, 0.0),
            "pass@5": 100.0 * source.get(5, 0.0),
            "pass@10": 100.0 * source.get(10, 0.0),
            "pass_rate": 100.0 * rate,
        }

    @property
    def verified_savings_ratio(self) -> float:
        """Fraction of verification positions the grammar pre-filter saved.

        ``1 - verified / unpruned`` over the suite; 0.0 for unconstrained
        runs (the totals coincide) and whenever nothing was verified.
        """
        if self.tokens_verified_unpruned <= 0:
            return 0.0
        return 1.0 - self.tokens_verified / self.tokens_verified_unpruned


class EvaluationRunner:
    """Samples model outputs for a problem suite and grades them."""

    def __init__(
        self,
        decoder: SpeculativeDecoder,
        samples_per_prompt: int = 20,
        temperatures: Sequence[float] = (0.2, 0.4, 0.6, 0.8),
        max_new_tokens: int = 160,
        k_values: Sequence[int] = (1, 5, 10),
        sim_backend: str = DEFAULT_BACKEND,
        grammar: Optional[str] = None,
        strict_pass_k: bool = False,
    ) -> None:
        """``grammar`` selects constrained decoding for every sample (see the
        module docstring); ``strict_pass_k`` makes a ``k`` in ``k_values``
        larger than ``samples_per_prompt`` raise instead of warn-and-clamp
        (:func:`repro.evalbench.passk.pass_at_k_single`), so a benchmark run
        fails fast on a mislabeled pass@k column."""
        if sim_backend not in BACKENDS:
            raise ValueError(f"unknown simulation backend {sim_backend!r} (choose from {sorted(BACKENDS)})")
        self.decoder = decoder
        self.samples_per_prompt = samples_per_prompt
        self.temperatures = list(temperatures)
        self.max_new_tokens = max_new_tokens
        self.k_values = list(k_values)
        self.sim_backend = sim_backend
        self.grammar = grammar
        self.strict_pass_k = strict_pass_k
        if strict_pass_k:
            oversized = [k for k in self.k_values if k > samples_per_prompt]
            if oversized:
                raise ValueError(
                    f"k_values {oversized} exceed samples_per_prompt={samples_per_prompt} under strict_pass_k"
                )

    def generate_results(self, problem: Problem) -> List[DecodeResult]:
        """Decode ``samples_per_prompt`` results for ``problem`` (full records)."""
        results: List[DecodeResult] = []
        for index in range(self.samples_per_prompt):
            temperature = self.temperatures[index % len(self.temperatures)]
            if index == 0:
                config = GenerationConfig.greedy_config(self.max_new_tokens, grammar=self.grammar)
            else:
                config = GenerationConfig.sampling_config(
                    temperature, self.max_new_tokens, seed=index, grammar=self.grammar
                )
            results.append(self.decoder.generate_from_text(problem.prompt, config))
        return results

    def generate_samples(self, problem: Problem) -> List[str]:
        """Generate ``samples_per_prompt`` candidate designs for ``problem``."""
        return [result.code for result in self.generate_results(problem)]

    def evaluate_problem(self, problem: Problem, samples: Optional[List[str]] = None) -> PromptEvaluation:
        """Grade (and if needed generate) samples for one problem."""
        results: List[DecodeResult] = []
        if samples is None:
            results = self.generate_results(problem)
            samples = [result.code for result in results]
        evaluation = PromptEvaluation(problem_name=problem.name, samples=samples)
        for result in results:
            evaluation.tokens_verified += result.tokens_verified
            evaluation.tokens_verified_unpruned += result.tokens_verified_unpruned
            evaluation.closure_tokens += result.closure_tokens
        for design in samples:
            syntax = check_design_compiles(design, problem.testbench)
            evaluation.parse_flags.append(syntax.parses)
            evaluation.syntax_flags.append(syntax.compiles)
        # Grade all compiling samples in one call: with the compiled backend
        # they share a single vectorized sweep of the problem's testbench.
        compiling = [design for design, ok in zip(samples, evaluation.syntax_flags) if ok]
        graded = iter(check_designs_functional(compiling, problem, backend=self.sim_backend))
        for ok in evaluation.syntax_flags:
            evaluation.functional_flags.append(next(graded).passed if ok else False)
        return evaluation

    def evaluate_suite(self, suite: ProblemSuite, label: str = "", problems: Optional[Sequence[Problem]] = None) -> QualityReport:
        """Evaluate every problem in ``suite`` and aggregate the metrics."""
        selected = list(problems) if problems is not None else list(suite)
        prompt_results = [self.evaluate_problem(problem) for problem in selected]
        parse_matrix = [p.parse_flags for p in prompt_results]
        syntax_matrix = [p.syntax_flags for p in prompt_results]
        function_matrix = [p.functional_flags for p in prompt_results]
        return QualityReport(
            suite=suite.name,
            label=label,
            num_prompts=len(selected),
            samples_per_prompt=self.samples_per_prompt,
            syntax_pass_at_k={k: pass_at_k(syntax_matrix, k, strict=self.strict_pass_k) for k in self.k_values},
            function_pass_at_k={k: pass_at_k(function_matrix, k, strict=self.strict_pass_k) for k in self.k_values},
            syntax_pass_rate=pass_rate(syntax_matrix),
            function_pass_rate=pass_rate(function_matrix),
            prompt_results=prompt_results,
            grammar=self.grammar,
            parse_pass_at_k={k: pass_at_k(parse_matrix, k, strict=self.strict_pass_k) for k in self.k_values},
            parse_pass_rate=pass_rate(parse_matrix),
            tokens_verified=sum(p.tokens_verified for p in prompt_results),
            tokens_verified_unpruned=sum(p.tokens_verified_unpruned for p in prompt_results),
            closure_tokens=sum(p.closure_tokens for p in prompt_results),
        )
