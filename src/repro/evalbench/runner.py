"""End-to-end quality evaluation runner.

:class:`EvaluationRunner` reproduces the paper's quality protocol (Sec. IV-A.3
and IV-B.2): for each benchmark prompt it samples ``n`` responses spread over a
set of temperatures, grades every response for syntax and functional
correctness, and aggregates pass@k (k in {1, 5, 10}) plus Pass Rate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.decoding import SpeculativeDecoder
from repro.evalbench.functional import check_designs_functional
from repro.evalbench.passk import pass_at_k, pass_rate
from repro.evalbench.problems import Problem, ProblemSuite
from repro.evalbench.syntax_eval import check_design_compiles
from repro.models.generation import GenerationConfig
from repro.sim.testbench import BACKENDS, DEFAULT_BACKEND


@dataclass
class PromptEvaluation:
    """Per-prompt grading outcome."""

    problem_name: str
    samples: List[str] = field(default_factory=list)
    syntax_flags: List[bool] = field(default_factory=list)
    functional_flags: List[bool] = field(default_factory=list)


@dataclass
class QualityReport:
    """Aggregated quality metrics for one suite/model/strategy."""

    suite: str
    label: str
    num_prompts: int
    samples_per_prompt: int
    syntax_pass_at_k: Dict[int, float]
    function_pass_at_k: Dict[int, float]
    syntax_pass_rate: float
    function_pass_rate: float
    prompt_results: List[PromptEvaluation] = field(default_factory=list)

    def row(self, metric: str = "function") -> Dict[str, float]:
        """One Table-I-style row: pass@1/5/10 plus Pass Rate, in percent."""
        source = self.function_pass_at_k if metric == "function" else self.syntax_pass_at_k
        rate = self.function_pass_rate if metric == "function" else self.syntax_pass_rate
        return {
            "pass@1": 100.0 * source.get(1, 0.0),
            "pass@5": 100.0 * source.get(5, 0.0),
            "pass@10": 100.0 * source.get(10, 0.0),
            "pass_rate": 100.0 * rate,
        }


class EvaluationRunner:
    """Samples model outputs for a problem suite and grades them."""

    def __init__(
        self,
        decoder: SpeculativeDecoder,
        samples_per_prompt: int = 20,
        temperatures: Sequence[float] = (0.2, 0.4, 0.6, 0.8),
        max_new_tokens: int = 160,
        k_values: Sequence[int] = (1, 5, 10),
        sim_backend: str = DEFAULT_BACKEND,
    ) -> None:
        if sim_backend not in BACKENDS:
            raise ValueError(f"unknown simulation backend {sim_backend!r} (choose from {sorted(BACKENDS)})")
        self.decoder = decoder
        self.samples_per_prompt = samples_per_prompt
        self.temperatures = list(temperatures)
        self.max_new_tokens = max_new_tokens
        self.k_values = list(k_values)
        self.sim_backend = sim_backend

    def generate_samples(self, problem: Problem) -> List[str]:
        """Generate ``samples_per_prompt`` candidate designs for ``problem``."""
        samples: List[str] = []
        for index in range(self.samples_per_prompt):
            temperature = self.temperatures[index % len(self.temperatures)]
            if index == 0:
                config = GenerationConfig.greedy_config(self.max_new_tokens)
            else:
                config = GenerationConfig.sampling_config(temperature, self.max_new_tokens, seed=index)
            result = self.decoder.generate_from_text(problem.prompt, config)
            samples.append(result.code)
        return samples

    def evaluate_problem(self, problem: Problem, samples: Optional[List[str]] = None) -> PromptEvaluation:
        """Grade (and if needed generate) samples for one problem."""
        if samples is None:
            samples = self.generate_samples(problem)
        evaluation = PromptEvaluation(problem_name=problem.name, samples=samples)
        for design in samples:
            syntax = check_design_compiles(design, problem.testbench)
            evaluation.syntax_flags.append(syntax.compiles)
        # Grade all compiling samples in one call: with the compiled backend
        # they share a single vectorized sweep of the problem's testbench.
        compiling = [design for design, ok in zip(samples, evaluation.syntax_flags) if ok]
        graded = iter(check_designs_functional(compiling, problem, backend=self.sim_backend))
        for ok in evaluation.syntax_flags:
            evaluation.functional_flags.append(next(graded).passed if ok else False)
        return evaluation

    def evaluate_suite(self, suite: ProblemSuite, label: str = "", problems: Optional[Sequence[Problem]] = None) -> QualityReport:
        """Evaluate every problem in ``suite`` and aggregate the metrics."""
        selected = list(problems) if problems is not None else list(suite)
        prompt_results = [self.evaluate_problem(problem) for problem in selected]
        syntax_matrix = [p.syntax_flags for p in prompt_results]
        function_matrix = [p.functional_flags for p in prompt_results]
        return QualityReport(
            suite=suite.name,
            label=label,
            num_prompts=len(selected),
            samples_per_prompt=self.samples_per_prompt,
            syntax_pass_at_k={k: pass_at_k(syntax_matrix, k) for k in self.k_values},
            function_pass_at_k={k: pass_at_k(function_matrix, k) for k in self.k_values},
            syntax_pass_rate=pass_rate(syntax_matrix),
            function_pass_rate=pass_rate(function_matrix),
            prompt_results=prompt_results,
        )
