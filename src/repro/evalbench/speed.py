"""Generation speed and speedup measurement (paper eq. 3 and eq. 4).

The paper measures generation speed as the mean over outputs of
``output token length / inference time`` (eq. 3), evaluating each prompt with
both greedy decoding and temperature-0.8 sampling, and reports speedup as the
ratio of a fine-tuned model's speed to the speed of its NTP-trained
counterpart (eq. 4).

Because the reproduction's models are tiny, wall-clock time is dominated by
Python/numpy overheads rather than model size; we therefore report both the
wall-clock speed (eq. 3 verbatim) and a *step-normalised* speed
(``tokens per decoding step``), which is the architecture-independent quantity
that the paper's speedup actually tracks (each decoding step costs one forward
pass of the large model).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

from repro.core.decoding import DecodeResult, SpeculativeDecoder
from repro.models.generation import GenerationConfig


@dataclass
class SpeedReport:
    """Aggregate speed statistics for one model/strategy."""

    label: str
    num_outputs: int
    mean_tokens_per_second: float
    mean_tokens_per_step: float
    mean_output_tokens: float
    mean_steps: float
    total_wall_time: float
    #: Total one-off prompt-prefill time (cached decoding; 0.0 for the
    #: full-recompute path).  Already excluded from the per-token rates.
    total_prefill_time: float = 0.0
    #: Total positions run through candidate verification across all outputs
    #: (see :class:`~repro.core.decoding.StepRecord`); the tree-vs-row bench
    #: compares these counts directly.
    total_verified_tokens: int = 0
    per_output: List[DecodeResult] = field(default_factory=list)

    def to_dict(self) -> dict:
        """Machine-readable summary (benchmark JSON artifacts)."""
        return {
            "label": self.label,
            "num_outputs": self.num_outputs,
            "mean_tokens_per_second": self.mean_tokens_per_second,
            "mean_tokens_per_step": self.mean_tokens_per_step,
            "mean_output_tokens": self.mean_output_tokens,
            "mean_steps": self.mean_steps,
            "total_wall_time": self.total_wall_time,
            "total_prefill_time": self.total_prefill_time,
            "total_verified_tokens": self.total_verified_tokens,
        }


def measure_speed(
    decoder: SpeculativeDecoder,
    prompts: Sequence[str],
    max_new_tokens: int = 96,
    sampling_temperature: float = 0.8,
    include_sampling: bool = True,
    label: str = "",
    keep_outputs: bool = False,
    tree_verify: bool = False,
) -> SpeedReport:
    """Measure generation speed over ``prompts`` (eq. 3).

    Each prompt is decoded with greedy decoding and, when ``include_sampling``
    is True, additionally with temperature sampling — matching the paper's
    "575 x 2 outputs" protocol.

    Args:
        decoder: The decoder under measurement (any strategy / cache mode).
        prompts: Prompt texts; each contributes one or two outputs.
        max_new_tokens: Per-output generation budget.
        sampling_temperature: Temperature of the sampling pass.
        include_sampling: Add the temperature-sampling output per prompt.
        label: Label recorded on the report.
        keep_outputs: Retain every :class:`DecodeResult` in
            ``report.per_output`` (memory-heavy; used by equivalence checks).
        tree_verify: Verify candidates as a prefix-deduplicated token tree
            instead of padded rows (``GenerationConfig.tree_verify``).

    Returns:
        A :class:`SpeedReport` aggregating per-output rates.
    """
    results: List[DecodeResult] = []
    for index, prompt in enumerate(prompts):
        configs = [GenerationConfig.greedy_config(max_new_tokens, tree_verify=tree_verify)]
        if include_sampling:
            configs.append(
                GenerationConfig.sampling_config(
                    sampling_temperature, max_new_tokens, seed=index, tree_verify=tree_verify
                )
            )
        for config in configs:
            results.append(decoder.generate_from_text(prompt, config))

    num_outputs = len(results)
    if num_outputs == 0:
        return SpeedReport(label, 0, 0.0, 0.0, 0.0, 0.0, 0.0)
    mean_tps = sum(r.tokens_per_second for r in results) / num_outputs
    mean_tpstep = sum(r.tokens_per_step for r in results) / num_outputs
    mean_tokens = sum(r.tokens_generated for r in results) / num_outputs
    mean_steps = sum(r.steps for r in results) / num_outputs
    total_time = sum(r.wall_time_seconds for r in results)
    total_prefill = sum(r.prefill_seconds for r in results)
    total_verified = sum(r.tokens_verified for r in results)
    return SpeedReport(
        label=label,
        num_outputs=num_outputs,
        mean_tokens_per_second=mean_tps,
        mean_tokens_per_step=mean_tpstep,
        mean_output_tokens=mean_tokens,
        mean_steps=mean_steps,
        total_wall_time=total_time,
        total_prefill_time=total_prefill,
        total_verified_tokens=total_verified,
        per_output=results if keep_outputs else [],
    )


def speedup(report: SpeedReport, baseline: SpeedReport, use_steps: bool = False) -> float:
    """Speedup of ``report`` relative to the NTP ``baseline`` (eq. 4)."""
    if use_steps:
        if baseline.mean_tokens_per_step <= 0:
            return 0.0
        return report.mean_tokens_per_step / baseline.mean_tokens_per_step
    if baseline.mean_tokens_per_second <= 0:
        return 0.0
    return report.mean_tokens_per_second / baseline.mean_tokens_per_second


@dataclass
class CacheComparison:
    """Cached vs. full-recompute decoding for one strategy on the same prompts."""

    cached: SpeedReport
    uncached: SpeedReport
    #: True when both decoding paths committed identical token sequences for
    #: every output — the equivalence the cache refactor guarantees.
    tokens_identical: bool

    @property
    def wall_clock_speedup(self) -> float:
        """Cached tokens/sec over uncached tokens/sec."""
        if self.uncached.mean_tokens_per_second <= 0:
            return 0.0
        return self.cached.mean_tokens_per_second / self.uncached.mean_tokens_per_second

    def to_dict(self) -> dict:
        return {
            "cached": self.cached.to_dict(),
            "uncached": self.uncached.to_dict(),
            "wall_clock_speedup": self.wall_clock_speedup,
            "tokens_identical": self.tokens_identical,
        }


def compare_cache_modes(
    cached_decoder: SpeculativeDecoder,
    uncached_decoder: SpeculativeDecoder,
    prompts: Sequence[str],
    max_new_tokens: int = 96,
    sampling_temperature: float = 0.8,
    include_sampling: bool = True,
    label: str = "",
) -> CacheComparison:
    """Measure the same prompt set with and without the KV cache.

    Both decoders must wrap the same model/strategy; the comparison records
    the wall-clock speedup of incremental decoding and checks that the two
    paths commit identical token sequences.

    Args:
        cached_decoder: Decoder built with ``use_cache=True``.
        uncached_decoder: The same model/strategy with ``use_cache=False``.
        prompts: Prompt texts measured under both modes.
        max_new_tokens: Per-output generation budget.
        sampling_temperature: Temperature of the sampling pass.
        include_sampling: Add a temperature-sampling output per prompt.
        label: Base label for the two embedded reports.

    Returns:
        A :class:`CacheComparison` with both reports, the wall-clock speedup
        and the token-identity flag.
    """
    cached = measure_speed(
        cached_decoder,
        prompts,
        max_new_tokens=max_new_tokens,
        sampling_temperature=sampling_temperature,
        include_sampling=include_sampling,
        label=f"{label}+cache" if label else "cached",
        keep_outputs=True,
    )
    uncached = measure_speed(
        uncached_decoder,
        prompts,
        max_new_tokens=max_new_tokens,
        sampling_temperature=sampling_temperature,
        include_sampling=include_sampling,
        label=f"{label}-cache" if label else "uncached",
        keep_outputs=True,
    )
    tokens_identical = all(
        c.token_ids == u.token_ids for c, u in zip(cached.per_output, uncached.per_output)
    )
    cached.per_output = []
    uncached.per_output = []
    return CacheComparison(cached=cached, uncached=uncached, tokens_identical=tokens_identical)


@dataclass
class TreeComparison:
    """Token-tree vs. row-batched candidate verification on the same prompts."""

    tree: SpeedReport
    row: SpeedReport
    #: True when both verification layouts committed identical token
    #: sequences for every output — the equivalence the tree guarantees.
    tokens_identical: bool

    @property
    def verified_token_ratio(self) -> float:
        """Tree verified positions over row verified positions (< 1 is the win)."""
        if self.row.total_verified_tokens <= 0:
            return 0.0
        return self.tree.total_verified_tokens / self.row.total_verified_tokens

    @property
    def wall_clock_speedup(self) -> float:
        """Tree tokens/sec over row tokens/sec."""
        if self.row.mean_tokens_per_second <= 0:
            return 0.0
        return self.tree.mean_tokens_per_second / self.row.mean_tokens_per_second

    def to_dict(self) -> dict:
        return {
            "tree": self.tree.to_dict(),
            "row": self.row.to_dict(),
            "verified_token_ratio": self.verified_token_ratio,
            "wall_clock_speedup": self.wall_clock_speedup,
            "tokens_identical": self.tokens_identical,
        }


def compare_tree_modes(
    decoder: SpeculativeDecoder,
    prompts: Sequence[str],
    max_new_tokens: int = 96,
    sampling_temperature: float = 0.8,
    include_sampling: bool = True,
    label: str = "",
) -> TreeComparison:
    """Measure the same prompt set with tree and row-batched verification.

    Both runs use the same decoder (the layout is selected per run via
    ``GenerationConfig.tree_verify``); the comparison records the verified-
    token ratio and wall-clock speedup of the tree layout and checks that the
    two layouts commit identical token sequences.

    Args:
        decoder: A cached speculative decoder (Medusa/Ours strategy).
        prompts: Prompt texts measured under both layouts.
        max_new_tokens: Per-output generation budget.
        sampling_temperature: Temperature of the sampling pass.
        include_sampling: Add a temperature-sampling output per prompt.
        label: Base label for the two embedded reports.

    Returns:
        A :class:`TreeComparison` with both reports, the verified-token
        ratio, the wall-clock speedup and the token-identity flag.
    """
    tree = measure_speed(
        decoder,
        prompts,
        max_new_tokens=max_new_tokens,
        sampling_temperature=sampling_temperature,
        include_sampling=include_sampling,
        label=f"{label}+tree" if label else "tree",
        keep_outputs=True,
        tree_verify=True,
    )
    row = measure_speed(
        decoder,
        prompts,
        max_new_tokens=max_new_tokens,
        sampling_temperature=sampling_temperature,
        include_sampling=include_sampling,
        label=f"{label}+row" if label else "row",
        keep_outputs=True,
        tree_verify=False,
    )
    tokens_identical = all(
        t.token_ids == r.token_ids for t, r in zip(tree.per_output, row.per_output)
    )
    tree.per_output = []
    row.per_output = []
    return TreeComparison(tree=tree, row=row, tokens_identical=tokens_identical)
