"""Small-sample-correct summary statistics shared by the report surfaces.

Every latency column in the repo — :class:`~repro.evalbench.throughput
.ThroughputReport`, the traffic harness's :class:`~repro.traffic.replay
.ReplayReport` and the ops dashboard — funnels through these helpers, so
percentile semantics are defined exactly once.

The percentile rule is **linear interpolation between closest ranks**
(numpy's default, the same rule the reports have always used): for ``n``
sorted samples, percentile ``q`` sits at fractional rank ``(n - 1) * q/100``
and interpolates between the two neighbouring order statistics.  The small-n
cases the serving benches actually hit are therefore well defined:

* empty series → 0.0 (reports render a zero column, not a crash);
* a single sample → that sample, for every ``q``;
* ``n = 2`` → p50 is the midpoint, p95 sits 90% of the way to the max;
* the maximum is returned only at ``q = 100`` (or when all samples are
  equal) — a nearest-rank rule would jump to the max at p95 for ``n < 20``,
  which systematically overstates small-sample tails; the audit in
  ``tests/test_stats.py`` pins these cases down directly.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile of ``values``; 0.0 for an empty series.

    Args:
        values: Raw samples, any order.
        q: Percentile in ``[0, 100]``.

    Raises:
        ValueError: ``q`` outside ``[0, 100]``.
    """
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile q must be in [0, 100], got {q}")
    values = [v for v in values if v is not None]
    if not values:
        return 0.0
    return float(np.percentile(np.asarray(values, dtype=np.float64), q))


def summarize_series(values: Sequence[Optional[float]]) -> dict:
    """Mean/p50/p95 summary of a latency series (``None`` entries dropped).

    The uniform shape every report column uses: a dict with ``count``,
    ``mean``, ``p50`` and ``p95`` keys, all 0.0/0 for an empty series.
    """
    clean: List[float] = [float(v) for v in values if v is not None]
    return {
        "count": len(clean),
        "mean": sum(clean) / len(clean) if clean else 0.0,
        "p50": percentile(clean, 50),
        "p95": percentile(clean, 95),
    }


__all__ = ["percentile", "summarize_series"]
