"""Syntax-correctness grading.

The paper calls a design syntactically correct when the design and its
testbench "successfully compile together using iverilog".  The closest
equivalent here is: both sources parse, and the combined design+testbench
elaborates (port binding, parameter evaluation, declaration resolution) without
errors in the in-repo simulator — the same work iverilog does at compile time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.sim.simulator import SimulationError, Simulator
from repro.verilog.syntax import check_syntax


@dataclass
class SyntaxEvalResult:
    """Outcome of a syntax/compile check."""

    parses: bool
    compiles: bool
    errors: List[str] = field(default_factory=list)


def check_design_compiles(design: str, testbench: Optional[str] = None, top: Optional[str] = None) -> SyntaxEvalResult:
    """Check that ``design`` parses and (optionally) elaborates with ``testbench``."""
    design_check = check_syntax(design)
    if not design_check.ok:
        return SyntaxEvalResult(parses=False, compiles=False, errors=design_check.errors)
    if testbench is None:
        return SyntaxEvalResult(parses=True, compiles=True)
    tb_check = check_syntax(testbench)
    if not tb_check.ok:
        return SyntaxEvalResult(parses=True, compiles=False, errors=tb_check.errors)
    combined = design.rstrip() + "\n\n" + testbench
    top_name = top or (tb_check.module_names[-1] if tb_check.module_names else None)
    try:
        Simulator(combined, top=top_name)
    except (SimulationError, RecursionError, ValueError) as exc:
        return SyntaxEvalResult(parses=True, compiles=False, errors=[str(exc)])
    return SyntaxEvalResult(parses=True, compiles=True)
