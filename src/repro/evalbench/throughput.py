"""Serving throughput measurement: batched engine vs. sequential baseline.

Where :mod:`repro.evalbench.speed` measures single-stream generation speed
(the paper's eq. 3), this module measures the *serving* quantities that matter
once many requests arrive concurrently:

* **requests/sec** — completed requests per wall-clock second;
* **tokens/sec** — aggregate generated tokens per wall-clock second;
* **latency p50/p95** — submission-to-completion latency per request.  For
  the sequential baseline all requests are treated as submitted at once and
  processed FCFS, so request ``i``'s latency includes the time spent decoding
  requests ``0..i-1`` — the queueing delay continuous batching exists to
  remove;
* **TTFT p50/p95** — submission to *first committed token*, the latency a
  streaming client actually perceives (queueing + prefill included);
* **inter-token latency p50/p95** — gaps between committed tokens.  Tokens
  land in per-step bursts, so the gap between consecutive commits is spread
  evenly over the later burst's tokens (the series sums exactly to
  last-commit minus first-commit).

:func:`compare_serving_modes` runs the same prompt set through a
:class:`~repro.serving.engine.ServingEngine` and through sequential
:meth:`~repro.core.decoding.SpeculativeDecoder.generate` calls, checks the
outputs are token-identical, and reports the throughput/latency ratios.
:func:`measure_streaming_throughput` runs the prompts through the
:class:`~repro.serving.server.AsyncServingEngine` front-end instead,
consuming every request's burst stream concurrently — the numbers the
streaming bench tracks.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.core.decoding import DecodeResult, SpeculativeDecoder
from repro.evalbench.stats import percentile as _percentile
from repro.models.generation import GenerationConfig
from repro.serving.engine import ServingEngine
from repro.serving.server import AsyncServingEngine


@dataclass
class ThroughputReport:
    """Aggregate serving statistics for one run over a prompt set.

    Attributes:
        label: Human-readable run label (e.g. ``"ours+serving"``).
        num_requests: Completed request count.
        total_tokens: Generated tokens summed over requests.
        wall_seconds: Wall-clock time from first submission to last
            completion.
        requests_per_second: ``num_requests / wall_seconds``.
        tokens_per_second: ``total_tokens / wall_seconds``.
        mean_latency / p50_latency / p95_latency: Submission-to-completion
            latency statistics in seconds (queueing included).
        prefill_tokens: Prompt tokens actually run through prefill forwards.
        reused_tokens: Prompt tokens served from the cross-request prefix
            cache instead of being prefilled (0 without a prefix cache).
        prefix_hit_rate: Fraction of prefix-cache lookups that reused at
            least one token (0.0 when no prefix cache is attached).
        prefill_savings: ``reused / (reused + prefilled)`` — the fraction of
            prompt positions whose prefill compute was avoided.
        mean_ttft / p50_ttft / p95_ttft: Submission-to-first-token latency
            statistics in seconds (0.0 for runs without commit timelines,
            e.g. the sequential baseline).
        p50_itl / p95_itl: Inter-token latency percentiles in seconds,
            pooled over every request's per-token gap series.
        kv_memory: Engine K/V storage mode (``"paged"`` or ``"row"``; empty
            for the sequential baseline, which has no engine).
        kv_peak_bytes: Peak K/V bytes live at any point in the run —
            the memory-reduction number the paged-vs-row bench asserts on.
        kv_cow_events: Copy-on-write block copies triggered by appends into
            shared blocks (always 0 in row mode).
        kv_shared_block_ratio: Fraction of in-use pool blocks referenced by
            more than one block table at measurement time (paged only).
        kv_prefix_copy_tokens: Prompt-prefix tokens materialised by copying
            K/V rows on cache hits.  Paged engines alias pages instead, so
            this stays 0 there — the zero-copy guarantee the bench pins.
    """

    label: str
    num_requests: int
    total_tokens: int
    wall_seconds: float
    requests_per_second: float
    tokens_per_second: float
    mean_latency: float
    p50_latency: float
    p95_latency: float
    latencies: List[float] = field(default_factory=list)
    prefill_tokens: int = 0
    reused_tokens: int = 0
    prefix_hit_rate: float = 0.0
    prefill_savings: float = 0.0
    mean_ttft: float = 0.0
    p50_ttft: float = 0.0
    p95_ttft: float = 0.0
    p50_itl: float = 0.0
    p95_itl: float = 0.0
    kv_memory: str = ""
    kv_peak_bytes: int = 0
    kv_cow_events: int = 0
    kv_shared_block_ratio: float = 0.0
    kv_prefix_copy_tokens: int = 0

    @classmethod
    def from_latencies(
        cls, label: str, num_requests: int, total_tokens: int, wall_seconds: float, latencies: List[float]
    ) -> "ThroughputReport":
        """Build a report from per-request latencies and the run wall time."""
        return cls(
            label=label,
            num_requests=num_requests,
            total_tokens=total_tokens,
            wall_seconds=wall_seconds,
            requests_per_second=num_requests / wall_seconds if wall_seconds > 0 else 0.0,
            tokens_per_second=total_tokens / wall_seconds if wall_seconds > 0 else 0.0,
            mean_latency=sum(latencies) / len(latencies) if latencies else 0.0,
            p50_latency=_percentile(latencies, 50),
            p95_latency=_percentile(latencies, 95),
            latencies=latencies,
        )

    def attach_stream_latencies(self, ttfts: Sequence[float], inter_token: Sequence[float]) -> None:
        """Fill the TTFT / inter-token percentile columns from raw series."""
        ttfts = [t for t in ttfts if t is not None]
        self.mean_ttft = sum(ttfts) / len(ttfts) if ttfts else 0.0
        self.p50_ttft = _percentile(ttfts, 50)
        self.p95_ttft = _percentile(ttfts, 95)
        self.p50_itl = _percentile(list(inter_token), 50)
        self.p95_itl = _percentile(list(inter_token), 95)

    def to_dict(self) -> dict:
        """Machine-readable summary (benchmark JSON artifacts)."""
        return {
            "label": self.label,
            "num_requests": self.num_requests,
            "total_tokens": self.total_tokens,
            "wall_seconds": self.wall_seconds,
            "requests_per_second": self.requests_per_second,
            "tokens_per_second": self.tokens_per_second,
            "mean_latency": self.mean_latency,
            "p50_latency": self.p50_latency,
            "p95_latency": self.p95_latency,
            "prefill_tokens": self.prefill_tokens,
            "reused_tokens": self.reused_tokens,
            "prefix_hit_rate": self.prefix_hit_rate,
            "prefill_savings": self.prefill_savings,
            "mean_ttft": self.mean_ttft,
            "p50_ttft": self.p50_ttft,
            "p95_ttft": self.p95_ttft,
            "p50_itl": self.p50_itl,
            "p95_itl": self.p95_itl,
            "kv_memory": self.kv_memory,
            "kv_peak_bytes": self.kv_peak_bytes,
            "kv_cow_events": self.kv_cow_events,
            "kv_shared_block_ratio": self.kv_shared_block_ratio,
            "kv_prefix_copy_tokens": self.kv_prefix_copy_tokens,
        }


def measure_serving_throughput(
    engine: ServingEngine,
    prompts: Sequence[str],
    config: Optional[GenerationConfig] = None,
    label: str = "serving",
) -> Tuple[ThroughputReport, List[DecodeResult]]:
    """Submit every prompt to ``engine`` at once, run to completion, and measure.

    Args:
        engine: A fresh engine (no in-flight requests).
        prompts: Prompt texts; each becomes one request.
        config: Decoding configuration shared by all requests (defaults to
            greedy); per-request configs are an engine feature, not needed
            for the benchmark comparison.
        label: Report label.

    Returns:
        ``(report, results)`` with ``results`` in prompt order.
    """
    config = config or GenerationConfig.greedy_config()
    start = time.perf_counter()
    request_ids = [engine.submit_text(prompt, config) for prompt in prompts]
    completed = engine.run()
    wall = time.perf_counter() - start
    results = [completed[request_id] for request_id in request_ids]
    latencies = [engine.scheduler_latency(request_id) for request_id in request_ids]
    total_tokens = sum(result.tokens_generated for result in results)
    report = ThroughputReport.from_latencies(label, len(results), total_tokens, wall, latencies)
    _finalize_engine_report(report, engine, request_ids)
    return report, results


def _finalize_engine_report(
    report: ThroughputReport, engine: ServingEngine, request_ids: Sequence[str]
) -> None:
    """Fill the engine-derived columns: prefix-reuse stats and TTFT/ITL series.

    Shared by the batch and streaming harnesses so a new report column only
    has to be wired up once.
    """
    cache_stats = engine.prefix_cache_stats()
    report.prefill_tokens = cache_stats["prompt_tokens_prefilled"]
    report.reused_tokens = cache_stats["prompt_tokens_reused"]
    report.prefix_hit_rate = cache_stats["hit_rate"]
    report.prefill_savings = cache_stats["prefill_savings"]
    pool_stats = engine.kv_pool_stats()
    report.kv_memory = pool_stats["kv_memory"]
    report.kv_peak_bytes = pool_stats["peak_kv_bytes"]
    report.kv_cow_events = pool_stats["cow_events"]
    report.kv_shared_block_ratio = pool_stats["shared_block_ratio"] or 0.0
    report.kv_prefix_copy_tokens = pool_stats["prefix_copy_tokens"]
    ttfts: List[float] = []
    inter_token: List[float] = []
    for request_id in request_ids:
        metrics = engine.stream_metrics(request_id)
        if metrics["ttft_seconds"] is not None:
            ttfts.append(metrics["ttft_seconds"])
        inter_token.extend(metrics["inter_token_seconds"])
    report.attach_stream_latencies(ttfts, inter_token)


def measure_streaming_throughput(
    engine: ServingEngine,
    prompts: Sequence[str],
    config: Optional[GenerationConfig] = None,
    label: str = "streaming",
) -> Tuple[ThroughputReport, List[DecodeResult], List[List[int]]]:
    """Serve every prompt through the async streaming front-end and measure.

    Wraps ``engine`` in an :class:`~repro.serving.server.AsyncServingEngine`,
    submits all prompts, and consumes every request's burst stream
    concurrently — the closest in-process analogue of N streaming clients.
    TTFT / inter-token percentiles come from the engine-side commit
    timelines, so they are comparable with :func:`measure_serving_throughput`
    runs of the same engine configuration.

    Args:
        engine: A fresh engine (no in-flight requests; the async front-end
            owns its step loop for the duration).
        prompts: Prompt texts; each becomes one streamed request.
        config: Decoding configuration shared by all requests.
        label: Report label.

    Returns:
        ``(report, results, streamed)`` with ``results`` in prompt order and
        ``streamed[i]`` the concatenation of request ``i``'s bursts — always
        identical to ``results[i].token_ids`` (the streaming guarantee; the
        benches assert it).
    """
    config = config or GenerationConfig.greedy_config()

    async def _run():
        streamed: List[List[int]] = [[] for _ in prompts]
        server = AsyncServingEngine(engine)
        # Submit everything *before* the step thread starts: every request is
        # queued when stepping begins, so admission-round composition (and
        # therefore TTFT) reflects the scheduler configuration rather than
        # the race between the submitting loop and the polling step thread.
        handles = [await server.submit_text(prompt, config) for prompt in prompts]
        start = time.perf_counter()
        server.start()
        try:

            async def consume(index: int, handle) -> DecodeResult:
                async for burst in handle.stream():
                    streamed[index].extend(burst)
                return await handle.result()

            results = list(
                await asyncio.gather(*(consume(i, handle) for i, handle in enumerate(handles)))
            )
            wall = time.perf_counter() - start
        finally:
            await server.close()
        return handles, results, streamed, wall

    handles, results, streamed, wall = asyncio.run(_run())
    request_ids = [handle.request_id for handle in handles]
    latencies = [engine.scheduler_latency(request_id) for request_id in request_ids]
    total_tokens = sum(result.tokens_generated for result in results)
    report = ThroughputReport.from_latencies(label, len(results), total_tokens, wall, latencies)
    _finalize_engine_report(report, engine, request_ids)
    return report, results, streamed


def measure_sequential_throughput(
    decoder: SpeculativeDecoder,
    prompts: Sequence[str],
    config: Optional[GenerationConfig] = None,
    label: str = "sequential",
) -> Tuple[ThroughputReport, List[DecodeResult]]:
    """Decode the prompts one after another, as a serverless baseline would.

    All prompts are considered submitted at time zero, so request ``i``'s
    latency is the cumulative wall time through the end of its own decode —
    the FCFS queueing delay a single-stream server imposes.
    """
    config = config or GenerationConfig.greedy_config()
    results: List[DecodeResult] = []
    latencies: List[float] = []
    start = time.perf_counter()
    for prompt in prompts:
        results.append(decoder.generate_from_text(prompt, config))
        latencies.append(time.perf_counter() - start)
    wall = time.perf_counter() - start
    total_tokens = sum(result.tokens_generated for result in results)
    report = ThroughputReport.from_latencies(label, len(results), total_tokens, wall, latencies)
    return report, results


@dataclass
class ServingComparison:
    """Batched serving vs. sequential decoding on the same prompts."""

    serving: ThroughputReport
    sequential: ThroughputReport
    #: True when the engine committed exactly the token sequence sequential
    #: ``generate`` commits for every prompt — the engine's core guarantee.
    tokens_identical: bool

    @property
    def throughput_speedup(self) -> float:
        """Serving requests/sec over sequential requests/sec."""
        if self.sequential.requests_per_second <= 0:
            return 0.0
        return self.serving.requests_per_second / self.sequential.requests_per_second

    @property
    def p95_latency_ratio(self) -> float:
        """Sequential p95 latency over serving p95 latency (higher is better)."""
        if self.serving.p95_latency <= 0:
            return 0.0
        return self.sequential.p95_latency / self.serving.p95_latency

    def to_dict(self) -> dict:
        return {
            "serving": self.serving.to_dict(),
            "sequential": self.sequential.to_dict(),
            "throughput_speedup": self.throughput_speedup,
            "p95_latency_ratio": self.p95_latency_ratio,
            "tokens_identical": self.tokens_identical,
        }


def compare_serving_modes(
    engine: ServingEngine,
    decoder: SpeculativeDecoder,
    prompts: Sequence[str],
    config: Optional[GenerationConfig] = None,
    label: str = "",
) -> ServingComparison:
    """Measure the same prompts through the engine and sequentially.

    ``engine`` and ``decoder`` must wrap the same model and strategy; the
    comparison verifies the two commit identical token sequences and reports
    the throughput and tail-latency ratios.
    """
    serving_report, serving_results = measure_serving_throughput(
        engine, prompts, config, label=f"{label}+serving" if label else "serving"
    )
    sequential_report, sequential_results = measure_sequential_throughput(
        decoder, prompts, config, label=f"{label}-sequential" if label else "sequential"
    )
    tokens_identical = all(
        s.token_ids == q.token_ids for s, q in zip(serving_results, sequential_results)
    )
    return ServingComparison(
        serving=serving_report, sequential=sequential_report, tokens_identical=tokens_identical
    )


__all__ = [
    "ServingComparison",
    "ThroughputReport",
    "compare_serving_modes",
    "measure_sequential_throughput",
    "measure_serving_throughput",
    "measure_streaming_throughput",
]
