"""VGen-style benchmark suite.

The paper uses the *low-level* prompts of VGen: each prompt describes the
module's function and also gives the module header (name plus input/output
declarations), which it calls the most challenging prompt format.  This module
builds a 17-problem suite in that format: the prompt ends with the exact
module header the design must use, and the model is expected to complete the
body.
"""

from __future__ import annotations

import re

from repro.evalbench import designs
from repro.evalbench.problems import Problem, ProblemSuite


def _header_from_reference(reference: str) -> str:
    """Extract the module header (up to and including the closing ');')."""
    match = re.search(r"module\s+\w+[^;]*;", reference, re.DOTALL)
    if match is None:
        raise ValueError("reference has no module header")
    return match.group(0)


def _module_name_from_reference(reference: str) -> str:
    match = re.search(r"module\s+(\w+)", reference)
    if match is None:
        raise ValueError("reference has no module definition")
    return match.group(1)


def vgen_suite() -> ProblemSuite:
    """Build the 17-problem VGen-style suite (low-level prompts with headers)."""
    entries = [
        ("vgen_mux2_4", designs.mux2("mux_2to1", width=4)),
        ("vgen_mux4_4", designs.mux4("mux_4to1", width=4)),
        ("vgen_adder_4", designs.adder("adder_4bit", width=4, with_carry=True)),
        ("vgen_half_adder", designs.half_adder("half_adder")),
        ("vgen_full_adder", designs.full_adder("full_adder")),
        ("vgen_and_gate", designs.logic_gate("and_gate", operation="and", width=1)),
        ("vgen_or_gate", designs.logic_gate("or_gate", operation="or", width=1)),
        ("vgen_xor_gate", designs.logic_gate("xor_gate", operation="xor", width=1)),
        ("vgen_xnor_gate", designs.logic_gate("xnor_gate", operation="xnor", width=1)),
        ("vgen_comparator_4", designs.comparator("comparator_4bit", width=4)),
        ("vgen_decoder_2to4", designs.decoder("decoder_2to4", in_width=2)),
        ("vgen_gray_4", designs.gray_converter("gray_code", width=4)),
        ("vgen_parity_odd_4", designs.parity_generator("odd_parity", width=4, odd=True)),
        ("vgen_dff", designs.dff("d_flip_flop", with_reset=True)),
        ("vgen_counter_4", designs.counter("counter_4bit", width=4, down=False)),
        ("vgen_shift_reg_4", designs.shift_register("shift_reg", width=4)),
        ("vgen_pwm", designs.pwm_generator("pwm_gen", width=4)),
    ]
    problems = []
    for name, (prompt, reference, testbench) in entries:
        header = _header_from_reference(reference)
        full_prompt = (
            "// Complete the following Verilog module.\n"
            f"// {prompt}\n"
            f"{header}\n"
        )
        problems.append(
            Problem(
                name=name,
                prompt=full_prompt,
                reference=reference,
                testbench=testbench,
                module_name=_module_name_from_reference(reference),
                category="vgen-low-level",
            )
        )
    return ProblemSuite(name="VGen", problems=problems)
