"""Model zoo: scale-reduced CodeLlama/CodeT5p substitutes and Medusa wrapper."""

from repro.models.decoder_lm import TinyCodeLlama
from repro.models.encdec_lm import TinyCodeT5p
from repro.models.medusa import MedusaHead, MedusaLM
from repro.models.generation import GenerationConfig, sample_from_logits

__all__ = [
    "TinyCodeLlama",
    "TinyCodeT5p",
    "MedusaHead",
    "MedusaLM",
    "GenerationConfig",
    "sample_from_logits",
]
