"""Decoder-only language model backbone (CodeLlama substitute).

``TinyCodeLlama`` mirrors the role CodeLlama-7b-Instruct plays in the paper: a
decoder-only causal transformer whose last hidden states feed the LM head and,
in the Medusa configuration, the additional decoding heads.  The scale is
reduced to something trainable on a CPU in seconds, but the architecture
(causal self-attention stack over a shared token/position embedding) and the
interface used by training and decoding are the same.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.nn.kv_cache import KVCache
from repro.nn.transformer import DecoderOnlyTransformer


@dataclass
class DecoderConfig:
    """Hyper-parameters of the decoder-only backbone."""

    vocab_size: int
    dim: int = 64
    num_layers: int = 2
    num_heads: int = 4
    max_seq_len: int = 512
    seed: int = 0


class TinyCodeLlama:
    """Decoder-only backbone with the interface expected by :class:`MedusaLM`."""

    architecture = "decoder-only"

    def __init__(self, config: DecoderConfig) -> None:
        self.config = config
        self.transformer = DecoderOnlyTransformer(
            vocab_size=config.vocab_size,
            dim=config.dim,
            num_layers=config.num_layers,
            num_heads=config.num_heads,
            max_seq_len=config.max_seq_len,
            seed=config.seed,
        )

    @property
    def dim(self) -> int:
        return self.config.dim

    @property
    def max_seq_len(self) -> int:
        return self.config.max_seq_len

    def hidden_states(
        self,
        input_ids: np.ndarray,
        encoder_ids: Optional[np.ndarray] = None,
        cache: Optional[KVCache] = None,
        attn_bias: Optional[np.ndarray] = None,
        position_offsets: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Return last hidden states for ``input_ids`` (encoder_ids is unused).

        With ``cache``, ``input_ids`` extend the cached prefix (incremental
        decoding).  ``attn_bias``/``position_offsets`` generalise the causal
        mask and position layout for token-tree verification (see
        :meth:`~repro.nn.transformer.DecoderOnlyTransformer.forward`).
        """
        del encoder_ids
        return self.transformer.forward(
            np.asarray(input_ids, dtype=np.int64),
            cache=cache,
            attn_bias=attn_bias,
            position_offsets=position_offsets,
        )

    def make_cache(self, batch: int = 1, capacity: Optional[int] = None) -> KVCache:
        """Create an empty per-layer KV cache for incremental decoding."""
        return self.transformer.make_cache(batch=batch, capacity=capacity)

    def make_block_pool(self, block_size: int = 16, num_blocks: int = 256):
        """Create a paged K/V block pool matching this backbone's geometry."""
        return self.transformer.make_block_pool(block_size=block_size, num_blocks=num_blocks)

    def backward(self, grad_hidden: np.ndarray) -> None:
        """Backpropagate a gradient arriving at the hidden states."""
        self.transformer.backward(grad_hidden)

    def parameters(self):
        """Trainable parameters of the backbone."""
        return self.transformer.parameters()

    def zero_grad(self) -> None:
        self.transformer.zero_grad()

    def num_parameters(self) -> int:
        return self.transformer.num_parameters()
