"""Encoder-decoder language model backbone (CodeT5p substitute).

``TinyCodeT5p`` plays the role of CodeT5p-220m-bimodal in the paper: an
encoder-decoder model where the natural-language prompt is consumed by the
encoder and the Verilog code is produced by the decoder.  The Medusa heads are
attached to the decoder's last hidden states, exactly as in the paper's Fig. 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.nn.kv_cache import KVCache
from repro.nn.transformer import EncoderDecoderTransformer


@dataclass
class EncDecConfig:
    """Hyper-parameters of the encoder-decoder backbone."""

    vocab_size: int
    dim: int = 64
    num_encoder_layers: int = 2
    num_decoder_layers: int = 2
    num_heads: int = 4
    max_seq_len: int = 512
    seed: int = 0


class TinyCodeT5p:
    """Encoder-decoder backbone with the interface expected by :class:`MedusaLM`."""

    architecture = "encoder-decoder"

    def __init__(self, config: EncDecConfig) -> None:
        self.config = config
        self.transformer = EncoderDecoderTransformer(
            vocab_size=config.vocab_size,
            dim=config.dim,
            num_encoder_layers=config.num_encoder_layers,
            num_decoder_layers=config.num_decoder_layers,
            num_heads=config.num_heads,
            max_seq_len=config.max_seq_len,
            seed=config.seed,
        )

    @property
    def dim(self) -> int:
        return self.config.dim

    @property
    def max_seq_len(self) -> int:
        return self.config.max_seq_len

    def encode(self, encoder_ids: np.ndarray) -> np.ndarray:
        """Run (and cache) the encoder over the prompt ids."""
        return self.transformer.encode(np.asarray(encoder_ids, dtype=np.int64))

    def hidden_states(
        self,
        input_ids: np.ndarray,
        encoder_ids: Optional[np.ndarray] = None,
        cache: Optional[KVCache] = None,
        attn_bias: Optional[np.ndarray] = None,
        position_offsets: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Return decoder hidden states for ``input_ids`` given the prompt.

        ``encoder_ids`` re-runs the encoder; when omitted, the memory cached by
        the last :meth:`encode` call is reused (the generation loop encodes the
        prompt once and then decodes incrementally).  With ``cache``,
        ``input_ids`` extend the cached decoder prefix and the cross-attention
        projections of the encoder memory are computed only once.
        ``attn_bias``/``position_offsets`` generalise decoder self-attention
        masking and positions for token-tree verification.
        """
        encoder = None if encoder_ids is None else np.asarray(encoder_ids, dtype=np.int64)
        return self.transformer.forward(
            np.asarray(input_ids, dtype=np.int64),
            encoder,
            cache=cache,
            attn_bias=attn_bias,
            position_offsets=position_offsets,
        )

    def make_cache(self, batch: int = 1, capacity: Optional[int] = None) -> KVCache:
        """Create an empty per-layer KV cache for incremental decoding."""
        return self.transformer.make_cache(batch=batch, capacity=capacity)

    def backward(self, grad_hidden: np.ndarray) -> None:
        """Backpropagate a gradient arriving at the decoder hidden states."""
        self.transformer.backward(grad_hidden)

    def parameters(self):
        """Trainable parameters of the backbone."""
        return self.transformer.parameters()

    def zero_grad(self) -> None:
        self.transformer.zero_grad()

    def num_parameters(self) -> int:
        return self.transformer.num_parameters()
