"""Sampling utilities shared by the NTP baseline and speculative decoding.

The paper evaluates two decoding regimes per prompt: greedy decoding and
sampling at a fixed temperature.  Both reduce to picking a token from a logits
vector; :func:`sample_from_logits` implements that choice deterministically for
greedy decoding and via a seeded random generator for temperature sampling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.nn.functional import softmax


@dataclass
class GenerationConfig:
    """Configuration of a single generation run.

    ``tree_verify`` selects token-tree speculative verification: the
    candidate set is merged into a prefix-deduplicated tree and verified in
    one forward over one row instead of one padded row per candidate
    (:mod:`repro.core.token_tree`).  Committed tokens are identical either
    way; the tree simply verifies fewer positions whenever candidates share
    a prefix.  Ignored by plain next-token prediction.

    ``grammar`` selects grammar-constrained decoding
    (:mod:`repro.constrained`): ``"verilog"`` masks every sampled token so
    the generated code stays a viable Verilog prefix and prunes speculative
    candidates at their first violation before verification.  ``None`` (the
    default) is strictly unconstrained — the decode paths treat an absent
    mask as a no-op, so existing configs keep byte-identical outputs.
    """

    max_new_tokens: int = 192
    temperature: float = 0.0
    top_k: int = 0
    greedy: bool = True
    #: Sampling seed.  ``None`` asks the serving engine to derive a seed from
    #: the request id (:func:`repro.serving.request.derive_request_rng`) so
    #: concurrent requests draw independent streams yet resubmission — e.g.
    #: a router requeue after a worker crash — replays identical tokens.
    #: Direct ``sample_from_logits`` callers passing ``seed=None`` fall back
    #: to a fresh OS-entropy stream (non-reproducible, like numpy itself).
    seed: Optional[int] = 0
    tree_verify: bool = False
    grammar: Optional[str] = None

    @classmethod
    def greedy_config(
        cls, max_new_tokens: int = 192, tree_verify: bool = False, grammar: Optional[str] = None
    ) -> "GenerationConfig":
        return cls(max_new_tokens=max_new_tokens, temperature=0.0, greedy=True, tree_verify=tree_verify, grammar=grammar)

    @classmethod
    def sampling_config(
        cls,
        temperature: float = 0.8,
        max_new_tokens: int = 192,
        seed: int = 0,
        tree_verify: bool = False,
        grammar: Optional[str] = None,
    ) -> "GenerationConfig":
        return cls(
            max_new_tokens=max_new_tokens,
            temperature=temperature,
            greedy=False,
            seed=seed,
            tree_verify=tree_verify,
            grammar=grammar,
        )


#: Fallback generators for ``sample_from_logits(rng=None)``, one per seed
#: (``None`` keys a single shared OS-entropy generator).
#: A fresh ``default_rng(seed)`` per call would hand every position the same
#: generator state, collapsing "temperature sampling" into a deterministic
#: per-logits map; keeping the generator alive across calls restores an
#: actual random stream while staying reproducible per seed.
_FALLBACK_RNGS: Dict[Optional[int], np.random.Generator] = {}


def reset_fallback_rngs() -> None:
    """Drop the per-seed fallback generators (tests use this for isolation)."""
    _FALLBACK_RNGS.clear()


def _fallback_rng(seed: Optional[int]) -> np.random.Generator:
    generator = _FALLBACK_RNGS.get(seed)
    if generator is None:
        generator = _FALLBACK_RNGS[seed] = np.random.default_rng(seed)
    return generator


def sample_from_logits(
    logits: np.ndarray,
    config: GenerationConfig,
    rng: Optional[np.random.Generator] = None,
) -> int:
    """Pick a token id from a ``(V,)`` logits vector.

    Greedy configurations return the argmax.  Sampling configurations divide
    the logits by the temperature, optionally truncate to the top-k most
    probable tokens, and draw from the resulting distribution.

    Args:
        logits: ``(V,)`` unnormalised scores.
        config: decoding configuration; ``top_k`` larger than the vocabulary
            is clamped to ``V`` (i.e. no truncation), matching
            :func:`top_k_token_ids`.
        rng: seeded generator for sampling; defaults to a persistent
            per-``config.seed`` generator whose state advances across calls
            (a fresh generator per call would make every position draw from
            identical state — the decode loops thread their own generator,
            but the fallback must not silently de-randomise direct callers).

    Returns:
        The chosen token id.
    """
    if config.greedy or config.temperature <= 0.0:
        return int(np.argmax(logits))
    probabilities = sampling_probabilities(logits, config)
    generator = rng if rng is not None else _fallback_rng(config.seed)
    return int(generator.choice(len(probabilities), p=probabilities))


def sampling_probabilities(logits: np.ndarray, config: GenerationConfig) -> np.ndarray:
    """The temperature/top-k sampling distribution of :func:`sample_from_logits`.

    Exposed so grammar-constrained sampling (:func:`repro.constrained.mask
    .masked_choice`) can draw from exactly the distribution unconstrained
    sampling uses — the identity guarantee when the mask never intervenes.
    """
    scaled = logits / max(config.temperature, 1e-6)
    if config.top_k and config.top_k > 0:
        top_k = min(config.top_k, scaled.shape[-1])
        if top_k < scaled.shape[-1]:
            top_indices = np.argpartition(scaled, -top_k)[-top_k:]
            mask = np.full_like(scaled, -np.inf)
            mask[top_indices] = scaled[top_indices]
            scaled = mask
    return softmax(scaled)


def top_k_token_ids(logits: np.ndarray, k: int) -> np.ndarray:
    """Return the ``k`` most probable token ids, most probable first."""
    k = min(k, logits.shape[-1])
    indices = np.argpartition(logits, -k)[-k:]
    return indices[np.argsort(logits[indices])[::-1]]
