"""Medusa wrapper: a base LM head plus additional decoding heads.

Following MEDUSA (and the paper's Fig. 2), ``MedusaLM`` attaches ``n``
additional decoding heads to the backbone's last hidden states.  At decoding
position ``t`` the base head predicts the token at ``t+1`` while head ``i``
predicts the token at ``t+i+1``.  Each Medusa head is a residual block
(linear + GELU + skip connection) followed by its own vocabulary projection,
matching the original Medusa head construction.

The same wrapper serves three training/decoding regimes:

* **NTP** — ``num_medusa_heads=0``: a plain next-token-prediction model;
* **Medusa** — heads trained with plain shifted labels (Medusa-2 style joint
  fine-tuning);
* **Ours** — heads trained with the syntax-enriched labels from
  :mod:`repro.core.labels`.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.nn.kv_cache import KVCache
from repro.nn.layers import Linear, Module
from repro.nn.functional import gelu, gelu_grad


class MedusaHead(Module):
    """One Medusa decoding head: residual block + vocabulary projection."""

    def __init__(self, dim: int, vocab_size: int, rng: np.random.Generator, index: int) -> None:
        self.res_linear = Linear(dim, dim, rng, name=f"medusa{index}.res")
        self.lm_head = Linear(dim, vocab_size, rng, name=f"medusa{index}.lm")
        self.index = index
        self._pre_activation: Optional[np.ndarray] = None
        self._input: Optional[np.ndarray] = None

    def forward(self, hidden: np.ndarray) -> np.ndarray:
        """Map hidden states ``(B, T, D)`` to logits ``(B, T, V)``."""
        self._input = hidden
        pre = self.res_linear.forward(hidden)
        self._pre_activation = pre
        residual = hidden + gelu(pre)
        return self.lm_head.forward(residual)

    def backward(self, grad_logits: np.ndarray) -> np.ndarray:
        """Return the gradient with respect to the incoming hidden states."""
        grad_residual = self.lm_head.backward(grad_logits)
        grad_pre = grad_residual * gelu_grad(self._pre_activation)
        grad_hidden = self.res_linear.backward(grad_pre)
        return grad_residual + grad_hidden


class MedusaLM(Module):
    """Backbone + base LM head + ``n`` Medusa heads."""

    def __init__(
        self,
        backbone,
        vocab_size: int,
        num_medusa_heads: int = 10,
        seed: int = 0,
        head_lr_scale: float = 4.0,
    ) -> None:
        rng = np.random.default_rng(seed + 1)
        self.backbone = backbone
        self.vocab_size = vocab_size
        self.num_medusa_heads = num_medusa_heads
        self.base_head = Linear(backbone.dim, vocab_size, rng, name="base_head")
        self.medusa_heads: List[MedusaHead] = [
            MedusaHead(backbone.dim, vocab_size, rng, index=i) for i in range(num_medusa_heads)
        ]
        # The paper trains the decoding heads at 4x the base learning rate.
        for head in self.medusa_heads:
            head.set_lr_scale(head_lr_scale)
        self._last_hidden: Optional[np.ndarray] = None

    # -- forward -------------------------------------------------------------

    @property
    def architecture(self) -> str:
        return self.backbone.architecture

    @property
    def is_encoder_decoder(self) -> bool:
        return self.backbone.architecture == "encoder-decoder"

    def forward(
        self,
        input_ids: np.ndarray,
        encoder_ids: Optional[np.ndarray] = None,
        cache: Optional[KVCache] = None,
    ) -> Tuple[np.ndarray, List[np.ndarray]]:
        """Compute base-head and Medusa-head logits.

        Args:
            input_ids: ``(T,)`` or ``(B, T)`` decoder-side token ids (for
                decoder-only backbones this is prompt+output concatenated).
            encoder_ids: prompt ids for encoder-decoder backbones.
            cache: per-layer KV cache; when given, ``input_ids`` extend the
                cached prefix and logits cover only the new positions.

        Returns:
            ``(base_logits, head_logits)`` where ``base_logits`` has shape
            ``(B, T, V)`` and ``head_logits`` is a list of the same shape, one
            per Medusa head.
        """
        hidden = self.backbone.hidden_states(input_ids, encoder_ids, cache=cache)
        self._last_hidden = hidden
        base_logits = self.base_head.forward(hidden)
        head_logits = [head.forward(hidden) for head in self.medusa_heads]
        return base_logits, head_logits

    def forward_hidden(
        self,
        input_ids: np.ndarray,
        encoder_ids: Optional[np.ndarray] = None,
        cache: Optional[KVCache] = None,
        attn_bias: Optional[np.ndarray] = None,
        position_offsets: Optional[np.ndarray] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Compute base-head logits and return the hidden states alongside.

        The decoding hot loops need base logits at *every* position (for
        candidate verification) but Medusa-head logits at only *one* position
        per sequence — the last committed token, which is not known until
        after verification.  This entry point skips the head projections
        entirely; callers evaluate :meth:`head_logits_at` on the handful of
        hidden vectors they actually need, which removes the dominant
        per-step cost of running every head over every window position.

        Args:
            input_ids: as for :meth:`forward`.
            encoder_ids: as for :meth:`forward`.
            cache: as for :meth:`forward`.
            attn_bias: optional additive attention mask replacing the causal
                mask (token-tree verification; see
                :meth:`~repro.nn.layers.CausalSelfAttention.forward`).
            position_offsets: optional per-token position offsets from each
                row's start (tree nodes sit at ``prefix + depth``).

        Returns:
            ``(base_logits, hidden)`` with shapes ``(B, T, V)`` and
            ``(B, T, D)``.
        """
        hidden = self.backbone.hidden_states(
            input_ids, encoder_ids, cache=cache, attn_bias=attn_bias, position_offsets=position_offsets
        )
        self._last_hidden = hidden
        return self.base_head.forward(hidden), hidden

    def head_logits_at(self, hidden: np.ndarray) -> List[np.ndarray]:
        """Medusa-head logits for a batch of single hidden vectors.

        Args:
            hidden: ``(N, D)`` hidden states (one per sequence, typically the
                last committed position of each).

        Returns:
            One ``(N, V)`` logits array per Medusa head.
        """
        expanded = hidden[:, None, :]
        return [head.forward(expanded)[:, 0] for head in self.medusa_heads]

    def new_cache(self, batch: int = 1, capacity: Optional[int] = None) -> KVCache:
        """Create an empty KV cache for incremental decoding with this model.

        ``capacity`` overrides the default (the backbone's context window);
        token-tree verification asks for headroom beyond it because the whole
        candidate tree — all branches — is appended before compaction.
        """
        return self.backbone.make_cache(batch=batch, capacity=capacity)

    def new_block_pool(self, block_size: int = 16, num_blocks: int = 256):
        """Create a paged K/V block pool for serving this model (decoder-only).

        Returns a :class:`~repro.nn.kv_pool.KVBlockPool` matching the
        backbone's layer/head geometry; the serving engine builds
        :class:`~repro.nn.kv_pool.PagedKVCache` sequences over it.  Paged
        serving needs per-block cross-attention memory management that does
        not exist, so encoder-decoder backbones are rejected — the same
        restriction the engine itself enforces.
        """
        if self.is_encoder_decoder:
            raise ValueError(
                "paged KV pools support decoder-only backbones; encoder-decoder "
                "models would need paged cross-attention memories (not implemented)"
            )
        return self.backbone.make_block_pool(block_size=block_size, num_blocks=num_blocks)

    def backward(self, grad_base: np.ndarray, grad_heads: Sequence[np.ndarray]) -> None:
        """Backpropagate per-head logit gradients into the backbone."""
        grad_hidden = self.base_head.backward(grad_base)
        for head, grad in zip(self.medusa_heads, grad_heads):
            grad_hidden = grad_hidden + head.backward(grad)
        self.backbone.backward(grad_hidden)

    # -- parameters -----------------------------------------------------------

    def parameters(self):
        yield from self.backbone.parameters()
        yield from self.base_head.parameters()
        for head in self.medusa_heads:
            yield from head.parameters()

    def zero_grad(self) -> None:
        self.backbone.zero_grad()
        self.base_head.zero_grad()
        for head in self.medusa_heads:
            head.zero_grad()

    def num_parameters(self) -> int:
        total = self.backbone.num_parameters() + self.base_head.num_parameters()
        return total + sum(head.num_parameters() for head in self.medusa_heads)

    # -- convenience ----------------------------------------------------------

    def encode_prompt(self, prompt_ids: np.ndarray) -> None:
        """For encoder-decoder backbones: run and cache the encoder."""
        if self.is_encoder_decoder:
            self.backbone.encode(np.asarray(prompt_ids, dtype=np.int64))

    def last_position_logits(
        self, input_ids: np.ndarray, encoder_ids: Optional[np.ndarray] = None
    ) -> Tuple[np.ndarray, List[np.ndarray]]:
        """Logits at the final sequence position only (``(V,)`` arrays)."""
        base_logits, head_logits = self.forward(input_ids, encoder_ids)
        return base_logits[0, -1], [h[0, -1] for h in head_logits]
