"""Minimal numpy neural-network substrate.

The paper fine-tunes CodeLlama-7b and CodeT5p-220m on GPUs.  This subpackage
provides the reproduction's scale-reduced substitute: transformer models
implemented directly on numpy with hand-written backpropagation, an AdamW
optimizer and the loss functions the paper's training objective needs
(cross-entropy with an ignore index, entropy for the typical-acceptance rule).
"""

from repro.nn.functional import (
    softmax,
    log_softmax,
    cross_entropy,
    cross_entropy_grad,
    entropy,
    gelu,
    gelu_grad,
)
from repro.nn.kv_cache import KVCache, LayerKVCache
from repro.nn.layers import Parameter, Module, Linear, Embedding, LayerNorm, CausalSelfAttention, FeedForward
from repro.nn.transformer import TransformerBlock, DecoderOnlyTransformer, EncoderDecoderTransformer
from repro.nn.optim import AdamW, WarmupCosineSchedule

__all__ = [
    "softmax",
    "log_softmax",
    "cross_entropy",
    "cross_entropy_grad",
    "entropy",
    "gelu",
    "gelu_grad",
    "Parameter",
    "Module",
    "Linear",
    "Embedding",
    "LayerNorm",
    "CausalSelfAttention",
    "FeedForward",
    "KVCache",
    "LayerKVCache",
    "TransformerBlock",
    "DecoderOnlyTransformer",
    "EncoderDecoderTransformer",
    "AdamW",
    "WarmupCosineSchedule",
]
