"""Minimal numpy neural-network substrate.

The paper fine-tunes CodeLlama-7b and CodeT5p-220m on GPUs.  This subpackage
provides the reproduction's scale-reduced substitute: transformer models
implemented directly on numpy with hand-written backpropagation, an AdamW
optimizer and the loss functions the paper's training objective needs
(cross-entropy with an ignore index, entropy for the typical-acceptance rule).

Decoding-time K/V memory comes in two interchangeable flavours:
:mod:`repro.nn.kv_cache` (contiguous per-row buffers — single-stream
decoding and the reference oracle) and :mod:`repro.nn.kv_pool` (paged,
refcounted block storage with copy-on-write sharing — the serving engine's
default).  See ``docs/kv-memory.md``.
"""

from repro.nn.functional import (
    softmax,
    log_softmax,
    cross_entropy,
    cross_entropy_grad,
    entropy,
    gelu,
    gelu_grad,
)
from repro.nn.kv_cache import KVCache, KVSegment, LayerKVCache
from repro.nn.kv_pool import KVBlockPool, KVPoolExhausted, PagedKVCache, PagedLayerKV, PagedPrefix
from repro.nn.layers import Parameter, Module, Linear, Embedding, LayerNorm, CausalSelfAttention, FeedForward
from repro.nn.transformer import TransformerBlock, DecoderOnlyTransformer, EncoderDecoderTransformer
from repro.nn.optim import AdamW, WarmupCosineSchedule

__all__ = [
    "softmax",
    "log_softmax",
    "cross_entropy",
    "cross_entropy_grad",
    "entropy",
    "gelu",
    "gelu_grad",
    "Parameter",
    "Module",
    "Linear",
    "Embedding",
    "LayerNorm",
    "CausalSelfAttention",
    "FeedForward",
    "KVBlockPool",
    "KVCache",
    "KVPoolExhausted",
    "KVSegment",
    "LayerKVCache",
    "PagedKVCache",
    "PagedLayerKV",
    "PagedPrefix",
    "TransformerBlock",
    "DecoderOnlyTransformer",
    "EncoderDecoderTransformer",
    "AdamW",
    "WarmupCosineSchedule",
]
