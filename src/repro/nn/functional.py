"""Numerically-stable functional primitives used across the NN substrate."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Softmax along ``axis`` with max-subtraction for stability."""
    shifted = x - np.max(x, axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / np.sum(exp, axis=axis, keepdims=True)


def log_softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Log-softmax along ``axis``."""
    shifted = x - np.max(x, axis=axis, keepdims=True)
    return shifted - np.log(np.sum(np.exp(shifted), axis=axis, keepdims=True))


def entropy(probabilities: np.ndarray, axis: int = -1, eps: float = 1e-12) -> np.ndarray:
    """Shannon entropy of a probability distribution (natural log).

    Used by the typical-acceptance criterion (paper eq. 1), where the
    acceptance threshold is scaled by ``exp(-H(p_base))``.
    """
    clipped = np.clip(probabilities, eps, 1.0)
    return -np.sum(probabilities * np.log(clipped), axis=axis)


def cross_entropy(
    logits: np.ndarray, targets: np.ndarray, ignore_index: Optional[int] = None
) -> Tuple[float, np.ndarray, int]:
    """Token-level cross-entropy loss.

    Args:
        logits: array of shape ``(N, vocab)``.
        targets: integer array of shape ``(N,)``.
        ignore_index: target value excluded from the loss (the paper's
            ``[IGNORE]`` token id).

    Returns:
        ``(loss, probabilities, count)`` where ``loss`` is the mean negative
        log-likelihood over non-ignored positions, ``probabilities`` is the
        softmax of the logits (needed for the backward pass) and ``count`` is
        the number of positions that contributed to the loss.
    """
    probabilities = softmax(logits, axis=-1)
    n = logits.shape[0]
    if ignore_index is not None:
        mask = targets != ignore_index
    else:
        mask = np.ones(n, dtype=bool)
    count = int(mask.sum())
    if count == 0:
        return 0.0, probabilities, 0
    safe_targets = np.where(mask, targets, 0)
    picked = probabilities[np.arange(n), safe_targets]
    log_likelihood = np.log(np.clip(picked, 1e-12, 1.0))
    loss = -float(np.sum(log_likelihood * mask)) / count
    return loss, probabilities, count


def cross_entropy_grad(
    probabilities: np.ndarray, targets: np.ndarray, ignore_index: Optional[int] = None
) -> np.ndarray:
    """Gradient of :func:`cross_entropy` with respect to the logits."""
    n, _ = probabilities.shape
    if ignore_index is not None:
        mask = targets != ignore_index
    else:
        mask = np.ones(n, dtype=bool)
    count = max(int(mask.sum()), 1)
    grad = probabilities.copy()
    safe_targets = np.where(mask, targets, 0)
    grad[np.arange(n), safe_targets] -= 1.0
    grad *= mask[:, None] / count
    return grad


# sqrt(2/pi) as a *python* float: NumPy 2's promotion rules treat python
# scalars as weak, so float32 activations stay float32.  (An np.float64
# scalar from np.sqrt() would silently promote every activation downstream
# of the first GELU to float64 — 2x the matmul cost and 4x the tanh cost.)
_GELU_C = 0.7978845608028654


def gelu(x: np.ndarray) -> np.ndarray:
    """Gaussian error linear unit (tanh approximation); preserves ``x``'s dtype.

    The cube is written as ``x * x * x`` on purpose: numpy's float32 ``x**3``
    dispatches to a generic ``pow`` loop that is ~100x slower than two
    multiplies and dominated the whole decoding hot path.
    """
    cube = x * x * x
    return 0.5 * x * (1.0 + np.tanh(_GELU_C * (x + 0.044715 * cube)))


def gelu_grad(x: np.ndarray) -> np.ndarray:
    """Derivative of :func:`gelu` with respect to its input."""
    square = x * x
    inner = _GELU_C * (x + 0.044715 * square * x)
    tanh_inner = np.tanh(inner)
    sech2 = 1.0 - tanh_inner * tanh_inner
    return 0.5 * (1.0 + tanh_inner) + 0.5 * x * sech2 * _GELU_C * (1.0 + 3 * 0.044715 * square)
