"""Per-layer attention key/value cache for incremental decoding.

Re-running the full transformer forward over the entire prefix at every
decoding step costs O(T^2) work per generated token.  The standard serving
trick — and the enabling refactor for the paper's wall-clock speed claims —
is to cache each attention layer's key/value projections for the committed
prefix, so each step only projects the *new* tokens and attends over the
cached keys.

:class:`KVCache` owns one :class:`LayerKVCache` per transformer layer.  Two
workloads are built on top of it:

**Single-stream speculative decoding** (:mod:`repro.core.decoding`) uses three
operations beyond plain appending:

* ``truncate(length)`` — roll the cache back to a committed prefix after
  typical-acceptance and fragment-integrity truncation, so rejected
  speculative tokens never pollute subsequent steps;
* ``expand_batch(n)`` — tile a batch-1 cache to ``n`` rows so all candidate
  continuations are verified in one batched cached forward;
* ``keep_row(row)`` — collapse back to the accepted candidate's row.

**Multi-request serving** (:mod:`repro.serving`) keeps one cache row per
in-flight request.  Requests sit at *different* prefix lengths, so the cache
is *ragged*: every row carries its own length (``lengths``), appends land at
per-row offsets, and attention masks each row against its own past.  The
serving engine drives this through the multi-row generalisations:

* ``repeat_rows(repeats)`` — tile each request row once per speculative
  candidate (per-row repeat counts, so requests may propose different
  candidate counts);
* ``select_rows(rows)`` — gather an arbitrary subset/ordering of rows, used
  both to keep each request's accepted candidate and to reclaim the rows of
  completed requests (the multi-row ``keep_row``);
* ``truncate_rows(lengths)`` — per-row rollback to each request's committed
  prefix;
* ``concat(caches)`` — merge freshly prefilled batch-1 caches into the shared
  cache when the scheduler admits new requests;
* ``set_append_widths(widths)`` — declare, for the next forward, how many of
  the incoming window positions are real per row (the rest are right-padding
  that must not be stored).

**Cross-request prefix reuse** (:mod:`repro.serving.prefix_cache`) retains the
K/V of recently served prompt prefixes and splices them into the rows of new
requests, so shared prompt preambles are prefilled once instead of once per
request.  Two segment operations support it:

* ``gather_prefix(row, length)`` — detach the first ``length`` positions of a
  row into a standalone :class:`KVSegment` (the unit the prefix cache
  retains);
* ``splice_prefix(row, segment)`` — copy a retained segment into a fresh row,
  so the subsequent prefill forward only covers the prompt suffix.

Cross-attention K/V (encoder-decoder models) is position-independent on the
decoder side, so each layer slot can additionally hold the projected encoder
memory, computed once at prefill and reused for every decode step.

**Row vs. paged storage.**  This module stores each row as one contiguous
buffer sized for the full context window — simple, and the reference
implementation the rest of the stack is validated against.  The serving
engine defaults to the *paged* storage in :mod:`repro.nn.kv_pool` instead
(fixed-size refcounted blocks, copy-on-write prefix sharing), which turns
this module's copying operations (``splice_prefix``, ``repeat_rows``,
``compact_rows``, ``select_rows``) into block-table aliasing.  The two are
token-identical by construction and by test (``tests/test_kv_pool.py``,
``tests/test_serving.py``); row caches remain the storage of single-stream
decoding and the token-identity oracle for the paged path.  See
``docs/kv-memory.md`` for the memory-model comparison.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

import numpy as np


class LayerKVCache:
    """K/V storage for one attention layer.

    Self-attention keys/values are stored pre-split by head with shape
    ``(batch, num_heads, capacity, head_dim)``.  Each batch row ``r`` is
    filled in place up to ``lengths[r]`` — rows may hold prefixes of
    different lengths (ragged batching, used by the serving engine).
    Cross-attention keys/values (optional) are stored whole, since the
    encoder memory never grows.
    """

    def __init__(self, batch: int, num_heads: int, capacity: int, head_dim: int) -> None:
        self.capacity = capacity
        self.lengths = np.zeros(batch, dtype=np.int64)
        self.k = np.zeros((batch, num_heads, capacity, head_dim), dtype=np.float32)
        self.v = np.zeros((batch, num_heads, capacity, head_dim), dtype=np.float32)
        self.cross_k: Optional[np.ndarray] = None
        self.cross_v: Optional[np.ndarray] = None
        #: Per-row append widths for the next :meth:`append` (ragged serving
        #: steps); ``None`` means every incoming position is real.
        self.append_widths: Optional[np.ndarray] = None

    @property
    def batch(self) -> int:
        return self.k.shape[0]

    @property
    def length(self) -> int:
        """Longest cached prefix across rows (== every row for uniform caches)."""
        return int(self.lengths.max(initial=0))

    def append(self, k_new: np.ndarray, v_new: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Store ``(batch, heads, t, head_dim)`` projections; return the full prefix views.

        Row ``r``'s new keys/values land at offset ``lengths[r]``.  When
        :attr:`append_widths` is set, only the first ``append_widths[r]``
        window positions of row ``r`` are stored (the remainder is
        right-padding from cross-request window alignment).  The returned
        views cover positions ``0 .. max(lengths)`` after the append; entries
        past a row's own length are stale and must be masked by the caller.
        """
        t = k_new.shape[2]
        if k_new.shape[0] != self.batch:
            raise ValueError(f"batch mismatch: cache has {self.batch} rows, got {k_new.shape[0]}")
        if self.append_widths is None:
            widths = np.full(self.batch, t, dtype=np.int64)
        else:
            widths = np.asarray(self.append_widths, dtype=np.int64)
            if widths.shape != (self.batch,):
                raise ValueError(f"append_widths shape {widths.shape} != (batch,) = ({self.batch},)")
            if np.any(widths < 0) or np.any(widths > t):
                raise ValueError(f"append widths must lie in [0, {t}], got {widths}")
        if int((self.lengths + widths).max(initial=0)) > self.capacity:
            raise ValueError(
                f"KV cache overflow: {self.lengths} + {widths} > capacity {self.capacity}"
            )
        if self.append_widths is None and self.batch > 0 and np.all(self.lengths == self.lengths[0]):
            # Uniform fast path: one contiguous block assignment.
            start = int(self.lengths[0])
            self.k[:, :, start : start + t] = k_new
            self.v[:, :, start : start + t] = v_new
        else:
            for row in range(self.batch):
                start = int(self.lengths[row])
                width = int(widths[row])
                self.k[row, :, start : start + width] = k_new[row, :, :width]
                self.v[row, :, start : start + width] = v_new[row, :, :width]
        self.lengths = self.lengths + widths
        view = self.length
        return self.k[:, :, :view], self.v[:, :, :view]

    def set_cross(self, k: np.ndarray, v: np.ndarray) -> None:
        self.cross_k = k
        self.cross_v = v

    @property
    def has_cross(self) -> bool:
        return self.cross_k is not None


class KVSegment:
    """Detached per-layer K/V copy of one cache row's prefix.

    The unit of storage of the cross-request prefix cache
    (:mod:`repro.serving.prefix_cache`): the keys/values a row computed for a
    prompt prefix, gathered out of the live cache with
    :meth:`KVCache.gather_prefix` and spliced into a fresh row with
    :meth:`KVCache.splice_prefix`.  Because causal attention makes position
    ``i``'s K/V depend only on tokens ``0..i``, a segment gathered for one
    prompt is byte-for-byte what any other prompt sharing that prefix would
    compute — reuse is a pure compute-layout change.

    Each layer holds arrays of shape ``(num_heads, length, head_dim)``.
    """

    def __init__(self, k_layers: List[np.ndarray], v_layers: List[np.ndarray]) -> None:
        if len(k_layers) != len(v_layers) or not k_layers:
            raise ValueError("KVSegment needs matching, non-empty per-layer K and V lists")
        first = k_layers[0]
        for arr in list(k_layers) + list(v_layers):
            if arr.shape != first.shape:
                raise ValueError("all KVSegment layers must share one (heads, length, head_dim) shape")
        self.k_layers = list(k_layers)
        self.v_layers = list(v_layers)

    @property
    def num_layers(self) -> int:
        return len(self.k_layers)

    @property
    def num_heads(self) -> int:
        return self.k_layers[0].shape[0]

    @property
    def length(self) -> int:
        """Number of cached prefix positions the segment covers."""
        return self.k_layers[0].shape[1]

    @property
    def head_dim(self) -> int:
        return self.k_layers[0].shape[2]

    @property
    def nbytes(self) -> int:
        """Total storage of the segment (K and V, all layers)."""
        return sum(arr.nbytes for arr in self.k_layers) + sum(arr.nbytes for arr in self.v_layers)

    def head(self, length: int) -> "KVSegment":
        """A view of the segment's first ``length`` positions (no copy).

        The prefix cache serves partial matches with this: an entry retained
        for prompt ``A`` answers a lookup for prompt ``B`` sharing only the
        first ``length`` tokens.  Views are safe because consumers only ever
        read a segment (:meth:`KVCache.splice_prefix` copies).
        """
        if not 0 <= length <= self.length:
            raise ValueError(f"head length {length} out of range [0, {self.length}]")
        return KVSegment(
            [k[:, :length] for k in self.k_layers],
            [v[:, :length] for v in self.v_layers],
        )


class KVCache:
    """Per-layer K/V cache threaded through a transformer's attention blocks."""

    def __init__(self, num_layers: int, num_heads: int, head_dim: int, capacity: int, batch: int = 1) -> None:
        self.num_heads = num_heads
        self.head_dim = head_dim
        self.capacity = capacity
        self.layers: List[LayerKVCache] = [
            LayerKVCache(batch, num_heads, capacity, head_dim) for _ in range(num_layers)
        ]

    # -- inspection ----------------------------------------------------------

    @property
    def length(self) -> int:
        """Longest cached prefix across rows (identical across layers).

        For the uniform caches used by single-stream decoding every row has
        this length; ragged serving caches expose per-row lengths via
        :attr:`lengths`.
        """
        return self.layers[0].length

    @property
    def lengths(self) -> np.ndarray:
        """Per-row cached prefix lengths, shape ``(batch,)`` (copy)."""
        return self.layers[0].lengths.copy()

    @property
    def batch(self) -> int:
        return self.layers[0].batch

    @property
    def num_layers(self) -> int:
        return len(self.layers)

    @property
    def append_widths(self) -> Optional[np.ndarray]:
        """Per-row real-token widths declared for the next forward (or None)."""
        return self.layers[0].append_widths

    @property
    def nbytes(self) -> int:
        """Allocated K/V buffer storage (all layers, full capacity, plus cross K/V).

        This is *reserved* memory — ``batch x capacity`` positions per layer
        whatever the rows actually hold — which is exactly the number the
        paged pool's ``peak_kv_bytes`` is compared against in the
        shared-prefix memory bench.
        """
        total = sum(layer.k.nbytes + layer.v.nbytes for layer in self.layers)
        for layer in self.layers:
            if layer.has_cross:
                total += layer.cross_k.nbytes + layer.cross_v.nbytes
        return total

    def release(self) -> None:
        """No-op, for call-site symmetry with :meth:`PagedKVCache.release`.

        Row caches free their storage through garbage collection; paged
        caches must drop pool block references explicitly.  The serving
        engine releases every superseded cache generation unconditionally so
        its step logic is identical across both memory modes.
        """

    def set_append_widths(self, widths: Optional[Sequence[int]]) -> None:
        """Declare per-row real-token widths for the next incremental forward.

        The serving engine right-pads every request's candidate window to a
        common width so one batched forward covers all requests; ``widths``
        tells each layer's :meth:`LayerKVCache.append` how many of those
        window positions actually belong to each row.  Pass ``None`` to clear
        (every position real again).  The setting persists until cleared, so
        callers should wrap the forward in ``try/finally``.
        """
        arr = None if widths is None else np.asarray(widths, dtype=np.int64)
        for layer in self.layers:
            layer.append_widths = arr

    # -- speculative-decoding operations -------------------------------------

    def truncate(self, length: int) -> None:
        """Roll every layer (every row) back to at most ``length`` cached positions.

        Used after candidate verification to discard the K/V of speculated
        tokens that typical acceptance or the fragment-integrity check
        rejected.  Truncating beyond the current length is a no-op.
        """
        if length < 0:
            raise ValueError(f"cannot truncate to negative length {length}")
        for layer in self.layers:
            layer.lengths = np.minimum(layer.lengths, length)

    @staticmethod
    def _retile(source: np.ndarray, rows: int, length: int) -> np.ndarray:
        """Fresh ``rows``-batch capacity buffer holding ``source``'s first ``length`` positions.

        Copying only the filled prefix keeps per-step cache management O(prefix)
        rather than O(capacity).
        """
        out = np.empty((rows,) + source.shape[1:], dtype=source.dtype)
        out[:, :, :length] = source[:, :, :length]
        return out

    def expand_batch(self, n: int) -> None:
        """Tile a batch-1 cache to ``n`` identical rows (for batched verification)."""
        if n == self.batch:
            return
        if self.batch != 1:
            raise ValueError(f"expand_batch requires a batch-1 cache, got batch {self.batch}")
        for layer in self.layers:
            layer.k = self._retile(layer.k, n, layer.length)
            layer.v = self._retile(layer.v, n, layer.length)
            layer.lengths = np.repeat(layer.lengths, n)
            if layer.has_cross:
                layer.cross_k = np.repeat(layer.cross_k, n, axis=0)
                layer.cross_v = np.repeat(layer.cross_v, n, axis=0)

    def keep_row(self, row: int) -> None:
        """Collapse an expanded cache back to a single batch row.

        The copy detaches the kept row from the expanded arrays so the
        discarded candidates' storage can be freed.
        """
        if not 0 <= row < self.batch:
            raise IndexError(f"row {row} out of range for batch {self.batch}")
        self.select_rows([row])

    def keep_path(self, prefix_len: int, node_positions: Sequence[int]) -> None:
        """Compact an appended token-tree window down to one accepted path, in place.

        Token-tree verification appends the *whole* deduplicated candidate
        tree after the committed prefix; once acceptance picks a root-to-leaf
        path, only that path's K/V belongs in the cache.  This gathers the
        window positions ``node_positions`` (tree-node indices, in root-to-
        leaf order) to sit contiguously right after ``prefix_len`` and rolls
        the length back to ``prefix_len + len(node_positions)`` — the tree
        analogue of ``keep_row`` + ``truncate`` for row-batched verification.
        Requires a batch-1 cache (single-stream decoding); the serving engine
        uses :meth:`compact_paths` instead.
        """
        if self.batch != 1:
            raise ValueError(f"keep_path requires a batch-1 cache, got batch {self.batch}")
        if prefix_len < 0:
            raise ValueError(f"negative prefix length {prefix_len}")
        index = np.asarray(list(node_positions), dtype=np.int64)
        length = self.length
        if index.size and (int(index.min()) < 0 or prefix_len + int(index.max()) >= length):
            raise IndexError(
                f"path positions {index} out of range for window [{0}, {length - prefix_len})"
            )
        new_length = prefix_len + index.size
        for layer in self.layers:
            if index.size:
                # Fancy indexing copies, so the in-place write is safe even
                # though source and destination ranges overlap.
                layer.k[0, :, prefix_len:new_length] = layer.k[0][:, prefix_len + index]
                layer.v[0, :, prefix_len:new_length] = layer.v[0][:, prefix_len + index]
            layer.lengths = np.full_like(layer.lengths, new_length)

    # -- prefix-reuse segment operations ---------------------------------------

    def gather_prefix(self, row: int, length: int) -> KVSegment:
        """Detach the first ``length`` cached positions of ``row`` into a segment.

        The serving engine gathers a request's prompt-prefix K/V out of its
        freshly prefilled row so the prefix cache can retain it after the row
        itself is merged, compacted and eventually reclaimed.  The segment is
        a copy — it stays valid however the source cache is reshaped later.
        """
        if not 0 <= row < self.batch:
            raise IndexError(f"row {row} out of range for batch {self.batch}")
        if length < 0 or length > int(self.layers[0].lengths[row]):
            raise ValueError(
                f"prefix length {length} out of range [0, {int(self.layers[0].lengths[row])}] for row {row}"
            )
        if any(layer.has_cross for layer in self.layers):
            raise ValueError("gather_prefix does not support cross-attention caches")
        return KVSegment(
            [layer.k[row, :, :length].copy() for layer in self.layers],
            [layer.v[row, :, :length].copy() for layer in self.layers],
        )

    def snapshot_prefix(self, row: int, length: int) -> KVSegment:
        """The retention-unit snapshot of a row prefix — a copy, for row caches.

        Mode-neutral alias the serving engine calls when retaining a prompt's
        K/V: row caches copy the positions out (:meth:`gather_prefix`), paged
        caches return a refcounted block reference
        (:meth:`PagedKVCache.snapshot_prefix`) without copying anything.
        """
        return self.gather_prefix(row, length)

    def splice_prefix(self, row: int, segment: KVSegment) -> None:
        """Copy a retained segment into fresh ``row``, making it the row's prefix.

        After the splice the row behaves exactly as if its first
        ``segment.length`` tokens had just been prefilled: appends continue at
        ``segment.length`` and attention sees the spliced K/V as cached past.
        The row must be empty (length 0) — splicing is an admission-time
        operation, not a general overwrite.
        """
        if not isinstance(segment, KVSegment):
            raise TypeError(
                f"row caches splice KVSegment copies, got {type(segment).__name__}; "
                f"a PrefixCache mixes paged and row segments only if it is shared between "
                f"engines with different kv_memory modes — give each mode its own cache"
            )
        if not 0 <= row < self.batch:
            raise IndexError(f"row {row} out of range for batch {self.batch}")
        if int(self.layers[0].lengths[row]) != 0:
            raise ValueError(
                f"splice_prefix requires a fresh row, but row {row} already holds "
                f"{int(self.layers[0].lengths[row])} positions"
            )
        if segment.num_layers != self.num_layers:
            raise ValueError(f"segment has {segment.num_layers} layers, cache has {self.num_layers}")
        if segment.num_heads != self.num_heads or segment.head_dim != self.head_dim:
            raise ValueError(
                f"segment geometry ({segment.num_heads} heads x {segment.head_dim}) does not match "
                f"cache ({self.num_heads} heads x {self.head_dim})"
            )
        if segment.length > self.capacity:
            raise ValueError(f"segment length {segment.length} exceeds cache capacity {self.capacity}")
        for layer, k_seg, v_seg in zip(self.layers, segment.k_layers, segment.v_layers):
            layer.k[row, :, : segment.length] = k_seg
            layer.v[row, :, : segment.length] = v_seg
            layer.lengths[row] = segment.length

    # -- multi-request serving operations -------------------------------------

    def select_rows(self, rows: Sequence[int]) -> None:
        """Gather an arbitrary subset/ordering of rows, in place.

        The multi-row generalisation of :meth:`keep_row`: the serving engine
        uses it to keep each request's accepted candidate row out of the
        expanded verification batch and to reclaim the rows of completed or
        evicted requests.  Rows may be repeated or dropped; each surviving
        row keeps its own length.  The copy detaches the survivors so the
        dropped rows' storage can be freed.
        """
        rows = list(rows)
        for row in rows:
            if not 0 <= row < self.batch:
                raise IndexError(f"row {row} out of range for batch {self.batch}")
        index = np.asarray(rows, dtype=np.int64)
        for layer in self.layers:
            view = layer.length
            # Zero-filled allocation keeps the ragged-buffer invariant: every
            # position outside a row's own prefix is finite, so masked
            # attention weights (exactly 0 after softmax) cannot meet inf/NaN
            # garbage and produce 0 * inf = NaN.
            new_k = np.zeros((len(rows),) + layer.k.shape[1:], dtype=layer.k.dtype)
            new_v = np.zeros((len(rows),) + layer.v.shape[1:], dtype=layer.v.dtype)
            new_k[:, :, :view] = layer.k[index, :, :view]
            new_v[:, :, :view] = layer.v[index, :, :view]
            layer.k = new_k
            layer.v = new_v
            layer.lengths = layer.lengths[index].copy()
            if layer.has_cross:
                layer.cross_k = layer.cross_k[index].copy()
                layer.cross_v = layer.cross_v[index].copy()

    def truncate_rows(self, lengths: Sequence[int]) -> None:
        """Roll each row back to its own committed prefix length.

        The per-row generalisation of :meth:`truncate`, used after a batched
        serving step to discard every request's rejected speculative tokens
        at once.  Entries longer than a row's current length are no-ops.
        """
        target = np.asarray(lengths, dtype=np.int64)
        if target.shape != (self.batch,):
            raise ValueError(f"lengths shape {target.shape} != (batch,) = ({self.batch},)")
        if np.any(target < 0):
            raise ValueError(f"cannot truncate to negative lengths {target}")
        for layer in self.layers:
            layer.lengths = np.minimum(layer.lengths, target)

    def repeat_rows(self, repeats: Union[int, Sequence[int]], capacity: Optional[int] = None) -> "KVCache":
        """Return a new cache with row ``r`` tiled ``repeats[r]`` times (in order).

        Serving uses this to expand the one-row-per-request cache into one
        row per speculative candidate before the shared verification forward;
        per-row counts let requests propose different numbers of candidates.
        The source cache is left untouched.

        Args:
            repeats: per-row tile counts (or one count for every row).
            capacity: capacity of the returned cache; defaults to the source
                capacity.  Step caches that only live for one verification
                forward pass pass ``max(lengths) + window`` here, avoiding a
                full-capacity allocation per step.
        """
        if isinstance(repeats, (int, np.integer)):
            counts = np.full(self.batch, int(repeats), dtype=np.int64)
        else:
            counts = np.asarray(repeats, dtype=np.int64)
            if counts.shape != (self.batch,):
                raise ValueError(f"repeats shape {counts.shape} != (batch,) = ({self.batch},)")
        if np.any(counts < 0):
            raise ValueError(f"repeat counts must be non-negative, got {counts}")
        new_capacity = self.capacity if capacity is None else capacity
        if new_capacity < self.length:
            raise ValueError(f"capacity {new_capacity} below cached length {self.length}")
        out = KVCache(self.num_layers, self.num_heads, self.head_dim, new_capacity, batch=0)
        for layer, out_layer in zip(self.layers, out.layers):
            view = layer.length
            rows = int(counts.sum())
            # Zero-filled for the ragged-buffer invariant (see select_rows).
            new_k = np.zeros((rows, self.num_heads, new_capacity, self.head_dim), dtype=layer.k.dtype)
            new_v = np.zeros_like(new_k)
            index = np.repeat(np.arange(self.batch), counts)
            new_k[:, :, :view] = layer.k[index, :, :view]
            new_v[:, :, :view] = layer.v[index, :, :view]
            out_layer.k = new_k
            out_layer.v = new_v
            out_layer.lengths = np.repeat(layer.lengths, counts)
            if layer.has_cross:
                out_layer.cross_k = np.repeat(layer.cross_k, counts, axis=0)
                out_layer.cross_v = np.repeat(layer.cross_v, counts, axis=0)
        return out

    def compact_rows(self, rows: Sequence[int], lengths: Sequence[int], capacity: Optional[int] = None) -> "KVCache":
        """Gather ``rows`` truncated to per-row ``lengths`` into a new cache.

        Fuses :meth:`select_rows` + :meth:`truncate_rows` into one copy that
        moves only each row's committed prefix — the per-step compaction of
        the serving engine (keep each request's accepted candidate row, drop
        its rejected speculative tail).  ``capacity`` restores a full-size
        cache when compacting out of a trimmed step cache.
        """
        rows = list(rows)
        for row in rows:
            if not 0 <= row < self.batch:
                raise IndexError(f"row {row} out of range for batch {self.batch}")
        target = np.asarray(lengths, dtype=np.int64)
        if target.shape != (len(rows),):
            raise ValueError(f"lengths shape {target.shape} != ({len(rows)},)")
        if np.any(target < 0):
            raise ValueError(f"cannot compact to negative lengths {target}")
        new_capacity = self.capacity if capacity is None else capacity
        index = np.asarray(rows, dtype=np.int64)
        kept_lengths = np.minimum(self.layers[0].lengths[index], target)
        if int(kept_lengths.max(initial=0)) > new_capacity:
            raise ValueError(f"capacity {new_capacity} below kept length {int(kept_lengths.max(initial=0))}")
        out = KVCache(self.num_layers, self.num_heads, self.head_dim, new_capacity, batch=0)
        view = int(kept_lengths.max(initial=0))
        for layer, out_layer in zip(self.layers, out.layers):
            new_k = np.zeros((len(rows), self.num_heads, new_capacity, self.head_dim), dtype=layer.k.dtype)
            new_v = np.zeros_like(new_k)
            new_k[:, :, :view] = layer.k[index, :, :view]
            new_v[:, :, :view] = layer.v[index, :, :view]
            out_layer.k = new_k
            out_layer.v = new_v
            out_layer.lengths = kept_lengths.copy()
            if layer.has_cross:
                out_layer.cross_k = layer.cross_k[index].copy()
                out_layer.cross_v = layer.cross_v[index].copy()
        return out

    def compact_paths(
        self,
        rows: Sequence[int],
        prefixes: Sequence[int],
        paths: Sequence[Sequence[int]],
        capacity: Optional[int] = None,
    ) -> "KVCache":
        """Gather per-row accepted tree paths into a new compacted cache.

        The multi-request generalisation of :meth:`keep_path`: after the
        serving engine verifies one token tree per request inside the shared
        forward, new row ``i`` of the result is source row ``rows[i]``'s
        committed prefix (``prefixes[i]`` positions) followed by the K/V of
        the accepted path's tree nodes (window positions ``paths[i]``, in
        root-to-leaf order).  Rejected branches are dropped in the same copy.
        ``capacity`` restores a full-size cache when compacting out of a
        trimmed step cache.
        """
        rows = list(rows)
        for row in rows:
            if not 0 <= row < self.batch:
                raise IndexError(f"row {row} out of range for batch {self.batch}")
        if not (len(prefixes) == len(paths) == len(rows)):
            raise ValueError(
                f"rows/prefixes/paths length mismatch: {len(rows)}/{len(prefixes)}/{len(paths)}"
            )
        source_lengths = self.layers[0].lengths
        new_lengths = np.zeros(len(rows), dtype=np.int64)
        indices: List[np.ndarray] = []
        for i, (row, prefix, path) in enumerate(zip(rows, prefixes, paths)):
            index = np.asarray(list(path), dtype=np.int64)
            if prefix < 0:
                raise ValueError(f"negative prefix length {prefix}")
            limit = int(source_lengths[row])
            if index.size and (int(index.min()) < 0 or prefix + int(index.max()) >= limit):
                raise IndexError(
                    f"row {row}: path positions {index} out of range for window [0, {limit - prefix})"
                )
            indices.append(index)
            new_lengths[i] = prefix + index.size
        new_capacity = self.capacity if capacity is None else capacity
        if int(new_lengths.max(initial=0)) > new_capacity:
            raise ValueError(f"capacity {new_capacity} below kept length {int(new_lengths.max(initial=0))}")
        out = KVCache(self.num_layers, self.num_heads, self.head_dim, new_capacity, batch=0)
        gather = np.asarray(rows, dtype=np.int64)
        for layer, out_layer in zip(self.layers, out.layers):
            # Zero-filled for the ragged-buffer invariant (see select_rows).
            new_k = np.zeros((len(rows), self.num_heads, new_capacity, self.head_dim), dtype=layer.k.dtype)
            new_v = np.zeros_like(new_k)
            for i, (row, prefix, index) in enumerate(zip(rows, prefixes, indices)):
                new_k[i, :, :prefix] = layer.k[row, :, :prefix]
                new_v[i, :, :prefix] = layer.v[row, :, :prefix]
                if index.size:
                    new_k[i, :, prefix : prefix + index.size] = layer.k[row][:, prefix + index]
                    new_v[i, :, prefix : prefix + index.size] = layer.v[row][:, prefix + index]
            out_layer.k = new_k
            out_layer.v = new_v
            out_layer.lengths = new_lengths.copy()
            if layer.has_cross:
                out_layer.cross_k = layer.cross_k[gather].copy()
                out_layer.cross_v = layer.cross_v[gather].copy()
        return out

    @classmethod
    def concat(cls, caches: Sequence["KVCache"]) -> "KVCache":
        """Stack the rows of several same-geometry caches into one batched cache.

        The serving engine prefills each newly admitted request into its own
        batch-1 cache and then merges it into the shared per-request cache
        with ``concat``.  All caches must agree on layer count, head geometry
        and capacity; rows keep their own lengths (the result is ragged).
        """
        if not caches:
            raise ValueError("concat needs at least one cache")
        first = caches[0]
        for other in caches[1:]:
            same = (
                other.num_layers == first.num_layers
                and other.num_heads == first.num_heads
                and other.head_dim == first.head_dim
            )
            if not same:
                raise ValueError("concat requires caches with identical layer/head geometry")
        # Capacities may differ (the serving engine keeps its persistent cache
        # trimmed between steps); the merged cache takes the largest.
        capacity = max(cache.capacity for cache in caches)
        total = sum(cache.batch for cache in caches)
        out = cls(first.num_layers, first.num_heads, first.head_dim, capacity, batch=0)
        for layer_index, out_layer in enumerate(out.layers):
            sources = [cache.layers[layer_index] for cache in caches]
            new_k = np.zeros((total, first.num_heads, capacity, first.head_dim), dtype=np.float32)
            new_v = np.zeros_like(new_k)
            offset = 0
            for source in sources:
                view = source.length
                new_k[offset : offset + source.batch, :, :view] = source.k[:, :, :view]
                new_v[offset : offset + source.batch, :, :view] = source.v[:, :, :view]
                offset += source.batch
            out_layer.k = new_k
            out_layer.v = new_v
            out_layer.lengths = np.concatenate([source.lengths for source in sources])
            if all(source.has_cross for source in sources):
                out_layer.cross_k = np.concatenate([source.cross_k for source in sources], axis=0)
                out_layer.cross_v = np.concatenate([source.cross_v for source in sources], axis=0)
            elif any(source.has_cross for source in sources):
                # Silently dropping some rows' cross K/V would surface much
                # later as a confusing "encode() must be called" error.
                raise ValueError("concat requires all caches or none to hold cross-attention K/V")
        return out
