"""Per-layer attention key/value cache for incremental decoding.

Re-running the full transformer forward over the entire prefix at every
decoding step costs O(T^2) work per generated token.  The standard serving
trick — and the enabling refactor for the paper's wall-clock speed claims —
is to cache each attention layer's key/value projections for the committed
prefix, so each step only projects the *new* tokens and attends over the
cached keys.

:class:`KVCache` owns one :class:`LayerKVCache` per transformer layer and
supports the three operations speculative decoding needs beyond plain
appending:

* ``truncate(length)`` — roll the cache back to a committed prefix after
  typical-acceptance and fragment-integrity truncation, so rejected
  speculative tokens never pollute subsequent steps;
* ``expand_batch(n)`` — tile a batch-1 cache to ``n`` rows so all candidate
  continuations are verified in one batched cached forward;
* ``keep_row(row)`` — collapse back to the accepted candidate's row.

Cross-attention K/V (encoder-decoder models) is position-independent on the
decoder side, so each layer slot can additionally hold the projected encoder
memory, computed once at prefill and reused for every decode step.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np


class LayerKVCache:
    """K/V storage for one attention layer.

    Self-attention keys/values are stored pre-split by head with shape
    ``(batch, num_heads, capacity, head_dim)`` and filled in place up to
    ``length``.  Cross-attention keys/values (optional) are stored whole,
    since the encoder memory never grows.
    """

    def __init__(self, batch: int, num_heads: int, capacity: int, head_dim: int) -> None:
        self.capacity = capacity
        self.length = 0
        self.k = np.zeros((batch, num_heads, capacity, head_dim), dtype=np.float32)
        self.v = np.zeros((batch, num_heads, capacity, head_dim), dtype=np.float32)
        self.cross_k: Optional[np.ndarray] = None
        self.cross_v: Optional[np.ndarray] = None

    @property
    def batch(self) -> int:
        return self.k.shape[0]

    def append(self, k_new: np.ndarray, v_new: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Store ``(batch, heads, t, head_dim)`` projections; return the full prefix views."""
        t = k_new.shape[2]
        if self.length + t > self.capacity:
            raise ValueError(f"KV cache overflow: {self.length} + {t} > capacity {self.capacity}")
        if k_new.shape[0] != self.batch:
            raise ValueError(f"batch mismatch: cache has {self.batch} rows, got {k_new.shape[0]}")
        self.k[:, :, self.length : self.length + t] = k_new
        self.v[:, :, self.length : self.length + t] = v_new
        self.length += t
        return self.k[:, :, : self.length], self.v[:, :, : self.length]

    def set_cross(self, k: np.ndarray, v: np.ndarray) -> None:
        self.cross_k = k
        self.cross_v = v

    @property
    def has_cross(self) -> bool:
        return self.cross_k is not None


class KVCache:
    """Per-layer K/V cache threaded through a transformer's attention blocks."""

    def __init__(self, num_layers: int, num_heads: int, head_dim: int, capacity: int, batch: int = 1) -> None:
        self.num_heads = num_heads
        self.head_dim = head_dim
        self.capacity = capacity
        self.layers: List[LayerKVCache] = [
            LayerKVCache(batch, num_heads, capacity, head_dim) for _ in range(num_layers)
        ]

    # -- inspection ----------------------------------------------------------

    @property
    def length(self) -> int:
        """Number of cached positions (identical across layers)."""
        return self.layers[0].length

    @property
    def batch(self) -> int:
        return self.layers[0].batch

    @property
    def num_layers(self) -> int:
        return len(self.layers)

    # -- speculative-decoding operations -------------------------------------

    def truncate(self, length: int) -> None:
        """Roll every layer back to ``length`` cached positions.

        Used after candidate verification to discard the K/V of speculated
        tokens that typical acceptance or the fragment-integrity check
        rejected.  Truncating beyond the current length is a no-op.
        """
        if length < 0:
            raise ValueError(f"cannot truncate to negative length {length}")
        for layer in self.layers:
            layer.length = min(layer.length, length)

    @staticmethod
    def _retile(source: np.ndarray, rows: int, length: int) -> np.ndarray:
        """Fresh ``rows``-batch capacity buffer holding ``source``'s first ``length`` positions.

        Copying only the filled prefix keeps per-step cache management O(prefix)
        rather than O(capacity).
        """
        out = np.empty((rows,) + source.shape[1:], dtype=source.dtype)
        out[:, :, :length] = source[:, :, :length]
        return out

    def expand_batch(self, n: int) -> None:
        """Tile a batch-1 cache to ``n`` identical rows (for batched verification)."""
        if n == self.batch:
            return
        if self.batch != 1:
            raise ValueError(f"expand_batch requires a batch-1 cache, got batch {self.batch}")
        for layer in self.layers:
            layer.k = self._retile(layer.k, n, layer.length)
            layer.v = self._retile(layer.v, n, layer.length)
            if layer.has_cross:
                layer.cross_k = np.repeat(layer.cross_k, n, axis=0)
                layer.cross_v = np.repeat(layer.cross_v, n, axis=0)

    def keep_row(self, row: int) -> None:
        """Collapse an expanded cache back to a single batch row.

        The copy detaches the kept row from the expanded arrays so the
        discarded candidates' storage can be freed.
        """
        if not 0 <= row < self.batch:
            raise IndexError(f"row {row} out of range for batch {self.batch}")
        for layer in self.layers:
            layer.k = self._retile(layer.k[row : row + 1], 1, layer.length)
            layer.v = self._retile(layer.v[row : row + 1], 1, layer.length)
            if layer.has_cross:
                layer.cross_k = layer.cross_k[row : row + 1].copy()
                layer.cross_v = layer.cross_v[row : row + 1].copy()
