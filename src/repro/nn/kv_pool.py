"""Paged attention K/V memory: a refcounted block pool with copy-on-write.

:class:`~repro.nn.kv_cache.KVCache` gives every request one contiguous row
sized for the full context window.  That layout is simple but pays for it
three ways at serving time:

* **reservation fragmentation** — a row's buffer is allocated for
  ``capacity`` positions however short the request actually runs, so peak
  memory scales with ``rows x context window`` instead of with the tokens
  actually cached;
* **copying prefix reuse** — a prefix-cache hit must *copy* the retained
  K/V into the new row (:meth:`KVCache.splice_prefix`), and retention must
  copy it back *out* (:meth:`KVCache.gather_prefix`);
* **copying reclamation** — cancelling or finishing a request compacts the
  whole shared cache around the vacated row.

This module is the vLLM-style answer, scaled to the numpy substrate.  K/V
storage is cut into fixed-size **blocks** of ``block_size`` token positions,
owned by one shared :class:`KVBlockPool`.  A sequence no longer owns storage;
it owns a **block table** — the ordered list of block ids holding its prefix
— so position ``p`` of a row lives at offset ``p % block_size`` of block
``table[p // block_size]``.  One block id addresses the same token span in
*every* layer (per-layer physical arrays, one logical id), so tables stay
per-sequence, not per-layer.

Blocks are **refcounted**.  Sharing a prefix between two sequences is
aliasing the same block ids and bumping refcounts — zero K/V copies — and
three operations that are O(tokens) copies for row caches become O(table)
pointer updates here:

* prefix-cache hits (:meth:`PagedKVCache.splice_prefix` aliases the retained
  blocks into the fresh row);
* speculative tiling (:meth:`PagedKVCache.repeat_rows` aliases each request
  row once per candidate);
* per-step compaction and cancellation (:meth:`PagedKVCache.compact_rows` /
  :meth:`PagedKVCache.select_rows` re-alias survivors and decref the rest —
  freeing a cancelled request is dropping its table).

Writes preserve sharing through **copy-on-write**: before a forward appends
into a block whose refcount exceeds one, the block is copied into a fresh
exclusive block and the writer's table entry is repointed
(:meth:`PagedKVCache._ensure_writable`).  Divergence therefore costs at most
one partially-filled block per writer; everything up to the divergence point
stays physically shared.  The pool counts these (``cow_events``) along with
its high-water mark (``peak_blocks_in_use``), which is what the shared-prefix
memory bench compares against the row path's allocated bytes.

The attention read path is a **gather**: each layer view
(:class:`PagedLayerKV`) resolves block tables into contiguous
``(batch, heads, view, head_dim)`` arrays for
:class:`~repro.nn.layers.CausalSelfAttention`, which therefore runs unchanged
over paged or row storage.  Positions past a row's own length may surface
stale-but-finite block contents, exactly like the row cache's stale tail
slots; the causal mask (or the caller's ``attn_bias``) pins their scores to
``-1e9``, whose softmax weight underflows to exactly ``0.0``, so stale
storage can never leak into an output — the engine's paged/row
token-identity tests pin this down.

Exhaustion is explicit: :meth:`KVBlockPool.alloc` first invokes the
``on_pressure`` callback (the serving engine evicts prefix-cache retention,
the one reclaimable tenant) and raises :class:`KVPoolExhausted` only when
nothing more can be freed.  Admission-side deferral — not admitting work the
pool cannot hold — lives in :meth:`repro.serving.scheduler.Scheduler.admit`.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple, Union

import numpy as np


class KVPoolExhausted(RuntimeError):
    """Raised when a block allocation finds no free block and pressure relief freed nothing.

    Reaching this means the pool was sized below the working set the
    scheduler admitted (see ``ServingEngine``'s ``kv_pool_blocks`` sizing and
    the page-gated admission in ``Scheduler.admit``); it is a configuration
    error, not a recoverable serving state.
    """


def blocks_for(length: int, block_size: int) -> int:
    """Number of blocks needed to hold ``length`` token positions."""
    return -(-length // block_size)


class KVBlockPool:
    """Shared physical K/V storage: fixed-size token blocks with refcounts.

    Per layer, keys and values live in one preallocated array of shape
    ``(num_blocks, num_heads, block_size, head_dim)``; block id ``b`` is the
    same logical token span across all layers.  The pool hands out exclusive
    blocks (:meth:`alloc`, refcount 1), lets holders share them
    (:meth:`incref`) and returns them to the free list when the last
    reference drops (:meth:`decref`).  It is a dumb allocator on purpose:
    *which* blocks a sequence holds is the block table's business
    (:class:`PagedKVCache`), and *who* may be evicted under pressure is the
    ``on_pressure`` callback's.

    Args:
        num_layers: Transformer layers sharing the pool.
        num_heads: Attention heads per layer.
        head_dim: Per-head projection width.
        block_size: Token positions per block.  Small blocks track ragged
            lengths tightly (less padding waste, at most ``block_size - 1``
            wasted positions per sequence) but make tables longer and gathers
            more scattered; 16 is a good default at this scale.
        num_blocks: Pool capacity.  The serving engine sizes this from its
            admission budgets; see ``ServingEngine``.
    """

    def __init__(
        self,
        num_layers: int,
        num_heads: int,
        head_dim: int,
        block_size: int = 16,
        num_blocks: int = 256,
    ) -> None:
        if num_layers < 1:
            raise ValueError(f"num_layers must be positive, got {num_layers}")
        if block_size < 1:
            raise ValueError(f"block_size must be positive, got {block_size}")
        if num_blocks < 1:
            raise ValueError(f"num_blocks must be positive, got {num_blocks}")
        self.num_layers = num_layers
        self.num_heads = num_heads
        self.head_dim = head_dim
        self.block_size = block_size
        self.num_blocks = num_blocks
        self.k: List[np.ndarray] = [
            np.zeros((num_blocks, num_heads, block_size, head_dim), dtype=np.float32)
            for _ in range(num_layers)
        ]
        self.v: List[np.ndarray] = [
            np.zeros((num_blocks, num_heads, block_size, head_dim), dtype=np.float32)
            for _ in range(num_layers)
        ]
        #: Holders per block; 0 = free.  A "holder" is one block-table entry
        #: or one retained prefix reference, never a transient view.
        self.refcounts = np.zeros(num_blocks, dtype=np.int64)
        self._free: List[int] = list(range(num_blocks - 1, -1, -1))
        #: Copy-on-write copies performed (one per diverging block).
        self.cow_events = 0
        #: High-water mark of :attr:`blocks_in_use` over the pool's lifetime.
        self.peak_blocks_in_use = 0
        #: Called (repeatedly) when :meth:`alloc` finds the free list empty.
        #: Must free at least one holder somewhere and return True, or return
        #: False to signal nothing more can be reclaimed.
        self.on_pressure: Optional[Callable[[], bool]] = None

    # -- inspection ----------------------------------------------------------

    @property
    def num_free(self) -> int:
        """Blocks currently on the free list."""
        return len(self._free)

    @property
    def blocks_in_use(self) -> int:
        """Blocks held by at least one block table or prefix reference."""
        return self.num_blocks - len(self._free)

    @property
    def num_shared(self) -> int:
        """Blocks held by more than one holder (physically shared storage)."""
        return int(np.count_nonzero(self.refcounts > 1))

    @property
    def block_nbytes(self) -> int:
        """Physical storage of one block: K and V across all layers."""
        return 2 * self.num_layers * self.num_heads * self.block_size * self.head_dim * 4

    def stats(self) -> dict:
        """Occupancy/sharing/copy counters as one plain dict."""
        in_use = self.blocks_in_use
        shared = self.num_shared
        return {
            "block_size": self.block_size,
            "num_blocks": self.num_blocks,
            "blocks_in_use": in_use,
            "blocks_free": self.num_free,
            "occupancy": in_use / self.num_blocks,
            "shared_blocks": shared,
            "shared_block_ratio": shared / in_use if in_use else 0.0,
            "cow_events": self.cow_events,
            "kv_bytes_in_use": in_use * self.block_nbytes,
            "peak_kv_bytes": self.peak_blocks_in_use * self.block_nbytes,
        }

    # -- allocation ----------------------------------------------------------

    def alloc(self) -> int:
        """Hand out a free block with refcount 1, relieving pressure if needed.

        An empty free list invokes ``on_pressure`` until a block frees up or
        the callback reports nothing left to reclaim — each call must shed at
        least one holder (the engine evicts one LRU prefix-cache entry), so
        the loop terminates.
        """
        while not self._free:
            if self.on_pressure is None or not self.on_pressure():
                raise KVPoolExhausted(
                    f"KV block pool exhausted: all {self.num_blocks} blocks "
                    f"(block_size={self.block_size}) are held and nothing can be "
                    f"reclaimed; size kv_pool_blocks for the admitted working set"
                )
        block = self._free.pop()
        self.refcounts[block] = 1
        in_use = self.blocks_in_use
        if in_use > self.peak_blocks_in_use:
            self.peak_blocks_in_use = in_use
        return block

    def incref(self, block: int) -> None:
        """Add a holder to an in-use block (sharing, not allocation)."""
        if self.refcounts[block] <= 0:
            raise ValueError(f"cannot incref free block {block}")
        self.refcounts[block] += 1

    def decref(self, block: int) -> None:
        """Drop one holder; the block returns to the free list at zero."""
        if self.refcounts[block] <= 0:
            raise ValueError(f"cannot decref free block {block} (double free)")
        self.refcounts[block] -= 1
        if self.refcounts[block] == 0:
            self._free.append(block)

    def copy_block(self, source: int) -> int:
        """Copy-on-write: clone ``source``'s contents (all layers) into a fresh block.

        The returned block has refcount 1; the caller repoints its table
        entry and drops its reference to ``source``.
        """
        target = self.alloc()
        for layer in range(self.num_layers):
            self.k[layer][target] = self.k[layer][source]
            self.v[layer][target] = self.v[layer][source]
        self.cow_events += 1
        return target


class PagedPrefix:
    """Refcounted reference to the blocks holding one prompt prefix's K/V.

    The paged analogue of :class:`~repro.nn.kv_cache.KVSegment` — the unit
    the prefix cache retains — except that it holds *references to shared
    blocks* instead of a detached copy: retaining a prefix is
    ``blocks_for(length)`` increfs, and serving a hit
    (:meth:`PagedKVCache.splice_prefix`) aliases the same blocks into the new
    row.  Zero token copies either way.

    ``owns=True`` references (what :meth:`PagedKVCache.snapshot_prefix`
    returns and the prefix cache stores) pin their blocks until
    :meth:`release`.  :meth:`head` views — how the prefix cache serves
    partial matches — are non-owning: they stay valid exactly as long as the
    owning entry they were cut from, which holds for the admission-time
    lookup-then-splice sequence they exist for.
    """

    def __init__(self, pool: KVBlockPool, block_ids: Sequence[int], length: int, owns: bool = True) -> None:
        block_ids = tuple(int(b) for b in block_ids)
        if length < 0:
            raise ValueError(f"negative prefix length {length}")
        if len(block_ids) != blocks_for(length, pool.block_size):
            raise ValueError(
                f"{len(block_ids)} blocks cannot hold exactly {length} positions "
                f"at block_size={pool.block_size}"
            )
        self.pool = pool
        self.block_ids = block_ids
        self._length = length
        self._owns = owns
        if owns:
            for block in block_ids:
                pool.incref(block)

    @property
    def num_layers(self) -> int:
        return self.pool.num_layers

    @property
    def num_heads(self) -> int:
        return self.pool.num_heads

    @property
    def head_dim(self) -> int:
        return self.pool.head_dim

    @property
    def length(self) -> int:
        """Number of cached prefix positions the reference covers."""
        return self._length

    @property
    def block_nbytes(self) -> int:
        """Physical storage of one referenced block (K and V, all layers)."""
        return self.pool.block_nbytes

    @property
    def nbytes(self) -> int:
        """Physical storage of the referenced blocks — *not* exclusive ownership.

        Blocks may be shared with live rows or sibling prefixes; budget
        accounting that must not double-charge shared blocks uses
        :attr:`block_ids` (see ``PrefixCache``).
        """
        return len(self.block_ids) * self.pool.block_nbytes

    def head(self, length: int) -> "PagedPrefix":
        """A non-owning reference to the first ``length`` positions (no copy, no incref)."""
        if not 0 <= length <= self._length:
            raise ValueError(f"head length {length} out of range [0, {self._length}]")
        return PagedPrefix(
            self.pool,
            self.block_ids[: blocks_for(length, self.pool.block_size)],
            length,
            owns=False,
        )

    def release(self) -> None:
        """Drop an owning reference's block holds (idempotent; no-op for views)."""
        if not self._owns:
            return
        self._owns = False
        for block in self.block_ids:
            self.pool.decref(block)

    def __del__(self) -> None:  # pragma: no cover - backstop, not the contract
        try:
            self.release()
        except Exception:
            pass


class PagedLayerKV:
    """One layer's view of a :class:`PagedKVCache` — the attention-facing surface.

    Quacks like :class:`~repro.nn.kv_cache.LayerKVCache` for everything
    :class:`~repro.nn.layers.CausalSelfAttention` and the transformer's
    position bookkeeping touch: per-row ``lengths``, ``append_widths``, and
    :meth:`append` returning contiguous full-prefix K/V arrays.  Appends
    scatter the new projections into pool blocks (allocating and
    copy-on-writing through the cache's block tables); reads gather the
    tables back into dense arrays.  No cross-attention — paged serving is
    decoder-only, like the engine.
    """

    cross_k = None
    cross_v = None
    has_cross = False

    def __init__(self, cache: "PagedKVCache", index: int) -> None:
        self._cache = cache
        self.index = index

    @property
    def batch(self) -> int:
        return len(self._cache._tables)

    @property
    def lengths(self) -> np.ndarray:
        """Per-row cached prefix lengths of this layer (callers must not mutate)."""
        return self._cache._layer_lengths[self.index]

    @property
    def length(self) -> int:
        """Longest cached prefix across rows."""
        return int(self._cache._layer_lengths[self.index].max(initial=0))

    @property
    def append_widths(self) -> Optional[np.ndarray]:
        return self._cache._append_widths

    def append(self, k_new: np.ndarray, v_new: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Scatter ``(batch, heads, t, head_dim)`` projections into pool blocks.

        Semantics match :meth:`LayerKVCache.append`: row ``r``'s new K/V
        lands at its own offset ``lengths[r]``, ``append_widths`` trims
        right-padding, and the return value is the gathered
        ``0 .. max(lengths)`` prefix view with stale-but-finite storage past
        each row's own length (masked by the caller).  The first layer's
        append of a forward performs the block allocation and copy-on-write
        for the written ranges; later layers find the tables already
        exclusive and just write.
        """
        cache = self._cache
        batch = len(cache._tables)
        t = k_new.shape[2]
        if k_new.shape[0] != batch:
            raise ValueError(f"batch mismatch: cache has {batch} rows, got {k_new.shape[0]}")
        if cache._append_widths is None:
            widths = np.full(batch, t, dtype=np.int64)
        else:
            widths = np.asarray(cache._append_widths, dtype=np.int64)
            if widths.shape != (batch,):
                raise ValueError(f"append_widths shape {widths.shape} != (batch,) = ({batch},)")
            if np.any(widths < 0) or np.any(widths > t):
                raise ValueError(f"append widths must lie in [0, {t}], got {widths}")
        starts = cache._layer_lengths[self.index]
        new_lengths = starts + widths
        pool = cache.pool
        block_size = pool.block_size
        k_pool = pool.k[self.index]
        v_pool = pool.v[self.index]
        for row in range(batch):
            width = int(widths[row])
            if width == 0:
                continue
            start = int(starts[row])
            cache._ensure_writable(row, start, start + width)
            positions = np.arange(start, start + width)
            table = np.asarray(cache._tables[row], dtype=np.int64)
            block_ids = table[positions // block_size]
            offsets = positions % block_size
            k_pool[block_ids, :, offsets, :] = k_new[row, :, :width].transpose(1, 0, 2)
            v_pool[block_ids, :, offsets, :] = v_new[row, :, :width].transpose(1, 0, 2)
        cache._layer_lengths[self.index] = new_lengths
        return cache._gather(self.index, int(new_lengths.max(initial=0)))


class PagedKVCache:
    """A batch of sequences over one :class:`KVBlockPool`: block tables + lengths.

    The paged drop-in for the serving engine's use of
    :class:`~repro.nn.kv_cache.KVCache`: the same batched/ragged surface
    (``lengths``, ``append_widths``, ``layers`` for the forward, and the
    multi-row serving operations), but rows are block tables into shared pool
    storage, so the operations that copy tokens in the row cache become table
    aliasing here — see the module docstring for the mapping.

    Every row's table entries hold one pool reference each.  The cache must
    be :meth:`release`\\ d (or consumed by :meth:`concat`) when discarded;
    the serving engine does so explicitly at each step's compaction, which is
    what the fuzz suite's leak checks (refcounts return to zero) pin down.
    """

    def __init__(self, pool: KVBlockPool, batch: int = 0) -> None:
        self.pool = pool
        self._tables: List[List[int]] = [[] for _ in range(batch)]
        self._layer_lengths: List[np.ndarray] = [
            np.zeros(batch, dtype=np.int64) for _ in range(pool.num_layers)
        ]
        self._append_widths: Optional[np.ndarray] = None
        self.layers: List[PagedLayerKV] = [PagedLayerKV(self, i) for i in range(pool.num_layers)]
        self._released = False

    # -- inspection ----------------------------------------------------------

    @property
    def num_layers(self) -> int:
        return self.pool.num_layers

    @property
    def num_heads(self) -> int:
        return self.pool.num_heads

    @property
    def head_dim(self) -> int:
        return self.pool.head_dim

    @property
    def batch(self) -> int:
        return len(self._tables)

    @property
    def length(self) -> int:
        """Longest cached prefix across rows."""
        return int(self._layer_lengths[0].max(initial=0))

    @property
    def lengths(self) -> np.ndarray:
        """Per-row cached prefix lengths, shape ``(batch,)`` (copy)."""
        return self._layer_lengths[0].copy()

    @property
    def append_widths(self) -> Optional[np.ndarray]:
        """Per-row real-token widths declared for the next forward (or None)."""
        return self._append_widths

    @property
    def nbytes(self) -> int:
        """Physical storage referenced by this cache's tables (shared blocks counted per table entry)."""
        return sum(len(table) for table in self._tables) * self.pool.block_nbytes

    def blocks_held(self, row: int) -> int:
        """Pool blocks ``row``'s table currently references (shared or exclusive).

        The serving engine's free-page admission gate uses this to compute
        each in-flight request's *outstanding* page claim — the part of its
        admitted footprint its row has not yet grown into.
        """
        return len(self._tables[row])

    def set_append_widths(self, widths: Optional[Sequence[int]]) -> None:
        """Declare per-row real-token widths for the next incremental forward.

        Same contract as :meth:`KVCache.set_append_widths`: the setting
        persists until cleared with ``None``, so callers wrap the forward in
        ``try/finally``.
        """
        self._append_widths = None if widths is None else np.asarray(widths, dtype=np.int64)

    # -- block-table maintenance ---------------------------------------------

    def _ensure_writable(self, row: int, start: int, new_length: int) -> None:
        """Make positions ``start .. new_length`` of ``row`` exclusively writable.

        Extends the row's table with fresh blocks to cover ``new_length`` and
        copy-on-writes any *existing* table entry overlapping the written
        range whose block is shared (refcount > 1) — typically just the
        row's last, partially-filled block after a prefix splice or a
        ``repeat_rows`` tiling.  Blocks wholly before ``start`` are only ever
        read and stay shared.  Idempotent: once a block is exclusive, later
        layers' identical calls find refcount 1 and do nothing.
        """
        pool = self.pool
        table = self._tables[row]
        block_size = pool.block_size
        needed = blocks_for(new_length, block_size)
        first_written = start // block_size
        for i in range(first_written, min(len(table), needed)):
            block = table[i]
            if pool.refcounts[block] > 1:
                replacement = pool.copy_block(block)
                pool.decref(block)
                table[i] = replacement
        while len(table) < needed:
            table.append(pool.alloc())

    def _gather(self, layer: int, view: int) -> Tuple[np.ndarray, np.ndarray]:
        """Dense ``(batch, heads, view, head_dim)`` K/V arrays for one layer.

        Rows shorter than ``view`` read whatever their (padded) table entries
        hold — stale but finite, exactly the row cache's stale-tail contract,
        masked to weight zero by causal/bias masking downstream.
        """
        pool = self.pool
        batch = len(self._tables)
        if batch == 0 or view == 0:
            shape = (batch, pool.num_heads, view, pool.head_dim)
            return np.zeros(shape, dtype=np.float32), np.zeros(shape, dtype=np.float32)
        block_size = pool.block_size
        num_view_blocks = blocks_for(view, block_size)
        # Rows with shorter tables pad with block 0: garbage reads, masked.
        table_arr = np.zeros((batch, num_view_blocks), dtype=np.int64)
        for row, table in enumerate(self._tables):
            m = min(len(table), num_view_blocks)
            if m:
                table_arr[row, :m] = table[:m]
        positions = np.arange(view)
        block_ids = table_arr[:, positions // block_size]  # (batch, view)
        offsets = np.broadcast_to(positions % block_size, (batch, view))
        k = pool.k[layer][block_ids, :, offsets, :]  # (batch, view, heads, head_dim)
        v = pool.v[layer][block_ids, :, offsets, :]
        # Contiguous copies, not transposed views: np.matmul picks its kernel
        # (and therefore its float32 summation order) by memory layout, and
        # the paged engine's outputs must be bitwise those of the row cache.
        return (
            np.ascontiguousarray(k.transpose(0, 2, 1, 3)),
            np.ascontiguousarray(v.transpose(0, 2, 1, 3)),
        )

    # -- lifetime ------------------------------------------------------------

    def release(self) -> None:
        """Drop every table's block references (idempotent).

        The engine calls this the moment a cache generation is superseded
        (step-cache compaction, cancellation); ``__del__`` only backstops
        forgotten handles.
        """
        if self._released:
            return
        self._released = True
        for table in self._tables:
            for block in table:
                self.pool.decref(block)
        self._tables = []
        self._layer_lengths = [np.zeros(0, dtype=np.int64) for _ in range(self.pool.num_layers)]

    def __del__(self) -> None:  # pragma: no cover - backstop, not the contract
        try:
            self.release()
        except Exception:
            pass

    # -- multi-request serving operations -------------------------------------

    def select_rows(self, rows: Sequence[int]) -> None:
        """Re-alias the cache to an arbitrary subset/ordering of rows, in place.

        The paged :meth:`KVCache.select_rows`: survivors' tables are aliased
        (incref), dropped rows' references released — reclaiming a finished
        or cancelled request frees its pages instead of copying every other
        row around it.
        """
        rows = list(rows)
        for row in rows:
            if not 0 <= row < self.batch:
                raise IndexError(f"row {row} out of range for batch {self.batch}")
        pool = self.pool
        new_tables: List[List[int]] = []
        for row in rows:
            table = list(self._tables[row])
            for block in table:
                pool.incref(block)
            new_tables.append(table)
        old_tables = self._tables
        self._tables = new_tables
        for table in old_tables:
            for block in table:
                pool.decref(block)
        index = np.asarray(rows, dtype=np.int64)
        self._layer_lengths = [lengths[index].copy() for lengths in self._layer_lengths]

    def truncate_rows(self, lengths: Sequence[int]) -> None:
        """Roll each row back to its own committed prefix, freeing vacated blocks."""
        target = np.asarray(lengths, dtype=np.int64)
        if target.shape != (self.batch,):
            raise ValueError(f"lengths shape {target.shape} != (batch,) = ({self.batch},)")
        if np.any(target < 0):
            raise ValueError(f"cannot truncate to negative lengths {target}")
        for i, layer_lengths in enumerate(self._layer_lengths):
            self._layer_lengths[i] = np.minimum(layer_lengths, target)
        pool = self.pool
        for row, table in enumerate(self._tables):
            new_length = int(max(lengths[row] for lengths in self._layer_lengths))
            keep = blocks_for(new_length, pool.block_size)
            while len(table) > keep:
                pool.decref(table.pop())

    def repeat_rows(self, repeats: Union[int, Sequence[int]], capacity: Optional[int] = None) -> "PagedKVCache":
        """Tile row ``r`` ``repeats[r]`` times into a new cache — by aliasing, no copy.

        The speculative verification step's row tiling: every tile shares the
        source row's blocks until its first divergent append copy-on-writes
        the written block.  ``capacity`` is accepted for row-cache signature
        compatibility and ignored — paged storage has no per-row capacity.
        """
        if isinstance(repeats, (int, np.integer)):
            counts = np.full(self.batch, int(repeats), dtype=np.int64)
        else:
            counts = np.asarray(repeats, dtype=np.int64)
            if counts.shape != (self.batch,):
                raise ValueError(f"repeats shape {counts.shape} != (batch,) = ({self.batch},)")
        if np.any(counts < 0):
            raise ValueError(f"repeat counts must be non-negative, got {counts}")
        pool = self.pool
        out = PagedKVCache(pool, batch=0)
        for row, count in enumerate(counts):
            for _ in range(int(count)):
                table = list(self._tables[row])
                for block in table:
                    pool.incref(block)
                out._tables.append(table)
        out._layer_lengths = [np.repeat(lengths, counts) for lengths in self._layer_lengths]
        return out

    def compact_rows(
        self, rows: Sequence[int], lengths: Sequence[int], capacity: Optional[int] = None
    ) -> "PagedKVCache":
        """Gather ``rows`` truncated to per-row ``lengths`` into a new cache — by aliasing.

        The per-step compaction: new row ``i`` aliases source row
        ``rows[i]``'s first ``blocks_for(lengths[i])`` blocks.  The caller
        releases the source caches afterwards, which frees every rejected
        candidate's copy-on-write blocks.  ``capacity`` is ignored (see
        :meth:`repeat_rows`).
        """
        rows = list(rows)
        for row in rows:
            if not 0 <= row < self.batch:
                raise IndexError(f"row {row} out of range for batch {self.batch}")
        target = np.asarray(lengths, dtype=np.int64)
        if target.shape != (len(rows),):
            raise ValueError(f"lengths shape {target.shape} != ({len(rows)},)")
        if np.any(target < 0):
            raise ValueError(f"cannot compact to negative lengths {target}")
        index = np.asarray(rows, dtype=np.int64)
        kept_lengths = np.minimum(self._layer_lengths[0][index], target) if rows else target
        pool = self.pool
        out = PagedKVCache(pool, batch=0)
        for i, row in enumerate(rows):
            keep = blocks_for(int(kept_lengths[i]), pool.block_size)
            table = list(self._tables[row][:keep])
            for block in table:
                pool.incref(block)
            out._tables.append(table)
        out._layer_lengths = [kept_lengths.copy() for _ in range(pool.num_layers)]
        return out

    def compact_paths(
        self,
        rows: Sequence[int],
        prefixes: Sequence[int],
        paths: Sequence[Sequence[int]],
        capacity: Optional[int] = None,
    ) -> "PagedKVCache":
        """Gather per-row accepted tree paths into a new cache.

        Same contract as :meth:`KVCache.compact_paths`: new row ``i`` is
        source row ``rows[i]``'s committed prefix (``prefixes[i]`` positions,
        aliased) followed by the K/V of the accepted path's tree nodes
        (window positions ``paths[i]``, in root-to-leaf order).  The prefix
        is shared; only the accepted path's handful of positions is copied —
        O(path), not O(prefix) — landing after a copy-on-write of the
        prefix's trailing partial block.  ``capacity`` is ignored.
        """
        rows = list(rows)
        for row in rows:
            if not 0 <= row < self.batch:
                raise IndexError(f"row {row} out of range for batch {self.batch}")
        if not (len(prefixes) == len(paths) == len(rows)):
            raise ValueError(
                f"rows/prefixes/paths length mismatch: {len(rows)}/{len(prefixes)}/{len(paths)}"
            )
        pool = self.pool
        block_size = pool.block_size
        source_lengths = self._layer_lengths[0]
        indices: List[np.ndarray] = []
        for row, prefix, path in zip(rows, prefixes, paths):
            index = np.asarray(list(path), dtype=np.int64)
            if prefix < 0:
                raise ValueError(f"negative prefix length {prefix}")
            limit = int(source_lengths[row])
            if index.size and (int(index.min()) < 0 or prefix + int(index.max()) >= limit):
                raise IndexError(
                    f"row {row}: path positions {index} out of range for window [0, {limit - prefix})"
                )
            indices.append(index)
        # Read the accepted paths' K/V out of the source tables before any
        # table surgery (the sources stay untouched either way — writes only
        # land in blocks the new cache owns exclusively after copy-on-write).
        gathered: List[List[Tuple[np.ndarray, np.ndarray]]] = []
        for row, prefix, index in zip(rows, prefixes, indices):
            per_layer: List[Tuple[np.ndarray, np.ndarray]] = []
            if index.size:
                positions = prefix + index
                table = np.asarray(self._tables[row], dtype=np.int64)
                block_ids = table[positions // block_size]
                offsets = positions % block_size
                for layer in range(pool.num_layers):
                    # (path, heads, head_dim) — already copies (fancy indexing).
                    per_layer.append(
                        (pool.k[layer][block_ids, :, offsets, :], pool.v[layer][block_ids, :, offsets, :])
                    )
            gathered.append(per_layer)
        out = PagedKVCache(pool, batch=0)
        new_lengths = np.zeros(len(rows), dtype=np.int64)
        for i, (row, prefix, index) in enumerate(zip(rows, prefixes, indices)):
            table = list(self._tables[row][: blocks_for(prefix, block_size)])
            for block in table:
                pool.incref(block)
            out._tables.append(table)
            new_lengths[i] = prefix
        out._layer_lengths = [new_lengths.copy() for _ in range(pool.num_layers)]
        for i, (prefix, index) in enumerate(zip(prefixes, indices)):
            if not index.size:
                continue
            out._ensure_writable(i, prefix, prefix + index.size)
            positions = np.arange(prefix, prefix + index.size)
            table = np.asarray(out._tables[i], dtype=np.int64)
            block_ids = table[positions // block_size]
            offsets = positions % block_size
            for layer in range(pool.num_layers):
                k_path, v_path = gathered[i][layer]
                pool.k[layer][block_ids, :, offsets, :] = k_path
                pool.v[layer][block_ids, :, offsets, :] = v_path
            for lengths in out._layer_lengths:
                lengths[i] = prefix + index.size
        return out

    @classmethod
    def concat(cls, caches: Sequence["PagedKVCache"]) -> "PagedKVCache":
        """Merge several caches' rows into one, *consuming* the sources.

        Tables move (no refcount traffic, no copies); the source caches are
        left released.  All caches must share one pool.
        """
        caches = list(caches)
        if not caches:
            raise ValueError("concat needs at least one cache")
        pool = caches[0].pool
        for cache in caches:
            if cache.pool is not pool:
                raise ValueError("concat requires caches sharing one KVBlockPool")
            if cache._released:
                raise ValueError("concat cannot consume an already-released cache")
        out = cls(pool, batch=0)
        out._tables = [table for cache in caches for table in cache._tables]
        out._layer_lengths = [
            np.concatenate([cache._layer_lengths[i] for cache in caches])
            for i in range(pool.num_layers)
        ]
        for cache in caches:
            cache._tables = []
            cache._layer_lengths = [np.zeros(0, dtype=np.int64) for _ in range(pool.num_layers)]
            cache._released = True
        return out

    # -- prefix-reuse operations ----------------------------------------------

    def snapshot_prefix(self, row: int, length: int) -> PagedPrefix:
        """An owning :class:`PagedPrefix` over ``row``'s first ``length`` positions.

        The paged :meth:`KVCache.gather_prefix`: instead of copying the K/V
        out, the reference increfs the covering blocks, pinning them however
        the row is later compacted, truncated or released.  The prefix cache
        stores exactly this.
        """
        if not 0 <= row < self.batch:
            raise IndexError(f"row {row} out of range for batch {self.batch}")
        row_length = int(self._layer_lengths[0][row])
        if length < 0 or length > row_length:
            raise ValueError(f"prefix length {length} out of range [0, {row_length}] for row {row}")
        blocks = self._tables[row][: blocks_for(length, self.pool.block_size)]
        return PagedPrefix(self.pool, blocks, length, owns=True)

    def splice_prefix(self, row: int, prefix: PagedPrefix) -> None:
        """Alias a retained prefix's blocks into fresh ``row`` — zero K/V copies.

        After the splice the row behaves exactly as if its first
        ``prefix.length`` tokens had just been prefilled; its first divergent
        append copy-on-writes the trailing shared block.  The row must be
        empty, like :meth:`KVCache.splice_prefix`.
        """
        if not isinstance(prefix, PagedPrefix):
            raise TypeError(
                f"paged caches splice PagedPrefix references, got {type(prefix).__name__}; "
                f"a PrefixCache mixes paged and row segments only if it is shared between "
                f"engines with different kv_memory modes — give each mode its own cache"
            )
        if prefix.pool is not self.pool:
            raise ValueError("prefix and cache belong to different KVBlockPools")
        if not 0 <= row < self.batch:
            raise IndexError(f"row {row} out of range for batch {self.batch}")
        if int(self._layer_lengths[0][row]) != 0:
            raise ValueError(
                f"splice_prefix requires a fresh row, but row {row} already holds "
                f"{int(self._layer_lengths[0][row])} positions"
            )
        pool = self.pool
        for block in prefix.block_ids:
            pool.incref(block)
        self._tables[row] = list(prefix.block_ids)
        for lengths in self._layer_lengths:
            lengths[row] = prefix.length


__all__ = ["KVBlockPool", "KVPoolExhausted", "PagedKVCache", "PagedLayerKV", "PagedPrefix", "blocks_for"]
