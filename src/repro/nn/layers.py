"""Core neural-network layers with explicit forward/backward passes.

Every layer follows the same contract:

* ``forward(x)`` computes the output and stashes whatever the backward pass
  needs on the instance;
* ``backward(grad_output)`` returns the gradient with respect to the input and
  accumulates parameter gradients into ``Parameter.grad``;
* ``parameters()`` yields all trainable :class:`Parameter` objects.

Shapes follow the convention ``(batch, time, dim)`` for activations and
``(batch, time)`` for token ids.
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

import numpy as np

from repro.nn.functional import gelu, gelu_grad, softmax


class Parameter:
    """A trainable tensor with an accumulated gradient."""

    def __init__(self, data: np.ndarray, name: str = "", lr_scale: float = 1.0) -> None:
        self.data = data.astype(np.float32)
        self.grad = np.zeros_like(self.data)
        self.name = name
        #: Per-parameter learning-rate multiplier; the paper trains the Medusa
        #: heads at 4x the base model's learning rate.
        self.lr_scale = lr_scale

    def zero_grad(self) -> None:
        self.grad.fill(0.0)

    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Parameter({self.name}, shape={self.data.shape})"


class Module:
    """Base class providing parameter discovery and training-mode flags."""

    def parameters(self) -> Iterator[Parameter]:
        """Yield every trainable parameter reachable from this module."""
        seen = set()
        for value in self.__dict__.values():
            if isinstance(value, Parameter) and id(value) not in seen:
                seen.add(id(value))
                yield value
            elif isinstance(value, Module):
                for param in value.parameters():
                    if id(param) not in seen:
                        seen.add(id(param))
                        yield param
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        for param in item.parameters():
                            if id(param) not in seen:
                                seen.add(id(param))
                                yield param
                    elif isinstance(item, Parameter) and id(item) not in seen:
                        seen.add(id(item))
                        yield item

    def zero_grad(self) -> None:
        """Clear gradients on every parameter."""
        for param in self.parameters():
            param.zero_grad()

    def num_parameters(self) -> int:
        """Total number of scalar weights."""
        return sum(int(np.prod(p.shape)) for p in self.parameters())

    def set_lr_scale(self, scale: float) -> None:
        """Set the per-parameter learning-rate multiplier on every parameter."""
        for param in self.parameters():
            param.lr_scale = scale


def _init_weight(rng: np.random.Generator, fan_in: int, fan_out: int) -> np.ndarray:
    scale = np.sqrt(2.0 / (fan_in + fan_out))
    return rng.normal(0.0, scale, size=(fan_in, fan_out)).astype(np.float32)


class Linear(Module):
    """Affine transformation ``y = x W + b``."""

    def __init__(self, in_features: int, out_features: int, rng: np.random.Generator, bias: bool = True, name: str = "linear") -> None:
        self.weight = Parameter(_init_weight(rng, in_features, out_features), name=f"{name}.weight")
        self.bias = Parameter(np.zeros(out_features, dtype=np.float32), name=f"{name}.bias") if bias else None
        self._input: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._input = x
        out = x @ self.weight.data
        if self.bias is not None:
            out = out + self.bias.data
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        x = self._input
        flat_x = x.reshape(-1, x.shape[-1])
        flat_grad = grad_output.reshape(-1, grad_output.shape[-1])
        self.weight.grad += flat_x.T @ flat_grad
        if self.bias is not None:
            self.bias.grad += flat_grad.sum(axis=0)
        return grad_output @ self.weight.data.T


class Embedding(Module):
    """Token-id to vector lookup table."""

    def __init__(self, num_embeddings: int, dim: int, rng: np.random.Generator, name: str = "embedding") -> None:
        self.weight = Parameter(rng.normal(0.0, 0.02, size=(num_embeddings, dim)).astype(np.float32), name=f"{name}.weight")
        self._ids: Optional[np.ndarray] = None

    def forward(self, ids: np.ndarray) -> np.ndarray:
        self._ids = ids
        return self.weight.data[ids]

    def backward(self, grad_output: np.ndarray) -> None:
        flat_ids = self._ids.reshape(-1)
        flat_grad = grad_output.reshape(-1, grad_output.shape[-1])
        np.add.at(self.weight.grad, flat_ids, flat_grad)


class LayerNorm(Module):
    """Layer normalisation over the last dimension."""

    def __init__(self, dim: int, name: str = "ln", eps: float = 1e-5) -> None:
        self.gamma = Parameter(np.ones(dim, dtype=np.float32), name=f"{name}.gamma")
        self.beta = Parameter(np.zeros(dim, dtype=np.float32), name=f"{name}.beta")
        self.eps = eps
        self._cache: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        mean = x.mean(axis=-1, keepdims=True)
        var = x.var(axis=-1, keepdims=True)
        inv_std = 1.0 / np.sqrt(var + self.eps)
        normalized = (x - mean) * inv_std
        self._cache = (normalized, inv_std, x)
        return normalized * self.gamma.data + self.beta.data

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        normalized, inv_std, _x = self._cache
        dim = grad_output.shape[-1]
        flat_norm = normalized.reshape(-1, dim)
        flat_grad = grad_output.reshape(-1, dim)
        self.gamma.grad += np.sum(flat_grad * flat_norm, axis=0)
        self.beta.grad += np.sum(flat_grad, axis=0)
        dnorm = grad_output * self.gamma.data
        mean_dnorm = dnorm.mean(axis=-1, keepdims=True)
        mean_dnorm_norm = (dnorm * normalized).mean(axis=-1, keepdims=True)
        return (dnorm - mean_dnorm - normalized * mean_dnorm_norm) * inv_std


class CausalSelfAttention(Module):
    """Multi-head scaled dot-product attention with an optional causal mask."""

    def __init__(self, dim: int, num_heads: int, rng: np.random.Generator, causal: bool = True, name: str = "attn") -> None:
        if dim % num_heads != 0:
            raise ValueError("dim must be divisible by num_heads")
        self.dim = dim
        self.num_heads = num_heads
        self.head_dim = dim // num_heads
        self.causal = causal
        # Python-float scale: keeps float32 scores float32 under NumPy 2's
        # promotion rules (an np.float64 scalar would promote the whole
        # attention computation, and everything downstream, to float64).
        self.scale = float(np.sqrt(self.head_dim))
        self.qkv = Linear(dim, 3 * dim, rng, name=f"{name}.qkv")
        self.proj = Linear(dim, dim, rng, name=f"{name}.proj")
        self._cache = None

    def forward(self, x: np.ndarray, layer_cache=None, attn_bias: Optional[np.ndarray] = None) -> np.ndarray:
        """Attend over ``x``; with ``layer_cache`` (a :class:`~repro.nn.kv_cache.LayerKVCache`),
        append the new keys/values and attend over the full cached prefix
        (incremental decoding — no backward pass is recorded in this mode).

        ``attn_bias`` replaces the built-in causal mask with an arbitrary
        additive mask of shape ``(batch, query, key)`` (``0.0`` = may attend,
        ``-1e9`` = masked), broadcast over heads.  The key axis covers the
        full key buffer — cached prefix plus appended window when a cache is
        present, the whole sequence otherwise — so the caller is responsible
        for masking stale/padded key slots too.  This is the hook token-tree
        verification uses to let each tree node attend exactly its ancestor
        chain plus the cached prefix.
        """
        batch, time, dim = x.shape
        qkv = self.qkv.forward(x)
        q, k, v = np.split(qkv, 3, axis=-1)

        def split_heads(tensor: np.ndarray) -> np.ndarray:
            return tensor.reshape(batch, time, self.num_heads, self.head_dim).transpose(0, 2, 1, 3)

        qh, kh, vh = split_heads(q), split_heads(k), split_heads(v)
        if layer_cache is not None:
            # Per-row pasts: serving batches requests whose cached prefixes
            # have different lengths (ragged rows), so each row masks against
            # its own past.  Uniform caches reduce to the classic causal mask.
            past_rows = layer_cache.lengths.copy()
            kh, vh = layer_cache.append(kh, vh)
            scores = qh @ kh.transpose(0, 1, 3, 2) / self.scale
            if attn_bias is not None:
                if attn_bias.shape != (batch, time, kh.shape[2]):
                    raise ValueError(
                        f"attn_bias shape {attn_bias.shape} != (batch, query, key) = "
                        f"({batch}, {time}, {kh.shape[2]})"
                    )
                scores = scores + attn_bias[:, None, :, :]
            elif self.causal:
                # Row r's query i sits at absolute position past_r + i and may
                # attend to keys 0..past_r+i.  Keys past a row's own length are
                # stale storage from longer rows; they sit at positions
                # > past_r + i for every valid query, so the same comparison
                # masks them too.
                key_positions = np.arange(kh.shape[2])
                query_positions = past_rows[:, None] + np.arange(time)[None, :]
                mask = key_positions[None, None, :] > query_positions[:, :, None]
                np.copyto(scores, -1e9, where=mask[:, None, :, :])
        else:
            scores = qh @ kh.transpose(0, 1, 3, 2) / self.scale
            if attn_bias is not None:
                if attn_bias.shape != (batch, time, time):
                    raise ValueError(
                        f"attn_bias shape {attn_bias.shape} != (batch, query, key) = ({batch}, {time}, {time})"
                    )
                scores = scores + attn_bias[:, None, :, :]
            elif self.causal:
                # Query i may attend to keys 0..i.
                key_positions = np.arange(time)
                mask = key_positions[None, :] > key_positions[:, None]
                np.copyto(scores, -1e9, where=np.broadcast_to(mask, scores.shape))
        weights = softmax(scores, axis=-1)
        context = weights @ vh
        merged = context.transpose(0, 2, 1, 3).reshape(batch, time, dim)
        out = self.proj.forward(merged)
        if layer_cache is None:
            self._cache = (qh, kh, vh, weights, batch, time)
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        qh, kh, vh, weights, batch, time = self._cache
        grad_merged = self.proj.backward(grad_output)
        grad_context = grad_merged.reshape(batch, time, self.num_heads, self.head_dim).transpose(0, 2, 1, 3)

        grad_weights = grad_context @ vh.transpose(0, 1, 3, 2)
        grad_vh = weights.transpose(0, 1, 3, 2) @ grad_context

        # Softmax backward.
        dot = np.sum(grad_weights * weights, axis=-1, keepdims=True)
        grad_scores = weights * (grad_weights - dot)
        grad_scores /= self.scale

        grad_qh = grad_scores @ kh
        grad_kh = grad_scores.transpose(0, 1, 3, 2) @ qh

        def merge_heads(tensor: np.ndarray) -> np.ndarray:
            return tensor.transpose(0, 2, 1, 3).reshape(batch, time, self.dim)

        grad_qkv = np.concatenate([merge_heads(grad_qh), merge_heads(grad_kh), merge_heads(grad_vh)], axis=-1)
        return self.qkv.backward(grad_qkv)


class CrossAttention(Module):
    """Encoder-decoder attention: queries from the decoder, keys/values from the encoder."""

    def __init__(self, dim: int, num_heads: int, rng: np.random.Generator, name: str = "xattn") -> None:
        if dim % num_heads != 0:
            raise ValueError("dim must be divisible by num_heads")
        self.dim = dim
        self.num_heads = num_heads
        self.head_dim = dim // num_heads
        self.scale = float(np.sqrt(self.head_dim))
        self.q_proj = Linear(dim, dim, rng, name=f"{name}.q")
        self.kv_proj = Linear(dim, 2 * dim, rng, name=f"{name}.kv")
        self.out_proj = Linear(dim, dim, rng, name=f"{name}.out")
        self._cache = None

    def forward(self, x: np.ndarray, memory: Optional[np.ndarray], layer_cache=None) -> np.ndarray:
        """Cross-attend ``x`` over ``memory``.

        With ``layer_cache``, the projected encoder keys/values are computed
        once and reused for every subsequent decode step (``memory`` may be
        ``None`` once the cross K/V is cached; no backward pass is recorded in
        this mode).
        """
        batch, time, dim = x.shape
        q = self.q_proj.forward(x)

        def split_heads(tensor: np.ndarray, length: int) -> np.ndarray:
            return tensor.reshape(tensor.shape[0], length, self.num_heads, self.head_dim).transpose(0, 2, 1, 3)

        qh = split_heads(q, time)
        if layer_cache is not None and layer_cache.has_cross:
            kh, vh = layer_cache.cross_k, layer_cache.cross_v
            mem_time = kh.shape[2]
        else:
            if memory is None:
                raise ValueError("cross-attention needs `memory` until the cross K/V is cached")
            mem_time = memory.shape[1]
            kv = self.kv_proj.forward(memory)
            k, v = np.split(kv, 2, axis=-1)
            kh = split_heads(k, mem_time)
            vh = split_heads(v, mem_time)
            if layer_cache is not None:
                if kh.shape[0] != batch:
                    kh = np.repeat(kh, batch // kh.shape[0], axis=0)
                    vh = np.repeat(vh, batch // vh.shape[0], axis=0)
                layer_cache.set_cross(kh, vh)
        scores = qh @ kh.transpose(0, 1, 3, 2) / self.scale
        weights = softmax(scores, axis=-1)
        context = weights @ vh
        merged = context.transpose(0, 2, 1, 3).reshape(batch, time, dim)
        out = self.out_proj.forward(merged)
        if layer_cache is None:
            self._cache = (qh, kh, vh, weights, batch, time, mem_time)
        return out

    def backward(self, grad_output: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        qh, kh, vh, weights, batch, time, mem_time = self._cache
        grad_merged = self.out_proj.backward(grad_output)
        grad_context = grad_merged.reshape(batch, time, self.num_heads, self.head_dim).transpose(0, 2, 1, 3)
        grad_weights = grad_context @ vh.transpose(0, 1, 3, 2)
        grad_vh = weights.transpose(0, 1, 3, 2) @ grad_context
        dot = np.sum(grad_weights * weights, axis=-1, keepdims=True)
        grad_scores = weights * (grad_weights - dot) / self.scale
        grad_qh = grad_scores @ kh
        grad_kh = grad_scores.transpose(0, 1, 3, 2) @ qh

        def merge(tensor: np.ndarray, length: int) -> np.ndarray:
            return tensor.transpose(0, 2, 1, 3).reshape(batch, length, self.dim)

        grad_x = self.q_proj.backward(merge(grad_qh, time))
        grad_kv = np.concatenate([merge(grad_kh, mem_time), merge(grad_vh, mem_time)], axis=-1)
        grad_memory = self.kv_proj.backward(grad_kv)
        return grad_x, grad_memory


class FeedForward(Module):
    """Position-wise MLP with GELU activation."""

    def __init__(self, dim: int, hidden_dim: int, rng: np.random.Generator, name: str = "mlp") -> None:
        self.fc1 = Linear(dim, hidden_dim, rng, name=f"{name}.fc1")
        self.fc2 = Linear(hidden_dim, dim, rng, name=f"{name}.fc2")
        self._pre_activation: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        hidden = self.fc1.forward(x)
        self._pre_activation = hidden
        return self.fc2.forward(gelu(hidden))

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad_hidden = self.fc2.backward(grad_output)
        grad_pre = grad_hidden * gelu_grad(self._pre_activation)
        return self.fc1.backward(grad_pre)
