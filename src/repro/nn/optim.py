"""Optimizers and learning-rate schedules.

The paper fine-tunes with an 8-bit AdamW optimizer, a cosine learning-rate
schedule, a warmup period and a 4x learning-rate multiplier for the decoding
heads.  This module provides full-precision AdamW plus the warmup+cosine
schedule; the head multiplier is realised through ``Parameter.lr_scale``.
"""

from __future__ import annotations

import math
from typing import Iterable, List

import numpy as np

from repro.nn.layers import Parameter


class WarmupCosineSchedule:
    """Linear warmup followed by cosine decay to ``min_ratio`` of the peak LR."""

    def __init__(self, base_lr: float, warmup_steps: int, total_steps: int, min_ratio: float = 0.1) -> None:
        if total_steps <= 0:
            raise ValueError("total_steps must be positive")
        self.base_lr = base_lr
        self.warmup_steps = max(warmup_steps, 0)
        self.total_steps = total_steps
        self.min_ratio = min_ratio

    def lr_at(self, step: int) -> float:
        """Learning rate for optimisation step ``step`` (0-based)."""
        if self.warmup_steps > 0 and step < self.warmup_steps:
            return self.base_lr * (step + 1) / self.warmup_steps
        progress = (step - self.warmup_steps) / max(1, self.total_steps - self.warmup_steps)
        progress = min(max(progress, 0.0), 1.0)
        cosine = 0.5 * (1.0 + math.cos(math.pi * progress))
        return self.base_lr * (self.min_ratio + (1.0 - self.min_ratio) * cosine)


class AdamW:
    """AdamW with decoupled weight decay, gradient clipping and LR scaling."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 5e-4,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.01,
        max_grad_norm: float = 1.0,
    ) -> None:
        self.parameters: List[Parameter] = list(parameters)
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self.max_grad_norm = max_grad_norm
        self.step_count = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def clip_gradients(self) -> float:
        """Clip the global gradient norm to ``max_grad_norm``; returns the norm."""
        total = 0.0
        for param in self.parameters:
            total += float(np.sum(param.grad.astype(np.float64) ** 2))
        norm = math.sqrt(total)
        if self.max_grad_norm > 0 and norm > self.max_grad_norm:
            scale = self.max_grad_norm / (norm + 1e-12)
            for param in self.parameters:
                param.grad *= scale
        return norm

    def step(self, lr: float = None) -> None:
        """Apply one optimisation step using ``lr`` (or the configured LR)."""
        effective_lr = self.lr if lr is None else lr
        self.clip_gradients()
        self.step_count += 1
        bias1 = 1.0 - self.beta1**self.step_count
        bias2 = 1.0 - self.beta2**self.step_count
        for i, param in enumerate(self.parameters):
            grad = param.grad
            self._m[i] = self.beta1 * self._m[i] + (1.0 - self.beta1) * grad
            self._v[i] = self.beta2 * self._v[i] + (1.0 - self.beta2) * grad * grad
            m_hat = self._m[i] / bias1
            v_hat = self._v[i] / bias2
            param_lr = effective_lr * param.lr_scale
            if self.weight_decay > 0:
                param.data -= param_lr * self.weight_decay * param.data
            param.data -= param_lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def zero_grad(self) -> None:
        """Clear gradients on all optimised parameters."""
        for param in self.parameters:
            param.zero_grad()
