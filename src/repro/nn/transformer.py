"""Transformer backbones: decoder-only and encoder-decoder.

These are the scale-reduced substitutes for CodeLlama (decoder-only) and
CodeT5p (encoder-decoder).  Both expose the same interface the Medusa wrapper
and the speculative decoder need:

* ``forward(...)`` returns the final hidden states ``(batch, time, dim)``;
* ``backward(grad_hidden)`` backpropagates a gradient arriving at those hidden
  states through the whole backbone.

The language-model head(s) live outside the backbone (see
:mod:`repro.models.decoder_lm` and :mod:`repro.models.medusa`) so that the
Medusa construction — extra heads attached to the *last hidden states* — is the
same for both architectures, exactly as in the paper's Fig. 2.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.nn.kv_cache import KVCache
from repro.nn.layers import (
    CausalSelfAttention,
    CrossAttention,
    Embedding,
    FeedForward,
    LayerNorm,
    Module,
)


def _decode_positions(
    cache: Optional[KVCache],
    batch: int,
    time: int,
    max_seq_len: int,
    position_offsets: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Absolute positions ``(batch, time)`` for a (possibly cached) forward.

    Without a cache every row starts at position 0.  With a cache each row
    continues from its own cached prefix length — rows may differ (ragged
    serving batches).  When the cache declares per-row append widths, only
    the first ``widths[r]`` window positions of row ``r`` are real; the
    sequence-length check uses those real extents, and the positions of the
    padded tail slots are clamped into the embedding table's range (their
    outputs are garbage by construction and ignored by the caller).

    ``position_offsets`` overrides the default consecutive layout with
    per-token offsets from each row's start (its cached prefix length, or 0
    without a cache).  Token-tree verification uses this to place every tree
    node at ``prefix + depth`` — siblings share a position, exactly as if
    each root-to-leaf path were its own contiguous row.
    """
    if position_offsets is not None:
        offsets = np.asarray(position_offsets, dtype=np.int64)
        if offsets.shape != (batch, time):
            raise ValueError(f"position_offsets shape {offsets.shape} != (batch, time) = ({batch}, {time})")
        past = cache.lengths[:, None] if cache is not None else np.zeros((batch, 1), dtype=np.int64)
        positions = past + offsets
        widths = cache.append_widths if cache is not None else None
        if widths is None:
            longest = int(positions.max(initial=-1)) + 1
        else:
            longest = max(
                (int(positions[row, : int(width)].max(initial=-1)) + 1 for row, width in enumerate(widths)),
                default=0,
            )
        if longest > max_seq_len:
            raise ValueError(f"sequence length {longest} exceeds max_seq_len {max_seq_len}")
        return np.minimum(positions, max_seq_len - 1)
    if cache is None:
        if time > max_seq_len:
            raise ValueError(f"sequence length {time} exceeds max_seq_len {max_seq_len}")
        return np.broadcast_to(np.arange(time), (batch, time))
    past = cache.lengths
    widths = cache.append_widths
    extents = past + (np.full(batch, time, dtype=np.int64) if widths is None else widths)
    longest = int(extents.max(initial=0))
    if longest > max_seq_len:
        raise ValueError(f"sequence length {longest} exceeds max_seq_len {max_seq_len}")
    positions = past[:, None] + np.arange(time)[None, :]
    return np.minimum(positions, max_seq_len - 1)


class TransformerBlock(Module):
    """Pre-norm transformer block (self-attention + MLP with residuals)."""

    def __init__(self, dim: int, num_heads: int, rng: np.random.Generator, causal: bool = True, name: str = "block") -> None:
        self.ln1 = LayerNorm(dim, name=f"{name}.ln1")
        self.attn = CausalSelfAttention(dim, num_heads, rng, causal=causal, name=f"{name}.attn")
        self.ln2 = LayerNorm(dim, name=f"{name}.ln2")
        self.mlp = FeedForward(dim, 4 * dim, rng, name=f"{name}.mlp")

    def forward(self, x: np.ndarray, layer_cache=None, attn_bias: Optional[np.ndarray] = None) -> np.ndarray:
        x = x + self.attn.forward(self.ln1.forward(x), layer_cache=layer_cache, attn_bias=attn_bias)
        x = x + self.mlp.forward(self.ln2.forward(x))
        return x

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad_mlp = self.ln2.backward(self.mlp.backward(grad_output))
        grad_after_attn = grad_output + grad_mlp
        grad_attn = self.ln1.backward(self.attn.backward(grad_after_attn))
        return grad_after_attn + grad_attn


class CrossTransformerBlock(Module):
    """Decoder block with self-attention, cross-attention and MLP."""

    def __init__(self, dim: int, num_heads: int, rng: np.random.Generator, name: str = "xblock") -> None:
        self.ln1 = LayerNorm(dim, name=f"{name}.ln1")
        self.self_attn = CausalSelfAttention(dim, num_heads, rng, causal=True, name=f"{name}.self")
        self.ln2 = LayerNorm(dim, name=f"{name}.ln2")
        self.cross_attn = CrossAttention(dim, num_heads, rng, name=f"{name}.cross")
        self.ln3 = LayerNorm(dim, name=f"{name}.ln3")
        self.mlp = FeedForward(dim, 4 * dim, rng, name=f"{name}.mlp")
        self._memory_grad: Optional[np.ndarray] = None

    def forward(
        self, x: np.ndarray, memory: Optional[np.ndarray], layer_cache=None, attn_bias: Optional[np.ndarray] = None
    ) -> np.ndarray:
        x = x + self.self_attn.forward(self.ln1.forward(x), layer_cache=layer_cache, attn_bias=attn_bias)
        x = x + self.cross_attn.forward(self.ln2.forward(x), memory, layer_cache=layer_cache)
        x = x + self.mlp.forward(self.ln3.forward(x))
        return x

    def backward(self, grad_output: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        grad_mlp = self.ln3.backward(self.mlp.backward(grad_output))
        grad_after_cross = grad_output + grad_mlp
        grad_cross_x, grad_memory = self.cross_attn.backward(grad_after_cross)
        grad_cross = self.ln2.backward(grad_cross_x)
        grad_after_self = grad_after_cross + grad_cross
        grad_self = self.ln1.backward(self.self_attn.backward(grad_after_self))
        return grad_after_self + grad_self, grad_memory


class DecoderOnlyTransformer(Module):
    """A GPT-style causal transformer producing last hidden states."""

    def __init__(
        self,
        vocab_size: int,
        dim: int = 64,
        num_layers: int = 2,
        num_heads: int = 4,
        max_seq_len: int = 512,
        seed: int = 0,
    ) -> None:
        rng = np.random.default_rng(seed)
        self.vocab_size = vocab_size
        self.dim = dim
        self.max_seq_len = max_seq_len
        self.token_embedding = Embedding(vocab_size, dim, rng, name="tok_emb")
        self.position_embedding = Embedding(max_seq_len, dim, rng, name="pos_emb")
        self.blocks: List[TransformerBlock] = [
            TransformerBlock(dim, num_heads, rng, causal=True, name=f"block{i}") for i in range(num_layers)
        ]
        self.final_norm = LayerNorm(dim, name="final_ln")

    def forward(
        self,
        token_ids: np.ndarray,
        cache: Optional[KVCache] = None,
        attn_bias: Optional[np.ndarray] = None,
        position_offsets: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Return hidden states of shape ``(batch, time, dim)``.

        With ``cache``, ``token_ids`` are treated as the continuation of the
        cached prefix: positions are offset by ``cache.length`` and attention
        runs over cached keys/values plus the new tokens (incremental
        decoding).  ``attn_bias`` replaces the causal mask with an arbitrary
        additive attention mask (see
        :meth:`~repro.nn.layers.CausalSelfAttention.forward`) and
        ``position_offsets`` overrides the consecutive position layout (see
        :func:`_decode_positions`); together they let a token tree be
        verified in one forward.
        """
        if token_ids.ndim == 1:
            token_ids = token_ids[None, :]
        batch, time = token_ids.shape
        positions = _decode_positions(cache, batch, time, self.max_seq_len, position_offsets)
        x = self.token_embedding.forward(token_ids) + self.position_embedding.forward(positions)
        layer_caches = cache.layers if cache is not None else [None] * len(self.blocks)
        for block, layer_cache in zip(self.blocks, layer_caches):
            x = block.forward(x, layer_cache=layer_cache, attn_bias=attn_bias)
        return self.final_norm.forward(x)

    def make_cache(self, batch: int = 1, capacity: Optional[int] = None) -> KVCache:
        """Create an empty KV cache sized for this transformer."""
        attn = self.blocks[0].attn
        return KVCache(
            num_layers=len(self.blocks),
            num_heads=attn.num_heads,
            head_dim=attn.head_dim,
            capacity=capacity or self.max_seq_len,
            batch=batch,
        )

    def make_block_pool(self, block_size: int = 16, num_blocks: int = 256) -> "KVBlockPool":
        """Create a paged K/V block pool matching this transformer's geometry.

        The pool is shared storage only; sequences over it are
        :class:`~repro.nn.kv_pool.PagedKVCache` instances, which this model's
        :meth:`forward` accepts anywhere it accepts a :class:`KVCache` (the
        per-layer views implement the same append/gather contract).  See
        :mod:`repro.nn.kv_pool` and ``docs/kv-memory.md`` for sizing.
        """
        from repro.nn.kv_pool import KVBlockPool

        attn = self.blocks[0].attn
        return KVBlockPool(
            num_layers=len(self.blocks),
            num_heads=attn.num_heads,
            head_dim=attn.head_dim,
            block_size=block_size,
            num_blocks=num_blocks,
        )

    def backward(self, grad_hidden: np.ndarray) -> None:
        grad = self.final_norm.backward(grad_hidden)
        for block in reversed(self.blocks):
            grad = block.backward(grad)
        self.token_embedding.backward(grad)
        self.position_embedding.backward(grad)


class EncoderDecoderTransformer(Module):
    """A T5-style encoder-decoder transformer producing decoder hidden states."""

    def __init__(
        self,
        vocab_size: int,
        dim: int = 64,
        num_encoder_layers: int = 2,
        num_decoder_layers: int = 2,
        num_heads: int = 4,
        max_seq_len: int = 512,
        seed: int = 0,
    ) -> None:
        rng = np.random.default_rng(seed)
        self.vocab_size = vocab_size
        self.dim = dim
        self.max_seq_len = max_seq_len
        self.token_embedding = Embedding(vocab_size, dim, rng, name="tok_emb")
        self.position_embedding = Embedding(max_seq_len, dim, rng, name="pos_emb")
        self.encoder_blocks: List[TransformerBlock] = [
            TransformerBlock(dim, num_heads, rng, causal=False, name=f"enc{i}") for i in range(num_encoder_layers)
        ]
        self.encoder_norm = LayerNorm(dim, name="enc_ln")
        self.decoder_blocks: List[CrossTransformerBlock] = [
            CrossTransformerBlock(dim, num_heads, rng, name=f"dec{i}") for i in range(num_decoder_layers)
        ]
        self.final_norm = LayerNorm(dim, name="dec_ln")
        self._cached_memory: Optional[np.ndarray] = None
        self._encoder_ids: Optional[np.ndarray] = None

    # -- encoder -------------------------------------------------------------

    def encode(self, encoder_ids: np.ndarray) -> np.ndarray:
        """Run the encoder and cache its output for subsequent decode calls."""
        if encoder_ids.ndim == 1:
            encoder_ids = encoder_ids[None, :]
        batch, time = encoder_ids.shape
        positions = np.broadcast_to(np.arange(time), (batch, time))
        x = self.token_embedding.forward(encoder_ids) + self.position_embedding.forward(positions)
        for block in self.encoder_blocks:
            x = block.forward(x)
        memory = self.encoder_norm.forward(x)
        self._cached_memory = memory
        self._encoder_ids = encoder_ids
        return memory

    # -- decoder -------------------------------------------------------------

    def forward(
        self,
        decoder_ids: np.ndarray,
        encoder_ids: Optional[np.ndarray] = None,
        cache: Optional[KVCache] = None,
        attn_bias: Optional[np.ndarray] = None,
        position_offsets: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Return decoder hidden states ``(batch, time, dim)``.

        When ``encoder_ids`` is provided the encoder runs first; otherwise the
        memory cached by the most recent :meth:`encode` call is reused (as the
        generation loop does: encode once, decode incrementally).  With
        ``cache``, decoder self-attention K/V and the per-layer cross-attention
        projections of the encoder memory are cached, and ``decoder_ids`` are
        the continuation of the cached prefix.  ``attn_bias`` /
        ``position_offsets`` generalise decoder self-attention masking and
        positions exactly as in :meth:`DecoderOnlyTransformer.forward`
        (cross-attention always sees the whole encoder memory and is
        unaffected).
        """
        if encoder_ids is not None:
            self.encode(encoder_ids)
        if decoder_ids.ndim == 1:
            decoder_ids = decoder_ids[None, :]
        batch, time = decoder_ids.shape
        memory = self._cached_memory
        cross_ready = cache is not None and all(layer.has_cross for layer in cache.layers)
        if memory is None and not cross_ready:
            raise RuntimeError("encode() must be called before forward() without encoder_ids")
        positions = _decode_positions(cache, batch, time, self.max_seq_len, position_offsets)
        x = self.token_embedding.forward(decoder_ids) + self.position_embedding.forward(positions)
        # The decoder embeddings overwrite the encoder's cached activations in
        # the shared embedding layers, so the backward pass re-encodes; we keep
        # the decoder cache here for the standard joint backward.
        self._decoder_ids = decoder_ids
        layer_caches = cache.layers if cache is not None else [None] * len(self.decoder_blocks)
        for block, layer_cache in zip(self.decoder_blocks, layer_caches):
            x = block.forward(x, memory, layer_cache=layer_cache, attn_bias=attn_bias)
        return self.final_norm.forward(x)

    def make_cache(self, batch: int = 1, capacity: Optional[int] = None) -> KVCache:
        """Create an empty KV cache sized for this transformer's decoder stack."""
        attn = self.decoder_blocks[0].self_attn
        return KVCache(
            num_layers=len(self.decoder_blocks),
            num_heads=attn.num_heads,
            head_dim=attn.head_dim,
            capacity=capacity or self.max_seq_len,
            batch=batch,
        )

    def backward(self, grad_hidden: np.ndarray) -> None:
        grad = self.final_norm.backward(grad_hidden)
        grad_memory_total = np.zeros_like(self._cached_memory)
        for block in reversed(self.decoder_blocks):
            grad, grad_memory = block.backward(grad)
            grad_memory_total += grad_memory
        # Decoder-side embeddings.
        self.token_embedding._ids = self._decoder_ids
        self.token_embedding.backward(grad)
        batch, time = self._decoder_ids.shape
        self.position_embedding._ids = np.broadcast_to(np.arange(time), (batch, time))
        self.position_embedding.backward(grad)
        # Encoder-side gradient path.
        grad_enc = self.encoder_norm.backward(grad_memory_total)
        for block in reversed(self.encoder_blocks):
            grad_enc = block.backward(grad_enc)
        self.token_embedding._ids = self._encoder_ids
        self.token_embedding.backward(grad_enc)
        enc_batch, enc_time = self._encoder_ids.shape
        self.position_embedding._ids = np.broadcast_to(np.arange(enc_time), (enc_batch, enc_time))
        self.position_embedding.backward(grad_enc)
