"""Multi-request serving: continuous batching over the shared KV cache.

The serving subsystem grows the single-stream speculative decoder into a
throughput-oriented engine:

* :mod:`repro.serving.request` — :class:`GenerationRequest` /
  :class:`RequestState`, the unit of work and its lifecycle;
* :mod:`repro.serving.scheduler` — FCFS continuous-batching admission under
  a token budget, with optional chunked-prefill pacing (:class:`Scheduler`,
  :class:`SchedulerConfig`);
* :mod:`repro.serving.prefix_cache` — cross-request prompt-prefix reuse: a
  token trie over retained KV segments, LRU-evicted under a token/byte
  budget (:class:`PrefixCache`); under paged K/V memory, retention pins
  shared pool blocks by refcount instead of copying, and hits splice in
  zero-copy;
* :mod:`repro.serving.engine` — :class:`ServingEngine`, which steps every
  in-flight request through one shared batched forward per iteration and is
  token-identical to sequential :meth:`SpeculativeDecoder.generate`.  K/V
  memory defaults to the paged block pool of :mod:`repro.nn.kv_pool`
  (``kv_memory="paged"``), with the contiguous row cache
  (``kv_memory="row"``) kept as the reference oracle — see
  ``docs/kv-memory.md``;
* :mod:`repro.serving.server` — :class:`AsyncServingEngine`, the asyncio
  streaming front-end: per-request :class:`StreamHandle` with
  ``async for burst in handle.stream()``, cooperative cancellation and
  per-request deadlines, driving the engine loop on a background thread;
* :mod:`repro.serving.messages` / :mod:`repro.serving.control` — the
  plain-data command/reply vocabulary and the :class:`EngineControl` that
  answers it, splitting the engine into a pure execution core
  (:mod:`repro.serving.engine_core`) and transports that drive it;
* :mod:`repro.serving.worker` / :mod:`repro.serving.router` — multi-process
  sharding: :class:`EngineWorker` replicas each running one engine-core
  behind a pipe, supervised by a :class:`Router` with prefix-affinity
  routing, crash restart and deterministic requeue.

See ``docs/serving.md``, ``docs/streaming.md`` and ``docs/sharding.md`` for
the design discussion.
"""

from repro.serving.control import EngineControl
from repro.serving.engine import ServingEngine
from repro.serving.engine_core import EngineCore
from repro.serving.prefix_cache import PrefixCache, PrefixCacheStats
from repro.serving.request import (
    GenerationRequest,
    RequestState,
    RequestStatus,
    derive_request_rng,
)
from repro.serving.router import Router, RouterConfig, RouterRequest
from repro.serving.scheduler import PriorityConfig, Scheduler, SchedulerConfig
from repro.serving.server import (
    AsyncServingEngine,
    RequestCancelled,
    RequestDeadlineExceeded,
    StreamHandle,
)
from repro.serving.worker import EngineWorker, WorkerSpec, engine_from_pipeline, save_pipeline

__all__ = [
    "AsyncServingEngine",
    "EngineControl",
    "EngineCore",
    "EngineWorker",
    "GenerationRequest",
    "PrefixCache",
    "PrefixCacheStats",
    "PriorityConfig",
    "RequestCancelled",
    "RequestDeadlineExceeded",
    "RequestState",
    "RequestStatus",
    "Router",
    "RouterConfig",
    "RouterRequest",
    "Scheduler",
    "SchedulerConfig",
    "ServingEngine",
    "StreamHandle",
    "WorkerSpec",
    "derive_request_rng",
    "engine_from_pipeline",
    "save_pipeline",
]
