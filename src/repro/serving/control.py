"""Message-driven control surface over a :class:`ServingEngine`.

:class:`EngineControl` answers the plain-data commands of
:mod:`repro.serving.messages` against one engine, buffering the token bursts
and completions each step produces into :class:`CommitEvent` /
:class:`FinishedEvent` lists that ride back on the next :class:`StepReply`.
It is deliberately transport-agnostic: the in-process async front-end
(:class:`~repro.serving.server.AsyncServingEngine`) calls :meth:`handle`
directly on its step thread, while :class:`~repro.serving.worker.EngineWorker`
calls the *same* method for commands arriving over a ``multiprocessing``
pipe — which is the mechanism behind the router's identity guarantee (one
worker ≡ in-process engine, asserted in ``tests/test_router.py``).

Exception policy: :meth:`handle` is transparent — a validation error from
``submit`` or an engine bug inside ``step`` propagates to the caller, who
applies the policy appropriate to its transport (the worker loop converts
submit errors into ``SubmitReply(error=...)`` data and treats step errors as
fatal; the in-process server lets submit errors raise at the call site and
step errors trigger its crash fan-out).
"""

from __future__ import annotations

import time
from dataclasses import asdict
from typing import List, Optional

from repro.serving.engine import ServingEngine
from repro.serving.messages import (
    CancelCommand,
    CancelReply,
    CommitEvent,
    DrainCommand,
    DrainReply,
    EngineStats,
    FinishedEvent,
    QueryCommand,
    QueryReply,
    ShutdownCommand,
    ShutdownReply,
    StepCommand,
    StepReply,
    SubmitCommand,
    SubmitReply,
    decode_config,
    encode_result,
)
from repro.serving.request import RequestState, RequestStatus


class EngineControl:
    """Drives one engine through the :mod:`repro.serving.messages` vocabulary.

    Args:
        engine: The engine to drive.  The control attaches commit/done
            listeners to every request it submits; requests submitted to the
            engine *around* the control (e.g. directly in a test) are served
            normally but produce no events here.
        forget_on_done: Release each request's engine-side bookkeeping the
            moment its :class:`FinishedEvent` is buffered.  Workers run with
            True — the event already carries the encoded result and frozen
            stream metrics, and a long-lived worker retaining every state
            would grow without bound.  In-process fronts default to False so
            ``engine.result()``/``stream_metrics()`` keep working afterwards.
    """

    def __init__(self, engine: ServingEngine, forget_on_done: bool = False) -> None:
        self.engine = engine
        self.forget_on_done = forget_on_done
        self.steps_executed = 0
        self._commits: List[CommitEvent] = []
        self._finished: List[FinishedEvent] = []

    # ------------------------------------------------------------------ #
    # Command dispatch
    # ------------------------------------------------------------------ #

    def handle(self, command: object) -> object:
        """Answer one command with its paired reply (see ``reply_type_for``)."""
        if isinstance(command, SubmitCommand):
            return self._submit(command)
        if isinstance(command, CancelCommand):
            return self._cancel(command)
        if isinstance(command, StepCommand):
            return StepReply(*self._step_batch(command.max_steps))
        if isinstance(command, DrainCommand):
            return DrainReply(*self._step_batch(None))
        if isinstance(command, QueryCommand):
            return self._query(command)
        if isinstance(command, ShutdownCommand):
            # Transport owns the actual teardown (the worker loop exits after
            # relaying this reply); in-process there is nothing to stop.
            return ShutdownReply()
        raise TypeError(f"unknown engine command: {command!r}")

    def _submit(self, command: SubmitCommand) -> SubmitReply:
        config = None if command.config is None else decode_config(command.config)
        request_id = self.engine.submit(
            command.prompt_ids,
            config=config,
            request_id=command.request_id,
            priority=command.priority,
            deadline=command.deadline,
        )
        self.engine.attach_listeners(
            request_id,
            on_commit=lambda tokens, rid=request_id: self._commits.append(
                CommitEvent(request_id=rid, tokens=list(tokens), timestamp=time.perf_counter())
            ),
            on_done=self._on_done,
        )
        return SubmitReply(request_id=request_id)

    def _cancel(self, command: CancelCommand) -> CancelReply:
        try:
            cancelled = self.engine.cancel(command.request_id)
        except KeyError:
            # With forget_on_done, a request that finished a moment ago is
            # already unknown; cancel-after-completion stays a no-op (False),
            # matching the engine's own semantics for still-retained ids.
            cancelled = False
        return CancelReply(cancelled=cancelled)

    def _on_done(self, state: RequestState) -> None:
        """Done-listener: freeze the finished event (and optionally forget)."""
        request_id = state.request.request_id
        self._finished.append(
            FinishedEvent(
                request_id=request_id,
                result=encode_result(self.engine.result(request_id)),
                cancelled=state.status is RequestStatus.CANCELLED,
                timed_out=state.timed_out,
                stream_metrics=self.engine.stream_metrics(request_id),
            )
        )
        if self.forget_on_done:
            self.engine.forget(request_id)

    def _step_batch(self, max_steps: Optional[int]):
        """Run up to ``max_steps`` engine steps (``None`` = drain); return events."""
        steps = 0
        while self.engine.has_work and (max_steps is None or steps < max_steps):
            self.engine.step()
            steps += 1
            self.steps_executed += 1
        return self.drain_events() + (self.stats(),)

    def drain_events(self):
        """Hand over (and clear) the buffered commit and finished events."""
        commits, self._commits = self._commits, []
        finished, self._finished = self._finished, []
        return commits, finished

    def _query(self, command: QueryCommand) -> QueryReply:
        if command.kind == "stats":
            payload = asdict(self.stats())
        elif command.kind == "kv_pool_stats":
            payload = self.engine.kv_pool_stats()
        elif command.kind == "prefix_cache_stats":
            payload = self.engine.prefix_cache_stats()
        elif command.kind == "stream_metrics":
            if command.request_id is None:
                raise ValueError("stream_metrics query requires a request_id")
            payload = self.engine.stream_metrics(command.request_id)
        else:
            raise ValueError(f"unknown query kind {command.kind!r}")
        return QueryReply(kind=command.kind, payload=payload)

    def stats(self) -> EngineStats:
        """Current backpressure snapshot (piggybacked on step replies/heartbeats)."""
        engine = self.engine
        return EngineStats(
            queue_depth=len(engine.scheduler.waiting),
            num_prefilling=engine.num_prefilling,
            num_active=engine.num_active,
            has_work=engine.has_work,
            free_kv_tokens=engine.core.free_kv_tokens(),
            steps_executed=self.steps_executed,
        )


__all__ = ["EngineControl"]
