"""Continuous-batching serving engine over the shared ragged KV cache.

:class:`ServingEngine` turns the single-stream speculative decoder into a
multi-request server: many in-flight requests advance through **one shared
batched forward per iteration**.  Each running request owns one row of a
shared cache; rows sit at different prefix lengths (the cache is *ragged*),
and every engine step:

1. **admits** queued requests the :class:`~repro.serving.scheduler.Scheduler`
   lets in, prefilling each prompt once and merging the new row into the
   shared cache (``KVCache.concat``).  With a
   :class:`~repro.serving.prefix_cache.PrefixCache` attached, the longest
   retained prefix of the prompt is spliced into the fresh row
   (``KVCache.splice_prefix``) and only the suffix is prefilled; with
   ``SchedulerConfig.max_prefill_tokens_per_step`` set, that prefill is
   paced in fixed-token chunks interleaved with decode steps (requests wait
   in the ``PREFILLING`` status) so long prompts never stall the in-flight
   batch;
2. **proposes** speculative candidates per request from the logits held at
   its last committed position (identical logic to the sequential decoder —
   the per-step functions are shared via :mod:`repro.core.decoding`);
3. **verifies** all candidates of all requests in a single batched cached
   forward (row-tiled, or one token tree per request under
   ``GenerationConfig.tree_verify``);
4. **commits** each request's best accepted run and compacts the cache back
   to one row per request;
5. **retires** finished requests, reclaiming their cache rows and freeing
   scheduler budget so the next step can admit more work.

Since the multi-process sharding refactor, this class is a thin *front-end*:
all step execution, verification and K/V bookkeeping live in
:class:`~repro.serving.engine_core.EngineCore` (see its docstring for the
execution invariants), and ``ServingEngine`` adds exactly the in-process
serving boundary — request-id allocation, submission validation, result and
state retention (``result``/``forget``/``stream_metrics``/``request_status``),
and the streaming listener hooks.  The same core also sits behind the
message-driven :class:`~repro.serving.control.EngineControl`, which is how a
:class:`~repro.serving.worker.EngineWorker` process and the
:class:`~repro.serving.router.Router` drive it over a pipe; because all three
fronts share one core, the router with one worker is token-identical to this
class, which is token-identical to sequential
:meth:`SpeculativeDecoder.generate` per prompt (``tests/test_serving.py``
asserts the latter for all three strategies with 8 concurrent requests, in
both K/V memory modes; ``tests/test_router.py`` asserts the former).

**K/V memory** comes in two interchangeable flavours (``kv_memory``, see
``docs/kv-memory.md``): ``"paged"`` (the default; block tables over one
shared refcounted pool, zero-copy sharing with copy-on-write) and ``"row"``
(contiguous per-row buffers, the token-identity reference oracle).
:meth:`kv_pool_stats` reports occupancy, sharing and copy-on-write counters
either way.

Requests can be **cancelled** (:meth:`cancel`) or given a **deadline** at
submission; both free the request's scheduler budget, prefix-cache retention
copy and shared cache row in the same step, whether it was queued,
mid-prefill or decoding.  Every commit is funnelled through
:meth:`RequestState.record_commit`, the observation-only hook the async
front-end (:class:`~repro.serving.server.AsyncServingEngine`) turns into
``async for burst in handle.stream()``.

The engine serves decoder-only backbones; encoder-decoder models would
additionally need ragged cross-attention memories and are rejected at
construction.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from repro.core.acceptance import TypicalAcceptance
from repro.core.decoding import DecodeResult, DecodingStrategy
from repro.models.generation import GenerationConfig
from repro.models.medusa import MedusaLM
from repro.serving.engine_core import EngineCore
from repro.serving.prefix_cache import PrefixCache
from repro.serving.request import GenerationRequest, RequestState, RequestStatus
from repro.serving.scheduler import Scheduler, SchedulerConfig
from repro.tokenizer.bpe import BPETokenizer


class ServingEngine:
    """Serves many generation requests through one shared batched forward per step.

    Args:
        model: A trained :class:`~repro.models.medusa.MedusaLM` with a
            decoder-only backbone.
        tokenizer: The tokenizer the model was trained with.
        strategy: Decoding regime applied to every request (``NTP`` commits
            one token per step; ``MEDUSA``/``OURS`` speculate with the extra
            heads).
        acceptance: Typical-acceptance rule for sampling runs (defaults to
            the paper's eq. 1 parameters).
        num_candidates: Speculative candidates proposed per request per step.
        max_speculative_heads: Cap on the Medusa heads used for speculation
            (defaults to all heads the model has).
        scheduler_config: Admission/fairness knobs; see
            :class:`~repro.serving.scheduler.SchedulerConfig`.
        prefix_cache: Optional cross-request
            :class:`~repro.serving.prefix_cache.PrefixCache`.  When given,
            admission reuses the longest retained prompt prefix instead of
            re-prefilling it, and every completed prefill is retained for
            later requests.  ``None`` (the default) disables reuse.
        kv_memory: K/V storage mode — ``"paged"`` (the default; block tables
            over one shared refcounted pool, zero-copy sharing with
            copy-on-write) or ``"row"`` (contiguous per-row buffers, the
            reference oracle).  Outputs are token-identical either way.
        kv_block_size: Tokens per physical block in paged mode.  Smaller
            blocks waste less capacity on partially-filled tails but cost
            more table indirection per gather.
        kv_pool_blocks: Total physical blocks in the paged pool.  ``None``
            sizes it from the scheduler budgets (worst-case committed
            context + speculative verification transient + prefix-cache
            retention); see :meth:`EngineCore._default_pool_blocks`.
        clock: Time source for every timestamp the engine stamps (defaults
            to ``time.perf_counter``).  The traffic harness
            (:mod:`repro.traffic`) injects a deterministic
            :class:`~repro.traffic.clock.SimulatedClock` so trace replays —
            TTFT/latency series, deadline expiry, admission timing — are
            reproducible in virtual time; see ``docs/traffic.md``.
    """

    def __init__(
        self,
        model: MedusaLM,
        tokenizer: BPETokenizer,
        strategy: DecodingStrategy = DecodingStrategy.OURS,
        acceptance: Optional[TypicalAcceptance] = None,
        num_candidates: int = 3,
        max_speculative_heads: Optional[int] = None,
        scheduler_config: Optional[SchedulerConfig] = None,
        prefix_cache: Optional[PrefixCache] = None,
        kv_memory: str = "paged",
        kv_block_size: int = 16,
        kv_pool_blocks: Optional[int] = None,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        self.core = EngineCore(
            model=model,
            tokenizer=tokenizer,
            strategy=strategy,
            acceptance=acceptance,
            num_candidates=num_candidates,
            max_speculative_heads=max_speculative_heads,
            scheduler_config=scheduler_config,
            prefix_cache=prefix_cache,
            kv_memory=kv_memory,
            kv_block_size=kv_block_size,
            kv_pool_blocks=kv_pool_blocks,
            on_finish=self._on_core_finish,
            clock=clock,
        )
        self._states: Dict[str, RequestState] = {}
        self._results: Dict[str, DecodeResult] = {}
        self._next_id = 0

    def _on_core_finish(self, state: RequestState, result: DecodeResult) -> None:
        """Core completion hook: retain the frozen result under the request id."""
        self._results[state.request.request_id] = result

    # ------------------------------------------------------------------ #
    # Core delegation (the execution surface tests and tools poke at)
    # ------------------------------------------------------------------ #

    @property
    def model(self) -> MedusaLM:
        return self.core.model

    @property
    def tokenizer(self) -> BPETokenizer:
        return self.core.tokenizer

    @property
    def strategy(self) -> DecodingStrategy:
        return self.core.strategy

    @property
    def acceptance(self) -> TypicalAcceptance:
        return self.core.acceptance

    @property
    def num_candidates(self) -> int:
        return self.core.num_candidates

    @property
    def max_speculative_heads(self) -> int:
        return self.core.max_speculative_heads

    @property
    def scheduler(self) -> Scheduler:
        return self.core.scheduler

    @property
    def prefix_cache(self) -> Optional[PrefixCache]:
        return self.core.prefix_cache

    @property
    def kv_memory(self) -> str:
        return self.core.kv_memory

    @property
    def max_seq_len(self) -> int:
        return self.core.max_seq_len

    # Execution internals, delegated read-only so the serving tests keep
    # their white-box assertions (pool occupancy, live rows, deadline list).
    @property
    def _pool(self):
        return self.core._pool

    @property
    def _cache(self):
        return self.core._cache

    @property
    def _active(self) -> List[RequestState]:
        return self.core._active

    @property
    def _prefilling(self) -> List[RequestState]:
        return self.core._prefilling

    @property
    def _deadlined(self) -> List[RequestState]:
        return self.core._deadlined

    @property
    def prefix_copy_tokens(self) -> int:
        return self.core.prefix_copy_tokens

    @property
    def tokens_prefilled_total(self) -> int:
        return self.core.tokens_prefilled_total

    @property
    def tokens_reused_total(self) -> int:
        return self.core.tokens_reused_total

    @property
    def prefix_hits(self) -> int:
        return self.core.prefix_hits

    @property
    def prefix_misses(self) -> int:
        return self.core.prefix_misses

    def _admission_kwargs(self) -> dict:
        return self.core._admission_kwargs()

    def kv_pool_stats(self) -> dict:
        """K/V memory counters, uniform across both modes (see :meth:`EngineCore.kv_pool_stats`)."""
        return self.core.kv_pool_stats()

    # ------------------------------------------------------------------ #
    # Submission and results
    # ------------------------------------------------------------------ #

    def submit(
        self,
        prompt_ids: Sequence[int],
        config: Optional[GenerationConfig] = None,
        request_id: Optional[str] = None,
        priority: int = 0,
        deadline: Optional[float] = None,
    ) -> str:
        """Queue a tokenized prompt for generation; returns the request id.

        Validation happens here, at the submission boundary, rather than
        surfacing later as an obscure failure deep inside prefill: empty
        prompts and out-of-vocabulary token ids raise immediately (negative
        ids would otherwise wrap around the embedding table silently), and a
        duplicate ``request_id`` raises instead of clobbering the earlier
        request's result.  Auto-assigned ids skip over any ids the caller
        already used.

        Args:
            prompt_ids: Tokenized prompt (BOS included).
            config: Per-request decoding configuration (defaults to greedy).
            request_id: Caller-chosen id; auto-assigned when ``None``.
            priority: Admission priority class (higher admits sooner); only
                meaningful with ``SchedulerConfig(priorities=...)``.
            deadline: Optional wall-clock budget in seconds, measured from
                this call.  When it expires first, the request is cancelled
                at the next step boundary (``DecodeResult.cancelled`` with
                the partial output committed so far).
        """
        prompt = list(prompt_ids)
        if not prompt:
            raise ValueError("cannot serve an empty prompt")
        vocab_size = self.model.vocab_size
        for token in prompt:
            if not 0 <= int(token) < vocab_size:
                raise ValueError(
                    f"prompt token id {int(token)} outside the model vocabulary [0, {vocab_size})"
                )
        if request_id is None:
            while f"req-{self._next_id}" in self._states:
                self._next_id += 1
            request_id = f"req-{self._next_id}"
            self._next_id += 1
        elif not request_id:
            raise ValueError("request_id must be a non-empty string (or None to auto-assign)")
        if request_id in self._states:
            raise ValueError(f"duplicate request id {request_id!r}")
        if deadline is not None and deadline <= 0.0:
            raise ValueError(f"deadline must be positive (or None), got {deadline}")
        request = GenerationRequest(
            request_id=request_id,
            prompt_ids=prompt,
            config=config or GenerationConfig.greedy_config(),
            context_limit=self.max_seq_len,
            priority=priority,
            deadline_seconds=deadline,
        )
        state = RequestState(request=request, submitted_at=self.core.clock())
        self._states[request_id] = state
        self.core.enqueue(state)
        return request_id

    def submit_text(
        self,
        prompt: str,
        config: Optional[GenerationConfig] = None,
        request_id: Optional[str] = None,
        priority: int = 0,
        deadline: Optional[float] = None,
    ) -> str:
        """Tokenize ``prompt`` (adding BOS) and queue it for generation."""
        return self.submit(
            self.tokenizer.encode(prompt, add_bos=True), config, request_id, priority, deadline
        )

    @property
    def has_work(self) -> bool:
        """True while any request is queued or running."""
        return self.core.has_work

    @property
    def num_active(self) -> int:
        return self.core.num_active

    @property
    def num_prefilling(self) -> int:
        """Admitted requests whose prompts are still entering the cache."""
        return self.core.num_prefilling

    def prefix_cache_stats(self) -> dict:
        """Prefill accounting: reuse hit rate and prefilled-vs-reused tokens.

        Every number is scoped to *this engine's* traffic — a
        :class:`~repro.serving.prefix_cache.PrefixCache` may be shared
        between engines wrapping the same model, and mixing its
        cache-lifetime counters into a per-engine report would silently
        disagree with the per-engine token columns (the cache's own view
        stays available as ``engine.prefix_cache.stats``).  Meaningful with
        or without an attached cache: the no-reuse baseline reports its
        total prefilled prompt tokens here too, which is what the
        shared-prefix bench compares against.
        """
        reused = self.tokens_reused_total
        prefilled = self.tokens_prefilled_total
        total = reused + prefilled
        lookups = self.prefix_hits + self.prefix_misses
        return {
            "enabled": self.prefix_cache is not None,
            "prompt_tokens_prefilled": prefilled,
            "prompt_tokens_reused": reused,
            "prefill_savings": reused / total if total else 0.0,
            "hits": self.prefix_hits,
            "misses": self.prefix_misses,
            "hit_rate": self.prefix_hits / lookups if lookups else 0.0,
        }

    def result(self, request_id: str) -> DecodeResult:
        """Result of a finished request (KeyError while still in flight)."""
        return self._results[request_id]

    def forget(self, request_id: str) -> DecodeResult:
        """Drop a settled request's retained state; returns its final result.

        The engine keeps every request's :class:`RequestState` and result so
        ``result()``/``stream_metrics()`` work after completion — which on a
        long-lived server is an unbounded retention.  Callers that have
        consumed a request's result (e.g. a streaming front-end whose handle
        already holds it) call this to release the bookkeeping: the state,
        its commit timeline and the stored result are all dropped, and the
        request id becomes unknown again (reusable).  Only ``FINISHED`` or
        ``CANCELLED`` requests can be forgotten; forgetting an in-flight
        request raises ``ValueError``.
        """
        state = self._states[request_id]
        if state.status not in (RequestStatus.FINISHED, RequestStatus.CANCELLED):
            raise ValueError(f"request {request_id!r} is still in flight ({state.status.value})")
        del self._states[request_id]
        # The deadline watch list is otherwise pruned lazily inside step();
        # an idle server would retain the state through it indefinitely.
        if state.request.deadline_seconds is not None:
            self.core.forget_deadline(state)
        return self._results.pop(request_id)

    def scheduler_latency(self, request_id: str) -> float:
        """Submission-to-completion latency of a request, queueing included."""
        return self._states[request_id].latency_seconds

    def request_status(self, request_id: str) -> RequestStatus:
        """Current lifecycle status of a request (KeyError for unknown ids)."""
        return self._states[request_id].status

    def attach_listeners(
        self,
        request_id: str,
        on_commit: Optional[Callable[[List[int]], None]] = None,
        on_done: Optional[Callable[[RequestState], None]] = None,
    ) -> None:
        """Register observation-only streaming hooks on an in-flight request.

        ``on_commit`` receives each committed token burst right after it
        lands in the request's outputs; ``on_done`` fires once when the
        request leaves the engine (finished or cancelled), after its result
        was frozen.  Listeners must not mutate engine state — they exist so
        front-ends (like :class:`~repro.serving.server.AsyncServingEngine`)
        can observe commits without touching engine internals.  Attach
        before the first step that could advance the request, or the stream
        misses bursts.

        Raises:
            KeyError: Unknown ``request_id``.
            ValueError: The request already finished (its listeners would
                never fire).
        """
        state = self._states[request_id]
        if state.status in (RequestStatus.FINISHED, RequestStatus.CANCELLED):
            raise ValueError(f"request {request_id!r} already finished; listeners would never fire")
        if on_commit is not None:
            state.commit_listeners.append(on_commit)
        if on_done is not None:
            state.done_listeners.append(on_done)

    def stream_metrics(self, request_id: str) -> dict:
        """Streaming latency series of one request, from its commit timeline.

        Returns a dict with:

        * ``ttft_seconds`` — submission to first committed token (``None``
          until something commits; includes queueing and prefill, which is
          what a streaming client actually waits for);
        * ``inter_token_seconds`` — one entry per token after the *first
          burst*.  Tokens land in per-step bursts (simultaneously within a
          burst), so the gap between consecutive commit events is spread
          evenly over the later burst's tokens — the smoothed per-token
          rate, summing to last-commit minus first-commit exactly;
        * ``commit_events`` — the raw ``(seconds_since_submission,
          num_tokens)`` burst series.
        """
        state = self._states[request_id]
        events = [(t - state.submitted_at, n) for t, n in state.commit_events]
        inter_token: List[float] = []
        for (prev_t, _), (t, n) in zip(events, events[1:]):
            inter_token.extend([(t - prev_t) / n] * n)
        return {
            "ttft_seconds": state.ttft_seconds,
            "inter_token_seconds": inter_token,
            "commit_events": events,
        }

    def run(self) -> Dict[str, DecodeResult]:
        """Step until every submitted request has finished; return all results."""
        while self.has_work:
            self.step()
        return dict(self._results)

    def step(self) -> None:
        """Expire deadlines, admit what fits, advance prefills, step every running request."""
        self.core.step()

    def cancel(self, request_id: str, timed_out: bool = False) -> bool:
        """Cancel a request, releasing every resource it holds *immediately*.

        Works in any pre-finished state and frees, in the same step:

        * **queued** — its slot in the scheduler's waiting queue;
        * **prefilling** — its ``tokens_in_flight`` footprint and concurrency
          slot, plus its private prefill row (which also drops the retained
          prefix-cache K/V spliced into it at admission);
        * **running** — its footprint, concurrency slot and its row of the
          shared KV cache (compacted out right here, not deferred to the
          finished-request retirement path).

        A partial :class:`~repro.core.decoding.DecodeResult` (``cancelled``
        set, holding whatever tokens had committed) is frozen under the
        request id, and done-listeners fire so streaming consumers unblock.
        Returns True if the request was actually cancelled, False if it had
        already finished (or was already cancelled) — cancellation after
        completion is a no-op, never an error.

        Raises:
            KeyError: Unknown ``request_id``.
        """
        return self.core.cancel_state(self._states[request_id], timed_out=timed_out)


__all__ = ["ServingEngine"]
