"""Pure step-execution core of the serving engine.

:class:`EngineCore` owns everything that happens *inside* an engine step —
admission, chunked prefill, the shared batched forward, speculative
verification, commit, KV/prefix-cache bookkeeping and retirement — and
nothing that happens at the serving boundary.  It never allocates request
ids, never validates prompts, never retains results beyond handing each
frozen :class:`~repro.core.decoding.DecodeResult` to its ``on_finish``
callback, and never touches threads or pipes.  The split is what lets the
same execution core sit behind three different fronts:

* :class:`~repro.serving.engine.ServingEngine` — the in-process façade
  (id allocation, validation, result retention, metrics);
* :class:`~repro.serving.control.EngineControl` — the message-driven surface
  (:mod:`repro.serving.messages`) the async server drives in-process;
* :class:`~repro.serving.worker.EngineWorker` — the same control surface
  behind a ``multiprocessing`` pipe, one core per process, sharded by the
  :class:`~repro.serving.router.Router`.

The step pipeline and its invariants are unchanged from the fused engine
(see ``docs/serving.md``): every row of the shared batched forward computes
exactly what a batch-1 forward over that row would compute, so committed
tokens are identical to sequential :meth:`SpeculativeDecoder.generate`
regardless of batching, chunking, prefix reuse or K/V memory mode.
"""

from __future__ import annotations

import time
from typing import Callable, List, Optional

import numpy as np

from repro.constrained.mask import closure_token_ids, grammar_mask, masked_sample
from repro.core.acceptance import TypicalAcceptance
from repro.core.decoding import (
    DecodeResult,
    DecodingStrategy,
    StepRecord,
    decoder_budget_exceeded,
    dedupe_candidates,
    max_step_extra,
    pad_candidates,
    propose_candidates,
    select_best_candidate,
)
from repro.core.token_tree import (
    TokenTree,
    pad_tree_tokens,
    prefilter_candidates,
    tree_bias_cached,
    tree_position_offsets,
)
from repro.models.medusa import MedusaLM
from repro.nn.kv_cache import KVCache
from repro.nn.kv_pool import KVBlockPool, PagedKVCache
from repro.serving.prefix_cache import PrefixCache
from repro.serving.request import RequestState, RequestStatus, derive_request_rng
from repro.serving.scheduler import Scheduler, SchedulerConfig
from repro.tokenizer.bpe import BPETokenizer


class EngineCore:
    """Steps admitted requests through one shared batched forward per iteration.

    Args:
        model: A trained :class:`~repro.models.medusa.MedusaLM` with a
            decoder-only backbone.
        tokenizer: The tokenizer the model was trained with (grammar masks
            and final text decoding need it).
        strategy: Decoding regime applied to every request.
        acceptance: Typical-acceptance rule for sampling runs.
        num_candidates: Speculative candidates proposed per request per step.
        max_speculative_heads: Cap on the Medusa heads used for speculation.
        scheduler_config: Admission/fairness knobs.
        prefix_cache: Optional cross-request prefix cache.
        kv_memory: ``"paged"`` (block pool, the default) or ``"row"``
            (contiguous buffers, the token-identity oracle).
        kv_block_size: Tokens per physical block in paged mode.
        kv_pool_blocks: Paged pool capacity (``None`` sizes it from the
            scheduler budgets).
        on_finish: Called once per request as it leaves the core —
            ``on_finish(state, result)`` — with the frozen result.  The core
            itself retains nothing, which is what bounds a long-lived
            worker's memory.
        clock: Time source for every timestamp the core stamps — submission,
            admission, commits, completion, deadline expiry and the prefill
            timing accumulator.  Defaults to ``time.perf_counter`` (the wall
            clock).  The traffic harness injects a
            :class:`~repro.traffic.clock.SimulatedClock` here so whole load
            tests replay deterministically in virtual time: timestamps, TTFT
            series and deadline expiries then depend only on the trace and
            the replayer's cost model, never on host speed.
    """

    def __init__(
        self,
        model: MedusaLM,
        tokenizer: BPETokenizer,
        strategy: DecodingStrategy = DecodingStrategy.OURS,
        acceptance: Optional[TypicalAcceptance] = None,
        num_candidates: int = 3,
        max_speculative_heads: Optional[int] = None,
        scheduler_config: Optional[SchedulerConfig] = None,
        prefix_cache: Optional[PrefixCache] = None,
        kv_memory: str = "paged",
        kv_block_size: int = 16,
        kv_pool_blocks: Optional[int] = None,
        on_finish: Optional[Callable[[RequestState, DecodeResult], None]] = None,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        if model.is_encoder_decoder:
            raise ValueError(
                "serving supports decoder-only backbones; encoder-decoder "
                "serving needs ragged cross-attention memories (not implemented)"
            )
        self.model = model
        self.tokenizer = tokenizer
        self.strategy = strategy
        self.acceptance = acceptance or TypicalAcceptance()
        self.num_candidates = max(1, num_candidates)
        self.max_speculative_heads = (
            model.num_medusa_heads
            if max_speculative_heads is None
            else min(max_speculative_heads, model.num_medusa_heads)
        )
        self.scheduler = Scheduler(scheduler_config or SchedulerConfig())
        self.prefix_cache = prefix_cache
        self.on_finish = on_finish or (lambda state, result: None)
        #: Every timestamp the core produces flows through this callable.
        self.clock: Callable[[], float] = clock or time.perf_counter
        if kv_memory not in ("paged", "row"):
            raise ValueError(f"kv_memory must be 'paged' or 'row', got {kv_memory!r}")
        self.kv_memory = kv_memory
        self._pool: Optional[KVBlockPool] = None
        if kv_memory == "paged":
            self._pool = model.new_block_pool(
                block_size=kv_block_size,
                num_blocks=kv_pool_blocks or self._default_pool_blocks(kv_block_size),
            )
            # Last-resort reclaim before the pool raises KVPoolExhausted:
            # drop retained prefix-cache entries so their unshared blocks
            # return to the free list mid-allocation.
            self._pool.on_pressure = self._reclaim_pages
        #: Prompt tokens physically copied into cache rows by prefix-cache
        #: splices.  Row mode copies every reused position; paged mode
        #: aliases blocks, so this stays 0 — the zero-copy assertion the
        #: serving tests pin down.
        self.prefix_copy_tokens = 0
        #: Row-mode peak of summed live cache bytes (the paged pool tracks
        #: its own physical peak; see :meth:`kv_pool_stats`).
        self._kv_bytes_peak = 0
        if prefix_cache is not None:
            # Retained K/V is model-specific; binding rejects accidentally
            # sharing one cache across engines that wrap different models.
            prefix_cache.bind(model)
        #: Prompt tokens actually run through prefill forwards / served from
        #: retained K/V instead — the bench's prefill-savings numerator and
        #: denominator.  Counted per core (a shared PrefixCache carries its
        #: own cache-lifetime counters), so reports stay scoped to this
        #: core's traffic.
        self.tokens_prefilled_total = 0
        self.tokens_reused_total = 0
        self.prefix_hits = 0
        self.prefix_misses = 0
        vocab = tokenizer.vocab
        self.frag_id = vocab.frag_id
        self.eos_id = vocab.eos_id
        self.bos_id = vocab.bos_id
        self.max_seq_len = model.backbone.max_seq_len
        #: Shared ragged cache (``KVCache`` or ``PagedKVCache`` per
        #: ``kv_memory``): one row per entry of ``_active`` (same order).
        self._cache = None
        self._active: List[RequestState] = []
        #: Admitted requests whose prompts are still entering their private
        #: batch-1 caches (chunked prefill); FCFS order.
        self._prefilling: List[RequestState] = []
        #: In-flight requests carrying a deadline; pruned as they finish.
        self._deadlined: List[RequestState] = []

    # ------------------------------------------------------------------ #
    # K/V memory
    # ------------------------------------------------------------------ #

    def _default_pool_blocks(self, block_size: int) -> int:
        """Size the paged pool from the scheduler budgets.

        Worst-case committed context (the scheduler's token budget, plus one
        partially-filled tail block per request), plus the speculative
        verification transient (each request tiled once per candidate; every
        tile copy-on-writes its tail block and appends the speculative
        window), plus full prefix-cache retention, plus a small slack so
        transient chunked-prefill tails never graze the ceiling.
        """

        def blocks(tokens: int) -> int:
            return -(-tokens // block_size)

        cfg = self.scheduler.config
        decode = blocks(cfg.max_batch_tokens) + cfg.max_active_requests
        window = self.max_speculative_heads + 2
        speculative = cfg.max_active_requests * self.num_candidates * (1 + blocks(window))
        retention = blocks(self.prefix_cache.max_tokens) if self.prefix_cache is not None else 0
        return decode + speculative + retention + 8

    def _reclaim_pages(self) -> bool:
        """Pool-pressure hook: free pages by dropping a retained prefix entry.

        Returns True when an entry was evicted (the pool retries the
        allocation; each eviction strictly shrinks the prefix cache, so the
        retry loop terminates), False when nothing is reclaimable — at which
        point the pool raises :class:`~repro.nn.kv_pool.KVPoolExhausted`.
        """
        if self.prefix_cache is None:
            return False
        return self.prefix_cache.evict_lru()

    def _admission_kwargs(self) -> dict:
        """Scheduler.admit budgets: the pool's free pages, in tokens.

        The per-request overhead charges the tail block its footprint
        rounds into plus the verification transient (one copy-on-write tail
        block and a window's worth of fresh blocks per candidate tile), so
        an admitted batch can always complete a speculative step without
        tripping the pressure path.

        Free pages are reported net of the *outstanding* claims of requests
        admitted earlier: each in-flight request was admitted against its
        whole footprint-plus-overhead, but only holds the blocks its rows
        have grown into so far.  Handing the difference to a new admission
        would double-book the same pages across steps and drive a tight pool
        into :class:`~repro.nn.kv_pool.KVPoolExhausted` once both requests
        reach their peak.
        """
        if self._pool is None:
            return {}
        block_size = self._pool.block_size
        window = self.max_speculative_heads + 2
        overhead_blocks = 1 + self.num_candidates * (1 + -(-window // block_size))
        overhead_tokens = overhead_blocks * block_size
        reserved = 0
        for row, state in enumerate(self._active):
            held = self._cache.blocks_held(row) * block_size if self._cache is not None else 0
            reserved += max(0, state.request.footprint_tokens + overhead_tokens - held)
        for state in self._prefilling:
            held = state.row_cache.blocks_held(0) * block_size if state.row_cache is not None else 0
            reserved += max(0, state.request.footprint_tokens + overhead_tokens - held)
        return {
            "free_page_tokens": max(0, self._pool.num_free * block_size - reserved),
            "page_overhead_tokens": overhead_tokens,
        }

    def free_kv_tokens(self) -> Optional[int]:
        """Unreserved page capacity in tokens (``None`` in row mode).

        The backpressure number a worker reports to its router: how many
        prompt+output tokens new admissions could claim right now without
        deferral.
        """
        if self._pool is None:
            return None
        return self._admission_kwargs()["free_page_tokens"]

    def _new_row_cache(self):
        """Fresh single-row cache for a prefilling request, in the core's mode."""
        if self._pool is not None:
            return PagedKVCache(self._pool, batch=1)
        return self.model.new_cache()

    def _concat(self, caches):
        """Merge caches into one shared batch, dispatching on the memory mode."""
        if self._pool is not None:
            return PagedKVCache.concat(caches)
        return KVCache.concat(caches)

    def _note_kv_bytes(self, extra: int = 0) -> None:
        """Track row-mode peak K/V bytes (paged mode: the pool tracks itself)."""
        if self._pool is not None:
            return
        total = extra + self._row_kv_bytes()
        if total > self._kv_bytes_peak:
            self._kv_bytes_peak = total

    def _row_kv_bytes(self) -> int:
        total = self._cache.nbytes if self._cache is not None else 0
        for state in self._prefilling:
            if state.row_cache is not None:
                total += state.row_cache.nbytes
        return total

    def kv_pool_stats(self) -> dict:
        """K/V memory counters of this core, uniform across both modes.

        Paged mode reports the pool's physical truth — block occupancy,
        cross-row sharing, copy-on-write events, peak blocks ever resident —
        plus ``prefix_copy_tokens`` (always 0: prefix hits alias pages).
        Row mode reports the same keys with block fields ``None``/0, byte
        fields from the core-tracked sum of live contiguous buffers
        (*reserved* capacity, which is what row mode actually allocates),
        and ``prefix_copy_tokens`` counting every spliced position.  The
        shared-prefix memory bench compares ``peak_kv_bytes`` across modes.
        """
        if self._pool is not None:
            stats = self._pool.stats()
            stats["kv_memory"] = "paged"
            stats["prefix_copy_tokens"] = self.prefix_copy_tokens
            return stats
        in_use = self._row_kv_bytes()
        self._kv_bytes_peak = max(self._kv_bytes_peak, in_use)
        return {
            "kv_memory": "row",
            "block_size": None,
            "num_blocks": None,
            "blocks_in_use": None,
            "blocks_free": None,
            "occupancy": None,
            "shared_blocks": 0,
            "shared_block_ratio": 0.0,
            "cow_events": 0,
            "kv_bytes_in_use": in_use,
            "peak_kv_bytes": self._kv_bytes_peak,
            "prefix_copy_tokens": self.prefix_copy_tokens,
        }

    # ------------------------------------------------------------------ #
    # Intake
    # ------------------------------------------------------------------ #

    def enqueue(self, state: RequestState) -> None:
        """Hand a validated request state to the scheduler (front-ends call this).

        The front-end owns id allocation and validation; the core only takes
        custody — scheduler queue entry and, for deadlined requests, the
        expiry watch list.
        """
        state.submitted_at = self.clock()
        self.scheduler.submit(state)
        if state.request.deadline_seconds is not None:
            self._deadlined.append(state)

    def forget_deadline(self, state: RequestState) -> None:
        """Drop a settled request from the deadline watch list (see ``forget``)."""
        self._deadlined = [s for s in self._deadlined if s is not state]

    @property
    def has_work(self) -> bool:
        """True while any request is queued or running."""
        return self.scheduler.has_work

    @property
    def num_active(self) -> int:
        return len(self._active)

    @property
    def num_prefilling(self) -> int:
        """Admitted requests whose prompts are still entering the cache."""
        return len(self._prefilling)

    # ------------------------------------------------------------------ #
    # One engine iteration
    # ------------------------------------------------------------------ #

    def step(self) -> None:
        """Expire deadlines, admit what fits, advance prefills, step every running request."""
        self._expire_deadlines()
        self._admit()
        self._advance_prefill()
        if not self._active:
            return
        if self.strategy is DecodingStrategy.NTP or self.model.num_medusa_heads == 0:
            self._step_ntp()
        else:
            self._step_speculative()

    # -- cancellation and deadlines --------------------------------------- #

    def cancel_state(self, state: RequestState, timed_out: bool = False) -> bool:
        """Cancel a request, releasing every resource it holds *immediately*.

        Works in any pre-finished state and frees, in the same step: a queued
        request's slot in the waiting queue; a prefilling request's
        ``tokens_in_flight`` footprint, concurrency slot and private prefill
        row (including the retained prefix-cache K/V spliced into it); a
        running request's footprint, slot and its row of the shared KV cache
        (compacted out right here, not deferred to retirement).

        A partial :class:`~repro.core.decoding.DecodeResult` (``cancelled``
        set) is frozen through ``on_finish`` and done-listeners fire so
        streaming consumers unblock.  Returns True if the request was
        actually cancelled, False if it had already settled (cancellation
        after completion is a no-op, never an error).
        """
        if state.status in (RequestStatus.FINISHED, RequestStatus.CANCELLED):
            return False
        if state.status is RequestStatus.RUNNING:
            row = self._active.index(state)
            self._active.remove(state)
            if self._cache is not None:
                self._cache.select_rows([r for r in range(len(self._active) + 1) if r != row])
        elif state.status is RequestStatus.PREFILLING:
            self._prefilling.remove(state)
        self.scheduler.remove(state)
        # Dropping the private row releases the prefill K/V computed so far,
        # including any prefix-cache segment spliced in at admission; in
        # paged mode the explicit release returns its block refs to the pool
        # immediately (pages free now, not at garbage collection).
        if state.row_cache is not None:
            state.row_cache.release()
        state.row_cache = None
        state.status = RequestStatus.CANCELLED
        state.timed_out = timed_out
        self._finish(state, release=False)
        return True

    def _expire_deadlines(self) -> None:
        """Cancel in-flight requests whose submission deadline has passed."""
        if not self._deadlined:
            return
        now = self.clock()
        still_waiting: List[RequestState] = []
        for state in self._deadlined:
            if state.status in (RequestStatus.FINISHED, RequestStatus.CANCELLED):
                continue
            if now - state.submitted_at >= state.request.deadline_seconds:
                self.cancel_state(state, timed_out=True)
            else:
                still_waiting.append(state)
        self._deadlined = still_waiting

    # -- admission and prefill ------------------------------------------- #

    def _admit(self) -> None:
        """Move newly admitted requests into prefill, splicing any reusable prefix.

        Each admitted request gets a fresh batch-1 cache row.  With a prefix
        cache attached, the longest retained prefix of the prompt (capped at
        ``prompt_len - 1`` so the suffix forward always produces the
        last-position logits that seed decoding) is spliced in — a zero-copy
        block-table alias in paged mode, a per-layer copy in row mode; the
        request then only prefills its suffix.

        In paged mode admission is additionally gated on the pool's free
        pages (:meth:`_admission_kwargs`); before asking the scheduler, the
        head-of-queue request pre-evicts retained prefix entries while it
        would not fit, so retention never starves admission.
        """
        if self._pool is not None and self.prefix_cache is not None and self.scheduler.waiting:
            head = self.scheduler.waiting[0]
            kwargs = self._admission_kwargs()
            needed = head.request.footprint_tokens + kwargs["page_overhead_tokens"]
            while (
                self._admission_kwargs()["free_page_tokens"] < needed
                and self.prefix_cache.evict_lru()
            ):
                pass
        for state in self.scheduler.admit(**self._admission_kwargs()):
            state.started_at = self.clock()
            prompt = state.request.prompt_ids
            # Built before the budget check so even a prompt-overflow finish
            # runs the grammar closure, exactly like sequential generate.
            state.grammar_mask = grammar_mask(state.request.config.grammar, self.tokenizer)
            if decoder_budget_exceeded(len(prompt), 0, 1, self.max_seq_len):
                # The prompt already fills the context window: finish with an
                # empty output, exactly like sequential generate.
                self._finish(state)
                continue
            state.row_cache = self._new_row_cache()
            state.rng = derive_request_rng(state.request)
            if self.prefix_cache is not None:
                matched, segment = self.prefix_cache.lookup(prompt, limit=len(prompt) - 1)
                if matched:
                    state.row_cache.splice_prefix(0, segment)
                    if self._pool is None:
                        # Row mode physically copies the reused positions;
                        # paged splices alias blocks and charge nothing here.
                        self.prefix_copy_tokens += matched
                    state.prefill_pos = matched
                    state.tokens_reused = matched
                    self.tokens_reused_total += matched
                    self.prefix_hits += 1
                else:
                    self.prefix_misses += 1
            self._prefilling.append(state)

    def _advance_prefill(self) -> None:
        """Prefill prompt chunks under the per-step budget; activate finished prompts.

        ``SchedulerConfig.max_prefill_tokens_per_step`` bounds the prompt
        tokens forwarded this step, FCFS across prefilling requests (``None``
        = prefill whole prompts immediately, the unchunked behaviour).
        Chunking is a pure compute-layout change: a chunk's forward attends
        over the cached earlier chunks exactly as those positions attend in a
        monolithic prefill, so the resulting K/V and last-position logits are
        identical.

        A request whose last prompt token was forwarded takes its Medusa-head
        logits from that final chunk, has its prompt retained in the prefix
        cache, and joins the running batch (its private row is merged into
        the shared cache).  ``prefill_seconds`` accumulates only the model
        forwards (plus the final head evaluation), matching sequential
        decoding's ``DecodeResult.prefill_seconds``; splicing, retention and
        scheduling bookkeeping are excluded.
        """
        if not self._prefilling:
            return
        budget = self.scheduler.prefill_budget_per_step
        still_prefilling: List[RequestState] = []
        ready: List[RequestState] = []
        for state in self._prefilling:
            prompt = state.request.prompt_ids
            # At most one forward per prefilling request per step: the chunk
            # either finishes the prompt or exhausts the step budget.
            if state.prefill_pos < len(prompt) and (budget is None or budget > 0):
                chunk_len = len(prompt) - state.prefill_pos
                if budget is not None:
                    chunk_len = min(chunk_len, budget)
                    budget -= chunk_len
                chunk = np.asarray(
                    [prompt[state.prefill_pos : state.prefill_pos + chunk_len]], dtype=np.int64
                )
                forward_start = self.clock()
                base_logits, hidden = self.model.forward_hidden(chunk, cache=state.row_cache)
                if state.prefill_pos + chunk_len == len(prompt):
                    state.last_base = base_logits[0, -1]
                    state.last_heads = [h[0] for h in self.model.head_logits_at(hidden[:, -1])]
                state.prefill_seconds += self.clock() - forward_start
                state.prefill_pos += chunk_len
                self.tokens_prefilled_total += chunk_len
            if state.prefill_pos == len(prompt):
                ready.append(state)
            else:
                still_prefilling.append(state)
        self._prefilling = still_prefilling
        self._note_kv_bytes()
        if not ready:
            return
        new_caches: List = []
        for state in ready:
            prompt = state.request.prompt_ids
            if self.prefix_cache is not None and self.prefix_cache.would_retain(prompt):
                # snapshot_prefix is the mode-neutral retention hook: a
                # per-layer copy (KVSegment) in row mode, a refcounted block
                # pin (PagedPrefix, zero-copy) in paged mode.
                self.prefix_cache.insert(prompt, state.row_cache.snapshot_prefix(0, len(prompt)))
            state.status = RequestStatus.RUNNING
            new_caches.append(state.row_cache)
            state.row_cache = None
            self._active.append(state)
        existing = [self._cache] if self._cache is not None and self._cache.batch > 0 else []
        self._cache = self._concat(existing + new_caches)
        self._note_kv_bytes()

    # -- NTP: one committed token per request per step ------------------- #

    def _step_ntp(self) -> None:
        """Batched next-token prediction: sample per request, one shared forward."""
        continuing: List[RequestState] = []
        continuing_rows: List[int] = []
        next_tokens: List[int] = []
        finished: List[RequestState] = []
        commit_time = self.clock()
        for row, state in enumerate(self._active):
            config = state.request.config
            token = masked_sample(state.last_base, config, state.rng, state.grammar_mask)
            if state.grammar_mask is not None:
                state.grammar_mask.advance(token)
            state.record_commit([token], commit_time)
            state.step_records.append(StepRecord(proposed=1, accepted=1, committed=1, ends_at_boundary=True))
            if token == self.eos_id:
                state.stopped_by_eos = True
            if self._is_done(state):
                finished.append(state)
            else:
                continuing.append(state)
                continuing_rows.append(row)
                next_tokens.append(token)
        if len(continuing) < len(self._active):
            # Reclaim finished requests' rows even when nothing continues, so
            # stale rows never leak into the next admission's concat.
            self._cache.select_rows(continuing_rows)
        if continuing:
            tokens = np.asarray(next_tokens, dtype=np.int64)[:, None]
            base_logits, _ = self.model.forward_hidden(tokens, cache=self._cache)
            for row, state in enumerate(continuing):
                state.last_base = base_logits[row, -1]
        self._active = continuing
        for state in finished:
            self._finish(state)

    # -- Medusa / Ours: batched speculative verification ------------------ #

    def _step_speculative(self) -> None:
        """Propose per request, verify all candidates in one shared forward, commit."""
        active = self._active
        prefix_lens = self._cache.lengths
        all_candidates: List[List[List[int]]] = []
        request_widths: List[int] = []
        unpruned_counts: List[Optional[int]] = []
        for state in active:
            config = state.request.config
            candidates = propose_candidates(
                state.last_base,
                state.last_heads,
                config,
                state.rng,
                num_candidates=self.num_candidates,
                max_heads=self.max_speculative_heads,
                mask=state.grammar_mask,
            )
            extra = max_step_extra(
                state.prompt_len, len(state.output_ids), state.remaining_tokens, self.max_seq_len
            )
            candidates = dedupe_candidates([c[:extra] for c in candidates])
            if state.grammar_mask is not None:
                # Like-for-like savings baseline: what this request's own
                # verification accounting would charge for the unfiltered set
                # (its tree's node count, or its rows x its padded width).
                if config.tree_verify:
                    unpruned = TokenTree.from_candidates(candidates).size
                else:
                    unpruned = len(candidates) * max(len(c) for c in candidates)
                unpruned_counts.append(unpruned)
                candidates = dedupe_candidates(prefilter_candidates(candidates, state.grammar_mask))
            else:
                unpruned_counts.append(None)
            all_candidates.append(candidates)
            request_widths.append(max(len(c) for c in candidates))

        if any(state.request.config.tree_verify for state in active):
            # Token trees in the shared forward: one row per *request* instead
            # of one per candidate.  Requests that did not opt in ride along
            # as non-deduplicated forests (independent root chains), which
            # compute exactly what their row-batched layout computes.
            self._verify_tree_step(active, prefix_lens, all_candidates, unpruned_counts)
            return

        # One shared verification forward: tile each request's cache row once
        # per candidate and right-pad every candidate window to the widest
        # window in the batch.  Per-row append widths stop each request's
        # padding (and any window positions past its own context budget) from
        # entering the cache; padded query slots produce garbage logits that
        # are never read.
        window = max(request_widths)
        counts = [len(candidates) for candidates in all_candidates]
        batch_rows: List[List[int]] = []
        for candidates in all_candidates:
            batch_rows.extend(pad_candidates(candidates, width=window))
        # The step cache lives only for this one verification forward, so trim
        # its capacity to what the step can touch instead of allocating (and
        # zeroing) full max_seq_len buffers every iteration.
        step_capacity = int(self._cache.length) + window
        step_cache = self._cache.repeat_rows(counts, capacity=step_capacity)
        self._note_kv_bytes(extra=step_cache.nbytes)
        row_widths = np.repeat(np.asarray(request_widths, dtype=np.int64), counts)
        step_cache.set_append_widths(row_widths)
        try:
            base_v, hidden_v = self.model.forward_hidden(
                np.asarray(batch_rows, dtype=np.int64), cache=step_cache
            )
        finally:
            step_cache.set_append_widths(None)

        # Per request: score candidates, commit the best run, pick the row
        # and committed length the cache compaction keeps.
        # One vectorised argmax over every row and window position serves the
        # greedy verification of all requests at once (skipped when the whole
        # batch is sampling and nothing would read it).
        any_greedy = any(
            state.request.config.greedy or state.request.config.temperature <= 0.0 for state in active
        )
        argmax_v = np.argmax(base_v, axis=-1) if any_greedy else None
        keep_rows: List[int] = []
        committed_lengths: List[int] = []
        committed_positions: List[int] = []
        offset = 0
        for index, state in enumerate(active):
            candidates = all_candidates[index]
            config = state.request.config
            # Logits predicting candidate token i live at window position
            # i-1; token 0's predictor is the held last-position logits.
            if config.greedy or config.temperature <= 0.0:
                greedy_argmax = [
                    argmax_v[offset + row, : len(candidate) - 1] for row, candidate in enumerate(candidates)
                ]
                logits_lists = None
            else:
                greedy_argmax = None
                logits_lists = [
                    [state.last_base] + [base_v[offset + row, i - 1] for i in range(1, len(candidate))]
                    for row, candidate in enumerate(candidates)
                ]
            best_tokens, best_accepted, best_row = select_best_candidate(
                candidates,
                logits_lists,
                config,
                acceptance=self.acceptance,
                strategy=self.strategy,
                frag_id=self.frag_id,
                eos_id=self.eos_id,
                greedy_argmax=greedy_argmax,
            )
            committed = len(best_tokens)
            if state.grammar_mask is not None:
                for token_id in best_tokens:
                    state.grammar_mask.advance(token_id)
            state.record_commit(best_tokens, self.clock())
            state.step_records.append(
                StepRecord(
                    proposed=len(candidates[0]),
                    accepted=best_accepted,
                    committed=committed,
                    ends_at_boundary=best_tokens[-1] in (self.frag_id, self.eos_id),
                    # The request's own candidate rows x its own padded width
                    # (cross-request window padding is a batching artifact and
                    # is not charged to the request).
                    verified=len(candidates) * request_widths[index],
                    verified_unpruned=unpruned_counts[index],
                )
            )
            if self.eos_id in best_tokens:
                state.stopped_by_eos = True
            # The verification forward already produced the logits/hidden at
            # the last committed position — they seed the next step's proposal.
            state.last_base = base_v[offset + best_row, committed - 1]
            keep_rows.append(offset + best_row)
            committed_lengths.append(int(prefix_lens[index]) + committed)
            committed_positions.append(committed - 1)
            offset += len(candidates)

        # One batched Medusa-head evaluation at each request's last committed
        # position (the only place head logits are ever read).
        last_hidden = hidden_v[keep_rows, committed_positions]
        head_logits = self.model.head_logits_at(last_hidden)
        for index, state in enumerate(active):
            state.last_heads = [h[index] for h in head_logits]

        # Compact: accepted candidate row per request, rolled back to its
        # committed prefix (one fused copy in row mode, a block-table alias
        # in paged mode); then release the transient tiling and the old
        # shared cache (paged: drop their block refs — no-op in row mode)
        # and reclaim the rows of finished requests.
        new_cache = step_cache.compact_rows(keep_rows, committed_lengths)
        step_cache.release()
        self._cache.release()
        self._cache = new_cache
        self._retire_finished()

    def _verify_tree_step(
        self,
        active: List[RequestState],
        prefix_lens: np.ndarray,
        all_candidates: List[List[List[int]]],
        unpruned_counts: Optional[List[Optional[int]]] = None,
    ) -> None:
        """Verify one token tree per in-flight request inside one shared forward.

        Each request keeps exactly one cache row; its candidate tree
        (prefix-deduplicated when the request's config asks for
        ``tree_verify``, a row-equivalent forest otherwise) is appended after
        the row's committed prefix, with a per-row tree attention bias and
        per-node position offsets.  After acceptance, the cache is compacted
        to each request's accepted root-to-leaf path
        (:meth:`~repro.nn.kv_cache.KVCache.compact_paths`).  Committed tokens
        are identical to the row-batched step and to sequential generate.
        """
        trees = [
            TokenTree.from_candidates(candidates, dedup=state.request.config.tree_verify)
            for state, candidates in zip(active, all_candidates)
        ]
        sizes = [tree.size for tree in trees]
        window = max(sizes)
        prefixes = [int(length) for length in prefix_lens]
        view = max(prefix + size for prefix, size in zip(prefixes, sizes))
        # One row per request; the step cache lives only for this forward, so
        # trim its capacity to the step's maximum extent.
        step_cache = self._cache.repeat_rows(1, capacity=view)
        self._note_kv_bytes(extra=step_cache.nbytes)
        tokens = pad_tree_tokens(trees, window)
        bias = tree_bias_cached(trees, prefixes, window, view)
        offsets = tree_position_offsets(trees, window)
        step_cache.set_append_widths(sizes)
        try:
            base_v, hidden_v = self.model.forward_hidden(
                tokens, cache=step_cache, attn_bias=bias, position_offsets=offsets
            )
        finally:
            step_cache.set_append_widths(None)

        any_greedy = any(
            state.request.config.greedy or state.request.config.temperature <= 0.0 for state in active
        )
        argmax_v = np.argmax(base_v, axis=-1) if any_greedy else None
        paths: List[List[int]] = []
        last_nodes: List[int] = []
        for index, state in enumerate(active):
            tree = trees[index]
            candidates = all_candidates[index]
            config = state.request.config
            # The predictor of candidate token i is its candidate's node i-1;
            # token 0's predictor is the held last-position logits.
            if config.greedy or config.temperature <= 0.0:
                greedy_argmax = [
                    argmax_v[index, np.asarray(nodes[:-1], dtype=np.int64)] for nodes in tree.candidate_nodes
                ]
                logits_lists = None
            else:
                greedy_argmax = None
                logits_lists = [
                    [state.last_base] + [base_v[index, node] for node in nodes[:-1]]
                    for nodes in tree.candidate_nodes
                ]
            best_tokens, best_accepted, best_row = select_best_candidate(
                candidates,
                logits_lists,
                config,
                acceptance=self.acceptance,
                strategy=self.strategy,
                frag_id=self.frag_id,
                eos_id=self.eos_id,
                greedy_argmax=greedy_argmax,
            )
            committed = len(best_tokens)
            if state.grammar_mask is not None:
                for token_id in best_tokens:
                    state.grammar_mask.advance(token_id)
            state.record_commit(best_tokens, self.clock())
            # Requests that did not opt into trees ride along as forests, but
            # their *stats* keep the row-batched accounting (their own rows x
            # their own padded width) so a request's reported verified count
            # never depends on who shares its batch — same rule as the row
            # step's cross-request padding.
            if config.tree_verify:
                verified = tree.size
            else:
                verified = len(candidates) * max(len(candidate) for candidate in candidates)
            state.step_records.append(
                StepRecord(
                    proposed=len(candidates[0]),
                    accepted=best_accepted,
                    committed=committed,
                    ends_at_boundary=best_tokens[-1] in (self.frag_id, self.eos_id),
                    verified=verified,
                    verified_unpruned=None if unpruned_counts is None else unpruned_counts[index],
                )
            )
            if self.eos_id in best_tokens:
                state.stopped_by_eos = True
            path = tree.path(best_row, committed)
            paths.append(path)
            last_nodes.append(path[-1])
            state.last_base = base_v[index, path[-1]]

        # One batched Medusa-head evaluation at each request's last committed
        # node (the only place head logits are ever read).
        last_hidden = hidden_v[np.arange(len(active)), last_nodes]
        head_logits = self.model.head_logits_at(last_hidden)
        for index, state in enumerate(active):
            state.last_heads = [h[index] for h in head_logits]

        # Compact every row to its committed prefix + accepted path (one
        # fused copy of the path tokens; paged mode aliases the prefix
        # blocks); then release the transient step cache and the old shared
        # cache (paged: drop their block refs — no-op in row mode) and
        # reclaim the rows of finished requests.
        new_cache = step_cache.compact_paths(list(range(len(active))), prefixes, paths)
        step_cache.release()
        self._cache.release()
        self._cache = new_cache
        self._retire_finished()

    # -- completion ------------------------------------------------------ #

    def _is_done(self, state: RequestState) -> bool:
        """Mirror of the sequential decoder's loop-exit conditions."""
        return (
            state.stopped_by_eos
            or state.remaining_tokens <= 0
            or decoder_budget_exceeded(state.prompt_len, len(state.output_ids), 1, self.max_seq_len)
        )

    def _retire_finished(self) -> None:
        """Drop finished requests from the active set and reclaim their cache rows."""
        survivors: List[RequestState] = []
        survivor_rows: List[int] = []
        finished: List[RequestState] = []
        for row, state in enumerate(self._active):
            if self._is_done(state):
                finished.append(state)
            else:
                survivors.append(state)
                survivor_rows.append(row)
        if finished:
            self._cache.select_rows(survivor_rows)
            self._active = survivors
            for state in finished:
                self._finish(state)

    def _finish(self, state: RequestState, release: bool = True) -> None:
        """Freeze the request's result, hand it to ``on_finish``, notify listeners.

        ``release=True`` (the normal completion path) also evicts the request
        from the scheduler; cancellation passes ``release=False`` because
        :meth:`cancel_state` already removed it (and must not have its
        ``CANCELLED`` status overwritten by the scheduler's ``FINISHED``
        transition).
        """
        if state.grammar_mask is not None and state.status is not RequestStatus.CANCELLED:
            # Budget ran out mid-module: commit the grammar closure through
            # record_commit so streaming consumers observe exactly the tokens
            # the batch result reports (byte-identity between the two paths).
            # Cancelled requests freeze their partial output untouched.
            closure = closure_token_ids(state.grammar_mask, self.tokenizer)
            if closure:
                state.record_commit(closure, self.clock())
                state.closure_tokens = len(closure)
        state.finished_at = self.clock()
        if release:
            self.scheduler.release(state)
        text = self.tokenizer.decode(state.output_ids, keep_frag=True)
        code = self.tokenizer.decode(state.output_ids, keep_frag=False)
        result = state.to_result(text, code)
        self.on_finish(state, result)
        # Drop the held logits so finished requests don't pin vocab-width
        # arrays for the core's lifetime.
        state.last_base = None
        state.last_heads = []
        state.notify_done()


__all__ = ["EngineCore"]
