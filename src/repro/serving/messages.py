"""Plain-data control surface of the serving engine.

Every way of driving an engine — the in-process
:class:`~repro.serving.server.AsyncServingEngine`, a
:class:`~repro.serving.worker.EngineWorker` process behind a pipe, or a test
poking at scheduling edge cases — speaks the same small vocabulary of
**commands** and **replies** defined here.  The contract:

* messages are frozen dataclasses of plain data only (ints, floats, strings,
  lists, dicts) — no numpy arrays, callables, locks or engine objects — so
  they pickle across a ``multiprocessing`` pipe and could equally be encoded
  as JSON;
* one command maps to exactly one reply (:func:`reply_type_for`); unsolicited
  worker traffic (heartbeats, crash reports) uses the event types so a router
  can interleave solicited and unsolicited messages on one connection;
* request results and configs cross the boundary as dicts produced by the
  codecs (:func:`encode_config`/:func:`decode_config`,
  :func:`encode_result`/:func:`decode_result`) — round-tripping is lossless
  and asserted in ``tests/test_router.py``.

The symmetry is the point of the layer split: because
:class:`~repro.serving.control.EngineControl` answers these messages the same
way whether it runs in the caller's process or inside a worker, the router's
single-worker output is token-identical to driving the engine directly.
"""

from __future__ import annotations

import hashlib
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Tuple, Type

from repro.core.decoding import DecodeResult, StepRecord
from repro.models.generation import GenerationConfig

#: Protocol version stamped into :class:`WorkerHello`; a router refuses a
#: worker speaking a different version instead of mis-parsing its traffic.
PROTOCOL_VERSION = 1


# --------------------------------------------------------------------------- #
# Codecs: GenerationConfig / DecodeResult <-> plain dicts
# --------------------------------------------------------------------------- #


def encode_config(config: GenerationConfig) -> dict:
    """Flatten a :class:`GenerationConfig` into a plain dict."""
    return asdict(config)


def decode_config(payload: dict) -> GenerationConfig:
    """Rebuild a :class:`GenerationConfig` from :func:`encode_config` output.

    Unknown keys raise instead of being dropped: silently ignoring a field
    (say, a future sampling knob) would make a router and a newer worker
    *appear* to agree while decoding different requests.
    """
    return GenerationConfig(**payload)


def encode_result(result: DecodeResult) -> dict:
    """Flatten a :class:`DecodeResult` (nested step records included)."""
    payload = asdict(result)
    payload["step_records"] = [asdict(record) for record in result.step_records]
    return payload


def decode_result(payload: dict) -> DecodeResult:
    """Rebuild a :class:`DecodeResult` from :func:`encode_result` output."""
    data = dict(payload)
    data["step_records"] = [StepRecord(**record) for record in data.get("step_records", [])]
    return DecodeResult(**data)


# --------------------------------------------------------------------------- #
# Affinity hashing
# --------------------------------------------------------------------------- #


def preamble_key(prompt_ids: List[int], preamble_tokens: int) -> int:
    """Stable 64-bit hash of a prompt's preamble, for prefix-affinity routing.

    Hashes the first ``preamble_tokens`` token ids through SHA-256 so the
    mapping is identical across processes, interpreter restarts and Python
    versions (the built-in ``hash`` is salted per process for strings and
    would scatter the same preamble across workers between runs).  Requests
    sharing a preamble therefore land on the same worker — the one whose
    prefix cache already holds the preamble's K/V.
    """
    window = prompt_ids[: max(1, preamble_tokens)]
    digest = hashlib.sha256(b",".join(str(int(t)).encode() for t in window)).digest()
    return int.from_bytes(digest[:8], "big")


# --------------------------------------------------------------------------- #
# Commands (caller -> engine)
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class SubmitCommand:
    """Queue one tokenized prompt for generation.

    ``config`` is the :func:`encode_config` dict (``None`` = engine default,
    greedy).  ``request_id=None`` asks the engine to assign one; routers
    always assign ids themselves so crash requeues resubmit under the same
    identity.
    """

    prompt_ids: List[int]
    config: Optional[dict] = None
    request_id: Optional[str] = None
    priority: int = 0
    deadline: Optional[float] = None


@dataclass(frozen=True)
class CancelCommand:
    """Cancel a request in any pre-finished state (no-op once settled)."""

    request_id: str


@dataclass(frozen=True)
class StepCommand:
    """Run up to ``max_steps`` engine iterations, returning buffered events.

    The engine stops early when it runs out of work; ``max_steps > 1`` lets a
    worker amortise one pipe round-trip over several steps when the link is
    slower than the model.
    """

    max_steps: int = 1


@dataclass(frozen=True)
class DrainCommand:
    """Step until no request is queued, prefilling or running."""


@dataclass(frozen=True)
class QueryCommand:
    """Read engine state without advancing it.

    ``kind`` selects the payload: ``"stats"`` (an :class:`EngineStats`
    snapshot), ``"kv_pool_stats"``, ``"prefix_cache_stats"`` or
    ``"stream_metrics"`` (requires ``request_id``).
    """

    kind: str
    request_id: Optional[str] = None


@dataclass(frozen=True)
class ShutdownCommand:
    """Stop a worker's loop cleanly (in-flight requests are abandoned)."""


# --------------------------------------------------------------------------- #
# Replies (engine -> caller)
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class EngineStats:
    """Backpressure snapshot piggybacked on every step reply and heartbeat.

    ``free_kv_tokens`` is ``None`` for row-mode engines (no page pool to
    exhaust); routers treat it as unbounded.
    """

    queue_depth: int
    num_prefilling: int
    num_active: int
    has_work: bool
    free_kv_tokens: Optional[int]
    steps_executed: int


@dataclass(frozen=True)
class CommitEvent:
    """One committed token burst of one request (one engine step's worth)."""

    request_id: str
    tokens: List[int]
    #: Engine-local ``perf_counter`` timestamp of the commit.
    timestamp: float


@dataclass(frozen=True)
class FinishedEvent:
    """A request left the engine; carries its frozen result and metrics."""

    request_id: str
    result: dict
    cancelled: bool
    timed_out: bool
    #: ``ServingEngine.stream_metrics`` payload frozen at completion, so the
    #: front-end keeps TTFT/ITL observability after the worker forgets the
    #: request.
    stream_metrics: dict


@dataclass(frozen=True)
class SubmitReply:
    """Outcome of a :class:`SubmitCommand`.

    Validation failures travel as data (``error`` set, ``request_id`` empty)
    rather than as exceptions, because over a pipe an exception would kill
    the worker loop for what is a caller mistake.
    """

    request_id: str
    error: Optional[str] = None


@dataclass(frozen=True)
class CancelReply:
    cancelled: bool


@dataclass(frozen=True)
class StepReply:
    """Events produced by the steps just executed, plus a stats snapshot."""

    commits: List[CommitEvent]
    finished: List[FinishedEvent]
    stats: EngineStats


@dataclass(frozen=True)
class DrainReply:
    commits: List[CommitEvent]
    finished: List[FinishedEvent]
    stats: EngineStats


@dataclass(frozen=True)
class QueryReply:
    kind: str
    payload: dict


@dataclass(frozen=True)
class ShutdownReply:
    """Acknowledged; the worker exits after sending this."""


# --------------------------------------------------------------------------- #
# Worker-originated events (unsolicited)
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class WorkerHello:
    """First message a worker sends: identity + protocol handshake."""

    worker_id: str
    pid: int
    protocol: int = PROTOCOL_VERSION


@dataclass(frozen=True)
class Heartbeat:
    """Periodic liveness signal an idle worker emits between commands."""

    worker_id: str
    stats: EngineStats
    timestamp: float


@dataclass(frozen=True)
class WorkerFatal:
    """A step crashed inside the worker; the worker exits after sending this.

    The supervisor treats it exactly like a silent death (restart + requeue),
    but the error text makes the post-mortem readable.
    """

    worker_id: str
    error: str


@dataclass(frozen=True)
class Envelope:
    """Wrapper for every worker->router message.

    ``reply_to`` is the command sequence number a reply answers, or ``None``
    for unsolicited events — the router matches queries to answers by it
    while step replies and heartbeats stream in between.
    """

    worker_id: str
    seq: int
    payload: object
    reply_to: Optional[int] = None


#: Command -> reply pairing; :class:`QueryCommand` answers with
#: :class:`QueryReply` and so on.  Drivers use this to validate traffic.
_REPLY_TYPES: Dict[type, type] = {
    SubmitCommand: SubmitReply,
    CancelCommand: CancelReply,
    StepCommand: StepReply,
    DrainCommand: DrainReply,
    QueryCommand: QueryReply,
    ShutdownCommand: ShutdownReply,
}


def reply_type_for(command: object) -> Type:
    """The reply type a well-behaved engine sends for ``command``."""
    try:
        return _REPLY_TYPES[type(command)]
    except KeyError:
        raise TypeError(f"unknown engine command: {command!r}") from None


__all__ = [
    "CancelCommand",
    "CancelReply",
    "CommitEvent",
    "DrainCommand",
    "DrainReply",
    "EngineStats",
    "Envelope",
    "FinishedEvent",
    "Heartbeat",
    "PROTOCOL_VERSION",
    "QueryCommand",
    "QueryReply",
    "ShutdownCommand",
    "ShutdownReply",
    "StepCommand",
    "StepReply",
    "SubmitCommand",
    "SubmitReply",
    "WorkerFatal",
    "WorkerHello",
    "decode_config",
    "decode_result",
    "encode_config",
    "encode_result",
    "preamble_key",
    "reply_type_for",
]
