"""Cross-request prompt-prefix reuse: a token-trie over retained KV segments.

Real serving workloads re-send the same prompt preamble over and over — the
eval benches in :mod:`repro.evalbench.rtllm` / :mod:`repro.evalbench.vgen`
are exactly this shape: many problems sharing one long task instruction.
Without reuse, every admission prefills that preamble from scratch; with a
batch of ``N`` requests over ``K`` distinct preambles, ``N - K`` prefills are
redundant compute.

:class:`PrefixCache` removes them.  It keeps recently served prompts in a
token trie; each retained prompt owns a :class:`~repro.nn.kv_cache.KVSegment`
(the per-layer K/V its prefill computed, detached from the live cache).  On
admission the engine asks for the longest retained prefix of the new prompt:

* the trie walk follows the new prompt's tokens as far as any retained
  prompt's path reaches — the match may be *partial* (two prompts sharing
  only their first ``m`` tokens still reuse those ``m`` positions), because
  causal attention makes position ``i``'s K/V depend only on tokens
  ``0..i``;
* the matched segment prefix is spliced into the request's fresh cache row
  (:meth:`KVCache.splice_prefix`) and only the prompt *suffix* is prefilled.

Retention is bounded: entries are LRU-evicted once the summed retained
tokens (or bytes) exceed the configured budget.  Eviction removes the
entry's trie path; nodes shared with surviving entries stay, so partial
matches through shared preambles keep working.

Retained segments come in the two K/V storage flavours of the engine
(``docs/kv-memory.md``):

* :class:`~repro.nn.kv_cache.KVSegment` — row mode.  Each retained prompt
  owns an independent per-layer copy, so a preamble shared by ``N``
  retained prompts is stored (and charged against the byte budget) ``N``
  times.
* :class:`~repro.nn.kv_pool.PagedPrefix` — paged mode.  Retention pins the
  prompt's *blocks* in the engine's :class:`~repro.nn.kv_pool.KVBlockPool`
  by reference count; no K/V is copied, and prompts sharing a trie path
  share the underlying blocks.  Byte accounting follows the physical
  blocks: a block pinned by several retained prompts is charged against
  ``max_bytes`` **once** (the cache tracks per-block reference counts), so
  the byte budget measures real pool occupancy rather than the summed
  virtual sizes row mode would copy.

Reuse is a pure compute-layout change — the spliced K/V is byte-for-byte
what prefilling the prefix would recompute — so engine outputs stay
token-identical with the cache enabled (asserted in ``tests/test_serving.py``
and the golden fixtures).  In paged mode a hit is additionally *zero-copy*:
the request's block table aliases the retained blocks instead of copying
them (copy-on-write protects them from divergent appends).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Set, Tuple, Union

from repro.nn.kv_cache import KVSegment
from repro.nn.kv_pool import PagedPrefix

TokenKey = Tuple[int, ...]

#: Retained-K/V handle: a per-layer copy (row mode) or a refcounted block
#: reference (paged mode).  Both expose ``length``, ``nbytes`` and
#: ``head(length)``; only :class:`PagedPrefix` has ``block_ids`` /
#: ``block_nbytes`` / ``release``, which the cache probes with ``getattr``.
Segment = Union[KVSegment, PagedPrefix]


@dataclass
class PrefixCacheStats:
    """Lookup/retention counters of one :class:`PrefixCache`.

    Attributes:
        hits: Lookups that matched at least one retained token.
        misses: Lookups that matched nothing.
        tokens_reused: Prompt positions served from retained K/V instead of
            being prefilled (summed over hits).
        insertions: Entries retained (re-inserting a known prompt only
            refreshes its LRU position and does not count).
        evictions: Entries dropped to keep retention under budget.
    """

    hits: int = 0
    misses: int = 0
    tokens_reused: int = 0
    insertions: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups that reused at least one token (0.0 when idle)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def to_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
            "tokens_reused": self.tokens_reused,
            "insertions": self.insertions,
            "evictions": self.evictions,
        }


class _TrieNode:
    """One token of a retained prompt path.

    ``entries`` holds the keys of every retained prompt whose path passes
    through this node; the node exists exactly while that set is non-empty,
    so reaching a node during lookup guarantees a usable entry.  All entries
    passing through a depth-``m`` node share their first ``m`` tokens — and
    therefore (causal attention) the K/V of those ``m`` positions — so any
    of them can serve a partial match ending here.
    """

    __slots__ = ("children", "entries")

    def __init__(self) -> None:
        self.children: Dict[int, _TrieNode] = {}
        self.entries: Set[TokenKey] = set()


@dataclass
class _Entry:
    tokens: TokenKey
    segment: Segment


@dataclass
class PrefixCache:
    """LRU token-trie of retained prompt prefixes and their KV segments.

    Args:
        max_tokens: Retention budget as summed retained prompt tokens.  A
            prompt longer than the whole budget is simply not retained.
        max_bytes: Optional additional budget on summed segment storage
            (K and V, all layers); ``None`` leaves bytes unbounded.  The
            token and byte budgets are both enforced — eviction runs until
            the cache satisfies every configured bound.  With paged
            segments, a physical block pinned by several retained prompts
            is charged **once** — the budget tracks real pool occupancy,
            not the summed virtual prompt sizes.
    """

    max_tokens: int = 4096
    max_bytes: Optional[int] = None
    stats: PrefixCacheStats = field(default_factory=PrefixCacheStats)

    def __post_init__(self) -> None:
        if self.max_tokens < 1:
            raise ValueError(f"max_tokens must be positive, got {self.max_tokens}")
        if self.max_bytes is not None and self.max_bytes < 1:
            raise ValueError(f"max_bytes must be positive, got {self.max_bytes}")
        #: Retained entries, least-recently-used first.
        self._entries: "OrderedDict[TokenKey, _Entry]" = OrderedDict()
        self._root = _TrieNode()
        self._num_tokens = 0
        self._num_bytes = 0
        #: Per-block retention refcounts (paged segments only): how many
        #: retained entries pin each physical block.  A block is charged to
        #: ``_num_bytes`` when its count goes 0 -> 1 and credited back when
        #: it returns to 0, so shared blocks are accounted exactly once.
        self._block_refs: Dict[int, int] = {}
        self._owner: Optional[object] = None

    def bind(self, owner: object) -> None:
        """Tie the cache to one model; re-binding to a different model raises.

        Retained K/V carries no record of which weights produced it, and
        :meth:`KVCache.splice_prefix` can only validate *geometry* — two
        different models with the same layer/head shape would silently accept
        each other's segments and corrupt outputs.  The serving engine calls
        this at construction, so sharing one cache between engines is allowed
        exactly when they wrap the same model object.
        """
        if self._owner is None:
            self._owner = owner
        elif self._owner is not owner:
            raise ValueError(
                "PrefixCache is already bound to a different model; retained K/V is "
                "model-specific, so each model needs its own cache"
            )

    # -- inspection ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def num_tokens(self) -> int:
        """Summed token count of all retained entries."""
        return self._num_tokens

    @property
    def num_bytes(self) -> int:
        """Summed segment storage of all retained entries.

        Row segments contribute their full copied size; paged segments
        contribute each pinned physical block once, however many entries
        share it.
        """
        return self._num_bytes

    def __contains__(self, tokens: Sequence[int]) -> bool:
        return tuple(tokens) in self._entries

    # -- lookup --------------------------------------------------------------

    def lookup(self, tokens: Sequence[int], limit: Optional[int] = None) -> Tuple[int, Optional[Segment]]:
        """Longest retained prefix of ``tokens``, as ``(matched_len, segment_view)``.

        Walks the trie along ``tokens`` (at most ``limit`` of them) as deep as
        any retained path reaches and returns a zero-copy view of a matching
        entry's first ``matched_len`` positions, refreshing that entry's LRU
        position.  ``(0, None)`` on a miss.

        The serving engine passes ``limit=len(prompt) - 1`` so at least one
        prompt token is always prefilled — the forward over the suffix is
        what produces the last-position logits that seed decoding.
        """
        depth = 0
        node = self._root
        bound = len(tokens) if limit is None else min(limit, len(tokens))
        for token in tokens[:bound]:
            child = node.children.get(int(token))
            if child is None:
                break
            node = child
            depth += 1
        if depth == 0:
            self.stats.misses += 1
            return 0, None
        # Every entry through this node shares (and its segment covers) the
        # first ``depth`` tokens, so any member serves the match; an O(1)
        # arbitrary pick keeps the hot admission path independent of how many
        # entries share the preamble.  The touch refreshes that entry's LRU
        # slot — which equally-valid member gets refreshed is immaterial.
        key = next(iter(node.entries))
        entry = self._entries[key]
        self._entries.move_to_end(key)
        self.stats.hits += 1
        self.stats.tokens_reused += depth
        return depth, entry.segment.head(depth)

    # -- retention -----------------------------------------------------------

    def would_retain(self, tokens: Sequence[int]) -> bool:
        """Cheap pre-check: would :meth:`insert` store a new entry for ``tokens``?

        Lets the engine skip gathering a prompt's K/V out of the live cache
        (a full per-layer copy) when the insert would be discarded anyway.
        An exact duplicate refreshes its LRU position here, preserving
        :meth:`insert`'s touch-on-reinsert semantics.  The byte budget cannot
        be checked without the segment, so a byte-only overflow is still
        caught inside :meth:`insert`.
        """
        key = tuple(int(token) for token in tokens)
        if not key or len(key) > self.max_tokens:
            return False
        if key in self._entries:
            self._entries.move_to_end(key)
            return False
        return True

    def insert(self, tokens: Sequence[int], segment: Segment) -> bool:
        """Retain ``segment`` as the K/V of prompt ``tokens``; returns True if stored.

        The segment must cover exactly ``len(tokens)`` positions.  Re-inserting
        a retained prompt refreshes its LRU position without copying.  Prompts
        that alone exceed a budget are not retained (retaining then instantly
        evicting everything else would just thrash).  After a successful
        insert, least-recently-used entries are evicted until every configured
        budget holds again.

        The cache takes ownership of the segment: a rejected paged segment is
        released immediately (unpinning its blocks), a retained one when it is
        later evicted.
        """
        key = tuple(int(token) for token in tokens)
        if segment.length != len(key):
            raise ValueError(f"segment covers {segment.length} positions for a {len(key)}-token prompt")
        stored = False
        if key and len(key) <= self.max_tokens and not (
            self.max_bytes is not None and segment.nbytes > self.max_bytes
        ):
            if key in self._entries:
                self._entries.move_to_end(key)
            else:
                stored = True
        if not stored:
            self._release_segment(segment)
            return False
        entry = _Entry(tokens=key, segment=segment)
        self._entries[key] = entry
        node = self._root
        for token in key:
            node = node.children.setdefault(token, _TrieNode())
            node.entries.add(key)
        self._num_tokens += len(key)
        self._charge(segment)
        self.stats.insertions += 1
        self._evict_to_budget(keep=key)
        return True

    def evict_lru(self) -> bool:
        """Drop the least-recently-used entry; ``False`` when nothing is retained.

        The paged engine's pool-pressure hook: eviction releases the entry's
        block references, so any block no other entry (or live request) still
        shares returns to the pool's free list immediately.
        """
        if not self._entries:
            return False
        self._remove(next(iter(self._entries)))
        return True

    def _charge(self, segment: Segment) -> None:
        # Add the segment's storage to ``_num_bytes``.  Paged segments charge
        # per *physical block*, first pin only; row segments charge their
        # full copied size.
        block_ids = getattr(segment, "block_ids", None)
        if block_ids is None:
            self._num_bytes += segment.nbytes
            return
        for block in block_ids:
            count = self._block_refs.get(block, 0)
            if count == 0:
                self._num_bytes += segment.block_nbytes
            self._block_refs[block] = count + 1

    def _discharge(self, segment: Segment) -> None:
        # Inverse of :meth:`_charge`: credit bytes back when the last
        # retained pin of a block disappears.
        block_ids = getattr(segment, "block_ids", None)
        if block_ids is None:
            self._num_bytes -= segment.nbytes
            return
        for block in block_ids:
            count = self._block_refs[block] - 1
            if count == 0:
                del self._block_refs[block]
                self._num_bytes -= segment.block_nbytes
            else:
                self._block_refs[block] = count

    @staticmethod
    def _release_segment(segment: Segment) -> None:
        # Paged segments hold pool refcounts that must be dropped explicitly;
        # row segments are plain copies with nothing to release.
        release = getattr(segment, "release", None)
        if release is not None:
            release()

    def _evict_to_budget(self, keep: Optional[TokenKey] = None) -> None:
        # ``keep`` (the just-inserted entry) sits at the MRU tail, so the LRU
        # head can only be it once everything else is gone — which the loop
        # bound already forbids; insert's own budget pre-checks guarantee a
        # sole surviving entry fits.
        while self._over_budget() and len(self._entries) > (1 if keep in self._entries else 0):
            self._remove(next(iter(self._entries)))

    def _over_budget(self) -> bool:
        if self._num_tokens > self.max_tokens:
            return True
        return self.max_bytes is not None and self._num_bytes > self.max_bytes

    def _remove(self, key: TokenKey) -> None:
        entry = self._entries.pop(key)
        self._num_tokens -= len(key)
        self._discharge(entry.segment)
        self._release_segment(entry.segment)
        self.stats.evictions += 1
        # Unlink the entry from its trie path, pruning nodes no surviving
        # entry passes through (leaf-to-root, so parents see updated children).
        path = [self._root]
        node = self._root
        for token in key:
            node = node.children[token]
            path.append(node)
        for node in path[1:]:
            node.entries.discard(key)
        for depth in range(len(key), 0, -1):
            node = path[depth]
            if node.entries or node.children:
                break
            del path[depth - 1].children[key[depth - 1]]

    def clear(self) -> None:
        """Drop every retained entry (counts as evictions in the stats)."""
        for key in list(self._entries):
            self._remove(key)


__all__ = ["PrefixCache", "PrefixCacheStats"]
