"""Cross-request prompt-prefix reuse: a token-trie over retained KV segments.

Real serving workloads re-send the same prompt preamble over and over — the
eval benches in :mod:`repro.evalbench.rtllm` / :mod:`repro.evalbench.vgen`
are exactly this shape: many problems sharing one long task instruction.
Without reuse, every admission prefills that preamble from scratch; with a
batch of ``N`` requests over ``K`` distinct preambles, ``N - K`` prefills are
redundant compute.

:class:`PrefixCache` removes them.  It keeps recently served prompts in a
token trie; each retained prompt owns a :class:`~repro.nn.kv_cache.KVSegment`
(the per-layer K/V its prefill computed, detached from the live cache).  On
admission the engine asks for the longest retained prefix of the new prompt:

* the trie walk follows the new prompt's tokens as far as any retained
  prompt's path reaches — the match may be *partial* (two prompts sharing
  only their first ``m`` tokens still reuse those ``m`` positions), because
  causal attention makes position ``i``'s K/V depend only on tokens
  ``0..i``;
* the matched segment prefix is spliced into the request's fresh cache row
  (:meth:`KVCache.splice_prefix`) and only the prompt *suffix* is prefilled.

Retention is bounded: entries are LRU-evicted once the summed retained
tokens (or bytes) exceed the configured budget.  Eviction removes the
entry's trie path; nodes shared with surviving entries stay, so partial
matches through shared preambles keep working.

Cost model: each retained prompt owns an independent whole-prompt segment,
so a preamble shared by ``N`` retained prompts is stored (and charged
against the budget) ``N`` times — size ``max_tokens`` for the *summed*
prompt lengths you want resident, not for the number of distinct preambles.
Sharing segment storage per trie edge (paged/block K/V, vLLM-style) would
cut that to once per preamble and is the natural next step if retention
budgets become the bottleneck; it changes storage only, not the lookup or
eviction semantics.

Reuse is a pure compute-layout change — the spliced K/V is byte-for-byte
what prefilling the prefix would recompute — so engine outputs stay
token-identical with the cache enabled (asserted in ``tests/test_serving.py``
and the golden fixtures).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Set, Tuple

from repro.nn.kv_cache import KVSegment

TokenKey = Tuple[int, ...]


@dataclass
class PrefixCacheStats:
    """Lookup/retention counters of one :class:`PrefixCache`.

    Attributes:
        hits: Lookups that matched at least one retained token.
        misses: Lookups that matched nothing.
        tokens_reused: Prompt positions served from retained K/V instead of
            being prefilled (summed over hits).
        insertions: Entries retained (re-inserting a known prompt only
            refreshes its LRU position and does not count).
        evictions: Entries dropped to keep retention under budget.
    """

    hits: int = 0
    misses: int = 0
    tokens_reused: int = 0
    insertions: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups that reused at least one token (0.0 when idle)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def to_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
            "tokens_reused": self.tokens_reused,
            "insertions": self.insertions,
            "evictions": self.evictions,
        }


class _TrieNode:
    """One token of a retained prompt path.

    ``entries`` holds the keys of every retained prompt whose path passes
    through this node; the node exists exactly while that set is non-empty,
    so reaching a node during lookup guarantees a usable entry.  All entries
    passing through a depth-``m`` node share their first ``m`` tokens — and
    therefore (causal attention) the K/V of those ``m`` positions — so any
    of them can serve a partial match ending here.
    """

    __slots__ = ("children", "entries")

    def __init__(self) -> None:
        self.children: Dict[int, _TrieNode] = {}
        self.entries: Set[TokenKey] = set()


@dataclass
class _Entry:
    tokens: TokenKey
    segment: KVSegment


@dataclass
class PrefixCache:
    """LRU token-trie of retained prompt prefixes and their KV segments.

    Args:
        max_tokens: Retention budget as summed retained prompt tokens.  A
            prompt longer than the whole budget is simply not retained.
        max_bytes: Optional additional budget on summed segment storage
            (K and V, all layers); ``None`` leaves bytes unbounded.  The
            token and byte budgets are both enforced — eviction runs until
            the cache satisfies every configured bound.
    """

    max_tokens: int = 4096
    max_bytes: Optional[int] = None
    stats: PrefixCacheStats = field(default_factory=PrefixCacheStats)

    def __post_init__(self) -> None:
        if self.max_tokens < 1:
            raise ValueError(f"max_tokens must be positive, got {self.max_tokens}")
        if self.max_bytes is not None and self.max_bytes < 1:
            raise ValueError(f"max_bytes must be positive, got {self.max_bytes}")
        #: Retained entries, least-recently-used first.
        self._entries: "OrderedDict[TokenKey, _Entry]" = OrderedDict()
        self._root = _TrieNode()
        self._num_tokens = 0
        self._num_bytes = 0
        self._owner: Optional[object] = None

    def bind(self, owner: object) -> None:
        """Tie the cache to one model; re-binding to a different model raises.

        Retained K/V carries no record of which weights produced it, and
        :meth:`KVCache.splice_prefix` can only validate *geometry* — two
        different models with the same layer/head shape would silently accept
        each other's segments and corrupt outputs.  The serving engine calls
        this at construction, so sharing one cache between engines is allowed
        exactly when they wrap the same model object.
        """
        if self._owner is None:
            self._owner = owner
        elif self._owner is not owner:
            raise ValueError(
                "PrefixCache is already bound to a different model; retained K/V is "
                "model-specific, so each model needs its own cache"
            )

    # -- inspection ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def num_tokens(self) -> int:
        """Summed token count of all retained entries."""
        return self._num_tokens

    @property
    def num_bytes(self) -> int:
        """Summed segment storage of all retained entries."""
        return self._num_bytes

    def __contains__(self, tokens: Sequence[int]) -> bool:
        return tuple(tokens) in self._entries

    # -- lookup --------------------------------------------------------------

    def lookup(self, tokens: Sequence[int], limit: Optional[int] = None) -> Tuple[int, Optional[KVSegment]]:
        """Longest retained prefix of ``tokens``, as ``(matched_len, segment_view)``.

        Walks the trie along ``tokens`` (at most ``limit`` of them) as deep as
        any retained path reaches and returns a zero-copy view of a matching
        entry's first ``matched_len`` positions, refreshing that entry's LRU
        position.  ``(0, None)`` on a miss.

        The serving engine passes ``limit=len(prompt) - 1`` so at least one
        prompt token is always prefilled — the forward over the suffix is
        what produces the last-position logits that seed decoding.
        """
        depth = 0
        node = self._root
        bound = len(tokens) if limit is None else min(limit, len(tokens))
        for token in tokens[:bound]:
            child = node.children.get(int(token))
            if child is None:
                break
            node = child
            depth += 1
        if depth == 0:
            self.stats.misses += 1
            return 0, None
        # Every entry through this node shares (and its segment covers) the
        # first ``depth`` tokens, so any member serves the match; an O(1)
        # arbitrary pick keeps the hot admission path independent of how many
        # entries share the preamble.  The touch refreshes that entry's LRU
        # slot — which equally-valid member gets refreshed is immaterial.
        key = next(iter(node.entries))
        entry = self._entries[key]
        self._entries.move_to_end(key)
        self.stats.hits += 1
        self.stats.tokens_reused += depth
        return depth, entry.segment.head(depth)

    # -- retention -----------------------------------------------------------

    def would_retain(self, tokens: Sequence[int]) -> bool:
        """Cheap pre-check: would :meth:`insert` store a new entry for ``tokens``?

        Lets the engine skip gathering a prompt's K/V out of the live cache
        (a full per-layer copy) when the insert would be discarded anyway.
        An exact duplicate refreshes its LRU position here, preserving
        :meth:`insert`'s touch-on-reinsert semantics.  The byte budget cannot
        be checked without the segment, so a byte-only overflow is still
        caught inside :meth:`insert`.
        """
        key = tuple(int(token) for token in tokens)
        if not key or len(key) > self.max_tokens:
            return False
        if key in self._entries:
            self._entries.move_to_end(key)
            return False
        return True

    def insert(self, tokens: Sequence[int], segment: KVSegment) -> bool:
        """Retain ``segment`` as the K/V of prompt ``tokens``; returns True if stored.

        The segment must cover exactly ``len(tokens)`` positions.  Re-inserting
        a retained prompt refreshes its LRU position without copying.  Prompts
        that alone exceed a budget are not retained (retaining then instantly
        evicting everything else would just thrash).  After a successful
        insert, least-recently-used entries are evicted until every configured
        budget holds again.
        """
        key = tuple(int(token) for token in tokens)
        if not key:
            return False
        if segment.length != len(key):
            raise ValueError(f"segment covers {segment.length} positions for a {len(key)}-token prompt")
        if key in self._entries:
            self._entries.move_to_end(key)
            return False
        if len(key) > self.max_tokens:
            return False
        if self.max_bytes is not None and segment.nbytes > self.max_bytes:
            return False
        entry = _Entry(tokens=key, segment=segment)
        self._entries[key] = entry
        node = self._root
        for token in key:
            node = node.children.setdefault(token, _TrieNode())
            node.entries.add(key)
        self._num_tokens += len(key)
        self._num_bytes += segment.nbytes
        self.stats.insertions += 1
        self._evict_to_budget(keep=key)
        return True

    def _evict_to_budget(self, keep: Optional[TokenKey] = None) -> None:
        # ``keep`` (the just-inserted entry) sits at the MRU tail, so the LRU
        # head can only be it once everything else is gone — which the loop
        # bound already forbids; insert's own budget pre-checks guarantee a
        # sole surviving entry fits.
        while self._over_budget() and len(self._entries) > (1 if keep in self._entries else 0):
            self._remove(next(iter(self._entries)))

    def _over_budget(self) -> bool:
        if self._num_tokens > self.max_tokens:
            return True
        return self.max_bytes is not None and self._num_bytes > self.max_bytes

    def _remove(self, key: TokenKey) -> None:
        entry = self._entries.pop(key)
        self._num_tokens -= len(key)
        self._num_bytes -= entry.segment.nbytes
        self.stats.evictions += 1
        # Unlink the entry from its trie path, pruning nodes no surviving
        # entry passes through (leaf-to-root, so parents see updated children).
        path = [self._root]
        node = self._root
        for token in key:
            node = node.children[token]
            path.append(node)
        for node in path[1:]:
            node.entries.discard(key)
        for depth in range(len(key), 0, -1):
            node = path[depth]
            if node.entries or node.children:
                break
            del path[depth - 1].children[key[depth - 1]]

    def clear(self) -> None:
        """Drop every retained entry (counts as evictions in the stats)."""
        for key in list(self._entries):
            self._remove(key)


__all__ = ["PrefixCache", "PrefixCacheStats"]
