"""Request model for the multi-request serving engine.

A :class:`GenerationRequest` is the immutable description of one generation
job (prompt, per-request :class:`~repro.models.generation.GenerationConfig`).
The engine wraps each submitted request in a mutable :class:`RequestState`
that accumulates output tokens, per-step records and timing while the request
moves through the :class:`~repro.serving.scheduler.Scheduler` states:

``QUEUED`` (waiting for admission) → ``PREFILLING`` (admitted; prompt
entering its cache row, possibly one chunk per step) → ``RUNNING`` (owns a
row of the shared KV cache) → ``FINISHED`` (result available).  Requests
whose whole prompt prefills at admission pass through ``PREFILLING``
instantaneously.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.core.decoding import DecodeResult, StepRecord
from repro.models.generation import GenerationConfig
from repro.nn.kv_cache import KVCache


class RequestStatus(enum.Enum):
    """Lifecycle of a request inside the serving engine."""

    QUEUED = "queued"
    PREFILLING = "prefilling"
    RUNNING = "running"
    FINISHED = "finished"


@dataclass
class GenerationRequest:
    """One generation job submitted to the serving engine.

    Attributes:
        request_id: Caller-visible identifier (engine-assigned if omitted at
            submission).
        prompt_ids: Tokenized prompt (BOS included, as produced by
            ``tokenizer.encode(..., add_bos=True)``).
        config: Per-request decoding configuration; requests in the same
            batch may use different budgets, temperatures and seeds.
        context_limit: The serving model's context window (``max_seq_len``),
            stamped at submission.  Bounds :attr:`footprint_tokens`: a request
            can never occupy more cache positions than the window holds, so
            charging the scheduler beyond it would starve admission for
            budget the request cannot use.
    """

    request_id: str
    prompt_ids: List[int]
    config: GenerationConfig = field(default_factory=GenerationConfig.greedy_config)
    context_limit: Optional[int] = None

    @property
    def footprint_tokens(self) -> int:
        """Worst-case context-window footprint used for budget admission.

        ``prompt_len + max_new_tokens``, clamped to :attr:`context_limit`
        (when known): generation stops at the context window regardless of
        ``max_new_tokens``, so the clamp is the true worst case — without it
        a request with an oversized token budget over-charges
        ``Scheduler.tokens_in_flight`` and blocks admissions that would fit.
        """
        footprint = len(self.prompt_ids) + self.config.max_new_tokens
        if self.context_limit is not None:
            footprint = min(footprint, self.context_limit)
        return footprint


@dataclass
class RequestState:
    """Mutable per-request state tracked by the engine.

    The held ``last_base``/``last_heads`` logits are the engine's analogue of
    the single-stream decoder's loop variables: the base/head logits at the
    request's last committed position, produced by the previous shared
    forward (or the prefill) and consumed by the next proposal.
    """

    request: GenerationRequest
    status: RequestStatus = RequestStatus.QUEUED
    output_ids: List[int] = field(default_factory=list)
    step_records: List[StepRecord] = field(default_factory=list)
    stopped_by_eos: bool = False
    #: Wall-clock timestamps (``time.perf_counter``): queue entry, admission
    #: (prefill start) and completion.
    submitted_at: float = 0.0
    started_at: float = 0.0
    finished_at: float = 0.0
    #: Cumulative model-forward time of the prompt prefill (all chunks plus
    #: the final Medusa-head evaluation) — the same region sequential
    #: decoding's ``DecodeResult.prefill_seconds`` times, so throughput
    #: columns compare like with like.  Prefix-cache lookups, K/V splicing
    #: and scheduler bookkeeping are excluded.
    prefill_seconds: float = 0.0
    #: Prompt tokens already present in :attr:`row_cache` (spliced prefix +
    #: prefilled chunks); prefill completes at ``prompt_len``.
    prefill_pos: int = 0
    #: Prompt tokens served from the cross-request prefix cache instead of
    #: being prefilled.
    tokens_reused: int = 0
    #: Private batch-1 cache holding the prompt while the request is
    #: ``PREFILLING``; merged into the engine's shared cache (and dropped
    #: here) when prefill completes.
    row_cache: Optional[KVCache] = None
    #: Base-head logits at the last committed position (``(V,)``).
    last_base: Optional[np.ndarray] = None
    #: Medusa-head logits at the last committed position.
    last_heads: List[np.ndarray] = field(default_factory=list)
    #: Per-request random generator, seeded from ``config.seed`` exactly like
    #: the sequential decoder so sampling runs are reproducible.
    rng: Optional[np.random.Generator] = None

    @property
    def prompt_len(self) -> int:
        return len(self.request.prompt_ids)

    @property
    def remaining_tokens(self) -> int:
        """New-token budget left before ``config.max_new_tokens`` is reached."""
        return self.request.config.max_new_tokens - len(self.output_ids)

    @property
    def latency_seconds(self) -> float:
        """Submission-to-completion latency (includes queueing delay)."""
        return max(self.finished_at - self.submitted_at, 0.0)

    def to_result(self, text: str, code: str) -> DecodeResult:
        """Freeze this request into the same result type sequential decoding returns.

        ``wall_time_seconds`` covers admission to completion (prefill +
        decode, excluding queueing) so per-token rates stay comparable with
        :meth:`SpeculativeDecoder.generate`; queueing delay is reported
        separately via :attr:`latency_seconds`.
        """
        return DecodeResult(
            token_ids=list(self.output_ids),
            text=text,
            code=code,
            steps=len(self.step_records),
            tokens_generated=len(self.output_ids),
            wall_time_seconds=max(self.finished_at - self.started_at, 0.0),
            step_records=list(self.step_records),
            stopped_by_eos=self.stopped_by_eos,
            prefill_seconds=self.prefill_seconds,
            prompt_tokens_reused=self.tokens_reused,
        )
