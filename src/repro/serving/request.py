"""Request model for the multi-request serving engine.

A :class:`GenerationRequest` is the immutable description of one generation
job (prompt, per-request :class:`~repro.models.generation.GenerationConfig`).
The engine wraps each submitted request in a mutable :class:`RequestState`
that accumulates output tokens, per-step records and timing while the request
moves through the :class:`~repro.serving.scheduler.Scheduler` states:

``QUEUED`` (waiting for admission) → ``RUNNING`` (owns a row of the shared
KV cache) → ``FINISHED`` (result available).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.core.decoding import DecodeResult, StepRecord
from repro.models.generation import GenerationConfig


class RequestStatus(enum.Enum):
    """Lifecycle of a request inside the serving engine."""

    QUEUED = "queued"
    RUNNING = "running"
    FINISHED = "finished"


@dataclass
class GenerationRequest:
    """One generation job submitted to the serving engine.

    Attributes:
        request_id: Caller-visible identifier (engine-assigned if omitted at
            submission).
        prompt_ids: Tokenized prompt (BOS included, as produced by
            ``tokenizer.encode(..., add_bos=True)``).
        config: Per-request decoding configuration; requests in the same
            batch may use different budgets, temperatures and seeds.
    """

    request_id: str
    prompt_ids: List[int]
    config: GenerationConfig = field(default_factory=GenerationConfig.greedy_config)

    @property
    def footprint_tokens(self) -> int:
        """Worst-case context-window footprint used for budget admission."""
        return len(self.prompt_ids) + self.config.max_new_tokens


@dataclass
class RequestState:
    """Mutable per-request state tracked by the engine.

    The held ``last_base``/``last_heads`` logits are the engine's analogue of
    the single-stream decoder's loop variables: the base/head logits at the
    request's last committed position, produced by the previous shared
    forward (or the prefill) and consumed by the next proposal.
    """

    request: GenerationRequest
    status: RequestStatus = RequestStatus.QUEUED
    output_ids: List[int] = field(default_factory=list)
    step_records: List[StepRecord] = field(default_factory=list)
    stopped_by_eos: bool = False
    #: Wall-clock timestamps (``time.perf_counter``): queue entry, admission
    #: (prefill start) and completion.
    submitted_at: float = 0.0
    started_at: float = 0.0
    finished_at: float = 0.0
    prefill_seconds: float = 0.0
    #: Base-head logits at the last committed position (``(V,)``).
    last_base: Optional[np.ndarray] = None
    #: Medusa-head logits at the last committed position.
    last_heads: List[np.ndarray] = field(default_factory=list)
    #: Per-request random generator, seeded from ``config.seed`` exactly like
    #: the sequential decoder so sampling runs are reproducible.
    rng: Optional[np.random.Generator] = None

    @property
    def prompt_len(self) -> int:
        return len(self.request.prompt_ids)

    @property
    def remaining_tokens(self) -> int:
        """New-token budget left before ``config.max_new_tokens`` is reached."""
        return self.request.config.max_new_tokens - len(self.output_ids)

    @property
    def latency_seconds(self) -> float:
        """Submission-to-completion latency (includes queueing delay)."""
        return max(self.finished_at - self.submitted_at, 0.0)

    def to_result(self, text: str, code: str) -> DecodeResult:
        """Freeze this request into the same result type sequential decoding returns.

        ``wall_time_seconds`` covers admission to completion (prefill +
        decode, excluding queueing) so per-token rates stay comparable with
        :meth:`SpeculativeDecoder.generate`; queueing delay is reported
        separately via :attr:`latency_seconds`.
        """
        return DecodeResult(
            token_ids=list(self.output_ids),
            text=text,
            code=code,
            steps=len(self.step_records),
            tokens_generated=len(self.output_ids),
            wall_time_seconds=max(self.finished_at - self.started_at, 0.0),
            step_records=list(self.step_records),
            stopped_by_eos=self.stopped_by_eos,
            prefill_seconds=self.prefill_seconds,
        )
