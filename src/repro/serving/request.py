"""Request model for the multi-request serving engine.

A :class:`GenerationRequest` is the immutable description of one generation
job (prompt, per-request :class:`~repro.models.generation.GenerationConfig`).
The engine wraps each submitted request in a mutable :class:`RequestState`
that accumulates output tokens, per-step records and timing while the request
moves through the :class:`~repro.serving.scheduler.Scheduler` states:

``QUEUED`` (waiting for admission) → ``PREFILLING`` (admitted; prompt
entering its cache row, possibly one chunk per step) → ``RUNNING`` (owns a
row of the shared KV cache) → ``FINISHED`` (result available).  Requests
whose whole prompt prefills at admission pass through ``PREFILLING``
instantaneously.  Cancellation (explicit, or via an expired deadline) can
interrupt any pre-``FINISHED`` status and lands in ``CANCELLED``, with a
partial result frozen from whatever had committed.

Streaming observation rides on the same state: every committed token burst
is timestamped into :attr:`RequestState.commit_events` and forwarded to any
registered :attr:`RequestState.commit_listeners` — the hook the async
front-end (:mod:`repro.serving.server`) builds ``stream()`` on.  Listeners
observe commits; they never influence them, which is what keeps streamed
tokens byte-identical to the batch ``result()`` path.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

import numpy as np

from repro.core.decoding import DecodeResult, StepRecord
from repro.models.generation import GenerationConfig
from repro.nn.kv_cache import KVCache


def derive_request_rng(request: "GenerationRequest") -> np.random.Generator:
    """Per-request random generator, reproducible under any placement.

    ``config.seed`` set (the default, 0) seeds the generator directly —
    byte-identical to the sequential decoder, which is what the
    engine-vs-``SpeculativeDecoder.generate`` identity tests pin down.

    ``config.seed=None`` derives the seed from SHA-256 of the *request id*
    instead.  That keeps concurrent sampling requests statistically
    independent (they no longer share one seed's stream) while staying fully
    deterministic: resubmitting the same request id — on any worker, in any
    batch, or after a worker crash — replays the exact same sampled tokens,
    which is what lets the router requeue in-flight requests without
    re-streaming different output.
    """
    seed = request.config.seed
    if seed is None:
        digest = hashlib.sha256(request.request_id.encode("utf-8")).digest()
        seed = int.from_bytes(digest[:8], "big")
    return np.random.default_rng(seed)


class RequestStatus(enum.Enum):
    """Lifecycle of a request inside the serving engine."""

    QUEUED = "queued"
    PREFILLING = "prefilling"
    RUNNING = "running"
    FINISHED = "finished"
    CANCELLED = "cancelled"


@dataclass
class GenerationRequest:
    """One generation job submitted to the serving engine.

    Attributes:
        request_id: Caller-visible identifier (engine-assigned if omitted at
            submission).
        prompt_ids: Tokenized prompt (BOS included, as produced by
            ``tokenizer.encode(..., add_bos=True)``).
        config: Per-request decoding configuration; requests in the same
            batch may use different budgets, temperatures and seeds.
        context_limit: The serving model's context window (``max_seq_len``),
            stamped at submission.  Bounds :attr:`footprint_tokens`: a request
            can never occupy more cache positions than the window holds, so
            charging the scheduler beyond it would starve admission for
            budget the request cannot use.
        priority: Admission priority class (higher runs sooner).  Only
            meaningful when the scheduler was configured with
            ``SchedulerConfig(priorities=...)``; plain FCFS scheduling
            ignores it.  Aging prevents low classes from starving — see
            :class:`~repro.serving.scheduler.PriorityConfig`.
        deadline_seconds: Optional wall-clock budget measured from
            submission.  When it expires before the request finishes, the
            engine cancels the request at the next step boundary — whether it
            is still queued, mid-prefill or decoding — freeing its scheduler
            budget and cache row immediately and freezing a partial result.
    """

    request_id: str
    prompt_ids: List[int]
    config: GenerationConfig = field(default_factory=GenerationConfig.greedy_config)
    context_limit: Optional[int] = None
    priority: int = 0
    deadline_seconds: Optional[float] = None

    @property
    def footprint_tokens(self) -> int:
        """Worst-case context-window footprint used for budget admission.

        ``prompt_len + max_new_tokens``, clamped to :attr:`context_limit`
        (when known): generation stops at the context window regardless of
        ``max_new_tokens``, so the clamp is the true worst case — without it
        a request with an oversized token budget over-charges
        ``Scheduler.tokens_in_flight`` and blocks admissions that would fit.
        """
        footprint = len(self.prompt_ids) + self.config.max_new_tokens
        if self.context_limit is not None:
            footprint = min(footprint, self.context_limit)
        return footprint


@dataclass
class RequestState:
    """Mutable per-request state tracked by the engine.

    The held ``last_base``/``last_heads`` logits are the engine's analogue of
    the single-stream decoder's loop variables: the base/head logits at the
    request's last committed position, produced by the previous shared
    forward (or the prefill) and consumed by the next proposal.
    """

    request: GenerationRequest
    status: RequestStatus = RequestStatus.QUEUED
    output_ids: List[int] = field(default_factory=list)
    step_records: List[StepRecord] = field(default_factory=list)
    stopped_by_eos: bool = False
    #: Wall-clock timestamps (``time.perf_counter``): queue entry, admission
    #: (prefill start) and completion.
    submitted_at: float = 0.0
    started_at: float = 0.0
    finished_at: float = 0.0
    #: Cumulative model-forward time of the prompt prefill (all chunks plus
    #: the final Medusa-head evaluation) — the same region sequential
    #: decoding's ``DecodeResult.prefill_seconds`` times, so throughput
    #: columns compare like with like.  Prefix-cache lookups, K/V splicing
    #: and scheduler bookkeeping are excluded.
    prefill_seconds: float = 0.0
    #: Prompt tokens already present in :attr:`row_cache` (spliced prefix +
    #: prefilled chunks); prefill completes at ``prompt_len``.
    prefill_pos: int = 0
    #: Prompt tokens served from the cross-request prefix cache instead of
    #: being prefilled.
    tokens_reused: int = 0
    #: ``time.perf_counter`` of the first committed token (0.0 until then);
    #: ``first_token_at - submitted_at`` is the request's TTFT.
    first_token_at: float = 0.0
    #: One ``(perf_counter_timestamp, num_tokens)`` entry per committed
    #: burst, in commit order — the raw series TTFT and inter-token-latency
    #: percentiles are computed from (:meth:`ServingEngine.stream_metrics`).
    commit_events: List[Tuple[float, int]] = field(default_factory=list)
    #: Observation-only streaming hooks, called with each committed token
    #: burst (a list of ids) right after it lands in :attr:`output_ids`.
    #: Listeners must not mutate engine state.
    commit_listeners: List[Callable[[List[int]], None]] = field(default_factory=list)
    #: Called exactly once when the request leaves the engine (``FINISHED``
    #: or ``CANCELLED``), after its result was frozen.
    done_listeners: List[Callable[["RequestState"], None]] = field(default_factory=list)
    #: True when the request was cancelled because its deadline expired
    #: (rather than by an explicit ``cancel`` call).
    timed_out: bool = False
    #: Admission rounds this request has waited in the queue; drives aging
    #: under priority scheduling (see ``PriorityConfig.aging_rounds``).
    waited_rounds: int = 0
    #: Monotonic submission sequence number stamped by the scheduler; the
    #: FCFS tie-breaker within an effective-priority level.
    submit_seq: int = 0
    #: Private batch-1 cache holding the prompt while the request is
    #: ``PREFILLING``; merged into the engine's shared cache (and dropped
    #: here) when prefill completes.
    row_cache: Optional[KVCache] = None
    #: Base-head logits at the last committed position (``(V,)``).
    last_base: Optional[np.ndarray] = None
    #: Medusa-head logits at the last committed position.
    last_heads: List[np.ndarray] = field(default_factory=list)
    #: Per-request random generator, seeded from ``config.seed`` exactly like
    #: the sequential decoder so sampling runs are reproducible.
    rng: Optional[np.random.Generator] = None
    #: Per-request grammar mask (:class:`repro.constrained.mask
    #: .SyntaxMaskState`) built at admission from ``config.grammar``; ``None``
    #: for unconstrained requests, and every engine call site treats an
    #: absent mask as a strict no-op.
    grammar_mask: Optional[object] = None
    #: Trailing tokens appended by the grammar closure at finish (see
    #: :attr:`~repro.core.decoding.DecodeResult.closure_tokens`).
    closure_tokens: int = 0

    @property
    def prompt_len(self) -> int:
        return len(self.request.prompt_ids)

    @property
    def remaining_tokens(self) -> int:
        """New-token budget left before ``config.max_new_tokens`` is reached."""
        return self.request.config.max_new_tokens - len(self.output_ids)

    @property
    def latency_seconds(self) -> float:
        """Submission-to-completion latency (includes queueing delay)."""
        return max(self.finished_at - self.submitted_at, 0.0)

    @property
    def ttft_seconds(self) -> Optional[float]:
        """Submission-to-first-committed-token latency; None before any commit."""
        if self.first_token_at <= 0.0:
            return None
        return max(self.first_token_at - self.submitted_at, 0.0)

    def record_commit(self, tokens: List[int], timestamp: float) -> None:
        """Append a committed burst, stamp timing, and notify stream listeners.

        The single funnel every engine commit path goes through: tokens land
        in :attr:`output_ids` first, then the burst is timestamped and
        forwarded to listeners — so a listener always observes a state whose
        outputs already contain the burst it is being told about.

        Listeners are observation-only, and that isolation is enforced: a
        listener that raises (e.g. a stream consumer whose event loop was
        closed without detaching) is dropped, never allowed to abort the
        engine step mid-commit — one broken observer must not corrupt the
        shared cache or kill the other in-flight requests.
        """
        self.output_ids.extend(tokens)
        if self.first_token_at <= 0.0:
            self.first_token_at = timestamp
        self.commit_events.append((timestamp, len(tokens)))
        broken = []
        for listener in self.commit_listeners:
            try:
                listener(list(tokens))
            except Exception:
                broken.append(listener)
        for listener in broken:
            self.commit_listeners.remove(listener)

    def notify_done(self) -> None:
        """Fire the done listeners (once; the engine calls this at finish/cancel).

        Like commit listeners, done listeners are isolated: one raising does
        not stop the others or propagate into the engine.
        """
        listeners, self.done_listeners = self.done_listeners, []
        for listener in listeners:
            try:
                listener(self)
            except Exception:
                pass

    def to_result(self, text: str, code: str) -> DecodeResult:
        """Freeze this request into the same result type sequential decoding returns.

        ``wall_time_seconds`` covers admission to completion (prefill +
        decode, excluding queueing) so per-token rates stay comparable with
        :meth:`SpeculativeDecoder.generate`; queueing delay is reported
        separately via :attr:`latency_seconds`.  A request cancelled before
        admission never started, so its wall time is 0.0 (``started_at`` is
        only stamped at admission).
        """
        started = self.started_at if self.started_at > 0.0 else self.finished_at
        return DecodeResult(
            token_ids=list(self.output_ids),
            text=text,
            code=code,
            steps=len(self.step_records),
            tokens_generated=len(self.output_ids),
            wall_time_seconds=max(self.finished_at - started, 0.0),
            step_records=list(self.step_records),
            stopped_by_eos=self.stopped_by_eos,
            prefill_seconds=self.prefill_seconds,
            prompt_tokens_reused=self.tokens_reused,
            cancelled=self.status is RequestStatus.CANCELLED,
            closure_tokens=self.closure_tokens,
        )
