"""Router/supervisor: shard serving traffic across worker processes.

Layer 3 of the sharded serving stack (``docs/sharding.md``).  A
:class:`Router` owns N :class:`~repro.serving.worker.EngineWorker` replicas
and does four jobs:

* **Routing.** Each submit hashes its prompt preamble
  (:func:`~repro.serving.messages.preamble_key`) to pick a worker, so
  requests sharing a preamble land on the replica whose prefix cache already
  holds that preamble's K/V.  The mapping is sticky (remembered per key) but
  yields to a least-loaded fallback when the affinity choice is more than
  ``imbalance_threshold`` outstanding requests ahead of the emptiest worker —
  affinity is a locality hint, not a fairness policy.

* **Supervision.** Workers emit heartbeats while idle and step replies while
  busy; the router watches process liveness on every pump and treats a dead
  process (or a :class:`WorkerFatal` report) as a crash: it restarts the
  replica and **requeues** every in-flight request under its original
  request id.

* **Deterministic replay.** Requeued requests re-execute from scratch on the
  fresh worker, but per-request rngs derive from ``(seed, request_id)``
  (:func:`~repro.serving.request.derive_request_rng`) and the engine is
  batch-composition-invariant, so the replay commits the *identical* token
  sequence.  Tokens the router already delivered are deduplicated by count —
  the replayed prefix is checked against the delivered stream and dropped,
  so consumers see every token exactly once.  This is the "no request lost
  or duplicated" guarantee the fuzz suite hammers.

* **Aggregation.** ``kv_pool_stats()`` / ``prefix_cache_stats()`` /
  ``fleet_stats()`` merge per-replica counters into one fleet view, and
  ``stream_metrics()`` serves the per-request latency series frozen into
  each :class:`FinishedEvent`.

The identity contract: a single-worker router produces token-for-token the
same results as driving a :class:`~repro.serving.ServingEngine` in process,
because both are the same :class:`~repro.serving.control.EngineControl`
answering the same messages — asserted across decoding strategies in
``tests/test_router.py``.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.core.decoding import DecodeResult
from repro.serving.messages import (
    CancelCommand,
    CancelReply,
    CommitEvent,
    DrainReply,
    Envelope,
    FinishedEvent,
    Heartbeat,
    QueryCommand,
    ShutdownCommand,
    StepReply,
    SubmitCommand,
    SubmitReply,
    WorkerFatal,
    decode_result,
    encode_config,
    preamble_key,
)
from repro.serving.worker import EngineWorker, WorkerSpec

__all__ = ["Router", "RouterConfig", "RouterRequest"]


@dataclass
class RouterConfig:
    """Knobs of the router/supervisor (see ``docs/sharding.md`` for tuning).

    ``start_method=None`` picks ``fork`` where available (fast, callable
    factories allowed) and ``spawn`` otherwise; pass ``"spawn"`` explicitly
    to prove spawn-safety (requires a ``"module:callable"`` factory).
    """

    num_workers: int = 2
    #: Prompt tokens hashed for affinity routing; requests agreeing on this
    #: window co-locate on one replica's prefix cache.
    preamble_tokens: int = 16
    start_method: Optional[str] = None
    heartbeat_interval: float = 0.2
    #: Outstanding-request gap at which affinity yields to least-loaded.
    imbalance_threshold: int = 4
    #: Crash restarts allowed per worker slot before the router gives up and
    #: fails that slot's in-flight requests.
    max_restarts: int = 2
    #: Engine steps a worker runs between command polls.
    steps_per_loop: int = 1
    seed: int = 0
    hello_timeout: float = 120.0
    #: Pump sleep while waiting in ``drain``/``result``.
    poll_interval: float = 0.002


@dataclass
class RouterRequest:
    """Router-side record of one request: canonical stream + final result."""

    request_id: str
    prompt_ids: List[int]
    config: Optional[dict]
    priority: int
    deadline: Optional[float]
    worker_index: int
    #: Canonical delivered token stream (the exactly-once view).
    tokens: List[int] = field(default_factory=list)
    #: Replayed tokens still to swallow after a crash requeue.
    replay_skip: int = 0
    done: bool = False
    cancelled: bool = False
    timed_out: bool = False
    result_payload: Optional[dict] = None
    stream_metrics: Optional[dict] = None
    error: Optional[str] = None
    #: Times this request was requeued onto a fresh replica.
    requeues: int = 0
    #: Optional per-burst callback ``(request_id, tokens)`` for streaming
    #: consumers; replayed (deduplicated) tokens never reach it.
    on_tokens: Optional[Callable[[str, List[int]], None]] = None
    submitted_at: float = 0.0
    first_token_at: Optional[float] = None
    finished_at: Optional[float] = None


class Router:
    """Shard requests across supervised worker replicas.

    Args:
        factory: Engine factory for every worker — a callable (``fork``
            only) or an importable ``"module:callable"`` string
            (``spawn``-safe), called with ``factory_kwargs`` inside each
            worker process.
        factory_kwargs: Plain-data kwargs for the factory.
        config: :class:`RouterConfig`; ``None`` uses the defaults.

    The router is single-threaded: events are pumped inside ``submit`` /
    ``poll`` / ``result`` / ``drain`` calls, so callers never race the
    supervisor.  Workers still make progress between calls — they step
    autonomously in their own processes; the pipe buffers their events.
    """

    def __init__(
        self,
        factory: Any,
        factory_kwargs: Optional[Dict[str, Any]] = None,
        config: Optional[RouterConfig] = None,
    ) -> None:
        self.factory = factory
        self.factory_kwargs = dict(factory_kwargs or {})
        self.config = config or RouterConfig()
        if self.config.num_workers < 1:
            raise ValueError(f"num_workers must be positive, got {self.config.num_workers}")
        self.workers: List[EngineWorker] = []
        self._requests: Dict[str, RouterRequest] = {}
        self._affinity: Dict[int, int] = {}
        self._restarts: List[int] = []
        self._last_stats: List[Optional[dict]] = []
        self._next_id = 0
        self._started = False
        self._closed = False

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    def start(self) -> "Router":
        """Spawn and handshake every worker replica."""
        if self._started:
            raise RuntimeError("router already started")
        for index in range(self.config.num_workers):
            self.workers.append(self._spawn_worker(index))
            self._restarts.append(0)
            self._last_stats.append(None)
        self._started = True
        return self

    def _spawn_worker(self, index: int) -> EngineWorker:
        spec = WorkerSpec(
            worker_id=f"w{index}",
            factory=self.factory,
            factory_kwargs=self.factory_kwargs,
            heartbeat_interval=self.config.heartbeat_interval,
            steps_per_loop=self.config.steps_per_loop,
            seed=self.config.seed,
        )
        worker = EngineWorker(
            spec, start_method=self.config.start_method, hello_timeout=self.config.hello_timeout
        )
        worker.start()
        return worker

    def close(self) -> None:
        """Shut every worker down (politely, then by force) and reap them."""
        if self._closed:
            return
        self._closed = True
        for worker in self.workers:
            if worker.alive and worker.conn is not None:
                try:
                    worker.send(ShutdownCommand())
                except (BrokenPipeError, OSError):
                    pass
        deadline = time.perf_counter() + 5.0
        for worker in self.workers:
            worker.join(timeout=max(0.0, deadline - time.perf_counter()))
            worker.close()

    def __enter__(self) -> "Router":
        if not self._started:
            self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Routing and submission
    # ------------------------------------------------------------------ #

    def _outstanding(self) -> List[int]:
        counts = [0] * len(self.workers)
        for record in self._requests.values():
            if not record.done:
                counts[record.worker_index] += 1
        return counts

    def _route(self, prompt_ids: List[int]) -> int:
        """Pick a worker: sticky prefix affinity, least-loaded under imbalance."""
        key = preamble_key(prompt_ids, self.config.preamble_tokens)
        index = self._affinity.get(key)
        if index is None or index >= len(self.workers):
            index = key % len(self.workers)
        loads = self._outstanding()
        if loads[index] - min(loads) > self.config.imbalance_threshold:
            index = loads.index(min(loads))
        self._affinity[key] = index
        return index

    def submit(
        self,
        prompt_ids: List[int],
        config: Optional[object] = None,
        request_id: Optional[str] = None,
        priority: int = 0,
        deadline: Optional[float] = None,
    ) -> str:
        """Route and submit one prompt; returns its request id.

        ``config`` accepts a :class:`~repro.models.generation
        .GenerationConfig` or an already-encoded dict.  The router always
        assigns/forwards an explicit request id so a crash requeue resubmits
        under the same identity (which is what makes the replayed sampling
        stream identical).
        """
        self._ensure_running()
        if request_id is None:
            request_id = f"r{self._next_id}"
            self._next_id += 1
        if request_id in self._requests:
            raise ValueError(f"duplicate request_id {request_id!r}")
        encoded = config if (config is None or isinstance(config, dict)) else encode_config(config)
        prompt = [int(token) for token in prompt_ids]
        index = self._route(prompt)
        record = RouterRequest(
            request_id=request_id,
            prompt_ids=prompt,
            config=encoded,
            priority=priority,
            deadline=deadline,
            worker_index=index,
            submitted_at=time.perf_counter(),
        )
        self._requests[request_id] = record
        self._submit_to_worker(record)
        return request_id

    def _submit_to_worker(self, record: RouterRequest) -> None:
        command = SubmitCommand(
            prompt_ids=list(record.prompt_ids),
            config=record.config,
            request_id=record.request_id,
            priority=record.priority,
            deadline=record.deadline,
        )
        worker = self.workers[record.worker_index]
        try:
            reply = worker.request(command)
        except EOFError:
            # The chosen worker died under us; recover (which requeues this
            # record too, since it is already registered and not done).
            self._recover(record.worker_index)
            return
        assert isinstance(reply, SubmitReply)
        if reply.error is not None:
            del self._requests[record.request_id]
            raise ValueError(reply.error)

    def cancel(self, request_id: str) -> bool:
        """Cancel a request on its worker; no-op (False) once settled."""
        self._ensure_running()
        record = self._requests.get(request_id)
        if record is None:
            raise KeyError(f"unknown request id {request_id!r}")
        if record.done:
            return False
        worker = self.workers[record.worker_index]
        try:
            reply = worker.request(CancelCommand(request_id=request_id))
        except EOFError:
            self._recover(record.worker_index)
            return False
        assert isinstance(reply, CancelReply)
        self.poll()
        return reply.cancelled

    # ------------------------------------------------------------------ #
    # Event pump and supervision
    # ------------------------------------------------------------------ #

    def poll(self) -> None:
        """Drain every worker's traffic and run one supervision sweep."""
        self._ensure_running()
        fatal: List[int] = []
        for index, worker in enumerate(self.workers):
            for envelope in worker.collect():
                if self._apply_envelope(index, envelope):
                    fatal.append(index)
        for index in fatal:
            self._recover(index)
        for index, worker in enumerate(self.workers):
            if not worker.alive and index not in fatal:
                self._recover(index)

    def _apply_envelope(self, index: int, envelope: Envelope) -> bool:
        """Apply one envelope; returns True when it reports a worker death."""
        payload = envelope.payload
        if isinstance(payload, (StepReply, DrainReply)):
            for commit in payload.commits:
                self._apply_commit(commit)
            for finished in payload.finished:
                self._apply_finished(index, finished)
            self._last_stats[index] = _stats_dict(payload.stats)
            return False
        if isinstance(payload, Heartbeat):
            self._last_stats[index] = _stats_dict(payload.stats)
            return False
        if isinstance(payload, WorkerFatal):
            return True
        # Late solicited replies (e.g. a CancelReply whose waiter timed out)
        # carry no state the router still needs.
        return False

    def _apply_commit(self, event: CommitEvent) -> None:
        record = self._requests.get(event.request_id)
        if record is None or record.done:
            return
        tokens = [int(token) for token in event.tokens]
        if record.replay_skip > 0:
            overlap = min(record.replay_skip, len(tokens))
            replayed = tokens[:overlap]
            expected = record.tokens[
                len(record.tokens) - record.replay_skip : len(record.tokens) - record.replay_skip + overlap
            ]
            if replayed != expected:
                raise RuntimeError(
                    f"non-deterministic replay for {record.request_id!r}: "
                    f"replayed {replayed} != delivered {expected}"
                )
            record.replay_skip -= overlap
            tokens = tokens[overlap:]
        if not tokens:
            return
        if record.first_token_at is None:
            record.first_token_at = time.perf_counter()
        record.tokens.extend(tokens)
        if record.on_tokens is not None:
            record.on_tokens(record.request_id, tokens)

    def _apply_finished(self, index: int, event: FinishedEvent) -> None:
        record = self._requests.get(event.request_id)
        if record is None or record.done:
            return
        if record.replay_skip > 0 and not (event.cancelled or event.timed_out):
            raise RuntimeError(
                f"request {record.request_id!r} finished with {record.replay_skip} "
                "replayed tokens undelivered — replay diverged from the original run"
            )
        record.done = True
        record.cancelled = event.cancelled
        record.timed_out = event.timed_out
        record.result_payload = event.result
        record.stream_metrics = event.stream_metrics
        record.finished_at = time.perf_counter()

    def _recover(self, index: int) -> None:
        """Restart a dead worker slot and requeue its in-flight requests."""
        worker = self.workers[index]
        # Drain whatever the dead worker managed to write before crashing —
        # every event already on the pipe is real, delivered work.
        for envelope in worker.collect():
            self._apply_envelope(index, envelope)
        worker.close()
        pending = [
            record
            for record in self._requests.values()
            if record.worker_index == index and not record.done
        ]
        self._restarts[index] += 1
        if self._restarts[index] > self.config.max_restarts:
            for record in pending:
                record.done = True
                record.error = (
                    f"worker slot {index} exceeded max_restarts={self.config.max_restarts}"
                )
            raise RuntimeError(
                f"worker slot {index} crashed more than max_restarts={self.config.max_restarts} times"
            )
        self.workers[index] = self._spawn_worker(index)
        self._last_stats[index] = None
        for record in sorted(pending, key=lambda r: r.submitted_at):
            record.replay_skip = len(record.tokens)
            record.requeues += 1
            self._submit_to_worker(record)

    # ------------------------------------------------------------------ #
    # Results
    # ------------------------------------------------------------------ #

    def result(self, request_id: str, timeout: Optional[float] = None) -> DecodeResult:
        """Block (pumping events) until a request settles; return its result."""
        record = self._wait(request_id, timeout)
        if record.error is not None:
            raise RuntimeError(record.error)
        assert record.result_payload is not None
        return decode_result(record.result_payload)

    def tokens(self, request_id: str) -> List[int]:
        """The canonical delivered token stream of a request (so far)."""
        return list(self._record(request_id).tokens)

    def request_record(self, request_id: str) -> RouterRequest:
        """The router's bookkeeping record (tests and benches introspect it)."""
        return self._record(request_id)

    def drain(self, timeout: Optional[float] = None) -> Dict[str, DecodeResult]:
        """Pump until every submitted request settles; return all results."""
        deadline = None if timeout is None else time.perf_counter() + timeout
        while any(not record.done for record in self._requests.values()):
            self.poll()
            if deadline is not None and time.perf_counter() > deadline:
                stuck = [r.request_id for r in self._requests.values() if not r.done]
                raise TimeoutError(f"drain timed out with {len(stuck)} unsettled: {stuck[:5]}")
            time.sleep(self.config.poll_interval)
        results: Dict[str, DecodeResult] = {}
        for request_id, record in self._requests.items():
            if record.error is None and record.result_payload is not None:
                results[request_id] = decode_result(record.result_payload)
        return results

    def _wait(self, request_id: str, timeout: Optional[float]) -> RouterRequest:
        record = self._record(request_id)
        deadline = None if timeout is None else time.perf_counter() + timeout
        while not record.done:
            self.poll()
            if record.done:
                break
            if deadline is not None and time.perf_counter() > deadline:
                raise TimeoutError(f"request {request_id!r} did not settle within {timeout}s")
            time.sleep(self.config.poll_interval)
        return record

    def _record(self, request_id: str) -> RouterRequest:
        try:
            return self._requests[request_id]
        except KeyError:
            raise KeyError(f"unknown request id {request_id!r}") from None

    def forget(self, request_id: str) -> None:
        """Drop a settled request's record (long-lived routers bound memory)."""
        record = self._record(request_id)
        if not record.done:
            raise RuntimeError(f"request {request_id!r} is still in flight")
        del self._requests[request_id]

    # ------------------------------------------------------------------ #
    # Fleet observability
    # ------------------------------------------------------------------ #

    def stream_metrics(self, request_id: str) -> dict:
        """Latency series frozen at completion (worker-side clock)."""
        record = self._record(request_id)
        if record.stream_metrics is None:
            raise RuntimeError(f"request {request_id!r} has no frozen stream metrics yet")
        return record.stream_metrics

    def kv_pool_stats(self) -> dict:
        """Per-worker K/V pool stats plus a numeric-summed fleet aggregate."""
        return self._aggregate_query("kv_pool_stats")

    def prefix_cache_stats(self) -> dict:
        """Per-worker prefix-reuse stats plus a numeric-summed fleet aggregate."""
        return self._aggregate_query("prefix_cache_stats")

    def fleet_stats(self) -> dict:
        """Latest backpressure snapshot per worker plus queue totals."""
        self.poll()
        per_worker = {
            worker.worker_id: self._last_stats[index]
            for index, worker in enumerate(self.workers)
        }
        known = [stats for stats in per_worker.values() if stats is not None]
        aggregate = {
            "queue_depth": sum(stats["queue_depth"] for stats in known),
            "num_prefilling": sum(stats["num_prefilling"] for stats in known),
            "num_active": sum(stats["num_active"] for stats in known),
            "steps_executed": sum(stats["steps_executed"] for stats in known),
            "num_workers": len(self.workers),
            "workers_alive": sum(1 for worker in self.workers if worker.alive),
            "restarts": sum(self._restarts),
        }
        return {"workers": per_worker, "aggregate": aggregate}

    def _aggregate_query(self, kind: str) -> dict:
        self._ensure_running()
        per_worker: Dict[str, dict] = {}
        for index, worker in enumerate(self.workers):
            if not worker.alive:
                continue
            try:
                reply = worker.request(QueryCommand(kind=kind))
            except EOFError:
                continue
            per_worker[worker.worker_id] = reply.payload
        aggregate: Dict[str, object] = {}
        for payload in per_worker.values():
            for key, value in payload.items():
                if isinstance(value, bool) or not isinstance(value, (int, float)):
                    continue
                current = aggregate.get(key)
                aggregate[key] = value if current is None else current + value
        # Ratios don't sum; recompute the fleet-level ones that matter.
        hits = aggregate.get("hits")
        misses = aggregate.get("misses")
        if isinstance(hits, (int, float)) and isinstance(misses, (int, float)):
            lookups = hits + misses
            aggregate["hit_rate"] = hits / lookups if lookups else 0.0
        reused = aggregate.get("prompt_tokens_reused")
        prefilled = aggregate.get("prompt_tokens_prefilled")
        if isinstance(reused, (int, float)) and isinstance(prefilled, (int, float)):
            total = reused + prefilled
            aggregate["prefill_savings"] = reused / total if total else 0.0
        self.poll()
        return {"workers": per_worker, "aggregate": aggregate}

    def _ensure_running(self) -> None:
        if not self._started:
            raise RuntimeError("router is not started (use start() or a with-block)")
        if self._closed:
            raise RuntimeError("router is closed")


def _stats_dict(stats: object) -> dict:
    return asdict(stats)  # type: ignore[call-overload]
