"""Continuous-batching scheduler: admission and eviction under a token budget.

The scheduler decides *which* requests occupy rows of the shared KV cache;
the :class:`~repro.serving.engine.ServingEngine` decides *what* happens to
the occupants each step.  The policy is deliberately simple and fair:

* **FCFS admission** — requests are admitted strictly in submission order;
  a large request at the head of the queue is never overtaken by a smaller
  one behind it (no starvation).  With
  :class:`SchedulerConfig.priorities <PriorityConfig>` configured, admission
  instead orders the queue by *effective priority* — the request's class
  plus an aging bonus that grows while it waits — so latency-sensitive
  traffic overtakes bulk traffic, but bulk traffic still cannot starve.
* **Token-budget cap** — each request's worst-case context footprint
  (``prompt_len + max_new_tokens``, clamped to the model's context window)
  is charged against ``max_batch_tokens`` while it is running, bounding the
  shared cache's memory and the width of the batched forward.
* **Concurrency cap** — at most ``max_active_requests`` rows run at once.
* **Prefill pacing** — ``max_prefill_tokens_per_step`` bounds how many
  prompt tokens the engine may prefill per engine step, so admitting a
  request with a long prompt cannot stall every in-flight decoder for the
  duration of one monolithic prefill (chunked prefill; requests sit in the
  ``PREFILLING`` status while their prompt enters the cache chunk by chunk).
* **Free-page gate** — with the engine's paged KV pool
  (:mod:`repro.nn.kv_pool`), admission is additionally capped by the pool's
  free pages: :meth:`Scheduler.admit` takes the engine-computed
  ``free_page_tokens`` budget and defers requests that would over-commit
  physical blocks, so page exhaustion surfaces as queueing (and resolves as
  running requests finish and free pages) instead of as a mid-step
  allocation failure.
* **Progress guarantee** — when nothing is running, the head-of-queue
  request is admitted even if it alone exceeds the token budget (or the
  free-page budget); otherwise an oversized request would deadlock the
  queue.

Eviction is cooperative: the engine calls :meth:`Scheduler.release` when a
request finishes (EOS, token budget, or context-window exhaustion), freeing
its budget so queued requests can be admitted at the next step boundary —
this is what makes the batching *continuous* rather than static.
Cancellation uses :meth:`Scheduler.remove`, which frees the same budget
whether the request was still queued or already admitted.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, List, Optional

from repro.serving.request import RequestState, RequestStatus


@dataclass
class PriorityConfig:
    """Priority-class admission with aging (anti-starvation).

    Requests carry an integer :attr:`~repro.serving.request.GenerationRequest.priority`
    class (higher = more latency-sensitive).  At every admission round the
    queue is ordered by **effective priority**::

        effective = priority + waited_rounds // aging_rounds

    and ties (including everything within one class) break FCFS by
    submission order.  Because ``waited_rounds`` grows by one per admission
    round, a waiting request's effective priority rises without bound: after
    ``aging_rounds * gap`` rounds it overtakes fresh arrivals ``gap`` classes
    above it, so no class can starve another indefinitely — the aging knob
    trades how sharply priorities bite against how long bulk traffic may
    wait.

    Attributes:
        aging_rounds: Admission rounds a request must wait to gain one
            effective-priority level.  Smaller values age faster (weaker
            prioritisation, stronger fairness).
    """

    aging_rounds: int = 8

    def __post_init__(self) -> None:
        if self.aging_rounds < 1:
            raise ValueError(f"aging_rounds must be positive, got {self.aging_rounds}")

    def effective_priority(self, state: RequestState) -> int:
        """The request's priority class plus its accumulated aging bonus."""
        return state.request.priority + state.waited_rounds // self.aging_rounds


@dataclass
class SchedulerConfig:
    """Fairness/budget knobs of the continuous-batching scheduler.

    Attributes:
        max_active_requests: Upper bound on concurrently running requests
            (rows of the shared KV cache).
        max_batch_tokens: Upper bound on the summed worst-case footprints
            (``prompt_len + max_new_tokens``, clamped to the context window)
            of running requests.
        max_prefill_tokens_per_step: Per-step prefill-token budget.  When
            set, admitted prompts enter the cache in chunks of at most this
            many tokens per engine step (FCFS across ``PREFILLING``
            requests), interleaved with decode steps for the already-running
            batch; ``None`` prefills each admitted prompt whole at admission.
        priorities: Enable priority-class admission with aging
            (:class:`PriorityConfig`).  ``None`` (the default) keeps strict
            FCFS admission and ignores request priorities entirely.
    """

    max_active_requests: int = 8
    max_batch_tokens: int = 4096
    max_prefill_tokens_per_step: Optional[int] = None
    priorities: Optional[PriorityConfig] = None

    def __post_init__(self) -> None:
        if self.max_active_requests < 1:
            raise ValueError(f"max_active_requests must be positive, got {self.max_active_requests}")
        if self.max_batch_tokens < 1:
            raise ValueError(f"max_batch_tokens must be positive, got {self.max_batch_tokens}")
        if self.max_prefill_tokens_per_step is not None and self.max_prefill_tokens_per_step < 1:
            raise ValueError(
                f"max_prefill_tokens_per_step must be positive (or None), "
                f"got {self.max_prefill_tokens_per_step}"
            )


@dataclass
class Scheduler:
    """FCFS continuous-batching scheduler with a token-budget admission gate."""

    config: SchedulerConfig = field(default_factory=SchedulerConfig)
    waiting: Deque[RequestState] = field(default_factory=deque)
    running: List[RequestState] = field(default_factory=list)
    #: Monotonic submission counter; stamps ``RequestState.submit_seq`` (the
    #: FCFS tie-breaker under priority admission).
    submitted_count: int = 0

    # -- inspection ----------------------------------------------------------

    @property
    def num_waiting(self) -> int:
        return len(self.waiting)

    @property
    def num_running(self) -> int:
        return len(self.running)

    @property
    def tokens_in_flight(self) -> int:
        """Summed worst-case footprints of the currently running requests."""
        return sum(state.request.footprint_tokens for state in self.running)

    @property
    def has_work(self) -> bool:
        return bool(self.waiting or self.running)

    @property
    def prefill_budget_per_step(self) -> Optional[int]:
        """Prompt tokens the engine may prefill per step (``None`` = whole prompts)."""
        return self.config.max_prefill_tokens_per_step

    # -- transitions ---------------------------------------------------------

    def submit(self, state: RequestState) -> None:
        """Append a request to the admission queue (FCFS position stamped)."""
        state.status = RequestStatus.QUEUED
        state.submit_seq = self.submitted_count
        self.submitted_count += 1
        self.waiting.append(state)

    def admit(
        self,
        free_page_tokens: Optional[int] = None,
        page_overhead_tokens: int = 0,
    ) -> List[RequestState]:
        """Pop queued requests that fit the concurrency, token and page budgets.

        Without priorities, admission is strictly in submission order and
        stops at the first request that does not fit, so later small requests
        cannot starve an earlier large one.  With
        ``SchedulerConfig.priorities`` set, the queue is first reordered by
        effective priority (class + aging bonus, FCFS within a level — see
        :class:`PriorityConfig`) and admission then proceeds identically over
        that order; every request still waiting afterwards ages by one round.
        Either way, if nothing is running the head request is admitted
        unconditionally (progress guarantee).

        Admitted requests enter the ``PREFILLING`` status (their prompt has
        yet to enter the cache); the engine flips them to ``RUNNING`` once
        prefill completes — instantly unless ``max_prefill_tokens_per_step``
        paces it.  They occupy budget and a ``running`` slot either way.

        Args:
            free_page_tokens: Paged-KV admission budget for *this round*:
                token capacity of the pool's currently-free blocks, minus any
                engine-held reserve.  Each admitted request is charged its
                worst-case footprint plus ``page_overhead_tokens`` against
                it; a request that does not fit is **deferred** (page
                exhaustion shows up as queueing, not as a mid-step
                allocation failure) until running requests finish and free
                their pages.  ``None`` — the row-cache engine — disables the
                gate.
            page_overhead_tokens: Per-request page slack the engine reserves
                on top of the footprint: the partially-filled last block plus
                the transient copy-on-write blocks of speculative candidate
                tiling.
        """
        policy = self.config.priorities
        if policy is not None and len(self.waiting) > 1:
            self.waiting = deque(
                sorted(self.waiting, key=lambda s: (-policy.effective_priority(s), s.submit_seq))
            )
        admitted: List[RequestState] = []
        tokens = self.tokens_in_flight
        pages_left = free_page_tokens
        while self.waiting:
            head = self.waiting[0]
            active = len(self.running)
            if active >= self.config.max_active_requests:
                break
            footprint = head.request.footprint_tokens
            fits_tokens = tokens + footprint <= self.config.max_batch_tokens
            page_cost = footprint + page_overhead_tokens
            fits_pages = pages_left is None or page_cost <= pages_left
            if not (fits_tokens and fits_pages) and active > 0:
                break
            self.waiting.popleft()
            head.status = RequestStatus.PREFILLING
            self.running.append(head)
            admitted.append(head)
            tokens += footprint
            if pages_left is not None:
                pages_left -= page_cost
        if policy is not None:
            for state in self.waiting:
                state.waited_rounds += 1
        return admitted

    def release(self, state: RequestState) -> None:
        """Evict a finished request, freeing its token budget and cache row."""
        state.status = RequestStatus.FINISHED
        self.running.remove(state)

    def remove(self, state: RequestState) -> None:
        """Drop a request from the scheduler wherever it sits (cancellation).

        A queued request leaves the waiting queue; an admitted one
        (``PREFILLING`` or ``RUNNING``) leaves ``running``, immediately
        freeing its ``tokens_in_flight`` footprint and concurrency slot for
        the next admission round.  The caller owns the status transition.
        """
        if state in self.running:
            self.running.remove(state)
        else:
            try:
                self.waiting.remove(state)
            except ValueError:
                pass
