"""Asyncio streaming front-end over the continuous-batching serving engine.

:class:`AsyncServingEngine` is the layer a network server would sit on: it
drives a :class:`~repro.serving.engine.ServingEngine`'s step loop on a
background thread and exposes each request as a :class:`StreamHandle` whose
``async for burst in handle.stream()`` yields **committed-token bursts** the
moment the engine commits them — one burst per speculative step (one token
per burst under NTP), which is exactly the unit the paper's decoder produces.

Since the multi-process sharding refactor, the server does not touch engine
internals at all: it drives an
:class:`~repro.serving.control.EngineControl` with the plain-data commands of
:mod:`repro.serving.messages` (``SubmitCommand``/``StepCommand``/
``CancelCommand``) and fans the returned :class:`CommitEvent` /
:class:`FinishedEvent` streams out to the handles.  A
:class:`~repro.serving.worker.EngineWorker` process answers the identical
messages over a pipe, which is why in-process streaming and routed serving
produce byte-identical token streams.

Design rules:

* **Observation only.**  Streaming observes the engine's commit funnel
  (via the control's buffered events); it never changes what the engine
  computes.  The concatenation of streamed bursts is therefore
  byte-identical to the batch ``result().token_ids`` for every decode mode —
  asserted in ``tests/test_streaming.py``.
* **One lock, two threads.**  The event loop submits/cancels under the same
  lock the step thread holds while stepping, so engine state is never
  touched concurrently; event fan-out to handles also happens under that
  lock, so bursts and completions reach each handle's queue in commit order.
  Handles receive them with ``loop.call_soon_threadsafe`` — the only asyncio
  API that is safe to call from outside the loop.  The handle registry has
  its own small lock: handles register on the loop thread and are read by
  the step thread's crash fan-out, and fencing the registry separately keeps
  registration from ever waiting out a whole engine step.
* **Cooperative cancellation.**  ``handle.cancel()`` (or a per-request
  ``deadline=``) routes to the engine's cancel, which frees the request's
  scheduler budget, prefix-cache retention copy and shared-cache row in the
  same step.  A cancelled request's ``result()`` raises
  :class:`RequestCancelled` (or :class:`RequestDeadlineExceeded`) carrying
  the partial result; its stream raises too — unless the cancellation came
  from this very handle, in which case the stream just ends.
* **Explicit shutdown.**  ``async with`` (or :meth:`close`) joins the step
  thread and settles every pending handle; the synchronous :meth:`shutdown`
  (or plain ``with``) does the same without needing a running event loop.
  Nothing relies on daemon-thread teardown at interpreter exit — a server
  dropped without closing leaves consumers unblocked, not hanging.

Typical use::

    engine = pipeline.engine_for("ours")
    async with AsyncServingEngine(engine) as server:
        handle = await server.submit_text(prompt, config, deadline=2.0)
        async for burst in handle.stream():
            print(tokenizer.decode(burst), end="", flush=True)
        result = await handle.result()

See ``docs/streaming.md`` for the full semantics.
"""

from __future__ import annotations

import asyncio
import threading
from typing import AsyncIterator, Dict, List, Optional, Sequence

from repro.core.decoding import DecodeResult
from repro.models.generation import GenerationConfig
from repro.serving.control import EngineControl
from repro.serving.engine import ServingEngine
from repro.serving.messages import (
    CancelCommand,
    CommitEvent,
    FinishedEvent,
    StepCommand,
    SubmitCommand,
    decode_result,
    encode_config,
)


class RequestCancelled(Exception):
    """A served request was cancelled before it finished.

    Attributes:
        request_id: The cancelled request.
        partial: The partial :class:`~repro.core.decoding.DecodeResult`
            frozen at cancellation (``partial.cancelled`` is True and
            ``partial.token_ids`` holds everything committed before the
            cancel landed).
    """

    def __init__(self, request_id: str, partial: DecodeResult) -> None:
        super().__init__(f"request {request_id!r} was cancelled after {partial.tokens_generated} tokens")
        self.request_id = request_id
        self.partial = partial


class RequestDeadlineExceeded(RequestCancelled):
    """A served request hit its per-request deadline and was cancelled."""

    def __init__(self, request_id: str, partial: DecodeResult) -> None:
        RequestCancelled.__init__(self, request_id, partial)
        # Replace the generic message with the deadline-specific one.
        self.args = (
            f"request {request_id!r} exceeded its deadline after {partial.tokens_generated} tokens",
        )


#: Queue sentinel marking the end of a request's burst stream.
_DONE = object()


class StreamHandle:
    """One submitted request, as seen by an asyncio consumer.

    Produced by :meth:`AsyncServingEngine.submit`; not constructed directly.
    The handle owns an unbounded burst queue fed from the engine thread, so a
    slow consumer never back-pressures the engine (bursts are small integer
    lists; the queue is bounded in practice by ``max_new_tokens``).
    """

    def __init__(self, server: "AsyncServingEngine", request_id: str, loop: asyncio.AbstractEventLoop) -> None:
        self._server = server
        self._loop = loop
        self._queue: "asyncio.Queue[object]" = asyncio.Queue()
        self._done = asyncio.Event()
        self._result: Optional[DecodeResult] = None
        #: A RequestCancelled/RequestDeadlineExceeded for cancelled requests,
        #: or the raw engine exception when the step thread crashed.
        self._error: Optional[BaseException] = None
        self._cancel_requested = False
        #: Caller-visible id of the underlying engine request.
        self.request_id = request_id

    # -- engine-thread side (event fan-out) -------------------------------- #

    def _deliver(self, callback, *args) -> None:
        """Engine thread → loop thread handoff.

        Falls back to calling in place when the loop is already closed (a
        synchronous :meth:`AsyncServingEngine.shutdown` after ``asyncio.run``
        returned): the handle still settles, so ``done`` and the stored
        result/error stay observable instead of the handle dangling forever.
        """
        try:
            self._loop.call_soon_threadsafe(callback, *args)
        except RuntimeError:
            callback(*args)

    def _on_commit(self, burst: List[int]) -> None:
        # put_nowait never blocks on an unbounded queue, so the engine step
        # is not delayed by consumers.
        self._deliver(self._queue.put_nowait, burst)

    def _on_finished(self, event: FinishedEvent) -> None:
        result = decode_result(event.result)
        error: Optional[RequestCancelled] = None
        if event.cancelled:
            exc_type = RequestDeadlineExceeded if event.timed_out else RequestCancelled
            error = exc_type(event.request_id, result)
        self._deliver(self._settle, result, error)

    # -- loop side --------------------------------------------------------- #

    def _settle(self, result: DecodeResult, error: Optional[RequestCancelled]) -> None:
        self._result = result
        self._error = error
        self._done.set()
        self._queue.put_nowait(_DONE)
        # Settled handles leave the server's in-flight registry immediately —
        # a long-lived server must not retain every result it ever produced.
        self._server._discard(self)

    def _fail(self, error: BaseException) -> None:
        """Engine-thread crash: unblock the consumer with the original error."""
        if self._done.is_set():
            return
        self._error = error
        self._done.set()
        self._queue.put_nowait(_DONE)
        self._server._discard(self)

    @property
    def done(self) -> bool:
        """True once the request finished or was cancelled."""
        return self._done.is_set()

    async def stream(self) -> AsyncIterator[List[int]]:
        """Yield committed-token bursts as the engine commits them.

        Each burst is the list of token ids one engine step committed for
        this request (a single id under NTP; up to ``heads + 1`` ids per
        speculative step).  The stream ends when the request finishes.  If
        the request was cancelled by a deadline or by *another* caller, the
        tail of the stream raises the corresponding
        :class:`RequestCancelled`; a cancellation requested through this
        handle's own :meth:`cancel` ends the stream quietly (the consumer
        asked for it).
        """
        while True:
            item = await self._queue.get()
            if item is _DONE:
                # Re-arm so a second stream() call (or result()) still sees
                # the terminal state instead of hanging on an empty queue.
                self._queue.put_nowait(_DONE)
                if self._error is not None:
                    # Only a cancellation this handle itself requested ends
                    # the stream quietly; engine crashes always propagate.
                    own = self._cancel_requested and isinstance(self._error, RequestCancelled)
                    if not own:
                        raise self._error
                return
            yield item  # type: ignore[misc]

    async def tokens(self) -> AsyncIterator[int]:
        """Like :meth:`stream`, flattened to one token id at a time."""
        async for burst in self.stream():
            for token in burst:
                yield token

    async def result(self) -> DecodeResult:
        """Wait for completion and return the final result.

        Identical to the synchronous ``engine.result(request_id)`` — streamed
        bursts concatenate to exactly ``result().token_ids``.  Raises
        :class:`RequestCancelled` / :class:`RequestDeadlineExceeded` if the
        request did not run to completion (the exception's ``partial``
        carries the tokens that did commit).
        """
        await self._done.wait()
        if self._error is not None:
            raise self._error
        assert self._result is not None
        return self._result

    def cancel(self) -> bool:
        """Cooperatively cancel this request; returns False if already done.

        Safe to call from the event loop at any point in the request's life:
        queued, mid-prefill or mid-decode.  The engine frees the request's
        scheduler budget and cache rows in the same step; this handle's
        stream then ends quietly and :meth:`result` raises
        :class:`RequestCancelled`.

        Blocks the calling thread while the step thread holds the engine
        lock (typically well under one step on this repo's model sizes);
        latency-sensitive loops with many concurrent streams should prefer
        :meth:`cancel_async`, which waits on a worker thread instead.
        """
        self._cancel_requested = True
        return self._server._cancel(self.request_id)

    async def cancel_async(self) -> bool:
        """Like :meth:`cancel`, but acquires the engine lock off the event
        loop — burst delivery to other streams continues while this
        cancellation waits its turn (the same discipline ``submit`` uses)."""
        self._cancel_requested = True
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(None, self._server._cancel, self.request_id)


class AsyncServingEngine:
    """Drives a :class:`ServingEngine` on a background thread, async-first.

    Args:
        engine: The engine to serve.  The server owns its step loop while
            running — do not call ``engine.step()``/``engine.run()``
            concurrently (submitting through the engine directly bypasses
            streaming and is also not supported while the server runs).
        poll_interval: How long the step thread sleeps when the engine has
            no work, in seconds.  Work submitted while the thread sleeps is
            picked up at the next poll, so this bounds added first-step
            latency on an idle server.

    Use as an async context manager (``async with AsyncServingEngine(...)``),
    a synchronous one (``with`` — start/shutdown), or call
    :meth:`start` / :meth:`close` / :meth:`shutdown` explicitly.
    """

    def __init__(self, engine: ServingEngine, poll_interval: float = 0.001) -> None:
        if poll_interval <= 0:
            raise ValueError(f"poll_interval must be positive, got {poll_interval}")
        self.engine = engine
        #: The message surface this server actually drives; results stay
        #: retained on the engine (``forget_on_done=False``) so synchronous
        #: ``engine.result()``/``stream_metrics()`` keep working afterwards.
        self.control = EngineControl(engine, forget_on_done=False)
        self.poll_interval = poll_interval
        #: Serialises every engine touch: the step thread holds it per step,
        #: submit/cancel take it from the event loop.
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        #: In-flight handles by request id; settled handles drop out
        #: immediately.  Guarded by ``_registry_lock`` — the loop thread
        #: registers/discards while the step thread reads for event fan-out,
        #: and before this fence the crash fan-out iterated a list the loop
        #: thread was mutating.
        self._registry: Dict[str, StreamHandle] = {}
        self._registry_lock = threading.Lock()
        #: The exception that killed the step thread, if one did.
        self._crashed: Optional[BaseException] = None

    # -- lifecycle --------------------------------------------------------- #

    @property
    def running(self) -> bool:
        """True while the background step thread is alive."""
        return self._thread is not None and self._thread.is_alive()

    @property
    def _handles(self) -> List[StreamHandle]:
        """Snapshot of the in-flight handles (registration order)."""
        with self._registry_lock:
            return list(self._registry.values())

    def start(self) -> None:
        """Start the background step thread (idempotent while running).

        Raises ``RuntimeError`` after a step-thread crash — the engine's
        shared cache state is suspect once a step died mid-flight.
        """
        if self._crashed is not None:
            raise RuntimeError("serving step thread crashed; build a fresh engine") from self._crashed
        if self.running:
            return
        self._stop.clear()
        self._thread = threading.Thread(target=self._step_loop, name="serving-engine-step", daemon=True)
        self._thread.start()

    async def close(self, cancel_pending: bool = True) -> None:
        """Stop the step thread; by default cancel whatever is still in flight.

        ``cancel_pending=True`` cancels unfinished requests so consumers
        blocked on ``stream()``/``result()`` unblock (with
        :class:`RequestCancelled`) instead of hanging forever on a server
        that no longer steps.  Pass False to leave engine state untouched —
        the caller can then drive ``engine.run()`` synchronously.
        """
        thread = self._prepare_stop()
        if thread is not None:
            # Join off the event loop so a long in-flight step cannot block it.
            await asyncio.get_running_loop().run_in_executor(None, thread.join)
        if cancel_pending:
            self._cancel_pending()
            # The cancellations above settle their handles via call_soon;
            # yield once so those callbacks run before we prune, otherwise a
            # repeatedly start()/close()d server retains every handle it ever
            # cancelled at close.
            await asyncio.sleep(0)
        self._prune_settled()

    def shutdown(self, cancel_pending: bool = True) -> None:
        """Synchronous :meth:`close`: join the step thread, settle pending handles.

        For non-async callers — and for teardown paths where the event loop
        already exited: handles whose loop is closed are settled in place
        (their ``done``/``result`` state stays observable) instead of being
        stranded on a server that no longer steps.  Safe to call repeatedly,
        from ``with``-statement exit, or after :meth:`close`.
        """
        thread = self._prepare_stop()
        if thread is not None:
            thread.join()
        if cancel_pending:
            self._cancel_pending()
        self._prune_settled()

    def _prepare_stop(self) -> Optional[threading.Thread]:
        """Signal the step loop to exit; return the thread to join (if any)."""
        self._stop.set()
        thread, self._thread = self._thread, None
        return thread

    def _cancel_pending(self) -> None:
        """Cancel every in-flight request whose handle has not settled yet."""
        with self._lock:
            # Skip handles whose own cancel is already in flight — resetting
            # their flag here would turn the documented quiet stream end into
            # a surprise RequestCancelled.
            pending = [h for h in self._handles if not h.done and not h._cancel_requested]
            for handle in pending:
                self._drive_locked(CancelCommand(request_id=handle.request_id))

    def _prune_settled(self) -> None:
        with self._registry_lock:
            self._registry = {rid: h for rid, h in self._registry.items() if not h.done}

    async def __aenter__(self) -> "AsyncServingEngine":
        self.start()
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.close()

    def __enter__(self) -> "AsyncServingEngine":
        self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown()

    # -- the step loop and event fan-out ----------------------------------- #

    def _step_loop(self) -> None:
        while not self._stop.is_set():
            try:
                with self._lock:
                    worked = self.engine.has_work
                    if worked:
                        self._drive_locked(StepCommand(max_steps=1))
                    else:
                        # Even idle, drain events a foreign path produced
                        # (e.g. engine.cancel called directly under the lock)
                        # so their handles settle without waiting for work.
                        self._dispatch(*self.control.drain_events())
            except BaseException as error:  # noqa: BLE001 — must not die silently
                # A crashed step thread must not strand consumers on
                # stream()/result() forever: fail every in-flight handle
                # with the original error and stop stepping.
                self._crashed = error
                for handle in self._handles:
                    handle._deliver(handle._fail, error)
                return
            if not worked:
                # Idle: nothing queued, prefilling or running.  Sleep on the
                # stop event so close() wakes us immediately.
                self._stop.wait(self.poll_interval)

    def _drive_locked(self, command: object) -> object:
        """Handle one control command and fan its events out (lock held).

        Fan-out happens while the engine lock is still held, so every handle
        observes commits and completions in exactly the order the engine
        produced them — a cancel racing in from the loop thread cannot
        interleave its settle between a step's burst and that burst's
        delivery.
        """
        reply = self.control.handle(command)
        # Step/drain replies carry their events; other commands (cancel, a
        # foreign engine.cancel between steps) leave them in the control's
        # buffer — take whichever place they landed.
        commits = list(getattr(reply, "commits", []))
        finished = list(getattr(reply, "finished", []))
        buffered_commits, buffered_finished = self.control.drain_events()
        self._dispatch(commits + buffered_commits, finished + buffered_finished)
        return reply

    def _dispatch(self, commits: List[CommitEvent], finished: List[FinishedEvent]) -> None:
        for event in commits:
            handle = self._lookup(event.request_id)
            if handle is not None:
                handle._on_commit(list(event.tokens))
        for event in finished:
            handle = self._lookup(event.request_id)
            if handle is not None:
                handle._on_finished(event)

    def _lookup(self, request_id: str) -> Optional[StreamHandle]:
        with self._registry_lock:
            return self._registry.get(request_id)

    # -- submission -------------------------------------------------------- #

    async def submit(
        self,
        prompt_ids: Sequence[int],
        config: Optional[GenerationConfig] = None,
        request_id: Optional[str] = None,
        priority: int = 0,
        deadline: Optional[float] = None,
    ) -> StreamHandle:
        """Queue a tokenized prompt; returns its :class:`StreamHandle`.

        Mirrors :meth:`ServingEngine.submit` (same validation, same
        semantics for ``priority`` and ``deadline``); the handle is
        registered under the engine lock, before any step can run, so the
        stream never misses a burst.  The lock is acquired on a worker
        thread (the step thread may hold it for a whole engine step), so
        awaiting ``submit`` never stalls the event loop — burst delivery to
        other consumers continues while this submission waits its turn.
        """
        if self._crashed is not None:
            raise RuntimeError("serving step thread crashed; build a fresh engine") from self._crashed
        loop = asyncio.get_running_loop()
        command = SubmitCommand(
            prompt_ids=[int(t) for t in prompt_ids],
            config=None if config is None else encode_config(config),
            request_id=request_id,
            priority=priority,
            deadline=deadline,
        )

        def locked_submit() -> StreamHandle:
            with self._lock:
                if self._crashed is not None:
                    raise RuntimeError(
                        "serving step thread crashed; build a fresh engine"
                    ) from self._crashed
                reply = self.control.handle(command)
                handle = StreamHandle(self, reply.request_id, loop)
                with self._registry_lock:
                    self._registry[reply.request_id] = handle
                return handle

        handle = await loop.run_in_executor(None, locked_submit)
        if self._crashed is not None and not handle.done:
            # The step thread died between our submission and this resume; if
            # its crash fan-out already failed the handle this is a no-op
            # (_fail checks done), otherwise fail it here — a consumer must
            # never hang on a dead server.
            handle._fail(self._crashed)
        return handle

    async def submit_text(
        self,
        prompt: str,
        config: Optional[GenerationConfig] = None,
        request_id: Optional[str] = None,
        priority: int = 0,
        deadline: Optional[float] = None,
    ) -> StreamHandle:
        """Tokenize ``prompt`` (adding BOS) and queue it for streaming."""
        return await self.submit(
            self.engine.tokenizer.encode(prompt, add_bos=True), config, request_id, priority, deadline
        )

    def _cancel(self, request_id: str) -> bool:
        with self._lock:
            reply = self._drive_locked(CancelCommand(request_id=request_id))
        return reply.cancelled

    def _discard(self, handle: StreamHandle) -> None:
        """Forget a settled handle (runs on the event loop, like close())."""
        with self._registry_lock:
            if self._registry.get(handle.request_id) is handle:
                del self._registry[handle.request_id]


__all__ = [
    "AsyncServingEngine",
    "RequestCancelled",
    "RequestDeadlineExceeded",
    "StreamHandle",
]
