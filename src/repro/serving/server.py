"""Asyncio streaming front-end over the continuous-batching serving engine.

:class:`AsyncServingEngine` is the layer a network server would sit on: it
drives a :class:`~repro.serving.engine.ServingEngine`'s step loop on a
background thread and exposes each request as a :class:`StreamHandle` whose
``async for burst in handle.stream()`` yields **committed-token bursts** the
moment the engine commits them — one burst per speculative step (one token
per burst under NTP), which is exactly the unit the paper's decoder produces.

Design rules:

* **Observation only.**  Streaming attaches listeners to the request's
  commit funnel (:meth:`~repro.serving.request.RequestState.record_commit`);
  it never changes what the engine computes.  The concatenation of streamed
  bursts is therefore byte-identical to the batch ``result().token_ids`` for
  every decode mode — asserted in ``tests/test_streaming.py``.
* **One lock, two threads.**  The event loop submits/cancels under the same
  lock the step thread holds while stepping, so engine state is never
  touched concurrently.  Listener callbacks run on the step thread and hand
  bursts to the consumer with ``loop.call_soon_threadsafe`` — the only
  asyncio API that is safe to call from outside the loop.
* **Cooperative cancellation.**  ``handle.cancel()`` (or a per-request
  ``deadline=``) routes to :meth:`ServingEngine.cancel`, which frees the
  request's scheduler budget, prefix-cache retention copy and shared-cache
  row in the same step.  A cancelled request's ``result()`` raises
  :class:`RequestCancelled` (or :class:`RequestDeadlineExceeded`) carrying
  the partial result; its stream raises too — unless the cancellation came
  from this very handle, in which case the stream just ends.

Typical use::

    engine = pipeline.engine_for("ours")
    async with AsyncServingEngine(engine) as server:
        handle = await server.submit_text(prompt, config, deadline=2.0)
        async for burst in handle.stream():
            print(tokenizer.decode(burst), end="", flush=True)
        result = await handle.result()

See ``docs/streaming.md`` for the full semantics.
"""

from __future__ import annotations

import asyncio
import threading
from typing import AsyncIterator, List, Optional, Sequence

from repro.core.decoding import DecodeResult
from repro.models.generation import GenerationConfig
from repro.serving.engine import ServingEngine
from repro.serving.request import RequestState, RequestStatus


class RequestCancelled(Exception):
    """A served request was cancelled before it finished.

    Attributes:
        request_id: The cancelled request.
        partial: The partial :class:`~repro.core.decoding.DecodeResult`
            frozen at cancellation (``partial.cancelled`` is True and
            ``partial.token_ids`` holds everything committed before the
            cancel landed).
    """

    def __init__(self, request_id: str, partial: DecodeResult) -> None:
        super().__init__(f"request {request_id!r} was cancelled after {partial.tokens_generated} tokens")
        self.request_id = request_id
        self.partial = partial


class RequestDeadlineExceeded(RequestCancelled):
    """A served request hit its per-request deadline and was cancelled."""

    def __init__(self, request_id: str, partial: DecodeResult) -> None:
        RequestCancelled.__init__(self, request_id, partial)
        # Replace the generic message with the deadline-specific one.
        self.args = (
            f"request {request_id!r} exceeded its deadline after {partial.tokens_generated} tokens",
        )


#: Queue sentinel marking the end of a request's burst stream.
_DONE = object()


class StreamHandle:
    """One submitted request, as seen by an asyncio consumer.

    Produced by :meth:`AsyncServingEngine.submit`; not constructed directly.
    The handle owns an unbounded burst queue fed from the engine thread, so a
    slow consumer never back-pressures the engine (bursts are small integer
    lists; the queue is bounded in practice by ``max_new_tokens``).
    """

    def __init__(self, server: "AsyncServingEngine", request_id: str, loop: asyncio.AbstractEventLoop) -> None:
        self._server = server
        self._loop = loop
        self._queue: "asyncio.Queue[object]" = asyncio.Queue()
        self._done = asyncio.Event()
        self._result: Optional[DecodeResult] = None
        #: A RequestCancelled/RequestDeadlineExceeded for cancelled requests,
        #: or the raw engine exception when the step thread crashed.
        self._error: Optional[BaseException] = None
        self._cancel_requested = False
        #: Caller-visible id of the underlying engine request.
        self.request_id = request_id

    # -- engine-thread side (listener callbacks) -------------------------- #

    def _on_commit(self, burst: List[int]) -> None:
        # Engine thread → loop thread handoff; put_nowait never blocks on an
        # unbounded queue, so the engine step is not delayed by consumers.
        self._loop.call_soon_threadsafe(self._queue.put_nowait, burst)

    def _on_done(self, state: RequestState) -> None:
        result = self._server.engine.result(state.request.request_id)
        error: Optional[RequestCancelled] = None
        if state.status is RequestStatus.CANCELLED:
            exc_type = RequestDeadlineExceeded if state.timed_out else RequestCancelled
            error = exc_type(state.request.request_id, result)
        self._loop.call_soon_threadsafe(self._settle, result, error)

    # -- loop side --------------------------------------------------------- #

    def _settle(self, result: DecodeResult, error: Optional[RequestCancelled]) -> None:
        self._result = result
        self._error = error
        self._done.set()
        self._queue.put_nowait(_DONE)
        # Settled handles leave the server's in-flight list immediately — a
        # long-lived server must not retain every result it ever produced.
        self._server._discard(self)

    def _fail(self, error: BaseException) -> None:
        """Engine-thread crash: unblock the consumer with the original error."""
        if self._done.is_set():
            return
        self._error = error
        self._done.set()
        self._queue.put_nowait(_DONE)
        self._server._discard(self)

    @property
    def done(self) -> bool:
        """True once the request finished or was cancelled."""
        return self._done.is_set()

    async def stream(self) -> AsyncIterator[List[int]]:
        """Yield committed-token bursts as the engine commits them.

        Each burst is the list of token ids one engine step committed for
        this request (a single id under NTP; up to ``heads + 1`` ids per
        speculative step).  The stream ends when the request finishes.  If
        the request was cancelled by a deadline or by *another* caller, the
        tail of the stream raises the corresponding
        :class:`RequestCancelled`; a cancellation requested through this
        handle's own :meth:`cancel` ends the stream quietly (the consumer
        asked for it).
        """
        while True:
            item = await self._queue.get()
            if item is _DONE:
                # Re-arm so a second stream() call (or result()) still sees
                # the terminal state instead of hanging on an empty queue.
                self._queue.put_nowait(_DONE)
                if self._error is not None:
                    # Only a cancellation this handle itself requested ends
                    # the stream quietly; engine crashes always propagate.
                    own = self._cancel_requested and isinstance(self._error, RequestCancelled)
                    if not own:
                        raise self._error
                return
            yield item  # type: ignore[misc]

    async def tokens(self) -> AsyncIterator[int]:
        """Like :meth:`stream`, flattened to one token id at a time."""
        async for burst in self.stream():
            for token in burst:
                yield token

    async def result(self) -> DecodeResult:
        """Wait for completion and return the final result.

        Identical to the synchronous ``engine.result(request_id)`` — streamed
        bursts concatenate to exactly ``result().token_ids``.  Raises
        :class:`RequestCancelled` / :class:`RequestDeadlineExceeded` if the
        request did not run to completion (the exception's ``partial``
        carries the tokens that did commit).
        """
        await self._done.wait()
        if self._error is not None:
            raise self._error
        assert self._result is not None
        return self._result

    def cancel(self) -> bool:
        """Cooperatively cancel this request; returns False if already done.

        Safe to call from the event loop at any point in the request's life:
        queued, mid-prefill or mid-decode.  The engine frees the request's
        scheduler budget and cache rows in the same step; this handle's
        stream then ends quietly and :meth:`result` raises
        :class:`RequestCancelled`.

        Blocks the calling thread while the step thread holds the engine
        lock (typically well under one step on this repo's model sizes);
        latency-sensitive loops with many concurrent streams should prefer
        :meth:`cancel_async`, which waits on a worker thread instead.
        """
        self._cancel_requested = True
        return self._server._cancel(self.request_id)

    async def cancel_async(self) -> bool:
        """Like :meth:`cancel`, but acquires the engine lock off the event
        loop — burst delivery to other streams continues while this
        cancellation waits its turn (the same discipline ``submit`` uses)."""
        self._cancel_requested = True
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(None, self._server._cancel, self.request_id)


class AsyncServingEngine:
    """Drives a :class:`ServingEngine` on a background thread, async-first.

    Args:
        engine: The engine to serve.  The server owns its step loop while
            running — do not call ``engine.step()``/``engine.run()``
            concurrently (submitting through the engine directly bypasses
            streaming and is also not supported while the server runs).
        poll_interval: How long the step thread sleeps when the engine has
            no work, in seconds.  Work submitted while the thread sleeps is
            picked up at the next poll, so this bounds added first-step
            latency on an idle server.

    Use as an async context manager (``async with AsyncServingEngine(...)``),
    or call :meth:`start` / :meth:`close` explicitly.
    """

    def __init__(self, engine: ServingEngine, poll_interval: float = 0.001) -> None:
        if poll_interval <= 0:
            raise ValueError(f"poll_interval must be positive, got {poll_interval}")
        self.engine = engine
        self.poll_interval = poll_interval
        #: Serialises every engine touch: the step thread holds it per step,
        #: submit/cancel take it from the event loop.
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        #: In-flight handles only; settled handles drop out immediately.
        self._handles: List[StreamHandle] = []
        #: The exception that killed the step thread, if one did.
        self._crashed: Optional[BaseException] = None

    # -- lifecycle --------------------------------------------------------- #

    @property
    def running(self) -> bool:
        """True while the background step thread is alive."""
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> None:
        """Start the background step thread (idempotent while running).

        Raises ``RuntimeError`` after a step-thread crash — the engine's
        shared cache state is suspect once a step died mid-flight.
        """
        if self._crashed is not None:
            raise RuntimeError("serving step thread crashed; build a fresh engine") from self._crashed
        if self.running:
            return
        self._stop.clear()
        self._thread = threading.Thread(target=self._step_loop, name="serving-engine-step", daemon=True)
        self._thread.start()

    async def close(self, cancel_pending: bool = True) -> None:
        """Stop the step thread; by default cancel whatever is still in flight.

        ``cancel_pending=True`` cancels unfinished requests so consumers
        blocked on ``stream()``/``result()`` unblock (with
        :class:`RequestCancelled`) instead of hanging forever on a server
        that no longer steps.  Pass False to leave engine state untouched —
        the caller can then drive ``engine.run()`` synchronously.
        """
        self._stop.set()
        thread = self._thread
        if thread is not None:
            # Join off the event loop so a long in-flight step cannot block it.
            await asyncio.get_running_loop().run_in_executor(None, thread.join)
            self._thread = None
        if cancel_pending:
            with self._lock:
                for handle in self._handles:
                    # Skip handles whose own cancel is already in flight —
                    # resetting their flag here would turn the documented
                    # quiet stream end into a surprise RequestCancelled.
                    if not handle.done and not handle._cancel_requested:
                        self.engine.cancel(handle.request_id)
            # The cancellations above settle their handles via call_soon;
            # yield once so those callbacks run before we prune, otherwise a
            # repeatedly start()/close()d server retains every handle it ever
            # cancelled at close.
            await asyncio.sleep(0)
        self._handles = [handle for handle in self._handles if not handle.done]

    async def __aenter__(self) -> "AsyncServingEngine":
        self.start()
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.close()

    def _step_loop(self) -> None:
        while not self._stop.is_set():
            try:
                with self._lock:
                    worked = self.engine.has_work
                    if worked:
                        self.engine.step()
            except BaseException as error:  # noqa: BLE001 — must not die silently
                # A crashed step thread must not strand consumers on
                # stream()/result() forever: fail every in-flight handle
                # with the original error and stop stepping.
                self._crashed = error
                for handle in list(self._handles):
                    handle._loop.call_soon_threadsafe(handle._fail, error)
                return
            if not worked:
                # Idle: nothing queued, prefilling or running.  Sleep on the
                # stop event so close() wakes us immediately.
                self._stop.wait(self.poll_interval)

    # -- submission -------------------------------------------------------- #

    async def submit(
        self,
        prompt_ids: Sequence[int],
        config: Optional[GenerationConfig] = None,
        request_id: Optional[str] = None,
        priority: int = 0,
        deadline: Optional[float] = None,
    ) -> StreamHandle:
        """Queue a tokenized prompt; returns its :class:`StreamHandle`.

        Mirrors :meth:`ServingEngine.submit` (same validation, same
        semantics for ``priority`` and ``deadline``); the listeners that feed
        the handle are attached under the engine lock, before any step can
        run, so the stream never misses a burst.  The lock is acquired on a
        worker thread (the step thread may hold it for a whole engine step),
        so awaiting ``submit`` never stalls the event loop — burst delivery
        to other consumers continues while this submission waits its turn.
        """
        if self._crashed is not None:
            raise RuntimeError("serving step thread crashed; build a fresh engine") from self._crashed
        loop = asyncio.get_running_loop()

        def locked_submit() -> StreamHandle:
            with self._lock:
                if self._crashed is not None:
                    raise RuntimeError(
                        "serving step thread crashed; build a fresh engine"
                    ) from self._crashed
                rid = self.engine.submit(prompt_ids, config, request_id, priority, deadline)
                handle = StreamHandle(self, rid, loop)
                self.engine.attach_listeners(rid, on_commit=handle._on_commit, on_done=handle._on_done)
                return handle

        handle = await loop.run_in_executor(None, locked_submit)
        # A tiny request can settle (and self-discard) between the executor
        # returning and this coroutine resuming; don't re-add it.
        if not handle.done:
            self._handles.append(handle)
            if self._crashed is not None:
                # The step thread died between our submission and this append;
                # its crash fan-out could not see the handle yet, so fail it
                # here — a consumer must never hang on a dead server.
                handle._fail(self._crashed)
        return handle

    async def submit_text(
        self,
        prompt: str,
        config: Optional[GenerationConfig] = None,
        request_id: Optional[str] = None,
        priority: int = 0,
        deadline: Optional[float] = None,
    ) -> StreamHandle:
        """Tokenize ``prompt`` (adding BOS) and queue it for streaming."""
        return await self.submit(
            self.engine.tokenizer.encode(prompt, add_bos=True), config, request_id, priority, deadline
        )

    def _cancel(self, request_id: str) -> bool:
        with self._lock:
            return self.engine.cancel(request_id)

    def _discard(self, handle: StreamHandle) -> None:
        """Forget a settled handle (runs on the event loop, like close())."""
        try:
            self._handles.remove(handle)
        except ValueError:
            pass


__all__ = [
    "AsyncServingEngine",
    "RequestCancelled",
    "RequestDeadlineExceeded",
    "StreamHandle",
]
