"""Worker process: one engine-core behind a message loop.

Layer 2 of the sharded serving stack (``docs/sharding.md``).  A worker is a
child process running :func:`worker_main`: it builds its own engine from a
spawn-safe factory, wraps it in an
:class:`~repro.serving.control.EngineControl` (``forget_on_done=True``), and
then alternates between answering commands from its pipe and stepping the
engine autonomously whenever it has work.  Everything crossing the pipe is an
:class:`~repro.serving.messages.Envelope` around the plain-data messages of
:mod:`repro.serving.messages`:

* command replies carry ``reply_to=<command seq>`` so the parent can match
  them while unsolicited traffic streams in between;
* autonomous steps that produced commits/finishes ship as unsolicited
  :class:`StepReply` envelopes (``reply_to=None``);
* an idle worker emits :class:`Heartbeat` events so the router can
  distinguish "healthy but idle" from "hung";
* an exception escaping ``engine.step`` is a worker bug, not a caller
  mistake: the worker reports :class:`WorkerFatal` and exits non-zero, and
  the supervisor restarts it and requeues its in-flight requests.

Spawn safety: under the ``spawn`` start method the :class:`WorkerSpec` is
pickled into a fresh interpreter, so its factory must be importable — a
``"module:callable"`` string (resolved by :func:`resolve_factory`) plus
plain-data kwargs.  :func:`engine_from_pipeline` is the canonical such
factory: it unpickles a trained :class:`~repro.core.pipeline
.VerilogSpecPipeline` from a file written by :func:`save_pipeline` and builds
the engine inside the worker, so model weights are constructed exactly once
per process and never cross the pipe.  Under ``fork`` the factory may be any
callable (it is inherited, not pickled), which keeps tests fast.

The parent-side handle is :class:`EngineWorker`: it spawns the process,
performs the :class:`WorkerHello` protocol handshake, and provides
send/receive plumbing with an inbox for unsolicited envelopes that arrive
while a caller is waiting on a specific reply.
"""

from __future__ import annotations

import hashlib
import importlib
import multiprocessing
import multiprocessing.connection
import pickle
import sys
import time
import traceback
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, List, Optional

import numpy as np

from repro.serving.control import EngineControl
from repro.serving.messages import (
    PROTOCOL_VERSION,
    Envelope,
    Heartbeat,
    ShutdownCommand,
    ShutdownReply,
    StepCommand,
    StepReply,
    SubmitCommand,
    SubmitReply,
    WorkerFatal,
    WorkerHello,
    reply_type_for,
)

__all__ = [
    "EngineWorker",
    "WorkerSpec",
    "engine_from_pipeline",
    "resolve_factory",
    "save_pipeline",
    "worker_main",
]


# --------------------------------------------------------------------------- #
# Engine factories
# --------------------------------------------------------------------------- #


def resolve_factory(factory: Any) -> Callable[..., Any]:
    """Resolve a worker's engine factory to a callable.

    Accepts either a callable (usable under the ``fork`` start method, where
    the child inherits it) or a ``"module:callable"`` string (required under
    ``spawn``, where the spec is pickled into a fresh interpreter that must
    import the factory itself).
    """
    if callable(factory):
        return factory
    if isinstance(factory, str):
        module_name, _, attribute = factory.partition(":")
        if not module_name or not attribute:
            raise ValueError(
                f"factory string must look like 'module:callable', got {factory!r}"
            )
        target = importlib.import_module(module_name)
        for part in attribute.split("."):
            target = getattr(target, part)
        if not callable(target):
            raise TypeError(f"resolved factory {factory!r} is not callable")
        return target
    raise TypeError(f"factory must be a callable or 'module:callable' string, got {factory!r}")


def save_pipeline(pipeline: Any, path: str) -> str:
    """Pickle a trained pipeline to ``path`` for :func:`engine_from_pipeline`.

    The parent trains once and writes the file; every worker process then
    loads the identical weights instead of re-training — the sharded
    equivalent of sharing one model object between in-process engines.
    """
    with open(path, "wb") as handle:
        pickle.dump(pipeline, handle)
    return path


def engine_from_pipeline(
    pipeline_path: str,
    method: str = "ours",
    num_candidates: int = 3,
    scheduler_config: Any = None,
    prefix_cache_tokens: Optional[int] = None,
    kv_memory: str = "paged",
    kv_block_size: int = 16,
    kv_pool_blocks: Optional[int] = None,
):
    """Spawn-safe engine factory: unpickle a trained pipeline, build an engine.

    All arguments are plain data, so a :class:`WorkerSpec` carrying
    ``factory="repro.serving.worker:engine_from_pipeline"`` pickles cleanly
    under the ``spawn`` start method.  ``prefix_cache_tokens`` constructs a
    per-worker :class:`~repro.serving.PrefixCache` (caches hold model-bound
    K/V and cannot be shared across processes).
    """
    from repro.serving.prefix_cache import PrefixCache

    with open(pipeline_path, "rb") as handle:
        pipeline = pickle.load(handle)
    prefix_cache = None
    if prefix_cache_tokens is not None:
        prefix_cache = PrefixCache(max_tokens=prefix_cache_tokens)
    return pipeline.engine_for(
        method,
        num_candidates=num_candidates,
        scheduler_config=scheduler_config,
        prefix_cache=prefix_cache,
        kv_memory=kv_memory,
        kv_block_size=kv_block_size,
        kv_pool_blocks=kv_pool_blocks,
    )


# --------------------------------------------------------------------------- #
# Worker process
# --------------------------------------------------------------------------- #


@dataclass
class WorkerSpec:
    """Everything a worker process needs to build and run its engine.

    Must stay plain data (plus an importable factory reference) so it pickles
    under ``spawn``.  ``seed`` derives the worker's ambient numpy seed — the
    engine's *sampling* rngs are per-request and placement-independent
    (:func:`~repro.serving.request.derive_request_rng`), so this only pins
    incidental randomness and keeps reruns reproducible.
    """

    worker_id: str
    factory: Any
    factory_kwargs: Dict[str, Any] = field(default_factory=dict)
    heartbeat_interval: float = 0.2
    #: Engine steps per loop iteration between command polls; >1 amortises
    #: pipe traffic when the link is slower than the model.
    steps_per_loop: int = 1
    seed: int = 0


def _worker_seed(spec: WorkerSpec) -> int:
    """Stable per-worker seed: ``spec.seed`` mixed with the worker id."""
    digest = hashlib.sha256(f"{spec.seed}:{spec.worker_id}".encode("utf-8")).digest()
    return int.from_bytes(digest[:4], "big")


def worker_main(conn: multiprocessing.connection.Connection, spec: WorkerSpec) -> None:
    """Child-process entry point: build the engine, serve the message loop.

    Loop shape: drain every pending command (so cancels never queue behind
    compute), then run up to ``spec.steps_per_loop`` engine steps if there is
    work, shipping any resulting events as an unsolicited ``StepReply``; when
    idle, block briefly on the pipe and emit heartbeats.  Command errors are
    data (``SubmitReply.error``); step errors are fatal.
    """
    out_seq = 0

    def send(payload: object, reply_to: Optional[int] = None) -> None:
        nonlocal out_seq
        out_seq += 1
        conn.send(Envelope(worker_id=spec.worker_id, seq=out_seq, payload=payload, reply_to=reply_to))

    try:
        np.random.seed(_worker_seed(spec))
        factory = resolve_factory(spec.factory)
        engine = factory(**spec.factory_kwargs)
        control = EngineControl(engine, forget_on_done=True)
    except BaseException as exc:  # construction failure: report, then die
        try:
            send(WorkerFatal(worker_id=spec.worker_id, error=_format_error(exc)))
        except (BrokenPipeError, OSError):
            pass
        sys.exit(1)

    send(WorkerHello(worker_id=spec.worker_id, pid=multiprocessing.current_process().pid or 0))
    last_heartbeat = time.perf_counter()

    try:
        while True:
            # 1. Answer every pending command before stepping.
            while conn.poll(0):
                envelope = conn.recv()
                command = envelope.payload
                if isinstance(command, ShutdownCommand):
                    send(ShutdownReply(), reply_to=envelope.seq)
                    return
                if isinstance(command, SubmitCommand):
                    # A bad submit is the caller's mistake, not the worker's:
                    # it travels back as data instead of killing the loop.
                    try:
                        reply = control.handle(command)
                    except Exception as exc:
                        reply = SubmitReply(request_id=command.request_id or "", error=str(exc))
                    send(reply, reply_to=envelope.seq)
                    continue
                send(control.handle(command), reply_to=envelope.seq)

            # 2. Ship events buffered by command handling (a cancel settles a
            #    request without any step running — if it was the only work,
            #    the step branch below never fires to flush it).
            commits, finished = control.drain_events()
            if commits or finished:
                send(StepReply(commits=commits, finished=finished, stats=control.stats()))

            # 3. Step autonomously; ship events the steps produced.
            if control.engine.has_work:
                reply = control.handle(StepCommand(max_steps=spec.steps_per_loop))
                if reply.commits or reply.finished:
                    send(reply)
            else:
                # Idle: block briefly on the pipe so cancels/submits wake us.
                conn.poll(min(spec.heartbeat_interval, 0.01))

            now = time.perf_counter()
            if now - last_heartbeat >= spec.heartbeat_interval:
                send(Heartbeat(worker_id=spec.worker_id, stats=control.stats(), timestamp=now))
                last_heartbeat = now
    except (EOFError, BrokenPipeError, OSError):
        # Parent went away; nothing left to serve.
        return
    except BaseException as exc:
        # A step crashed: report and exit non-zero so the supervisor
        # restarts us and requeues our in-flight requests.
        try:
            send(WorkerFatal(worker_id=spec.worker_id, error=_format_error(exc)))
        except (BrokenPipeError, OSError):
            pass
        sys.exit(1)


def _format_error(exc: BaseException) -> str:
    return "".join(traceback.format_exception_only(type(exc), exc)).strip()


# --------------------------------------------------------------------------- #
# Parent-side handle
# --------------------------------------------------------------------------- #


class EngineWorker:
    """Parent-side handle on one worker process.

    Owns the process and its pipe, performs the hello handshake, and keeps
    an inbox of unsolicited envelopes (step events, heartbeats, fatals) that
    arrive while :meth:`request` is waiting for a specific reply — the router
    drains the inbox on every pump so no event is lost to interleaving.
    """

    def __init__(
        self,
        spec: WorkerSpec,
        start_method: Optional[str] = None,
        hello_timeout: float = 120.0,
    ) -> None:
        self.spec = spec
        if start_method is None:
            start_method = "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"
        self.start_method = start_method
        self.hello_timeout = hello_timeout
        self.process: Optional[multiprocessing.process.BaseProcess] = None
        self.conn: Optional[multiprocessing.connection.Connection] = None
        self.hello: Optional[WorkerHello] = None
        self.inbox: Deque[Envelope] = deque()
        self._next_seq = 0

    @property
    def worker_id(self) -> str:
        return self.spec.worker_id

    @property
    def alive(self) -> bool:
        return self.process is not None and self.process.is_alive()

    def start(self) -> WorkerHello:
        """Spawn the process and wait for its :class:`WorkerHello`."""
        context = multiprocessing.get_context(self.start_method)
        parent_conn, child_conn = context.Pipe(duplex=True)
        process = context.Process(
            target=worker_main,
            args=(child_conn, self.spec),
            name=f"engine-worker-{self.spec.worker_id}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        self.process = process
        self.conn = parent_conn
        deadline = time.perf_counter() + self.hello_timeout
        while True:
            remaining = deadline - time.perf_counter()
            if remaining <= 0 or not parent_conn.poll(min(max(remaining, 0.0), 0.1)):
                if remaining <= 0:
                    self.terminate()
                    raise TimeoutError(
                        f"worker {self.worker_id!r} did not say hello within {self.hello_timeout}s"
                    )
                continue
            envelope: Envelope = parent_conn.recv()
            payload = envelope.payload
            if isinstance(payload, WorkerHello):
                if payload.protocol != PROTOCOL_VERSION:
                    self.terminate()
                    raise RuntimeError(
                        f"worker {self.worker_id!r} speaks protocol {payload.protocol}, "
                        f"router expects {PROTOCOL_VERSION}"
                    )
                self.hello = payload
                return payload
            if isinstance(payload, WorkerFatal):
                self.join(timeout=1.0)
                raise RuntimeError(
                    f"worker {self.worker_id!r} failed during construction: {payload.error}"
                )
            self.inbox.append(envelope)

    # -- messaging --------------------------------------------------------- #

    def send(self, command: object) -> int:
        """Send one command; returns the sequence number replies will cite."""
        if self.conn is None:
            raise RuntimeError(f"worker {self.worker_id!r} is not started")
        self._next_seq += 1
        self.conn.send(Envelope(worker_id=self.worker_id, seq=self._next_seq, payload=command))
        return self._next_seq

    def collect(self) -> List[Envelope]:
        """Drain the inbox plus everything currently readable on the pipe."""
        envelopes: List[Envelope] = list(self.inbox)
        self.inbox.clear()
        conn = self.conn
        if conn is not None:
            try:
                while conn.poll(0):
                    envelopes.append(conn.recv())
            except (EOFError, BrokenPipeError, OSError):
                pass  # dead worker: the supervisor notices via .alive
        return envelopes

    def request(self, command: object, timeout: float = 60.0) -> object:
        """Round-trip one command, buffering unsolicited traffic meanwhile."""
        expected = reply_type_for(command)
        seq = self.send(command)
        conn = self.conn
        assert conn is not None
        deadline = time.perf_counter() + timeout
        while True:
            remaining = deadline - time.perf_counter()
            if remaining <= 0:
                raise TimeoutError(
                    f"worker {self.worker_id!r}: no {expected.__name__} within {timeout}s"
                )
            try:
                if not conn.poll(min(remaining, 0.05)):
                    if not self.alive:
                        raise EOFError(f"worker {self.worker_id!r} died mid-request")
                    continue
                envelope: Envelope = conn.recv()
            except (EOFError, BrokenPipeError, OSError):
                raise EOFError(f"worker {self.worker_id!r} died mid-request") from None
            if envelope.reply_to == seq:
                payload = envelope.payload
                if not isinstance(payload, expected):
                    raise TypeError(
                        f"worker {self.worker_id!r} answered {type(command).__name__} "
                        f"with {type(payload).__name__}"
                    )
                return payload
            self.inbox.append(envelope)

    # -- lifecycle --------------------------------------------------------- #

    def kill(self) -> None:
        """Hard-kill the process (crash injection for tests and benches)."""
        if self.process is not None and self.process.is_alive():
            self.process.kill()

    def terminate(self) -> None:
        if self.process is not None and self.process.is_alive():
            self.process.terminate()

    def join(self, timeout: Optional[float] = None) -> None:
        if self.process is not None:
            self.process.join(timeout)

    def close(self) -> None:
        """Release the pipe and reap the process (terminating if needed)."""
        if self.process is not None and self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout=5.0)
            if self.process.is_alive():
                self.process.kill()
                self.process.join(timeout=5.0)
        if self.conn is not None:
            try:
                self.conn.close()
            except OSError:
                pass
            self.conn = None
