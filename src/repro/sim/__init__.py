"""Event-driven Verilog simulator substrate.

This subpackage is the reproduction's substitute for Icarus Verilog (iverilog),
which the paper uses to compile and simulate generated designs against their
benchmark testbenches.  It provides:

* :mod:`repro.sim.values` — 4-state (0/1/X/Z) vector values,
* :mod:`repro.sim.expr` — expression evaluation over those values,
* :mod:`repro.sim.simulator` — elaboration plus an event-driven kernel that
  executes ``initial``/``always`` processes, continuous assignments, delays and
  edge-sensitive waits, and
* :mod:`repro.sim.testbench` — a convenience runner that simulates a design
  together with a testbench and captures ``$display`` output.
"""

from repro.sim.values import FourState, X_CHAR, Z_CHAR
from repro.sim.simulator import Simulator, SimulationError, SimulationResult
from repro.sim.testbench import TestbenchResult, run_testbench

__all__ = [
    "FourState",
    "X_CHAR",
    "Z_CHAR",
    "Simulator",
    "SimulationError",
    "SimulationResult",
    "TestbenchResult",
    "run_testbench",
]
