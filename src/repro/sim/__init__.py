"""Event-driven Verilog simulator substrate.

This subpackage is the reproduction's substitute for Icarus Verilog (iverilog),
which the paper uses to compile and simulate generated designs against their
benchmark testbenches.  It provides:

* :mod:`repro.sim.values` — 4-state (0/1/X/Z) vector values,
* :mod:`repro.sim.expr` — expression evaluation over those values,
* :mod:`repro.sim.simulator` — elaboration plus an event-driven kernel that
  executes ``initial``/``always`` processes, continuous assignments, delays and
  edge-sensitive waits,
* :mod:`repro.sim.compiled` — a compiled backend that lowers the elaborated
  design to slotted state with dirty bitsets and per-process closures, plus a
  vectorized batch mode sweeping many candidates over one testbench,
* :mod:`repro.sim.rng` — the shared deterministic ``$random`` stream, and
* :mod:`repro.sim.testbench` — a convenience runner that simulates a design
  together with a testbench (``backend="interpreter"|"compiled"``) and
  captures ``$display`` output.

See ``docs/simulation.md`` for the pipeline and the oracle-testing policy.
"""

from repro.sim.values import FourState, X_CHAR, Z_CHAR
from repro.sim.rng import VerilogRng
from repro.sim.simulator import Simulator, SimulationError, SimulationResult
from repro.sim.compiled import BatchReport, CompiledSimulator, simulate_batch
from repro.sim.testbench import (
    BACKENDS,
    DEFAULT_BACKEND,
    TestbenchResult,
    run_testbench,
    run_testbench_batch,
)

__all__ = [
    "FourState",
    "X_CHAR",
    "Z_CHAR",
    "VerilogRng",
    "Simulator",
    "SimulationError",
    "SimulationResult",
    "CompiledSimulator",
    "BatchReport",
    "simulate_batch",
    "BACKENDS",
    "DEFAULT_BACKEND",
    "TestbenchResult",
    "run_testbench",
    "run_testbench_batch",
]
