"""Compiled simulation backend.

The interpreter in :mod:`repro.sim.simulator` walks the AST once per executed
statement and re-evaluates *every* continuous assignment after every delta
step.  This module lowers an elaborated design once, ahead of time, into:

* a :class:`_State` table — every flat signal gets a slot, every slot a bit in
  a Python-int dirty bitset, so "which continuous assigns must re-run?" is a
  mask intersection instead of a full sweep (the nmigen ``pysim`` architecture);
* per-process compiled Python closures — one closure per statement, one per
  expression, with the AST dispatch, name resolution and constant folding paid
  at compile time.  Statements that can never suspend compile to plain
  functions; only delay/event/wait/``$finish`` constructs compile to
  generators, so the time wheel and NBA region of the interpreter are reused
  unchanged.

Cycle identity
--------------

:class:`CompiledSimulator` subclasses :class:`~repro.sim.simulator.Simulator`
and reuses its elaboration, scheduler (``run``/``_run_loop``/``_step_process``)
and four-state write path verbatim; the compiled closures bind the *same*
``apply_*`` operator functions from :mod:`repro.sim.expr` that the interpreter
dispatches to.  Any construct the compiler does not understand falls back to
the interpreter for exactly that subtree.  The result is asserted — not merely
hoped — to be cycle-identical: same :class:`SimulationResult` fields, same
``$display`` bytes, same ``$random`` draws (see
``tests/test_sim_differential.py`` and ``tests/test_sim_golden.py``).

Batched vectorized mode
-----------------------

:func:`simulate_batch` runs *many candidate designs* against *one shared
testbench* as NumPy sweeps over a candidate axis: the testbench is unrolled
into a straight-line stimulus program, each eligible candidate is lowered to a
two-state netlist of uint64 array operations, structurally identical
candidates are grouped (their constants lifted into per-candidate arrays of
shape ``(C, 1)``) and evaluated against the stimulus matrix of shape
``(1, V)`` in one pass.  Anything outside the eligible subset — sequential
logic, four-state outputs, non-vector testbenches — transparently falls back
to the scalar compiled backend, so batching is purely an optimisation, never
a semantics change.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Generator, List, Optional, Sequence, Tuple

import numpy as np

from repro.verilog import ast_nodes as ast
from repro.verilog.parser import _LocalDeclaration, parse_source
from repro.sim.expr import (
    COMPARE_OPS,
    EvaluationError,
    ExpressionEvaluator,
    apply_arith,
    apply_bitwise,
    apply_case_equality,
    apply_compare,
    apply_logical,
    apply_shift,
    apply_unary,
)
from repro.sim.simulator import (
    _CMD_DELAY,
    _CMD_FINISH,
    _CMD_WAIT_EVENT,
    _InstanceScope,
    _ScopedExpression,
    _apply_format,
    Signal,
    SimulationError,
    SimulationResult,
    Simulator,
)
from repro.sim.values import FourState

__all__ = ["CompiledSimulator", "simulate_batch", "BatchReport"]

#: Expression closure: takes the context width, returns the four-state value.
ExprFn = Callable[[Optional[int]], FourState]
#: Compiled statement: (is_async, fn); async fns return generators.
StmtFn = Tuple[bool, Callable]

_DISPLAY_TASKS = ("$display", "$write", "$strobe", "$error")
_IGNORED_TASKS = ("$dumpfile", "$dumpvars", "$dumpoff", "$dumpon", "$readmemh", "$readmemb", "$timeformat")


def _int_of(value: FourState) -> int:
    """``evaluate_int`` semantics over an already-evaluated value."""
    if not value.is_fully_known:
        raise EvaluationError("expression has unknown bits where a constant is required")
    return value.to_int()


class _State:
    """Slot table over the flat signal map.

    Every signal gets a slot; slot ``i`` owns bit ``1 << i`` of the dirty
    bitset.  Continuous assignments precompute a dependency mask over these
    bits, so one integer AND decides whether an assign can be skipped in a
    propagation iteration.
    """

    __slots__ = ("names", "signals", "slot_of", "mask_of")

    def __init__(self, signals: Dict[str, Signal]) -> None:
        self.names: List[str] = list(signals)
        self.signals: List[Signal] = [signals[name] for name in self.names]
        self.slot_of: Dict[str, int] = {name: slot for slot, name in enumerate(self.names)}
        self.mask_of: Dict[str, int] = {name: 1 << slot for slot, name in enumerate(self.names)}

    def dirty_mask(self, changed_names) -> int:
        mask_of = self.mask_of
        dirty = 0
        for name in changed_names:
            bit = mask_of.get(name)
            if bit is not None:
                dirty |= bit
        return dirty

    def current(self) -> List[FourState]:
        """Snapshot of the current value array in slot order."""
        return [signal.value for signal in self.signals]


class _CompiledAssign:
    """One lowered continuous assignment."""

    __slots__ = ("scope", "lhs", "rhs_fn", "width", "width_fn", "dep_mask", "volatile", "writer")

    def __init__(self, scope, lhs, rhs_fn, width, width_fn, dep_mask, volatile, writer) -> None:
        self.scope = scope
        self.lhs = lhs
        self.rhs_fn = rhs_fn
        self.width = width
        self.width_fn = width_fn
        self.dep_mask = dep_mask
        self.volatile = volatile
        self.writer = writer


class CompiledSimulator(Simulator):
    """Drop-in :class:`Simulator` that executes compiled closures.

    Elaboration, the event loop, the NBA region and all four-state semantics
    are inherited; only statement/expression execution and continuous-assign
    propagation are replaced by their compiled forms.
    """

    def __init__(self, *args, **kwargs) -> None:
        # Initialised before elaboration so inherited hooks stay callable.
        self._state: Optional[_State] = None
        self._writers: Dict[Tuple[int, int], Callable[[FourState], None]] = {}
        self._cont_entries: Optional[List[_CompiledAssign]] = None
        self._cont_static_mask = 0
        self._cont_any_volatile = False
        self._compiled_processes: Dict[int, StmtFn] = {}
        super().__init__(*args, **kwargs)
        self._compile()

    # ------------------------------------------------------------------ #
    # Compilation
    # ------------------------------------------------------------------ #

    def _compile(self) -> None:
        self._state = _State(self.signals)
        entries: List[_CompiledAssign] = []
        for scope, lhs, rhs in self.continuous:
            rhs_fn = self._compile_expr(scope, rhs)
            width, width_fn = self._compile_target_width(scope, lhs)
            dep_mask, volatile = self._analyze_deps(scope, (lhs, rhs))
            if self._lhs_writes_array(scope, lhs):
                # Array-element writes always record a (phantom) change; the
                # interpreter therefore re-evaluates them every iteration.
                volatile = True
            writer = self._compile_writer(scope, lhs)
            entries.append(_CompiledAssign(scope, lhs, rhs_fn, width, width_fn, dep_mask, volatile, writer))
        self._cont_entries = entries
        self._cont_static_mask = 0
        for entry in entries:
            self._cont_static_mask |= entry.dep_mask
        self._cont_any_volatile = any(entry.volatile for entry in entries)
        for process in self.processes:
            self._compiled_processes[process.pid] = self._compile_statement(process.scope, process.body)

    # -- dependency analysis -------------------------------------------------

    def _analyze_deps(self, scope: _InstanceScope, nodes: Sequence[ast.Node]) -> Tuple[int, bool]:
        """Dirty-bit mask of every signal read or written by ``nodes``.

        ``volatile`` marks entries that must be re-evaluated on every
        propagation iteration: any function call (``$time``/``$random``/user
        functions read state the mask cannot see) or any name the walk cannot
        resolve statically.
        """
        assert self._state is not None
        mask = 0
        volatile = False
        stack: List[Tuple[_InstanceScope, ast.Node]] = [(scope, node) for node in nodes]
        while stack:
            current_scope, node = stack.pop()
            if isinstance(node, _ScopedExpression):
                stack.append((node.scope, node.expr))
                continue
            if isinstance(node, ast.FunctionCall):
                volatile = True
            elif isinstance(node, ast.Identifier):
                flat = current_scope.signal_map.get(node.name)
                if flat is None:
                    if node.name in current_scope.parameters:
                        pass  # constant after elaboration
                    elif "." in node.name and node.name in self.signals:
                        flat = node.name
                    else:
                        volatile = True
                if flat is not None:
                    mask |= self._state.mask_of[flat]
            if isinstance(node, ast.Node):
                for child in node.children():
                    stack.append((current_scope, child))
        return mask, volatile

    def _lhs_writes_array(self, scope: _InstanceScope, lhs: ast.Node) -> bool:
        stack: List[Tuple[_InstanceScope, ast.Node]] = [(scope, lhs)]
        while stack:
            current_scope, node = stack.pop()
            if isinstance(node, _ScopedExpression):
                stack.append((node.scope, node.expr))
                continue
            if isinstance(node, ast.BitSelect) and isinstance(node.target, ast.Identifier):
                flat = current_scope.signal_map.get(node.target.name)
                if flat is not None and self.signals[flat].is_array:
                    return True
            if isinstance(node, ast.Concatenation):
                for part in node.parts:
                    stack.append((current_scope, part))
        return False

    # -- target widths -------------------------------------------------------

    def _compile_target_width(
        self, scope: _InstanceScope, target: ast.Expression
    ) -> Tuple[Optional[int], Optional[Callable[[], Optional[int]]]]:
        """Context width of an assignment target: static when possible.

        Signal widths are fixed after elaboration, so only part-selects with
        non-constant bounds (and concatenations containing them) need a
        runtime closure.
        """
        if self._width_is_static(scope, target):
            return self._target_width_safe(scope, target), None
        return None, lambda: self._target_width_safe(scope, target)

    def _width_is_static(self, scope: _InstanceScope, target: ast.Expression) -> bool:
        if isinstance(target, ast.PartSelect):
            return _is_constant_expr(scope, target.msb) and _is_constant_expr(scope, target.lsb)
        if isinstance(target, ast.Concatenation):
            return all(self._width_is_static(scope, part) for part in target.parts)
        # Identifier widths are fixed; every other node type is a constant in
        # the interpreter's ``_target_width`` as well.
        return True

    # -- expressions ---------------------------------------------------------

    def _compile_expr(self, scope: _InstanceScope, expr: ast.Expression) -> ExprFn:
        try:
            return self._compile_expr_inner(scope, expr)
        except Exception:
            # Unsupported or malformed node: evaluate through the interpreter
            # so runtime errors (and their messages) stay identical.
            return lambda ctx, _s=scope, _e=expr: self._evaluate_possibly_scoped(_s, _e, ctx)

    def _compile_expr_inner(self, scope: _InstanceScope, expr: ast.Expression) -> ExprFn:
        if isinstance(expr, _ScopedExpression):
            return self._compile_expr(expr.scope, expr.expr)
        if isinstance(expr, ast.Number):
            constant = FourState.from_literal(expr.width, expr.base, expr.value_text or expr.text, signed=expr.signed)
            return lambda ctx, _v=constant: _v
        if isinstance(expr, ast.StringLiteral):
            data = expr.text.encode("ascii", errors="replace")
            constant = FourState.from_int(int.from_bytes(data, "big") if data else 0, width=max(8 * len(data), 8))
            return lambda ctx, _v=constant: _v
        if isinstance(expr, ast.Identifier):
            return self._compile_identifier(scope, expr.name)
        if isinstance(expr, ast.UnaryOp):
            operand_fn = self._compile_expr(scope, expr.operand)
            return lambda ctx, _op=expr.op, _f=operand_fn: apply_unary(_op, _f(ctx))
        if isinstance(expr, ast.BinaryOp):
            return self._compile_binary(scope, expr)
        if isinstance(expr, ast.Conditional):
            cond_fn = self._compile_expr(scope, expr.condition)
            true_fn = self._compile_expr(scope, expr.if_true)
            false_fn = self._compile_expr(scope, expr.if_false)

            def eval_conditional(ctx: Optional[int]) -> FourState:
                truth = cond_fn(None).is_true()
                if truth is True:
                    return true_fn(ctx)
                if truth is False:
                    return false_fn(ctx)
                if_true = true_fn(ctx)
                if_false = false_fn(ctx)
                return FourState.unknown_value(max(if_true.width, if_false.width))

            return eval_conditional
        if isinstance(expr, ast.Concatenation):
            part_fns = [self._compile_expr(scope, part) for part in expr.parts]

            def eval_concatenation(_ctx: Optional[int]) -> FourState:
                bit_string = "".join(fn(None).to_bit_string() for fn in part_fns)
                if not bit_string:
                    return FourState.from_int(0, width=1)
                return FourState.from_bits(bit_string)

            return eval_concatenation
        if isinstance(expr, ast.Replication):
            count_fn = self._compile_expr(scope, expr.count)
            inner_fn = self._compile_expr(scope, expr.value)

            def eval_replication(_ctx: Optional[int]) -> FourState:
                count = _int_of(count_fn(None))
                inner = inner_fn(None)
                if count <= 0:
                    raise EvaluationError("replication count must be positive")
                return FourState.from_bits(inner.to_bit_string() * count)

            return eval_replication
        if isinstance(expr, ast.BitSelect):
            index_fn = self._compile_expr(scope, expr.index)
            target_fn = self._compile_expr(scope, expr.target)
            target_name = expr.target.name if isinstance(expr.target, ast.Identifier) else None

            def eval_bit_select(_ctx: Optional[int]) -> FourState:
                index = index_fn(None)
                if target_name is not None and index.is_fully_known:
                    element = scope.read_indexed(target_name, index.to_int())
                    if element is not None:
                        return element
                target = target_fn(None)
                if not index.is_fully_known:
                    return FourState.unknown_value(1)
                return FourState.from_bits(target.bit(index.to_int()))

            return eval_bit_select
        if isinstance(expr, ast.PartSelect):
            target_fn = self._compile_expr(scope, expr.target)
            msb_fn = self._compile_expr(scope, expr.msb)
            lsb_fn = self._compile_expr(scope, expr.lsb)
            mode = expr.mode

            def eval_part_select(_ctx: Optional[int]) -> FourState:
                target = target_fn(None)
                if mode == ":":
                    msb = _int_of(msb_fn(None))
                    lsb = _int_of(lsb_fn(None))
                else:
                    base = _int_of(msb_fn(None))
                    width = _int_of(lsb_fn(None))
                    if mode == "+:":
                        lsb, msb = base, base + width - 1
                    else:
                        msb, lsb = base, base - width + 1
                if msb < lsb:
                    msb, lsb = lsb, msb
                bits = "".join(target.bit(i) for i in range(msb, lsb - 1, -1))
                return FourState.from_bits(bits or "x")

            return eval_part_select
        if isinstance(expr, ast.FunctionCall):
            arg_fns = [self._compile_expr(scope, arg) for arg in expr.args]
            name = expr.name
            return lambda _ctx, _fns=arg_fns: scope.call_function(name, [fn(None) for fn in _fns])
        raise EvaluationError(f"cannot compile {type(expr).__name__}")

    def _compile_identifier(self, scope: _InstanceScope, name: str) -> ExprFn:
        # Resolution order mirrors _InstanceScope.read_signal: local frames
        # (only populated while a task body is suspended inside this scope),
        # then parameters, then the flat signal map, then hierarchical names.
        if name in scope.parameters:
            constant = scope.parameters[name]

            def read_parameter(_ctx: Optional[int]) -> FourState:
                if scope.locals:
                    for frame in reversed(scope.locals):
                        if name in frame:
                            return frame[name]
                return constant

            return read_parameter
        if name in scope.signal_map:
            signal = self.signals[scope.signal_map[name]]

            def read_signal(_ctx: Optional[int]) -> FourState:
                if scope.locals:
                    for frame in reversed(scope.locals):
                        if name in frame:
                            return frame[name]
                return signal.value

            return read_signal
        # Hierarchical or unknown names: the generic path raises the same
        # errors the interpreter would.
        return lambda _ctx: scope.read_signal(name)

    def _compile_binary(self, scope: _InstanceScope, expr: ast.BinaryOp) -> ExprFn:
        left_fn = self._compile_expr(scope, expr.left)
        right_fn = self._compile_expr(scope, expr.right)
        op = expr.op
        # Bind the semantics function at compile time; the dispatch mirrors
        # expr.apply_binary exactly.  Both operands are always evaluated
        # (Verilog has no short-circuit), left before right.
        if op in ("&&", "||"):
            return lambda ctx: apply_logical(op, left_fn(ctx), right_fn(ctx))
        if op in ("===", "!=="):
            return lambda ctx: apply_case_equality(op, left_fn(ctx), right_fn(ctx))
        if op in COMPARE_OPS:
            compare = COMPARE_OPS[op]
            return lambda ctx: apply_compare(compare, left_fn(ctx), right_fn(ctx))
        if op in ("<<", ">>", "<<<", ">>>"):
            return lambda ctx: apply_shift(op, left_fn(ctx), right_fn(ctx))
        if op in ("&", "|", "^", "~^", "^~"):
            return lambda ctx: apply_bitwise(op, left_fn(ctx), right_fn(ctx))
        return lambda ctx: apply_arith(op, left_fn(ctx), right_fn(ctx), ctx)

    # -- statements ----------------------------------------------------------

    def _compile_statement(self, scope: _InstanceScope, stmt: ast.Statement) -> StmtFn:
        try:
            return self._compile_statement_inner(scope, stmt)
        except Exception:
            # Interpreter fallback for the whole subtree.
            return True, (lambda _s=scope, _t=stmt: self._exec_statement(_s, _t))

    def _compile_statement_inner(self, scope: _InstanceScope, stmt: ast.Statement) -> StmtFn:
        if isinstance(stmt, ast.Block):
            return self._compile_block(scope, stmt.statements)
        if isinstance(stmt, ast.Assignment):
            return self._compile_assignment(scope, stmt)
        if isinstance(stmt, ast.IfStatement):
            return self._compile_if(scope, stmt)
        if isinstance(stmt, ast.CaseStatement):
            return self._compile_case(scope, stmt)
        if isinstance(stmt, ast.ForStatement):
            return self._compile_for(scope, stmt)
        if isinstance(stmt, ast.WhileStatement):
            return self._compile_while(scope, stmt)
        if isinstance(stmt, ast.RepeatStatement):
            return self._compile_repeat(scope, stmt)
        if isinstance(stmt, ast.ForeverStatement):
            return self._compile_forever(scope, stmt)
        if isinstance(stmt, ast.DelayStatement):
            return self._compile_delay(scope, stmt)
        if isinstance(stmt, ast.EventControlStatement):
            return self._compile_event_control(scope, stmt)
        if isinstance(stmt, ast.WaitStatement):
            return self._compile_wait(scope, stmt)
        if isinstance(stmt, ast.SystemTaskCall):
            return self._compile_system_task(scope, stmt)
        if isinstance(stmt, ast.TaskCallStatement):
            # User tasks push local frames and may suspend; the interpreter
            # path handles frames/arguments exactly.
            return True, (lambda _s=scope, _t=stmt: self._exec_statement(_s, _t))
        if isinstance(stmt, (ast.NullStatement, ast.DisableStatement, _LocalDeclaration)):
            return False, _noop
        message = f"unsupported statement {type(stmt).__name__}"
        return False, _raiser(message)

    def _compile_block(self, scope: _InstanceScope, statements: Sequence[ast.Statement]) -> StmtFn:
        children = [self._compile_statement(scope, child) for child in statements]
        if all(not is_async for is_async, _fn in children):
            fns = [fn for _is_async, fn in children]

            def run_block() -> None:
                for fn in fns:
                    fn()

            return False, run_block

        def run_block_async() -> Generator:
            for is_async, fn in children:
                if is_async:
                    yield from fn()
                    # Only suspendable children can raise the finished flag.
                    if self.finished:
                        return
                else:
                    fn()

        return True, run_block_async

    def _compile_assignment(self, scope: _InstanceScope, stmt: ast.Assignment) -> StmtFn:
        width, width_fn = self._compile_target_width(scope, stmt.target)
        value_fn = self._compile_expr(scope, stmt.value)
        target = stmt.target
        blocking = stmt.blocking

        if blocking:
            writer = self._compile_writer(scope, target)
            # Also seed the writer cache so any interpreter-path writes to the
            # same target (e.g. via a task body) reuse this closure.
            self._writers[(id(scope), id(target))] = writer

            def execute_write() -> None:
                ctx = width if width_fn is None else width_fn()
                writer(value_fn(ctx))

        else:

            def execute_write() -> None:
                ctx = width if width_fn is None else width_fn()
                self._nba_queue.append((scope, target, value_fn(ctx)))

        if stmt.delay is None:
            return False, execute_write

        delay_fn = self._compile_expr(scope, stmt.delay)

        def run_delayed_assign() -> Generator:
            delay = _int_of(delay_fn(None))
            if delay > 0:
                yield (_CMD_DELAY, delay)
            execute_write()

        return True, run_delayed_assign

    def _compile_if(self, scope: _InstanceScope, stmt: ast.IfStatement) -> StmtFn:
        cond_fn = self._compile_expr(scope, stmt.condition)
        then_async, then_fn = self._compile_statement(scope, stmt.then_body)
        else_compiled = None if stmt.else_body is None else self._compile_statement(scope, stmt.else_body)
        if not then_async and (else_compiled is None or not else_compiled[0]):
            else_fn = None if else_compiled is None else else_compiled[1]

            def run_if() -> None:
                truth = cond_fn(None).is_true()
                if truth:
                    then_fn()
                elif else_fn is not None:
                    else_fn()

            return False, run_if

        def run_if_async() -> Generator:
            truth = cond_fn(None).is_true()
            if truth:
                if then_async:
                    yield from then_fn()
                else:
                    then_fn()
            elif else_compiled is not None:
                else_async, else_fn = else_compiled
                if else_async:
                    yield from else_fn()
                else:
                    else_fn()

        return True, run_if_async

    def _compile_case(self, scope: _InstanceScope, stmt: ast.CaseStatement) -> StmtFn:
        subject_fn = self._compile_expr(scope, stmt.subject)
        kind = stmt.kind
        items: List[Tuple[bool, List[ExprFn], Optional[StmtFn]]] = []
        any_async = False
        for item in stmt.items:
            body = None if item.body is None else self._compile_statement(scope, item.body)
            if body is not None and body[0]:
                any_async = True
            pattern_fns = [self._compile_expr(scope, pattern) for pattern in item.patterns]
            items.append((item.is_default, pattern_fns, body))
        case_match = Simulator._case_match

        def select() -> Optional[StmtFn]:
            subject = subject_fn(None)
            default_body: Optional[StmtFn] = None
            for is_default, pattern_fns, body in items:
                if is_default:
                    default_body = body
                    continue
                for pattern_fn in pattern_fns:
                    if case_match(kind, subject, pattern_fn(None)):
                        return body
            return default_body

        if not any_async:

            def run_case() -> None:
                body = select()
                if body is not None:
                    body[1]()

            return False, run_case

        def run_case_async() -> Generator:
            body = select()
            if body is None:
                return
            is_async, fn = body
            if is_async:
                yield from fn()
            else:
                fn()

        return True, run_case_async

    def _compile_for(self, scope: _InstanceScope, stmt: ast.ForStatement) -> StmtFn:
        init_async, init_fn = self._compile_statement(scope, stmt.init)
        cond_fn = self._compile_expr(scope, stmt.condition)
        body_async, body_fn = self._compile_statement(scope, stmt.body)
        step_async, step_fn = self._compile_statement(scope, stmt.step)
        limit_message = "for loop iteration limit exceeded"
        if not (init_async or body_async or step_async):

            def run_for() -> None:
                init_fn()
                iterations = 0
                while True:
                    if not cond_fn(None).is_true():
                        break
                    body_fn()
                    step_fn()
                    iterations += 1
                    if iterations > self.max_loop_iterations:
                        raise SimulationError(limit_message)

            return False, run_for

        def run_for_async() -> Generator:
            if init_async:
                yield from init_fn()
            else:
                init_fn()
            iterations = 0
            while True:
                if not cond_fn(None).is_true():
                    break
                if body_async:
                    yield from body_fn()
                else:
                    body_fn()
                if self.finished:
                    return
                if step_async:
                    yield from step_fn()
                else:
                    step_fn()
                iterations += 1
                if iterations > self.max_loop_iterations:
                    raise SimulationError(limit_message)

        return True, run_for_async

    def _compile_while(self, scope: _InstanceScope, stmt: ast.WhileStatement) -> StmtFn:
        cond_fn = self._compile_expr(scope, stmt.condition)
        body_async, body_fn = self._compile_statement(scope, stmt.body)
        limit_message = "while loop iteration limit exceeded"
        if not body_async:

            def run_while() -> None:
                iterations = 0
                while True:
                    if not cond_fn(None).is_true():
                        break
                    body_fn()
                    iterations += 1
                    if iterations > self.max_loop_iterations:
                        raise SimulationError(limit_message)

            return False, run_while

        def run_while_async() -> Generator:
            iterations = 0
            while True:
                if not cond_fn(None).is_true():
                    break
                yield from body_fn()
                if self.finished:
                    return
                iterations += 1
                if iterations > self.max_loop_iterations:
                    raise SimulationError(limit_message)

        return True, run_while_async

    def _compile_repeat(self, scope: _InstanceScope, stmt: ast.RepeatStatement) -> StmtFn:
        count_fn = self._compile_expr(scope, stmt.count)
        body_async, body_fn = self._compile_statement(scope, stmt.body)
        if not body_async:

            def run_repeat() -> None:
                count = _int_of(count_fn(None))
                for _ in range(min(count, self.max_loop_iterations)):
                    body_fn()

            return False, run_repeat

        def run_repeat_async() -> Generator:
            count = _int_of(count_fn(None))
            for _ in range(min(count, self.max_loop_iterations)):
                yield from body_fn()
                if self.finished:
                    return

        return True, run_repeat_async

    def _compile_forever(self, scope: _InstanceScope, stmt: ast.ForeverStatement) -> StmtFn:
        body_async, body_fn = self._compile_statement(scope, stmt.body)
        limit_message = "forever loop iteration limit exceeded"
        if not body_async:
            # A forever loop with no suspension point spins until the
            # interpreter's iteration guard fires; mirror that exactly.

            def run_forever() -> None:
                iterations = 0
                while not self.finished:
                    body_fn()
                    iterations += 1
                    if iterations > self.max_loop_iterations:
                        raise SimulationError(limit_message)

            return False, run_forever

        def run_forever_async() -> Generator:
            iterations = 0
            while not self.finished:
                yield from body_fn()
                iterations += 1
                if iterations > self.max_loop_iterations:
                    raise SimulationError(limit_message)

        return True, run_forever_async

    def _compile_delay(self, scope: _InstanceScope, stmt: ast.DelayStatement) -> StmtFn:
        delay_fn = self._compile_expr(scope, stmt.delay)
        body = None if stmt.body is None else self._compile_statement(scope, stmt.body)

        def run_delay() -> Generator:
            delay = _int_of(delay_fn(None))
            yield (_CMD_DELAY, max(delay, 0))
            if body is not None:
                is_async, fn = body
                if is_async:
                    yield from fn()
                else:
                    fn()

        return True, run_delay

    def _compile_event_control(self, scope: _InstanceScope, stmt: ast.EventControlStatement) -> StmtFn:
        # Sensitivity lists are static AST walks over a fixed signal map.
        controls = self._resolve_sensitivity(scope, stmt)
        body = None if stmt.body is None else self._compile_statement(scope, stmt.body)

        def run_event_control() -> Generator:
            yield (_CMD_WAIT_EVENT, controls)
            if body is not None:
                is_async, fn = body
                if is_async:
                    yield from fn()
                else:
                    fn()

        return True, run_event_control

    def _compile_wait(self, scope: _InstanceScope, stmt: ast.WaitStatement) -> StmtFn:
        cond_fn = self._compile_expr(scope, stmt.condition)
        wait_controls = [(None, name) for name in self._signals_in_expression(scope, stmt.condition)]
        body = None if stmt.body is None else self._compile_statement(scope, stmt.body)

        def run_wait() -> Generator:
            iterations = 0
            while True:
                if cond_fn(None).is_true():
                    break
                yield (_CMD_WAIT_EVENT, wait_controls)
                iterations += 1
                if iterations > self.max_loop_iterations:
                    raise SimulationError("wait statement never satisfied")
            if body is not None:
                is_async, fn = body
                if is_async:
                    yield from fn()
                else:
                    fn()

        return True, run_wait

    def _compile_system_task(self, scope: _InstanceScope, stmt: ast.SystemTaskCall) -> StmtFn:
        name = stmt.name
        if name in ("$finish", "$stop"):

            def run_finish() -> Generator:
                self.finished = True
                yield (_CMD_FINISH, None)

            return True, run_finish
        if name == "$fatal":
            render = self._compile_display(scope, stmt.args)

            def run_fatal() -> Generator:
                self.display_lines.append(render())
                self.finished = True
                yield (_CMD_FINISH, None)

            return True, run_fatal
        if name in _DISPLAY_TASKS:
            render = self._compile_display(scope, stmt.args)
            return False, (lambda: self.display_lines.append(render()))
        if name == "$monitor":
            render = self._compile_display(scope, stmt.args)
            args = stmt.args

            def run_monitor() -> None:
                self._monitors.append((scope, args))
                self.display_lines.append(render())

            return False, run_monitor
        # $dump*/$readmem*/$timeformat and unknown tasks are no-ops.
        return False, _noop

    def _compile_display(self, scope: _InstanceScope, args: Sequence[ast.Expression]) -> Callable[[], str]:
        if not args:
            return lambda: ""
        first = args[0]
        if isinstance(first, ast.StringLiteral):
            fmt = first.text
            value_fns = [self._compile_expr(scope, arg) for arg in args[1:]]
            return lambda: _apply_format(fmt, [fn(None) for fn in value_fns], self.time)
        value_fns = [self._compile_expr(scope, arg) for arg in args]

        def render_values() -> str:
            rendered = []
            for fn in value_fns:
                value = fn(None)
                rendered.append(str(value.to_int()) if value.is_fully_known else value.to_bit_string())
            return " ".join(rendered)

        return render_values

    # ------------------------------------------------------------------ #
    # Execution overrides
    # ------------------------------------------------------------------ #

    def _exec_process(self, process) -> Generator:
        compiled = self._compiled_processes.get(process.pid)
        if compiled is None:
            return super()._exec_process(process)
        is_async, fn = compiled
        return self._run_compiled_process(process, is_async, fn)

    def _run_compiled_process(self, process, is_async: bool, fn: Callable) -> Generator:
        if process.repeat_forever:
            iterations = 0
            while True:
                if is_async:
                    yield from fn()
                else:
                    fn()
                iterations += 1
                if self.finished:
                    return
                if iterations > self.max_loop_iterations:
                    raise SimulationError(f"always block {process.name} never suspends")
        else:
            if is_async:
                yield from fn()
            else:
                fn()

    def _write_target(self, scope, target, value) -> None:
        key = (id(scope), id(target))
        writer = self._writers.get(key)
        if writer is None:
            writer = self._compile_writer(scope, target)
            self._writers[key] = writer
        writer(value)

    def _compile_writer(self, scope, target) -> Callable[[FourState], None]:
        if isinstance(target, _ScopedExpression):
            return self._compile_writer(target.scope, target.expr)
        if isinstance(target, ast.Identifier):
            name = target.name
            flat = scope.signal_map.get(name)
            if flat is not None:
                signal = self.signals[flat]
                flat_name = signal.name

                def write_identifier(value: FourState) -> None:
                    if scope.locals:
                        for frame in reversed(scope.locals):
                            if name in frame:
                                frame[name] = value.resize(frame[name].width)
                                return
                    # Inlined Simulator._set_signal — this is the hottest
                    # write path, one call layer matters.  Change records are
                    # keyed by the flat hierarchical name.
                    value = value.resize(signal.width, signed=signal.signed)
                    old = signal.value
                    if old.value == value.value and old.unknown == value.unknown:
                        return
                    signal.value = value
                    changed = self._changed_signals
                    prev = changed.get(flat_name)
                    changed[flat_name] = (old, value) if prev is None else (prev[0], value)

                return write_identifier
        # Bit/part selects, concatenations and unresolvable names reuse the
        # interpreter's write path (its recursion re-enters the cached
        # dispatch above for concatenation parts).
        return lambda value: Simulator._write_target(self, scope, target, value)

    def _evaluate_continuous(self, initial: bool = False) -> None:
        if self._cont_entries is None:
            super()._evaluate_continuous(initial)
            return
        for entry in self._cont_entries:
            try:
                width = entry.width if entry.width_fn is None else entry.width_fn()
                entry.writer(entry.rhs_fn(width))
            except (EvaluationError, SimulationError):
                if initial:
                    continue
                raise

    def _propagate_changes(self, waiting) -> None:
        changes = self._changed_signals
        if not changes:
            return
        if self._state is None:
            super()._propagate_changes(waiting)
            return
        entries = self._cont_entries
        any_volatile = self._cont_any_volatile
        static_mask = self._cont_static_mask
        mask_of = self._state.mask_of
        for _ in range(64):
            changes = self._changed_signals
            if not changes:
                return
            self._changed_signals = {}
            dirty = 0
            for name in changes:
                bit = mask_of.get(name)
                if bit is not None:
                    dirty |= bit
            # Whole-network skip: when nothing any assign depends on changed,
            # re-evaluating would write identical values and wake nobody.
            if any_volatile or (dirty & static_mask):
                for entry in entries:
                    if not entry.volatile and not (entry.dep_mask & dirty):
                        continue
                    try:
                        width = entry.width if entry.width_fn is None else entry.width_fn()
                        entry.writer(entry.rhs_fn(width))
                    except (EvaluationError, SimulationError):
                        continue
            if waiting:
                # Inlined Simulator._matches_sensitivity over every waiter.
                woken: List[int] = []
                for pid, process in waiting.items():
                    for edge, signal_name in process.waiting_events:
                        change = changes.get(signal_name)
                        if change is None:
                            continue
                        if edge is None:
                            self._ready.append(process)
                            woken.append(pid)
                            break
                        old, new = change
                        new_bit = new.bit(0)
                        if (edge == "posedge" and new_bit == "1" and old.bit(0) != "1") or (
                            edge == "negedge" and new_bit == "0" and old.bit(0) != "0"
                        ):
                            self._ready.append(process)
                            woken.append(pid)
                            break
                for pid in woken:
                    waiting.pop(pid, None)
        raise SimulationError("continuous assignment network did not settle")


def _noop() -> None:
    return None


def _raiser(message: str) -> Callable[[], None]:
    def raise_unsupported() -> None:
        raise SimulationError(message)

    return raise_unsupported


def _is_constant_expr(scope: _InstanceScope, expr: ast.Node) -> bool:
    for node in expr.walk():
        if isinstance(node, (ast.FunctionCall, _ScopedExpression)):
            return False
        if isinstance(node, ast.Identifier) and node.name not in scope.parameters:
            return False
    return True


# ========================================================================== #
# Batched vectorized mode
# ========================================================================== #

_MAX_WIDTH = 64


@dataclass
class _VectorCheck:
    """One ``if (out !== expected)`` self-check in the stimulus program."""

    step: int
    name: str
    expected: int
    width: int
    fmt: str
    time: int


@dataclass
class _VectorProgram:
    """A testbench unrolled into a straight-line stimulus program."""

    module_name: str
    input_widths: Dict[str, int]
    output_widths: Dict[str, int]
    #: Per input, the value driven during each delay step: shape (V,).
    stimulus: Dict[str, List[int]]
    checks: List[_VectorCheck]
    num_steps: int
    total_time: int
    pass_text: str
    fail_fmt: str


@dataclass
class _Netlist:
    """A candidate lowered to two-state uint64 array operations.

    ``ops`` is the structural key: constants appear as slot references so
    that candidates differing only in literals/parameters share one compiled
    group; ``consts`` carries this candidate's values for those slots.
    """

    ops: Tuple[tuple, ...]
    consts: Tuple[int, ...]
    outputs: Tuple[Tuple[str, int], ...]  # (name, op index)

    @property
    def key(self) -> tuple:
        return (self.ops, self.outputs)


@dataclass
class BatchReport:
    """How a :func:`simulate_batch` call dispatched its candidates."""

    vectorized: int = 0
    fallback: int = 0
    groups: int = 0


class _ConstScope:
    """Parameter-only scope for evaluating elaboration-time constants."""

    def __init__(self) -> None:
        self.parameters: Dict[str, FourState] = {}
        self.evaluator = ExpressionEvaluator(self)

    def read_signal(self, name: str) -> FourState:
        if name in self.parameters:
            return self.parameters[name]
        raise EvaluationError(f"non-constant name {name!r}")

    def signal_width(self, name: str) -> int:
        if name in self.parameters:
            return self.parameters[name].width
        return 32

    def call_function(self, name: str, args: List[FourState]) -> FourState:
        raise EvaluationError(f"function call {name!r} in constant context")


def _const_int(expr: ast.Expression, scope: Optional[_ConstScope] = None) -> Optional[int]:
    try:
        return (scope or _ConstScope()).evaluator.evaluate_int(expr)
    except (EvaluationError, Exception):
        return None


def _number_value(expr: ast.Expression) -> Optional[FourState]:
    if not isinstance(expr, ast.Number):
        return None
    try:
        value = FourState.from_literal(expr.width, expr.base, expr.value_text or expr.text, signed=expr.signed)
    except (ValueError, KeyError):
        return None
    if not value.is_fully_known or value.signed:
        return None
    return value


def _extract_vector_program(module: ast.ModuleDef) -> Optional[_VectorProgram]:
    """Recognise the generic combinational vector-testbench shape.

    Returns None (→ scalar fallback) unless the module consists of reg/wire
    declarations, one identity-connected DUT instance and one initial block
    of ``set inputs / #delay / check outputs`` rounds ending in the standard
    errors report and ``$finish``.
    """
    if module.ports or module.parameters:
        return None
    const_scope = _ConstScope()
    reg_widths: Dict[str, int] = {}
    wire_widths: Dict[str, int] = {}
    counters: Dict[str, int] = {}
    instance: Optional[ast.ModuleInstance] = None
    initial: Optional[ast.InitialBlock] = None
    for item in module.items:
        if isinstance(item, ast.NetDeclaration):
            if item.initializers and any(init is not None for init in item.initializers):
                return None
            if item.array_ranges and any(rng is not None for rng in item.array_ranges):
                return None
            if item.signed:
                return None
            width = 1
            if item.range is not None:
                msb = _const_int(item.range.msb, const_scope)
                lsb = _const_int(item.range.lsb, const_scope)
                if msb is None or lsb is None:
                    return None
                width = abs(msb - lsb) + 1
            if width > _MAX_WIDTH:
                return None
            for name in item.names:
                if item.net_type == "reg":
                    reg_widths[name] = width
                elif item.net_type == "wire":
                    wire_widths[name] = width
                elif item.net_type == "integer":
                    counters[name] = 32
                else:
                    return None
        elif isinstance(item, ast.ModuleInstance):
            if instance is not None or item.parameter_overrides:
                return None
            instance = item
        elif isinstance(item, ast.InitialBlock):
            if initial is not None:
                return None
            initial = item
        else:
            return None
    if instance is None or initial is None:
        return None
    connected: List[str] = []
    for conn in instance.connections:
        if conn.name is None or not isinstance(conn.expr, ast.Identifier) or conn.expr.name != conn.name:
            return None
        if conn.name not in reg_widths and conn.name not in wire_widths:
            return None
        connected.append(conn.name)
    if len(set(connected)) != len(connected):
        return None

    body = initial.body
    statements = list(body.statements) if isinstance(body, ast.Block) else [body]
    stimulus: Dict[str, List[int]] = {name: [] for name in reg_widths}
    current: Dict[str, Optional[int]] = {name: None for name in reg_widths}
    checks: List[_VectorCheck] = []
    steps = 0
    total_time = 0
    pass_text: Optional[str] = None
    fail_fmt: Optional[str] = None
    finished = False
    index = 0
    if statements and _is_counter_reset(statements[0], counters):
        index = 1
    else:
        return None
    while index < len(statements):
        stmt = statements[index]
        index += 1
        if finished:
            return None  # statements after $finish: not the known shape
        if isinstance(stmt, ast.Assignment) and stmt.blocking and stmt.delay is None:
            if not isinstance(stmt.target, ast.Identifier) or stmt.target.name not in reg_widths:
                return None
            value = _number_value(stmt.value)
            if value is None:
                return None
            name = stmt.target.name
            current[name] = value.resize(reg_widths[name]).value
            continue
        if isinstance(stmt, ast.DelayStatement) and stmt.body is None:
            amount = _const_int(stmt.delay, const_scope)
            if amount is None or amount < 0:
                return None
            if any(current[name] is None for name in current):
                return None  # an input would still be X during this step
            for name, value in current.items():
                stimulus[name].append(value)  # type: ignore[arg-type]
            steps += 1
            total_time += amount
            continue
        if isinstance(stmt, ast.SystemTaskCall) and stmt.name == "$finish":
            finished = True
            continue
        if isinstance(stmt, ast.IfStatement):
            final = _match_final_report(stmt, counters)
            if final is not None:
                pass_text, fail_fmt = final
                continue
            # A check reads the outputs produced by the most recent stimulus
            # row, i.e. step index ``steps - 1``.
            if steps == 0:
                return None
            check = _match_vector_check(stmt, wire_widths, counters, steps - 1, total_time)
            if check is None:
                return None
            checks.append(check)
            continue
        return None
    if not finished or pass_text is None or fail_fmt is None or steps == 0:
        return None
    if any(check.step >= steps for check in checks):
        return None
    checked = {check.name for check in checks}
    if not checked <= set(wire_widths):
        return None
    return _VectorProgram(
        module_name=instance.module_name,
        input_widths={name: reg_widths[name] for name in reg_widths if name in connected},
        output_widths={name: wire_widths[name] for name in wire_widths if name in connected},
        stimulus=stimulus,
        checks=checks,
        num_steps=steps,
        total_time=total_time,
        pass_text=pass_text,
        fail_fmt=fail_fmt,
    )


def _is_counter_reset(stmt: ast.Statement, counters: Dict[str, int]) -> bool:
    return (
        isinstance(stmt, ast.Assignment)
        and stmt.blocking
        and stmt.delay is None
        and isinstance(stmt.target, ast.Identifier)
        and stmt.target.name in counters
        and isinstance(stmt.value, ast.Number)
        and (_number_value(stmt.value) is not None)
        and _number_value(stmt.value).value == 0
    )


def _match_vector_check(
    stmt: ast.IfStatement,
    wire_widths: Dict[str, int],
    counters: Dict[str, int],
    step: int,
    time: int,
) -> Optional[_VectorCheck]:
    """Match ``if (out !== W'dV) begin errors = errors + 1; $display(...); end``."""
    if stmt.else_body is not None:
        return None
    cond = stmt.condition
    if not isinstance(cond, ast.BinaryOp) or cond.op != "!==":
        return None
    if not isinstance(cond.left, ast.Identifier) or cond.left.name not in wire_widths:
        return None
    expected = _number_value(cond.right)
    if expected is None:
        return None
    name = cond.left.name
    width = wire_widths[name]
    body = stmt.then_body
    statements = list(body.statements) if isinstance(body, ast.Block) else [body]
    if len(statements) != 2:
        return None
    increment, display = statements
    if not (
        isinstance(increment, ast.Assignment)
        and increment.blocking
        and increment.delay is None
        and isinstance(increment.target, ast.Identifier)
        and increment.target.name in counters
        and isinstance(increment.value, ast.BinaryOp)
        and increment.value.op == "+"
        and isinstance(increment.value.left, ast.Identifier)
        and increment.value.left.name == increment.target.name
        and isinstance(increment.value.right, ast.Number)
    ):
        return None
    if not (
        isinstance(display, ast.SystemTaskCall)
        and display.name == "$display"
        and len(display.args) == 2
        and isinstance(display.args[0], ast.StringLiteral)
        and isinstance(display.args[1], ast.Identifier)
        and display.args[1].name == name
    ):
        return None
    return _VectorCheck(
        step=step,
        name=name,
        expected=expected.resize(width).value,
        width=width,
        fmt=display.args[0].text,
        time=time,
    )


def _match_final_report(stmt: ast.IfStatement, counters: Dict[str, int]) -> Optional[Tuple[str, str]]:
    """Match ``if (errors == 0) $display("PASS..."); else $display("FAIL...", errors);``."""
    cond = stmt.condition
    if not (
        isinstance(cond, ast.BinaryOp)
        and cond.op == "=="
        and isinstance(cond.left, ast.Identifier)
        and cond.left.name in counters
        and isinstance(cond.right, ast.Number)
        and _number_value(cond.right) is not None
        and _number_value(cond.right).value == 0
    ):
        return None
    then_body = stmt.then_body
    else_body = stmt.else_body
    if not (
        isinstance(then_body, ast.SystemTaskCall)
        and then_body.name == "$display"
        and len(then_body.args) == 1
        and isinstance(then_body.args[0], ast.StringLiteral)
    ):
        return None
    if not (
        isinstance(else_body, ast.SystemTaskCall)
        and else_body.name == "$display"
        and len(else_body.args) == 2
        and isinstance(else_body.args[0], ast.StringLiteral)
        and isinstance(else_body.args[1], ast.Identifier)
        and else_body.args[1].name == cond.left.name
    ):
        return None
    return then_body.args[0].text, else_body.args[0].text


class _Ineligible(Exception):
    """A candidate falls outside the vectorizable subset."""


class _NetlistLowerer:
    """Lowers one candidate module to a :class:`_Netlist`."""

    def __init__(self, module: ast.ModuleDef, program: _VectorProgram) -> None:
        self.module = module
        self.program = program
        self.scope = _ConstScope()
        self.ops: List[tuple] = []
        self.consts: List[int] = []
        self.widths: List[int] = []  # result width per op
        self.wires: Dict[str, int] = {}  # name -> op index (once lowered)
        self.wire_widths: Dict[str, int] = {}
        self.input_widths: Dict[str, int] = {}
        #: name -> (rhs, total_ctx, lsb, width); the slice fields are None for
        #: plain targets and describe this name's chunk of a concat target.
        self.assigns: Dict[str, Tuple[ast.Expression, Optional[int], Optional[int], Optional[int]]] = {}

    # -- structure -----------------------------------------------------------

    def lower(self) -> _Netlist:
        self._collect_declarations()
        self._collect_assigns()
        order = self._topological_order()
        for name in order:
            rhs, total_ctx, lsb, slice_width = self.assigns[name]
            if total_ctx is None:
                op_index = self._lower_expr(rhs, ctx=self.wire_widths[name])
                op_index = self._mask_to(op_index, self.wire_widths[name])
            else:
                # Concat target: evaluate the rhs at the concatenation's total
                # width and take this name's chunk (MSB-first split).
                op_index = self._lower_expr(rhs, ctx=total_ctx)
                op_index = self._mask_to(op_index, total_ctx)
                op_index = self._emit(("bits", op_index, lsb, slice_width), slice_width)
            self.wires[name] = op_index
        outputs = []
        for name in self.program.output_widths:
            if name not in self.wires:
                raise _Ineligible(f"output {name} undriven")
            outputs.append((name, self.wires[name]))
        return _Netlist(ops=tuple(self.ops), consts=tuple(self.consts), outputs=tuple(sorted(outputs)))

    def _collect_declarations(self) -> None:
        module = self.module
        directions: Dict[str, str] = {}
        widths: Dict[str, int] = {}

        def width_of(rng: Optional[ast.Range]) -> int:
            if rng is None:
                return 1
            msb = _const_int(rng.msb, self.scope)
            lsb = _const_int(rng.lsb, self.scope)
            if msb is None or lsb is None:
                raise _Ineligible("non-constant range")
            return abs(msb - lsb) + 1

        for item in list(module.parameters) + list(module.items):
            if isinstance(item, ast.ParameterDeclaration):
                for name, value_expr in zip(item.names, item.values):
                    try:
                        value = self.scope.evaluator.evaluate(value_expr)
                    except EvaluationError as exc:
                        raise _Ineligible(str(exc)) from exc
                    if not value.is_fully_known:
                        raise _Ineligible("unknown parameter value")
                    self.scope.parameters[name] = value
        for port in module.ports:
            if port.direction is not None:
                directions[port.name] = port.direction
                widths[port.name] = width_of(port.range)
                if port.signed:
                    raise _Ineligible("signed port")
        for item in module.items:
            if isinstance(item, ast.PortDeclaration):
                if item.signed:
                    raise _Ineligible("signed port")
                for name in item.names:
                    directions[name] = item.direction
                    widths[name] = width_of(item.range)
            elif isinstance(item, ast.NetDeclaration):
                if item.net_type not in ("wire",) or item.signed:
                    raise _Ineligible(f"unsupported declaration {item.net_type}")
                if any(init is not None for init in item.initializers):
                    raise _Ineligible("wire initializer")
                if any(rng is not None for rng in item.array_ranges):
                    raise _Ineligible("array declaration")
                for name in item.names:
                    widths.setdefault(name, width_of(item.range))
            elif isinstance(item, (ast.ContinuousAssign, ast.ParameterDeclaration)):
                continue
            else:
                raise _Ineligible(f"unsupported item {type(item).__name__}")
        port_names = {port.name for port in module.ports}
        if port_names != set(directions):
            raise _Ineligible("undeclared header port")
        program = self.program
        expected_ports = set(program.input_widths) | set(program.output_widths)
        if port_names != expected_ports:
            raise _Ineligible("port set differs from testbench connections")
        for name, width in program.input_widths.items():
            if directions.get(name) != "input" or widths.get(name) != width:
                raise _Ineligible("input port mismatch")
            self.input_widths[name] = width
        for name, width in program.output_widths.items():
            if directions.get(name) != "output" or widths.get(name) != width:
                raise _Ineligible("output port mismatch")
        for name, width in widths.items():
            if width > _MAX_WIDTH:
                raise _Ineligible("width over 64 bits")
            if name not in self.input_widths:
                self.wire_widths[name] = width

    def _collect_assigns(self) -> None:
        for item in self.module.items:
            if not isinstance(item, ast.ContinuousAssign):
                continue
            if item.delay is not None:
                raise _Ineligible("assign delay")
            for lhs, rhs in item.assignments:
                if isinstance(lhs, ast.Identifier):
                    name = lhs.name
                    if name not in self.wire_widths or name in self.assigns:
                        raise _Ineligible("multiply-driven or unknown target")
                    self.assigns[name] = (rhs, None, None, None)
                elif isinstance(lhs, ast.Concatenation):
                    parts: List[Tuple[str, int]] = []
                    for part in lhs.parts:
                        if not isinstance(part, ast.Identifier) or part.name not in self.wire_widths:
                            raise _Ineligible("unsupported concat assign target")
                        parts.append((part.name, self.wire_widths[part.name]))
                    total = sum(width for _name, width in parts)
                    if total > _MAX_WIDTH:
                        raise _Ineligible("wide concat target")
                    cursor = total
                    for name, width in parts:  # MSB-first: first part takes the top bits
                        cursor -= width
                        if name in self.assigns:
                            raise _Ineligible("multiply-driven target")
                        self.assigns[name] = (rhs, total, cursor, width)
                else:
                    raise _Ineligible("non-identifier assign target")

    def _topological_order(self) -> List[str]:
        color: Dict[str, int] = {}
        order: List[str] = []

        def visit(name: str, depth: int) -> None:
            if depth > 256:
                raise _Ineligible("dependency nesting too deep")
            state = color.get(name)
            if state == 2:
                return
            if state == 1:
                raise _Ineligible("combinational loop")
            color[name] = 1
            for dep in self._expr_deps(self.assigns[name][0]):
                visit(dep, depth + 1)
            color[name] = 2
            order.append(name)

        for name in self.assigns:
            visit(name, 0)
        return order

    def _expr_deps(self, expr: ast.Expression) -> List[str]:
        deps = []
        for node in expr.walk():
            if isinstance(node, ast.Identifier) and node.name in self.assigns:
                deps.append(node.name)
        return deps

    # -- expression lowering -------------------------------------------------

    def _emit(self, op: tuple, width: int) -> int:
        self.ops.append(op)
        self.widths.append(width)
        return len(self.ops) - 1

    def _emit_const(self, value: int, width: int) -> int:
        slot = len(self.consts)
        self.consts.append(value & ((1 << width) - 1))
        return self._emit(("const", slot, width), width)

    def _mask_to(self, op_index: int, width: int) -> int:
        if self.widths[op_index] == width:
            return op_index
        return self._emit(("resize", op_index, width), width)

    def _lower_expr(self, expr: ast.Expression, ctx: Optional[int]) -> int:
        if isinstance(expr, ast.Number):
            value = _number_value(expr)
            if value is None:
                raise _Ineligible("four-state or signed literal")
            if value.width > _MAX_WIDTH:
                raise _Ineligible("wide literal")
            return self._emit_const(value.value, value.width)
        if isinstance(expr, ast.Identifier):
            name = expr.name
            if name in self.scope.parameters:
                value = self.scope.parameters[name]
                if not value.is_fully_known or value.signed or value.width > _MAX_WIDTH:
                    raise _Ineligible("unsupported parameter value")
                return self._emit_const(value.value, value.width)
            if name in self.input_widths:
                return self._emit(("input", name, self.input_widths[name]), self.input_widths[name])
            if name in self.wires:
                return self.wires[name]
            raise _Ineligible(f"unresolved identifier {name!r}")
        if isinstance(expr, ast.UnaryOp):
            return self._lower_unary(expr, ctx)
        if isinstance(expr, ast.BinaryOp):
            return self._lower_binary(expr, ctx)
        if isinstance(expr, ast.Conditional):
            cond = self._lower_expr(expr.condition, None)
            if_true = self._lower_expr(expr.if_true, ctx)
            if_false = self._lower_expr(expr.if_false, ctx)
            width_true = self.widths[if_true]
            width_false = self.widths[if_false]
            if width_true != width_false:
                # A per-element width mix would change downstream masking.
                raise _Ineligible("conditional arms of different widths")
            return self._emit(("mux", cond, if_true, if_false), width_true)
        if isinstance(expr, ast.Concatenation):
            parts = [self._lower_expr(part, None) for part in expr.parts]
            total = sum(self.widths[part] for part in parts)
            if not parts or total > _MAX_WIDTH:
                raise _Ineligible("unsupported concatenation")
            return self._emit(("cat", tuple((part, self.widths[part]) for part in parts)), total)
        if isinstance(expr, ast.Replication):
            count = _const_int(expr.count, self.scope)
            if count is None or count <= 0:
                raise _Ineligible("non-constant replication")
            inner = self._lower_expr(expr.value, None)
            width = self.widths[inner]
            if width * count > _MAX_WIDTH:
                raise _Ineligible("wide replication")
            return self._emit(("rep", inner, count, width), width * count)
        if isinstance(expr, ast.BitSelect):
            target = self._lower_expr(expr.target, None)
            width = self.widths[target]
            index = _const_int(expr.index, self.scope)
            if index is not None:
                if index < 0 or index >= width:
                    raise _Ineligible("out-of-range bit select")
                return self._emit(("bits", target, index, 1), 1)
            index_op = self._lower_expr(expr.index, None)
            if (1 << self.widths[index_op]) - 1 >= width:
                raise _Ineligible("bit-select index can exceed width")
            return self._emit(("bitdyn", target, index_op), 1)
        if isinstance(expr, ast.PartSelect):
            if expr.mode != ":":
                raise _Ineligible("indexed part select")
            target = self._lower_expr(expr.target, None)
            msb = _const_int(expr.msb, self.scope)
            lsb = _const_int(expr.lsb, self.scope)
            if msb is None or lsb is None:
                raise _Ineligible("non-constant part select")
            if msb < lsb:
                msb, lsb = lsb, msb
            if lsb < 0 or msb >= self.widths[target]:
                raise _Ineligible("out-of-range part select")
            return self._emit(("bits", target, lsb, msb - lsb + 1), msb - lsb + 1)
        raise _Ineligible(f"unsupported expression {type(expr).__name__}")

    def _lower_unary(self, expr: ast.UnaryOp, ctx: Optional[int]) -> int:
        op = expr.op
        operand = self._lower_expr(expr.operand, ctx)
        width = self.widths[operand]
        if op == "+":
            return operand
        if op == "~":
            return self._emit(("not", operand, width), width)
        if op == "!":
            return self._emit(("lnot", operand), 1)
        if op in ("&", "|", "^", "~&", "~|", "~^", "^~"):
            return self._emit(("reduce", op, operand, width), 1)
        raise _Ineligible(f"unsupported unary {op!r}")  # unary minus → signed


    def _lower_binary(self, expr: ast.BinaryOp, ctx: Optional[int]) -> int:
        op = expr.op
        left = self._lower_expr(expr.left, ctx)
        right = self._lower_expr(expr.right, ctx)
        width_left = self.widths[left]
        width_right = self.widths[right]
        if op in ("&&", "||"):
            return self._emit(("logic", op, left, right), 1)
        if op in ("===", "!=="):
            # Fully-known operands: case equality is numeric equality on the
            # zero-extended values.
            return self._emit(("cmp", "==" if op == "===" else "!=", left, right), 1)
        if op in COMPARE_OPS:
            return self._emit(("cmp", op, left, right), 1)
        if op in ("<<", ">>", "<<<", ">>>"):
            # Unsigned operands make the arithmetic variants equal to the
            # logical shifts; over-shift (amount > 63) is handled in the
            # kernel, which forces the result to zero.
            base_op = "<<" if op in ("<<", "<<<") else ">>"
            return self._emit(("shift", base_op, left, right, width_left), width_left)
        if op in ("&", "|", "^", "~^", "^~"):
            width = max(width_left, width_right)
            return self._emit(("bit", "~^" if op == "^~" else op, left, right, width), width)
        if op in ("+", "-", "*", "/", "%"):
            out_width = max(width_left, width_right, ctx or 0, 1)
            if out_width > _MAX_WIDTH:
                raise _Ineligible("wide arithmetic")
            return self._emit(("arith", op, left, right, out_width), out_width)
        raise _Ineligible(f"unsupported binary {op!r}")


def _mask(width: int) -> np.uint64:
    return np.uint64((1 << width) - 1 if width < 64 else 0xFFFFFFFFFFFFFFFF)


def _evaluate_group(
    ops: Tuple[tuple, ...],
    consts: np.ndarray,
    inputs: Dict[str, np.ndarray],
) -> List[np.ndarray]:
    """Evaluate a lowered op list over (C, 1) constants and (1, V) stimulus."""
    values: List[np.ndarray] = []
    one = np.uint64(1)
    for op in ops:
        kind = op[0]
        if kind == "const":
            _, slot, _width = op
            result = consts[:, slot : slot + 1]
        elif kind == "input":
            _, name, _width = op
            result = inputs[name]
        elif kind == "resize":
            _, src, width = op
            result = values[src] & _mask(width)
        elif kind == "not":
            _, src, width = op
            result = ~values[src] & _mask(width)
        elif kind == "lnot":
            result = (values[op[1]] == 0).astype(np.uint64)
        elif kind == "reduce":
            _, reduce_op, src, width = op
            value = values[src]
            if reduce_op in ("&", "~&"):
                result = (value == _mask(width)).astype(np.uint64)
                if reduce_op == "~&":
                    result ^= one
            elif reduce_op in ("|", "~|"):
                result = (value != 0).astype(np.uint64)
                if reduce_op == "~|":
                    result ^= one
            else:  # ^, ~^, ^~
                parity = value.copy()
                for offset in (32, 16, 8, 4, 2, 1):
                    parity ^= parity >> np.uint64(offset)
                result = parity & one
                if reduce_op in ("~^", "^~"):
                    result ^= one
        elif kind == "logic":
            _, logic_op, left, right = op
            left_true = values[left] != 0
            right_true = values[right] != 0
            truth = (left_true & right_true) if logic_op == "&&" else (left_true | right_true)
            result = truth.astype(np.uint64)
        elif kind == "cmp":
            _, cmp_op, left, right = op
            a, b = values[left], values[right]
            if cmp_op == "==":
                truth = a == b
            elif cmp_op == "!=":
                truth = a != b
            elif cmp_op == "<":
                truth = a < b
            elif cmp_op == ">":
                truth = a > b
            elif cmp_op == "<=":
                truth = a <= b
            else:
                truth = a >= b
            result = truth.astype(np.uint64)
        elif kind == "shift":
            _, shift_op, left, right, width = op
            raw = values[right]
            amount = np.minimum(raw, np.uint64(63))
            if shift_op == "<<":
                shifted = (values[left] << amount) & _mask(width)
            else:
                shifted = values[left] >> amount
            result = np.where(raw > np.uint64(63), np.uint64(0), shifted)
        elif kind == "bit":
            _, bit_op, left, right, width = op
            a, b = values[left], values[right]
            if bit_op == "&":
                result = a & b
            elif bit_op == "|":
                result = a | b
            elif bit_op == "^":
                result = a ^ b
            else:  # ~^
                result = ~(a ^ b) & _mask(width)
        elif kind == "arith":
            _, arith_op, left, right, out_width = op
            a, b = values[left], values[right]
            if arith_op == "+":
                result = (a + b) & _mask(out_width)
            elif arith_op == "-":
                result = (a - b) & _mask(out_width)
            elif arith_op == "*":
                result = (a * b) & _mask(out_width)
            elif arith_op == "/":
                safe = np.where(b == 0, one, b)
                result = np.where(b == 0, np.uint64(0), a // safe) & _mask(out_width)
            else:  # %
                safe = np.where(b == 0, one, b)
                result = np.where(b == 0, np.uint64(0), a % safe) & _mask(out_width)
        elif kind == "mux":
            _, cond, if_true, if_false = op
            result = np.where(values[cond] != 0, values[if_true], values[if_false])
        elif kind == "cat":
            parts = op[1]
            shift = sum(width for _part, width in parts)
            result = np.uint64(0)
            for part, width in parts:
                shift -= width
                result = result | (values[part] << np.uint64(shift))
        elif kind == "rep":
            _, src, count, width = op
            result = np.uint64(0)
            for repeat in range(count):
                result = result | (values[src] << np.uint64(repeat * width))
        elif kind == "bits":
            _, src, lsb, width = op
            result = (values[src] >> np.uint64(lsb)) & _mask(width)
        elif kind == "bitdyn":
            _, src, index = op
            result = (values[src] >> values[index]) & one
        else:  # pragma: no cover - lowering emits only the kinds above
            raise SimulationError(f"unknown op {kind!r}")
        values.append(result)
    return values


def simulate_batch(
    design_sources: Sequence[str],
    testbench_source: str,
    top: Optional[str] = None,
    max_time: int = 200_000,
    max_events: int = 200_000,
    report: Optional[BatchReport] = None,
) -> Optional[List[Optional[SimulationResult]]]:
    """Vectorized sweep of many candidate designs over one testbench.

    Returns None when the testbench itself is outside the vector subset;
    otherwise a list aligned with ``design_sources`` where each entry is a
    :class:`SimulationResult` bit-identical to the scalar backends' result,
    or None for candidates that must fall back to scalar simulation.
    """
    try:
        tb_file = parse_source(testbench_source)
    except Exception:
        return None
    if len(tb_file.modules) != 1:
        return None
    tb_module = tb_file.modules[0]
    if top is not None and tb_module.name != top:
        return None
    program = _extract_vector_program(tb_module)
    if program is None:
        return None
    if program.total_time > max_time or program.num_steps + 1 > max_events:
        return None

    netlists: List[Optional[_Netlist]] = []
    for source in design_sources:
        netlists.append(_lower_candidate(source, program, tb_module.name))

    results: List[Optional[SimulationResult]] = [None] * len(design_sources)
    groups: Dict[tuple, List[int]] = {}
    for index, netlist in enumerate(netlists):
        if netlist is not None:
            groups.setdefault(netlist.key, []).append(index)
    stimulus = {
        name: np.asarray(values, dtype=np.uint64).reshape(1, -1) for name, values in program.stimulus.items()
    }
    for key, members in groups.items():
        ops, outputs = key
        consts = np.asarray([netlists[index].consts for index in members], dtype=np.uint64).reshape(
            len(members), -1
        )
        values = _evaluate_group(ops, consts, stimulus)
        candidate_count = len(members)
        steps = program.num_steps
        out_matrix = {
            name: np.broadcast_to(values[op_index], (candidate_count, steps)) for name, op_index in outputs
        }
        for row, index in enumerate(members):
            results[index] = _replay_program(program, {name: out_matrix[name][row] for name in out_matrix})
    if report is not None:
        report.vectorized += sum(1 for result in results if result is not None)
        report.fallback += sum(1 for result in results if result is None)
        report.groups += len(groups)
    return results


def _lower_candidate(source: str, program: _VectorProgram, tb_name: str) -> Optional[_Netlist]:
    try:
        design_file = parse_source(source)
    except Exception:
        return None
    if len(design_file.modules) != 1:
        return None
    module = design_file.modules[0]
    if module.name != program.module_name or module.name == tb_name:
        return None
    try:
        return _NetlistLowerer(module, program).lower()
    except _Ineligible:
        return None
    except (EvaluationError, SimulationError, RecursionError):
        return None


def _replay_program(program: _VectorProgram, outputs: Dict[str, np.ndarray]) -> SimulationResult:
    """Re-run the stimulus program against one candidate's output matrix.

    Display synthesis goes through :func:`_apply_format` so mismatch lines are
    byte-identical to the scalar backends.
    """
    lines: List[str] = []
    errors = 0
    for check in program.checks:
        got = int(outputs[check.name][check.step])
        if got != check.expected:
            errors += 1
            lines.append(_apply_format(check.fmt, [FourState.from_int(got, width=check.width)], check.time))
    if errors == 0:
        lines.append(_apply_format(program.pass_text, [], program.total_time))
    else:
        lines.append(
            _apply_format(program.fail_fmt, [FourState.from_int(errors, width=32, signed=True)], program.total_time)
        )
    # Event accounting of the scalar loop: one step per delay resume plus the
    # final segment that runs the report and hits $finish.
    return SimulationResult(
        finished=True,
        time=program.total_time,
        output="\n".join(lines),
        display_lines=lines,
        cycles=program.num_steps + 1,
        error=None,
    )
