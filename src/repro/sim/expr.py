"""Expression evaluation over four-state values.

The evaluator maps the parser's expression AST onto :class:`FourState`
operations.  It is used by the simulator for every right-hand side, condition,
delay and index expression, and also at elaboration time for parameter and
range expressions (where everything must be fully known).

The operator semantics live in the module-level ``apply_*`` functions so that
the compiled backend (:mod:`repro.sim.compiled`) can bind them directly into
closures: both backends execute the exact same four-state operator code,
which is what makes the cycle-identity guarantee structural rather than a
matter of keeping two implementations in sync.
"""

from __future__ import annotations

import operator
from typing import Callable, Dict, List, Optional, Protocol

from repro.verilog import ast_nodes as ast
from repro.sim.values import FourState


class EvaluationError(ValueError):
    """Raised when an expression cannot be evaluated."""


class Scope(Protocol):
    """The minimal interface the evaluator needs to resolve names."""

    def read_signal(self, name: str) -> FourState:
        """Return the current value of ``name``."""
        ...

    def signal_width(self, name: str) -> int:
        """Return the declared width of ``name``."""
        ...

    def call_function(self, name: str, args: List[FourState]) -> FourState:
        """Evaluate a user-defined or system function call."""
        ...


def _binary_arith(op: str, a: int, b: int) -> int:
    if op == "+":
        return a + b
    if op == "-":
        return a - b
    if op == "*":
        return a * b
    if op == "/":
        return 0 if b == 0 else int(a / b) if (a < 0) != (b < 0) and a % b != 0 else a // b
    if op == "%":
        return 0 if b == 0 else a - b * int(a / b)
    if op == "**":
        return int(a**b) if b >= 0 else 0
    raise EvaluationError(f"unsupported arithmetic operator {op!r}")


def _reduce(op: str, value: FourState) -> FourState:
    if not value.is_fully_known:
        return FourState.unknown_value(1)
    bits = [(value.value >> i) & 1 for i in range(value.width)]
    if op == "&":
        result = int(all(bits))
    elif op == "|":
        result = int(any(bits))
    elif op == "^":
        result = sum(bits) & 1
    elif op == "~&":
        result = int(not all(bits))
    elif op == "~|":
        result = int(not any(bits))
    elif op in ("~^", "^~"):
        result = (sum(bits) & 1) ^ 1
    else:
        raise EvaluationError(f"unsupported reduction operator {op!r}")
    return FourState.from_int(result, width=1)


# --------------------------------------------------------------------------- #
# Shared operator semantics (used by both the interpreter and the compiler)
# --------------------------------------------------------------------------- #

#: Comparison operators resolved once; ``apply_compare`` looks the callable up
#: per call, the compiled backend captures it at compile time.
COMPARE_OPS: Dict[str, Callable[[int, int], bool]] = {
    "==": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    ">": operator.gt,
    "<=": operator.le,
    ">=": operator.ge,
}


def apply_unary(op: str, operand: FourState) -> FourState:
    """Apply a unary operator (including reductions) to an evaluated operand."""
    if op == "+":
        return operand
    if op == "-":
        if not operand.is_fully_known:
            return FourState.unknown_value(operand.width)
        return FourState.from_int(-operand.to_int(), width=max(operand.width, 32), signed=True)
    if op == "!":
        truth = operand.is_true()
        if truth is None:
            return FourState.unknown_value(1)
        return FourState.from_int(int(not truth), width=1)
    if op == "~":
        mask = (1 << operand.width) - 1
        return FourState(operand.width, ~operand.value & mask, operand.unknown, operand.zmask)
    return _reduce(op, operand)


def apply_logical(op: str, left: FourState, right: FourState) -> FourState:
    """``&&`` / ``||`` with three-valued truth."""
    lt, rt = left.is_true(), right.is_true()
    if op == "&&":
        if lt is False or rt is False:
            return FourState.from_int(0, width=1)
        if lt is None or rt is None:
            return FourState.unknown_value(1)
        return FourState.from_int(1, width=1)
    if lt is True or rt is True:
        return FourState.from_int(1, width=1)
    if lt is None or rt is None:
        return FourState.unknown_value(1)
    return FourState.from_int(0, width=1)


def apply_case_equality(op: str, left: FourState, right: FourState) -> FourState:
    """``===`` / ``!==``: bit-exact comparison including X/Z bits."""
    equal = (
        left.to_bit_string().rjust(max(left.width, right.width), "0")
        == right.to_bit_string().rjust(max(left.width, right.width), "0")
    )
    return FourState.from_int(int(equal if op == "===" else not equal), width=1)


def apply_compare(compare: Callable[[int, int], bool], left: FourState, right: FourState) -> FourState:
    """Relational/equality comparison; unknown inputs compare to X."""
    if not left.is_fully_known or not right.is_fully_known:
        return FourState.unknown_value(1)
    signed = left.signed and right.signed
    a = left.to_signed_int() if signed else left.value
    b = right.to_signed_int() if signed else right.value
    return FourState.from_int(int(compare(a, b)), width=1)


def apply_shift(op: str, left: FourState, right: FourState) -> FourState:
    """``<<``/``>>``/``<<<``/``>>>`` with X shift amounts producing X."""
    if not right.is_fully_known:
        return FourState.unknown_value(left.width)
    shift = right.value
    if op == "<<" or op == "<<<":
        return FourState(left.width, (left.value << shift), (left.unknown << shift), (left.zmask << shift), left.signed)
    if op == ">>>" and left.signed:
        value = left.to_signed_int() >> shift
        return FourState.from_int(value, width=left.width, signed=True)
    return FourState(left.width, left.value >> shift, left.unknown >> shift, left.zmask >> shift, left.signed)


def apply_bitwise(op: str, left: FourState, right: FourState) -> FourState:
    """Bitwise ``&``/``|``/``^``/``~^`` with per-bit X propagation."""
    width = max(left.width, right.width)
    a = left.resize(width)
    b = right.resize(width)
    if op == "&":
        value = a.value & b.value
        unknown = (a.unknown | b.unknown) & ~((~a.value & ~a.unknown) | (~b.value & ~b.unknown) & ((1 << width) - 1))
        unknown &= (1 << width) - 1
        # A known-0 bit forces the result bit to known 0.
        known_zero = ((~a.value & ~a.unknown) | (~b.value & ~b.unknown)) & ((1 << width) - 1)
        unknown &= ~known_zero
    elif op == "|":
        value = a.value | b.value
        known_one = (a.value & ~a.unknown) | (b.value & ~b.unknown)
        unknown = (a.unknown | b.unknown) & ~known_one
    else:
        value = a.value ^ b.value
        unknown = a.unknown | b.unknown
        if op in ("~^", "^~"):
            value = ~value & ((1 << width) - 1)
    return FourState(width, value & ~unknown, unknown)


def apply_arith(op: str, left: FourState, right: FourState, ctx: Optional[int]) -> FourState:
    """Arithmetic with context-width extension and X propagation."""
    width = max(left.width, right.width)
    if not left.is_fully_known or not right.is_fully_known:
        out_width = max(width, ctx or 0)
        return FourState.unknown_value(out_width if out_width > 0 else width)
    signed = left.signed and right.signed
    a = left.to_signed_int() if signed else left.value
    b = right.to_signed_int() if signed else right.value
    raw = _binary_arith(op, a, b)
    out_width = max(width, ctx or 0, 1)
    return FourState.from_int(raw, width=out_width, signed=signed)


def apply_binary(op: str, left: FourState, right: FourState, ctx: Optional[int]) -> FourState:
    """Dispatch a binary operator to its ``apply_*`` semantics function."""
    if op in ("&&", "||"):
        return apply_logical(op, left, right)
    if op in ("===", "!=="):
        return apply_case_equality(op, left, right)
    if op in COMPARE_OPS:
        return apply_compare(COMPARE_OPS[op], left, right)
    if op in ("<<", ">>", "<<<", ">>>"):
        return apply_shift(op, left, right)
    if op in ("&", "|", "^", "~^", "^~"):
        return apply_bitwise(op, left, right)
    return apply_arith(op, left, right, ctx)


class ExpressionEvaluator:
    """Evaluates parser expressions against a :class:`Scope`."""

    def __init__(self, scope: Scope) -> None:
        self.scope = scope

    # -- public API ---------------------------------------------------------

    def evaluate(self, expr: ast.Expression, context_width: Optional[int] = None) -> FourState:
        """Evaluate ``expr`` and return its four-state value."""
        method: Callable[[ast.Expression, Optional[int]], FourState]
        handlers: Dict[type, Callable] = {
            ast.Number: self._eval_number,
            ast.Identifier: self._eval_identifier,
            ast.StringLiteral: self._eval_string,
            ast.UnaryOp: self._eval_unary,
            ast.BinaryOp: self._eval_binary,
            ast.Conditional: self._eval_conditional,
            ast.Concatenation: self._eval_concatenation,
            ast.Replication: self._eval_replication,
            ast.BitSelect: self._eval_bit_select,
            ast.PartSelect: self._eval_part_select,
            ast.FunctionCall: self._eval_function_call,
        }
        method = handlers.get(type(expr))
        if method is None:
            raise EvaluationError(f"cannot evaluate {type(expr).__name__}")
        return method(expr, context_width)

    def evaluate_int(self, expr: ast.Expression) -> int:
        """Evaluate ``expr`` expecting a fully-known integer result."""
        value = self.evaluate(expr)
        if not value.is_fully_known:
            raise EvaluationError("expression has unknown bits where a constant is required")
        return value.to_int()

    # -- handlers ------------------------------------------------------------

    def _eval_number(self, expr: ast.Number, _ctx: Optional[int]) -> FourState:
        return FourState.from_literal(expr.width, expr.base, expr.value_text or expr.text, signed=expr.signed)

    def _eval_identifier(self, expr: ast.Identifier, _ctx: Optional[int]) -> FourState:
        return self.scope.read_signal(expr.name)

    def _eval_string(self, expr: ast.StringLiteral, _ctx: Optional[int]) -> FourState:
        data = expr.text.encode("ascii", errors="replace")
        value = int.from_bytes(data, "big") if data else 0
        width = max(8 * len(data), 8)
        return FourState.from_int(value, width=width)

    def _eval_unary(self, expr: ast.UnaryOp, ctx: Optional[int]) -> FourState:
        return apply_unary(expr.op, self.evaluate(expr.operand, ctx))

    def _eval_binary(self, expr: ast.BinaryOp, ctx: Optional[int]) -> FourState:
        left = self.evaluate(expr.left, ctx)
        right = self.evaluate(expr.right, ctx)
        return apply_binary(expr.op, left, right, ctx)

    def _eval_conditional(self, expr: ast.Conditional, ctx: Optional[int]) -> FourState:
        condition = self.evaluate(expr.condition)
        truth = condition.is_true()
        if truth is True:
            return self.evaluate(expr.if_true, ctx)
        if truth is False:
            return self.evaluate(expr.if_false, ctx)
        if_true = self.evaluate(expr.if_true, ctx)
        if_false = self.evaluate(expr.if_false, ctx)
        width = max(if_true.width, if_false.width)
        return FourState.unknown_value(width)

    def _eval_concatenation(self, expr: ast.Concatenation, _ctx: Optional[int]) -> FourState:
        bit_string = ""
        for part in expr.parts:
            bit_string += self.evaluate(part).to_bit_string()
        if not bit_string:
            return FourState.from_int(0, width=1)
        return FourState.from_bits(bit_string)

    def _eval_replication(self, expr: ast.Replication, _ctx: Optional[int]) -> FourState:
        count = self.evaluate_int(expr.count)
        inner = self._eval_concatenation(expr.value, None)
        if count <= 0:
            raise EvaluationError("replication count must be positive")
        return FourState.from_bits(inner.to_bit_string() * count)

    def _eval_bit_select(self, expr: ast.BitSelect, _ctx: Optional[int]) -> FourState:
        index = self.evaluate(expr.index)
        if isinstance(expr.target, ast.Identifier) and index.is_fully_known:
            # Memory/array element access such as ``mem[addr]``.
            reader = getattr(self.scope, "read_indexed", None)
            if reader is not None:
                element = reader(expr.target.name, index.to_int())
                if element is not None:
                    return element
        target = self.evaluate(expr.target)
        if not index.is_fully_known:
            return FourState.unknown_value(1)
        return FourState.from_bits(target.bit(index.to_int()))

    def _eval_part_select(self, expr: ast.PartSelect, _ctx: Optional[int]) -> FourState:
        target = self.evaluate(expr.target)
        if expr.mode == ":":
            msb = self.evaluate_int(expr.msb)
            lsb = self.evaluate_int(expr.lsb)
        else:
            base = self.evaluate_int(expr.msb)
            width = self.evaluate_int(expr.lsb)
            if expr.mode == "+:":
                lsb, msb = base, base + width - 1
            else:
                msb, lsb = base, base - width + 1
        if msb < lsb:
            msb, lsb = lsb, msb
        bits = "".join(target.bit(i) for i in range(msb, lsb - 1, -1))
        return FourState.from_bits(bits or "x")

    def _eval_function_call(self, expr: ast.FunctionCall, _ctx: Optional[int]) -> FourState:
        args = [self.evaluate(arg) for arg in expr.args]
        return self.scope.call_function(expr.name, args)
