"""The shared ``$random`` stream.

Both simulation backends must draw ``$random``/``$urandom`` values from the
same deterministic stream, otherwise a differential run (interpreter vs.
compiled) could diverge on *stimulus* rather than on semantics and the
cycle-identity harness would chase phantom bugs.  The stream is therefore a
small injectable object owned by the testbench runner
(:func:`repro.sim.testbench.run_testbench` creates one per simulation with a
pinned seed) rather than private simulator state: every backend asked to
simulate the same sources with the same seed sees the same draw sequence.

The generator is the classic glibc-style LCG the seed interpreter used
(``state = (1103515245 * state + 12345) mod 2^31``), so pinned sequences are
stable across refactors; ``tests/test_sim_differential.py`` asserts the exact
first draws.
"""

from __future__ import annotations


class VerilogRng:
    """Deterministic LCG behind ``$random``/``$urandom``.

    One instance is one stream: passing the same instance to several
    simulators makes them share (and interleave) draws, while giving each
    backend its own instance with the same seed makes their streams identical
    — the property differential testing relies on.
    """

    __slots__ = ("state",)

    #: Seed used when none is supplied, matching the seed-era default.
    DEFAULT_SEED = 12345

    def __init__(self, seed: int = DEFAULT_SEED) -> None:
        self.state = seed & 0xFFFFFFFF

    def next_value(self) -> int:
        """Advance the stream and return the next 31-bit draw."""
        self.state = (1103515245 * self.state + 12345) & 0x7FFFFFFF
        return self.state

    def clone(self) -> "VerilogRng":
        """An independent stream continuing from the current state."""
        copy = VerilogRng.__new__(VerilogRng)
        copy.state = self.state
        return copy
