"""Event-driven Verilog simulation kernel.

The simulator elaborates a parsed design into a flat signal table plus a set of
processes (``initial`` blocks, ``always`` blocks, continuous assignments) and
then runs a classic event-driven loop with delta cycles, a non-blocking
assignment region and a time wheel.

It supports the synthesizable subset produced by the corpus generator and the
benchmark reference designs, plus the testbench constructs needed for grading:
delays, edge-sensitive event controls, ``$display``/``$write``, ``$monitor``,
``$time``, ``$random``, ``$finish`` and ``$stop``.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional, Sequence, Tuple

from repro.verilog import ast_nodes as ast
from repro.verilog.parser import parse_source, _LocalDeclaration
from repro.sim.expr import EvaluationError, ExpressionEvaluator
from repro.sim.rng import VerilogRng
from repro.sim.values import FourState


class SimulationError(RuntimeError):
    """Raised when elaboration or simulation fails."""


@dataclass
class Signal:
    """A flattened net or variable."""

    name: str
    width: int
    signed: bool = False
    value: FourState = None  # type: ignore[assignment]
    is_array: bool = False
    array_size: int = 0
    array: Dict[int, FourState] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.value is None:
            self.value = FourState.unknown_value(self.width)


@dataclass
class SimulationResult:
    """Outcome of a simulation run."""

    finished: bool
    time: int
    output: str
    display_lines: List[str]
    cycles: int
    error: Optional[str] = None


# Yield commands used by process generators.
_CMD_DELAY = "delay"
_CMD_WAIT_EVENT = "wait_event"
_CMD_FINISH = "finish"


class _InstanceScope:
    """Per-instance name resolution: local name -> flat signal, parameters, functions."""

    def __init__(self, simulator: "Simulator", prefix: str, module: ast.ModuleDef) -> None:
        self.simulator = simulator
        self.prefix = prefix
        self.module = module
        self.parameters: Dict[str, FourState] = {}
        self.signal_map: Dict[str, str] = {}
        self.functions: Dict[str, ast.FunctionDeclaration] = {}
        self.tasks: Dict[str, ast.TaskDeclaration] = {}
        self.evaluator = ExpressionEvaluator(self)
        self.locals: List[Dict[str, FourState]] = []

    # Scope protocol -------------------------------------------------------

    def read_signal(self, name: str) -> FourState:
        for frame in reversed(self.locals):
            if name in frame:
                return frame[name]
        if name in self.parameters:
            return self.parameters[name]
        if name in self.signal_map:
            return self.simulator.signals[self.signal_map[name]].value
        if "." in name:
            return self.simulator.read_hierarchical(name)
        raise EvaluationError(f"unknown signal {name!r} in {self.prefix or 'top'}")

    def signal_width(self, name: str) -> int:
        if name in self.signal_map:
            return self.simulator.signals[self.signal_map[name]].width
        if name in self.parameters:
            return self.parameters[name].width
        return 32

    def read_indexed(self, name: str, index: int) -> Optional[FourState]:
        """Return ``name[index]`` when ``name`` is a memory array, else None."""
        if name not in self.signal_map:
            return None
        signal = self.simulator.signals[self.signal_map[name]]
        if not signal.is_array:
            return None
        return signal.array.get(index, FourState.unknown_value(signal.width))

    def call_function(self, name: str, args: List[FourState]) -> FourState:
        if name.startswith("$"):
            return self.simulator.call_system_function(name, args)
        if name in self.functions:
            return self.simulator.run_function(self, self.functions[name], args)
        # An identifier followed by () that is actually an array/constant use.
        raise EvaluationError(f"unknown function {name!r}")

    # Helpers ---------------------------------------------------------------

    def flat_name(self, local_name: str) -> str:
        return f"{self.prefix}{local_name}" if self.prefix else local_name

    def resolve_signal(self, name: str) -> Signal:
        if name in self.signal_map:
            return self.simulator.signals[self.signal_map[name]]
        raise SimulationError(f"unknown signal {name!r} in instance {self.prefix or 'top'}")


class _Process:
    """A schedulable process (initial / always / continuous assign driver)."""

    _ids = itertools.count()

    def __init__(
        self,
        simulator: "Simulator",
        scope: _InstanceScope,
        body: ast.Statement,
        repeat_forever: bool,
        name: str,
    ) -> None:
        self.simulator = simulator
        self.scope = scope
        self.body = body
        self.repeat_forever = repeat_forever
        self.name = name
        self.pid = next(self._ids)
        self.generator: Optional[Generator] = None
        self.waiting_events: List[Tuple[Optional[str], str]] = []
        self.done = False

    def start(self) -> Generator:
        self.generator = self.simulator._exec_process(self)
        return self.generator


class Simulator:
    """Elaborates and simulates a set of Verilog modules."""

    #: Safety bounds preventing runaway simulations of malformed generated code.
    DEFAULT_MAX_TIME = 1_000_000
    DEFAULT_MAX_EVENTS = 400_000
    DEFAULT_MAX_LOOP_ITERATIONS = 100_000

    def __init__(
        self,
        source: str,
        top: Optional[str] = None,
        max_time: int = DEFAULT_MAX_TIME,
        max_events: int = DEFAULT_MAX_EVENTS,
        random_seed: int = VerilogRng.DEFAULT_SEED,
        rng: Optional[VerilogRng] = None,
    ) -> None:
        self.source_file = parse_source(source)
        self.modules: Dict[str, ast.ModuleDef] = {m.name: m for m in self.source_file.modules}
        self.top_name = top or self._infer_top()
        self.max_time = max_time
        self.max_events = max_events
        self.max_loop_iterations = self.DEFAULT_MAX_LOOP_ITERATIONS

        self.signals: Dict[str, Signal] = {}
        self.scopes: List[_InstanceScope] = []
        self.processes: List[_Process] = []
        self.continuous: List[Tuple[_InstanceScope, ast.Expression, ast.Expression]] = []

        self.time = 0
        self.finished = False
        self.display_lines: List[str] = []
        self.event_count = 0
        self._event_queue: List[Tuple[int, int, _Process]] = []
        self._ready: List[_Process] = []
        self._nba_queue: List[Tuple[_InstanceScope, ast.Expression, FourState]] = []
        self._changed_signals: Dict[str, Tuple[FourState, FourState]] = {}
        self._monitors: List[Tuple[_InstanceScope, List[ast.Expression]]] = []
        #: The ``$random`` stream; injectable so a testbench runner can hand
        #: identically-seeded streams to both backends of a differential run.
        self.rng = rng if rng is not None else VerilogRng(random_seed)

        self._elaborate()

    # ------------------------------------------------------------------ #
    # Elaboration
    # ------------------------------------------------------------------ #

    def _infer_top(self) -> str:
        instantiated = set()
        for module in self.modules.values():
            for node in module.walk():
                if isinstance(node, ast.ModuleInstance) and node.module_name in self.modules:
                    instantiated.add(node.module_name)
        candidates = [name for name in self.modules if name not in instantiated]
        if not candidates:
            return next(iter(self.modules))
        # Prefer a module that looks like a testbench.
        for name in candidates:
            lowered = name.lower()
            if "tb" in lowered or "test" in lowered or lowered == "top":
                return name
        return candidates[-1]

    def _elaborate(self) -> None:
        if self.top_name not in self.modules:
            raise SimulationError(f"top module {self.top_name!r} not found")
        self._elaborate_module(self.modules[self.top_name], prefix="", parameter_overrides={})

    def _elaborate_module(
        self,
        module: ast.ModuleDef,
        prefix: str,
        parameter_overrides: Dict[str, FourState],
        depth: int = 0,
    ) -> _InstanceScope:
        if depth > 16:
            raise SimulationError("module instantiation nesting too deep (recursive design?)")
        scope = _InstanceScope(self, prefix, module)
        self.scopes.append(scope)

        # Parameters: header parameters, then body parameter/localparam items.
        for param in module.parameters:
            self._bind_parameters(scope, param, parameter_overrides)
        for item in module.items:
            if isinstance(item, ast.ParameterDeclaration):
                self._bind_parameters(scope, item, parameter_overrides if item.kind == "parameter" else {})

        # Functions and tasks.
        for item in module.items:
            if isinstance(item, ast.FunctionDeclaration):
                scope.functions[item.name] = item
            elif isinstance(item, ast.TaskDeclaration):
                scope.tasks[item.name] = item

        # Declarations: ANSI header ports, port declarations, net declarations.
        for port in module.ports:
            if port.direction is not None or port.range is not None:
                self._declare_signal(scope, port.name, port.range, port.signed)
        for item in module.items:
            if isinstance(item, ast.PortDeclaration):
                for name in item.names:
                    self._declare_signal(scope, name, item.range, item.signed)
            elif isinstance(item, ast.NetDeclaration) and item.net_type != "genvar":
                for name, array_range in zip(item.names, item.array_ranges):
                    rng = item.range
                    if item.net_type == "integer":
                        self._declare_signal(scope, name, None, True, default_width=32)
                    else:
                        self._declare_signal(scope, name, rng, item.signed)
                    if array_range is not None:
                        self._make_array(scope, name, array_range)
        # Header ports without explicit declarations default to 1-bit wires.
        for port in module.ports:
            if port.name not in scope.signal_map:
                self._declare_signal(scope, port.name, port.range, port.signed)
        # Local declarations inside named blocks.
        for node in module.walk():
            if isinstance(node, _LocalDeclaration) and node.declaration is not None:
                for name in node.declaration.names:
                    if name not in scope.signal_map:
                        if node.declaration.net_type == "integer":
                            self._declare_signal(scope, name, None, True, default_width=32)
                        else:
                            self._declare_signal(scope, name, node.declaration.range, node.declaration.signed)

        # Net initialisers become time-0 initial assignments.
        for item in module.items:
            if isinstance(item, ast.NetDeclaration):
                for name, init in zip(item.names, item.initializers):
                    if init is not None:
                        if item.net_type == "wire":
                            self.continuous.append((scope, ast.Identifier(name=name), init))
                        else:
                            stmt = ast.Assignment(target=ast.Identifier(name=name), value=init, blocking=True)
                            self.processes.append(_Process(self, scope, stmt, False, f"{prefix}init_{name}"))

        # Behavioural items.
        for item in module.items:
            if isinstance(item, ast.ContinuousAssign):
                for lhs, rhs in item.assignments:
                    self.continuous.append((scope, lhs, rhs))
            elif isinstance(item, ast.AlwaysBlock):
                self.processes.append(_Process(self, scope, item.body, True, f"{prefix}always"))
            elif isinstance(item, ast.InitialBlock):
                self.processes.append(_Process(self, scope, item.body, False, f"{prefix}initial"))
            elif isinstance(item, ast.GateInstance):
                self._elaborate_gate(scope, item)
            elif isinstance(item, ast.ModuleInstance):
                self._elaborate_instance(scope, item, depth)
            elif isinstance(item, ast.GenerateBlock):
                for sub in item.items:
                    if isinstance(sub, ast.ContinuousAssign):
                        for lhs, rhs in sub.assignments:
                            self.continuous.append((scope, lhs, rhs))
                    elif isinstance(sub, ast.AlwaysBlock):
                        self.processes.append(_Process(self, scope, sub.body, True, f"{prefix}always"))
        return scope

    def _bind_parameters(
        self,
        scope: _InstanceScope,
        declaration: ast.ParameterDeclaration,
        overrides: Dict[str, FourState],
    ) -> None:
        for name, value_expr in zip(declaration.names, declaration.values):
            if name in overrides:
                scope.parameters[name] = overrides[name]
                continue
            try:
                value = scope.evaluator.evaluate(value_expr)
            except EvaluationError as exc:
                raise SimulationError(f"cannot evaluate parameter {name}: {exc}") from exc
            scope.parameters[name] = value

    def _declare_signal(
        self,
        scope: _InstanceScope,
        name: str,
        rng: Optional[ast.Range],
        signed: bool,
        default_width: int = 1,
    ) -> Signal:
        flat = scope.flat_name(name)
        width = default_width
        if rng is not None:
            try:
                msb = scope.evaluator.evaluate_int(rng.msb)
                lsb = scope.evaluator.evaluate_int(rng.lsb)
            except EvaluationError as exc:
                raise SimulationError(f"cannot evaluate range of {name}: {exc}") from exc
            width = abs(msb - lsb) + 1
        existing = self.signals.get(flat)
        if existing is not None:
            if width > existing.width:
                existing.width = width
                existing.value = FourState.unknown_value(width)
            existing.signed = existing.signed or signed
            scope.signal_map[name] = flat
            return existing
        signal = Signal(name=flat, width=width, signed=signed)
        self.signals[flat] = signal
        scope.signal_map[name] = flat
        return signal

    def _make_array(self, scope: _InstanceScope, name: str, array_range: ast.Range) -> None:
        signal = scope.resolve_signal(name)
        msb = scope.evaluator.evaluate_int(array_range.msb)
        lsb = scope.evaluator.evaluate_int(array_range.lsb)
        signal.is_array = True
        signal.array_size = abs(msb - lsb) + 1
        signal.array = {}

    def _elaborate_gate(self, scope: _InstanceScope, gate: ast.GateInstance) -> None:
        if not gate.terminals:
            return
        output = gate.terminals[0]
        inputs = gate.terminals[1:]
        gate_type = gate.gate_type
        if gate_type in ("not", "buf"):
            rhs: ast.Expression = inputs[0] if inputs else ast.Number(text="0", value_text="0")
            if gate_type == "not":
                rhs = ast.UnaryOp(op="~", operand=rhs)
        else:
            op_map = {"and": "&", "or": "|", "xor": "^", "nand": "&", "nor": "|", "xnor": "^"}
            op = op_map[gate_type]
            rhs = inputs[0]
            for term in inputs[1:]:
                rhs = ast.BinaryOp(op=op, left=rhs, right=term)
            if gate_type in ("nand", "nor", "xnor"):
                rhs = ast.UnaryOp(op="~", operand=rhs)
        self.continuous.append((scope, output, rhs))

    def _elaborate_instance(self, scope: _InstanceScope, instance: ast.ModuleInstance, depth: int) -> None:
        child_module = self.modules.get(instance.module_name)
        if child_module is None:
            raise SimulationError(f"unknown module {instance.module_name!r}")
        prefix = f"{scope.prefix}{instance.instance_name}."

        # Parameter overrides are evaluated in the parent scope.
        overrides: Dict[str, FourState] = {}
        declared_params = [p for decl in child_module.parameters for p in decl.names]
        for decl in child_module.items:
            if isinstance(decl, ast.ParameterDeclaration) and decl.kind == "parameter":
                declared_params.extend(decl.names)
        for position, conn in enumerate(instance.parameter_overrides):
            if conn.expr is None:
                continue
            value = scope.evaluator.evaluate(conn.expr)
            if conn.name is not None:
                overrides[conn.name] = value
            elif position < len(declared_params):
                overrides[declared_params[position]] = value

        child_scope = self._elaborate_module(child_module, prefix, overrides, depth + 1)

        # Port binding.
        port_names = [p.name for p in child_module.ports]
        directions = self._port_directions(child_module)
        for position, conn in enumerate(instance.connections):
            if conn.name is not None:
                port_name = conn.name
            elif position < len(port_names):
                port_name = port_names[position]
            else:
                continue
            if conn.expr is None:
                continue
            if port_name not in child_scope.signal_map:
                continue
            direction = directions.get(port_name, "input")
            child_ref = ast.Identifier(name=port_name)
            if direction == "output":
                # parent_expr <- child signal
                self.continuous.append((scope, conn.expr, _ScopedExpression(child_scope, child_ref)))
            else:
                # child signal <- parent expression
                self.continuous.append((child_scope, child_ref, _ScopedExpression(scope, conn.expr)))

    @staticmethod
    def _port_directions(module: ast.ModuleDef) -> Dict[str, str]:
        directions: Dict[str, str] = {}
        for port in module.ports:
            if port.direction is not None:
                directions[port.name] = port.direction
        for item in module.items:
            if isinstance(item, ast.PortDeclaration):
                for name in item.names:
                    directions[name] = item.direction
        return directions

    # ------------------------------------------------------------------ #
    # Signal access
    # ------------------------------------------------------------------ #

    def read_hierarchical(self, name: str) -> FourState:
        """Read a hierarchical reference like ``dut.counter_value``."""
        if name in self.signals:
            return self.signals[name].value
        raise EvaluationError(f"unknown hierarchical signal {name!r}")

    def final_state(self) -> Dict[str, object]:
        """Every flat signal's value as bit strings (arrays as index maps).

        The canonical shape the differential and golden harnesses compare
        across backends, and what the golden sim fixtures freeze to JSON.
        """
        state: Dict[str, object] = {}
        for name, signal in self.signals.items():
            if signal.is_array:
                state[name] = {str(index): value.to_bit_string() for index, value in sorted(signal.array.items())}
            else:
                state[name] = signal.value.to_bit_string()
        return state

    def _set_signal(self, signal: Signal, new_value: FourState) -> None:
        new_value = new_value.resize(signal.width, signed=signal.signed)
        old = signal.value
        if old.value == new_value.value and old.unknown == new_value.unknown:
            return
        signal.value = new_value
        if signal.name not in self._changed_signals:
            self._changed_signals[signal.name] = (old, new_value)
        else:
            first_old, _ = self._changed_signals[signal.name]
            self._changed_signals[signal.name] = (first_old, new_value)

    def _write_target(self, scope: _InstanceScope, target: ast.Expression, value: FourState) -> None:
        if isinstance(target, _ScopedExpression):
            self._write_target(target.scope, target.expr, value)
            return
        if isinstance(target, ast.Identifier):
            # Local function/task frames first.
            for frame in reversed(scope.locals):
                if target.name in frame:
                    width = frame[target.name].width
                    frame[target.name] = value.resize(width)
                    return
            signal = scope.resolve_signal(target.name)
            self._set_signal(signal, value)
            return
        if isinstance(target, ast.BitSelect):
            base = target.target
            if isinstance(base, ast.Identifier):
                signal = scope.resolve_signal(base.name)
                index = scope.evaluator.evaluate(target.index)
                if not index.is_fully_known:
                    return
                idx = index.to_int()
                if signal.is_array:
                    signal.array[idx] = value.resize(signal.width)
                    self._changed_signals.setdefault(signal.name, (signal.value, signal.value))
                    return
                self._write_bits(scope, signal, idx, idx, value)
                return
        if isinstance(target, ast.PartSelect):
            base = target.target
            if isinstance(base, ast.Identifier):
                signal = scope.resolve_signal(base.name)
                if target.mode == ":":
                    msb = scope.evaluator.evaluate_int(target.msb)
                    lsb = scope.evaluator.evaluate_int(target.lsb)
                else:
                    anchor = scope.evaluator.evaluate_int(target.msb)
                    width = scope.evaluator.evaluate_int(target.lsb)
                    if target.mode == "+:":
                        lsb, msb = anchor, anchor + width - 1
                    else:
                        msb, lsb = anchor, anchor - width + 1
                if msb < lsb:
                    msb, lsb = lsb, msb
                self._write_bits(scope, signal, msb, lsb, value)
                return
        if isinstance(target, ast.Concatenation):
            # Split value MSB-first across the parts.
            widths = []
            for part in target.parts:
                widths.append(self._target_width(scope, part))
            total = sum(widths)
            value = value.resize(total)
            bit_string = value.to_bit_string()
            cursor = 0
            for part, width in zip(target.parts, widths):
                chunk = bit_string[cursor : cursor + width]
                cursor += width
                self._write_target(scope, part, FourState.from_bits(chunk))
            return
        raise SimulationError(f"unsupported assignment target {type(target).__name__}")

    def _target_width(self, scope: _InstanceScope, target: ast.Expression) -> int:
        if isinstance(target, ast.Identifier):
            return scope.resolve_signal(target.name).width
        if isinstance(target, ast.BitSelect):
            return 1
        if isinstance(target, ast.PartSelect):
            msb = scope.evaluator.evaluate_int(target.msb)
            lsb = scope.evaluator.evaluate_int(target.lsb)
            if target.mode != ":":
                return lsb
            return abs(msb - lsb) + 1
        if isinstance(target, ast.Concatenation):
            return sum(self._target_width(scope, p) for p in target.parts)
        return 32

    def _write_bits(self, scope: _InstanceScope, signal: Signal, msb: int, lsb: int, value: FourState) -> None:
        del scope
        width = msb - lsb + 1
        value = value.resize(width)
        current = signal.value
        mask = ((1 << width) - 1) << lsb
        new_bits = (value.value << lsb) & mask
        new_unknown = (value.unknown << lsb) & mask
        combined_value = (current.value & ~mask) | new_bits
        combined_unknown = (current.unknown & ~mask) | new_unknown
        combined_z = (current.zmask & ~mask) | ((value.zmask << lsb) & mask)
        self._set_signal(
            signal,
            FourState(signal.width, combined_value & ~combined_unknown, combined_unknown, combined_z, signal.signed),
        )

    # ------------------------------------------------------------------ #
    # System tasks / functions
    # ------------------------------------------------------------------ #

    def call_system_function(self, name: str, args: List[FourState]) -> FourState:
        if name == "$time" or name == "$realtime" or name == "$stime":
            return FourState.from_int(self.time, width=64)
        if name == "$random" or name == "$urandom":
            return FourState.from_int(self.rng.next_value(), width=32)
        if name == "$clog2":
            if args and args[0].is_fully_known:
                n = args[0].to_int()
                return FourState.from_int(max(0, (n - 1).bit_length()), width=32)
            return FourState.unknown_value(32)
        if name in ("$signed", "$unsigned") and args:
            return FourState(args[0].width, args[0].value, args[0].unknown, args[0].zmask, name == "$signed")
        if name == "$bits" and args:
            return FourState.from_int(args[0].width, width=32)
        # Unknown system functions evaluate to X rather than failing.
        return FourState.unknown_value(32)

    def run_function(self, scope: _InstanceScope, func: ast.FunctionDeclaration, args: List[FourState]) -> FourState:
        frame: Dict[str, FourState] = {}
        return_width = 32
        if func.range is not None:
            msb = scope.evaluator.evaluate_int(func.range.msb)
            lsb = scope.evaluator.evaluate_int(func.range.lsb)
            return_width = abs(msb - lsb) + 1
        frame[func.name] = FourState.unknown_value(return_width)
        input_names: List[str] = []
        for item in func.items:
            if isinstance(item, ast.PortDeclaration) and item.direction == "input":
                width = 1
                if item.range is not None:
                    msb = scope.evaluator.evaluate_int(item.range.msb)
                    lsb = scope.evaluator.evaluate_int(item.range.lsb)
                    width = abs(msb - lsb) + 1
                for port_name in item.names:
                    input_names.append(port_name)
                    frame[port_name] = FourState.unknown_value(width)
            elif isinstance(item, ast.NetDeclaration):
                for local_name in item.names:
                    frame[local_name] = FourState.unknown_value(32)
        for port_name, arg in zip(input_names, args):
            frame[port_name] = arg.resize(frame[port_name].width)
        scope.locals.append(frame)
        try:
            for statement in func.body:
                self._exec_function_statement(scope, statement, frame)
        finally:
            scope.locals.pop()
        return frame[func.name]

    def _exec_function_statement(self, scope: _InstanceScope, statement: ast.Statement, frame: Dict[str, FourState]) -> None:
        if isinstance(statement, ast.Block):
            for child in statement.statements:
                self._exec_function_statement(scope, child, frame)
        elif isinstance(statement, ast.Assignment):
            value = scope.evaluator.evaluate(statement.value)
            if isinstance(statement.target, ast.Identifier) and statement.target.name in frame:
                frame[statement.target.name] = value.resize(frame[statement.target.name].width)
            else:
                self._write_target(scope, statement.target, value)
        elif isinstance(statement, ast.IfStatement):
            truth = scope.evaluator.evaluate(statement.condition).is_true()
            if truth:
                self._exec_function_statement(scope, statement.then_body, frame)
            elif statement.else_body is not None:
                self._exec_function_statement(scope, statement.else_body, frame)
        elif isinstance(statement, ast.CaseStatement):
            subject = scope.evaluator.evaluate(statement.subject)
            chosen = self._select_case_item(scope, statement, subject)
            if chosen is not None and chosen.body is not None:
                self._exec_function_statement(scope, chosen.body, frame)
        elif isinstance(statement, ast.ForStatement):
            self._exec_function_statement(scope, statement.init, frame)
            iterations = 0
            while True:
                truth = scope.evaluator.evaluate(statement.condition).is_true()
                if not truth:
                    break
                self._exec_function_statement(scope, statement.body, frame)
                self._exec_function_statement(scope, statement.step, frame)
                iterations += 1
                if iterations > self.max_loop_iterations:
                    raise SimulationError("for loop iteration limit exceeded in function")
        elif isinstance(statement, (ast.NullStatement, _LocalDeclaration)):
            pass
        # Delays/event controls are illegal inside functions; ignore defensively.

    # ------------------------------------------------------------------ #
    # Statement execution (generator-based coroutines)
    # ------------------------------------------------------------------ #

    def _exec_process(self, process: _Process) -> Generator:
        if process.repeat_forever:
            iterations = 0
            while True:
                yield from self._exec_statement(process.scope, process.body)
                iterations += 1
                if self.finished:
                    return
                if iterations > self.max_loop_iterations:
                    raise SimulationError(f"always block {process.name} never suspends")
        else:
            yield from self._exec_statement(process.scope, process.body)

    def _exec_statement(self, scope: _InstanceScope, statement: ast.Statement) -> Generator:
        if isinstance(statement, ast.Block):
            for child in statement.statements:
                yield from self._exec_statement(scope, child)
                if self.finished:
                    return
        elif isinstance(statement, ast.Assignment):
            if statement.delay is not None:
                delay = scope.evaluator.evaluate_int(statement.delay)
                if delay > 0:
                    yield (_CMD_DELAY, delay)
            value = scope.evaluator.evaluate(statement.value, self._target_width_safe(scope, statement.target))
            if statement.blocking:
                self._write_target(scope, statement.target, value)
            else:
                self._nba_queue.append((scope, statement.target, value))
        elif isinstance(statement, ast.IfStatement):
            truth = scope.evaluator.evaluate(statement.condition).is_true()
            if truth:
                yield from self._exec_statement(scope, statement.then_body)
            elif statement.else_body is not None:
                yield from self._exec_statement(scope, statement.else_body)
        elif isinstance(statement, ast.CaseStatement):
            subject = scope.evaluator.evaluate(statement.subject)
            chosen = self._select_case_item(scope, statement, subject)
            if chosen is not None and chosen.body is not None:
                yield from self._exec_statement(scope, chosen.body)
        elif isinstance(statement, ast.ForStatement):
            yield from self._exec_statement(scope, statement.init)
            iterations = 0
            while True:
                truth = scope.evaluator.evaluate(statement.condition).is_true()
                if not truth:
                    break
                yield from self._exec_statement(scope, statement.body)
                if self.finished:
                    return
                yield from self._exec_statement(scope, statement.step)
                iterations += 1
                if iterations > self.max_loop_iterations:
                    raise SimulationError("for loop iteration limit exceeded")
        elif isinstance(statement, ast.WhileStatement):
            iterations = 0
            while True:
                truth = scope.evaluator.evaluate(statement.condition).is_true()
                if not truth:
                    break
                yield from self._exec_statement(scope, statement.body)
                if self.finished:
                    return
                iterations += 1
                if iterations > self.max_loop_iterations:
                    raise SimulationError("while loop iteration limit exceeded")
        elif isinstance(statement, ast.RepeatStatement):
            count = scope.evaluator.evaluate_int(statement.count)
            for _ in range(min(count, self.max_loop_iterations)):
                yield from self._exec_statement(scope, statement.body)
                if self.finished:
                    return
        elif isinstance(statement, ast.ForeverStatement):
            iterations = 0
            while not self.finished:
                yield from self._exec_statement(scope, statement.body)
                iterations += 1
                if iterations > self.max_loop_iterations:
                    raise SimulationError("forever loop iteration limit exceeded")
        elif isinstance(statement, ast.DelayStatement):
            delay = scope.evaluator.evaluate_int(statement.delay)
            yield (_CMD_DELAY, max(delay, 0))
            if statement.body is not None:
                yield from self._exec_statement(scope, statement.body)
        elif isinstance(statement, ast.EventControlStatement):
            controls = self._resolve_sensitivity(scope, statement)
            yield (_CMD_WAIT_EVENT, controls)
            if statement.body is not None:
                yield from self._exec_statement(scope, statement.body)
        elif isinstance(statement, ast.WaitStatement):
            iterations = 0
            while True:
                truth = scope.evaluator.evaluate(statement.condition).is_true()
                if truth:
                    break
                signals = self._signals_in_expression(scope, statement.condition)
                yield (_CMD_WAIT_EVENT, [(None, s) for s in signals])
                iterations += 1
                if iterations > self.max_loop_iterations:
                    raise SimulationError("wait statement never satisfied")
            if statement.body is not None:
                yield from self._exec_statement(scope, statement.body)
        elif isinstance(statement, ast.SystemTaskCall):
            yield from self._exec_system_task(scope, statement)
        elif isinstance(statement, ast.TaskCallStatement):
            task = scope.tasks.get(statement.name)
            if task is not None:
                yield from self._exec_user_task(scope, task, statement.args)
        elif isinstance(statement, (ast.NullStatement, ast.DisableStatement, _LocalDeclaration)):
            return
        else:
            raise SimulationError(f"unsupported statement {type(statement).__name__}")

    def _target_width_safe(self, scope: _InstanceScope, target: ast.Expression) -> Optional[int]:
        try:
            return self._target_width(scope, target)
        except (SimulationError, EvaluationError):
            return None

    def _select_case_item(
        self, scope: _InstanceScope, statement: ast.CaseStatement, subject: FourState
    ) -> Optional[ast.CaseItem]:
        default_item = None
        for item in statement.items:
            if item.is_default:
                default_item = item
                continue
            for pattern in item.patterns:
                pattern_value = scope.evaluator.evaluate(pattern)
                if self._case_match(statement.kind, subject, pattern_value):
                    return item
        return default_item

    @staticmethod
    def _case_match(kind: str, subject: FourState, pattern: FourState) -> bool:
        width = max(subject.width, pattern.width)
        a = subject.resize(width)
        b = pattern.resize(width)
        if kind == "case":
            return a.value == b.value and a.unknown == b.unknown
        for i in range(width):
            bit_a = a.bit(i)
            bit_b = b.bit(i)
            if kind == "casez" and (bit_a == "z" or bit_b == "z" or bit_b == "?"):
                continue
            if kind == "casex" and (bit_a in "xz" or bit_b in "xz?"):
                continue
            if bit_a != bit_b:
                return False
        return True

    def _resolve_sensitivity(
        self, scope: _InstanceScope, statement: ast.EventControlStatement
    ) -> List[Tuple[Optional[str], str]]:
        controls: List[Tuple[Optional[str], str]] = []
        if statement.is_star:
            body = statement.body
            names = self._signals_in_expression(scope, body) if body is not None else []
            return [(None, name) for name in names]
        for control in statement.controls:
            if control.signal is None:
                continue
            names = self._signals_in_expression(scope, control.signal)
            for name in names:
                controls.append((control.edge, name))
        return controls

    def _signals_in_expression(self, scope: _InstanceScope, node: ast.Node) -> List[str]:
        names: List[str] = []
        seen = set()
        if node is None:
            return names
        for child in node.walk():
            if isinstance(child, ast.Identifier):
                flat = scope.signal_map.get(child.name)
                if flat is not None and flat not in seen:
                    seen.add(flat)
                    names.append(flat)
        return names

    # -- system / user tasks -------------------------------------------------

    def _exec_system_task(self, scope: _InstanceScope, statement: ast.SystemTaskCall) -> Generator:
        name = statement.name
        if name in ("$finish", "$stop"):
            self.finished = True
            yield (_CMD_FINISH, None)
            return
        if name in ("$display", "$write", "$strobe", "$error", "$fatal"):
            text = self._format_display(scope, statement.args)
            self.display_lines.append(text)
            if name == "$fatal":
                self.finished = True
                yield (_CMD_FINISH, None)
            return
        if name == "$monitor":
            self._monitors.append((scope, statement.args))
            self.display_lines.append(self._format_display(scope, statement.args))
            return
        if name in ("$dumpfile", "$dumpvars", "$dumpoff", "$dumpon", "$readmemh", "$readmemb", "$timeformat"):
            return
        # Unknown tasks are ignored (matching iverilog's warning-and-continue).
        return
        yield  # pragma: no cover - makes this a generator

    def _exec_user_task(self, scope: _InstanceScope, task: ast.TaskDeclaration, args: List[ast.Expression]) -> Generator:
        frame: Dict[str, FourState] = {}
        input_names: List[str] = []
        output_names: List[str] = []
        for item in task.items:
            if isinstance(item, ast.PortDeclaration):
                width = 1
                if item.range is not None:
                    msb = scope.evaluator.evaluate_int(item.range.msb)
                    lsb = scope.evaluator.evaluate_int(item.range.lsb)
                    width = abs(msb - lsb) + 1
                for port_name in item.names:
                    frame[port_name] = FourState.unknown_value(width)
                    if item.direction == "input":
                        input_names.append(port_name)
                    else:
                        output_names.append(port_name)
            elif isinstance(item, ast.NetDeclaration):
                for local_name in item.names:
                    frame[local_name] = FourState.unknown_value(32)
        arg_values = [scope.evaluator.evaluate(a) for a in args]
        for port_name, value in zip(input_names, arg_values):
            frame[port_name] = value.resize(frame[port_name].width)
        scope.locals.append(frame)
        try:
            for body_statement in task.body:
                yield from self._exec_statement(scope, body_statement)
        finally:
            scope.locals.pop()

    def _format_display(self, scope: _InstanceScope, args: Sequence[ast.Expression]) -> str:
        if not args:
            return ""
        first = args[0]
        if isinstance(first, ast.StringLiteral):
            fmt = first.text
            values = [scope.evaluator.evaluate(a) for a in args[1:]]
            return _apply_format(fmt, values, self.time)
        rendered = []
        for arg in args:
            value = scope.evaluator.evaluate(arg)
            rendered.append(str(value.to_int()) if value.is_fully_known else value.to_bit_string())
        return " ".join(rendered)

    # ------------------------------------------------------------------ #
    # Scheduling
    # ------------------------------------------------------------------ #

    def run(self, max_time: Optional[int] = None) -> SimulationResult:
        """Run the simulation until ``$finish``, quiescence or the time limit."""
        limit = max_time if max_time is not None else self.max_time
        error: Optional[str] = None
        try:
            self._run_loop(limit)
        except (SimulationError, EvaluationError, RecursionError) as exc:
            error = str(exc)
        output = "\n".join(self.display_lines)
        return SimulationResult(
            finished=self.finished,
            time=self.time,
            output=output,
            display_lines=list(self.display_lines),
            cycles=self.event_count,
            error=error,
        )

    def _run_loop(self, limit: int) -> None:
        sequence = itertools.count()
        waiting: Dict[int, _Process] = {}

        # Continuous assignments are modelled as zero-delay combinational
        # re-evaluation after every delta step; evaluate them once up front.
        self._changed_signals = {}
        self._evaluate_continuous(initial=True)

        for process in self.processes:
            process.start()
            self._ready.append(process)

        while not self.finished:
            # Delta loop at the current time.
            stable_iterations = 0
            while self._ready or self._nba_queue:
                stable_iterations += 1
                if stable_iterations > 10_000:
                    raise SimulationError("delta-cycle oscillation (combinational loop?)")
                runnable = self._ready
                self._ready = []
                for process in runnable:
                    self._step_process(process, waiting)
                    if self.finished:
                        return
                # Apply non-blocking assignments as a batch.
                nba = self._nba_queue
                self._nba_queue = []
                for scope, target, value in nba:
                    self._write_target(scope, target, value)
                self._propagate_changes(waiting)

            if self.finished:
                return
            if not self._event_queue:
                return  # quiescent: no more events will ever occur
            next_time, _, process = heapq.heappop(self._event_queue)
            if next_time > limit:
                self.time = limit
                return
            self.time = next_time
            self._ready.append(process)
            # Pop everything else scheduled for the same time.
            while self._event_queue and self._event_queue[0][0] == next_time:
                _, _, other = heapq.heappop(self._event_queue)
                self._ready.append(other)

    def _step_process(self, process: _Process, waiting: Dict[int, _Process]) -> None:
        if process.generator is None or process.done:
            return
        self.event_count += 1
        if self.event_count > self.max_events:
            raise SimulationError("event limit exceeded")
        try:
            command, payload = next(process.generator)
        except StopIteration:
            process.done = True
            self._propagate_changes(waiting)
            return
        self._propagate_changes(waiting)
        if command == _CMD_DELAY:
            heapq.heappush(self._event_queue, (self.time + payload, process.pid + self.event_count * 1000, process))
        elif command == _CMD_WAIT_EVENT:
            process.waiting_events = payload
            waiting[process.pid] = process
        elif command == _CMD_FINISH:
            self.finished = True

    def _evaluate_continuous(self, initial: bool = False) -> None:
        for scope, lhs, rhs in self.continuous:
            try:
                width = self._target_width_safe(scope, lhs)
                value = self._evaluate_possibly_scoped(scope, rhs, width)
                self._write_target(scope, lhs, value)
            except (EvaluationError, SimulationError):
                if initial:
                    continue
                raise

    def _evaluate_possibly_scoped(
        self, scope: _InstanceScope, expr: ast.Expression, context_width: Optional[int] = None
    ) -> FourState:
        if isinstance(expr, _ScopedExpression):
            return self._evaluate_possibly_scoped(expr.scope, expr.expr, context_width)
        return scope.evaluator.evaluate(expr, context_width)

    def _propagate_changes(self, waiting: Dict[int, _Process]) -> None:
        # Iterate: continuous assigns may cascade.
        for _ in range(64):
            changes = self._changed_signals
            if not changes:
                return
            self._changed_signals = {}
            # Re-evaluate continuous assignments (simple approach: all of them).
            for scope, lhs, rhs in self.continuous:
                try:
                    width = self._target_width_safe(scope, lhs)
                    value = self._evaluate_possibly_scoped(scope, rhs, width)
                    self._write_target(scope, lhs, value)
                except (EvaluationError, SimulationError):
                    continue
            # Wake processes whose sensitivity matches any changed signal.
            woken: List[int] = []
            for pid, process in waiting.items():
                if self._matches_sensitivity(process.waiting_events, changes):
                    self._ready.append(process)
                    woken.append(pid)
            for pid in woken:
                waiting.pop(pid, None)
        raise SimulationError("continuous assignment network did not settle")

    @staticmethod
    def _matches_sensitivity(
        controls: List[Tuple[Optional[str], str]], changes: Dict[str, Tuple[FourState, FourState]]
    ) -> bool:
        for edge, signal_name in controls:
            change = changes.get(signal_name)
            if change is None:
                continue
            old, new = change
            if edge is None:
                return True
            old_bit = old.bit(0)
            new_bit = new.bit(0)
            if edge == "posedge" and new_bit == "1" and old_bit != "1":
                return True
            if edge == "negedge" and new_bit == "0" and old_bit != "0":
                return True
        return False


@dataclass
class _ScopedExpression(ast.Expression):
    """An expression that must be evaluated in a specific instance scope.

    Used for cross-hierarchy port bindings created during elaboration.
    """

    scope: object = None
    expr: ast.Expression = None  # type: ignore[assignment]

    def children(self):  # pragma: no cover - structural helper
        if isinstance(self.expr, ast.Node):
            yield self.expr


def _apply_format(fmt: str, values: List[FourState], current_time: int) -> str:
    """Render a $display format string with Verilog conversion specifiers."""
    out: List[str] = []
    value_index = 0
    i = 0
    while i < len(fmt):
        ch = fmt[i]
        if ch == "\\" and i + 1 < len(fmt):
            escape = fmt[i + 1]
            out.append({"n": "\n", "t": "\t", '"': '"', "\\": "\\"}.get(escape, escape))
            i += 2
            continue
        if ch != "%":
            out.append(ch)
            i += 1
            continue
        # Parse %[width]spec
        j = i + 1
        while j < len(fmt) and (fmt[j].isdigit() or fmt[j] == "0"):
            j += 1
        spec = fmt[j] if j < len(fmt) else "%"
        width_text = fmt[i + 1 : j]
        if spec == "%":
            out.append("%")
            i = j + 1
            continue
        if spec in ("t", "T") and value_index >= len(values):
            out.append(str(current_time))
            i = j + 1
            continue
        if value_index < len(values):
            value = values[value_index]
            value_index += 1
        else:
            value = FourState.from_int(0)
        rendered = _render_value(spec, value, current_time)
        if width_text:
            rendered = rendered.rjust(int(width_text))
        out.append(rendered)
        i = j + 1
    return "".join(out)


def _render_value(spec: str, value: FourState, current_time: int) -> str:
    spec = spec.lower()
    if spec == "d":
        return str(value.to_int()) if value.is_fully_known else "x"
    if spec == "h" or spec == "x":
        if not value.is_fully_known:
            return "x" * ((value.width + 3) // 4)
        return format(value.value, "x")
    if spec == "b":
        return value.to_bit_string()
    if spec == "o":
        return format(value.value, "o") if value.is_fully_known else "x"
    if spec == "c":
        return chr(value.value & 0xFF) if value.is_fully_known else "?"
    if spec == "s":
        if not value.is_fully_known:
            return "x"
        raw = value.value
        chars = []
        while raw:
            chars.append(chr(raw & 0xFF))
            raw >>= 8
        return "".join(reversed(chars)) or ""
    if spec == "t":
        return str(current_time)
    return str(value.to_int()) if value.is_fully_known else "x"
